//! A full analytics pipeline on the burst buffer: TeraGen → Sort →
//! validate, using the real record-sorting MapReduce logic (the paper's
//! Sort workload, E7, at correctness scale).
//!
//! ```text
//! cargo run --release --example sort_pipeline
//! ```

use rdma_bb::mapred::logic::SORT_RECORD_LEN;
use rdma_bb::prelude::*;
use rdma_bb::workloads::sortbench::{self, SortConfig};

fn main() {
    let tb = Testbed::build(
        SystemKind::Bb(Scheme::HybridLocality),
        TestbedConfig {
            compute_nodes: 8,
            ..TestbedConfig::default()
        },
    );
    let cfg = SortConfig {
        data_size: 16 << 20,
        input_files: 8,
        reducers: 8,
        real_sort: true,
        ..SortConfig::default()
    };
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        // TeraGen: real 100-byte records with pseudorandom keys
        let records_per_file = (cfg.data_size / cfg.input_files as u64) as usize / SORT_RECORD_LEN;
        for i in 0..cfg.input_files {
            sortbench::teragen_real(
                &fs_for(tb.nodes[i % tb.nodes.len()]),
                &format!("{}/part-{i:05}", cfg.input_dir),
                records_per_file,
                0xBEEF + i as u64,
            )
            .await
            .expect("teragen");
        }
        println!(
            "generated {} records across {} files on {}",
            records_per_file * cfg.input_files,
            cfg.input_files,
            tb.kind.label()
        );

        // Sort
        let r = sortbench::sort(&tb.engine, &fs_for, &cfg)
            .await
            .expect("sort");
        println!(
            "sort: {:.3}s ({} maps, {} node-local, map phase {:.3}s)",
            r.sort_time.as_secs_f64(),
            r.maps,
            r.local_maps,
            r.map_phase.as_secs_f64()
        );

        // Validate: outputs globally ordered across partitions
        let mut last: Option<Vec<u8>> = None;
        let mut total_records = 0usize;
        for p in 0..cfg.reducers {
            let f = fs_for(tb.nodes[0])
                .open(&format!("{}/part-{p:05}", cfg.output_dir))
                .await
                .expect("open output");
            let data = f.read_all().await.expect("read output");
            for rec in data.chunks(SORT_RECORD_LEN) {
                let key = rec[..10].to_vec();
                if let Some(prev) = &last {
                    assert!(*prev <= key, "output not globally sorted at partition {p}");
                }
                last = Some(key);
                total_records += 1;
            }
        }
        assert_eq!(total_records, records_per_file * cfg.input_files);
        println!("validate: {total_records} records globally sorted ✓");
        tb.shutdown();
    });
}
