//! Use the RDMA-Memcached substrate (`rkv`) directly, without the burst
//! buffer on top: stand up servers, and compare the hybrid one-sided
//! protocol across transports — the paper's motivating microbenchmark.
//!
//! ```text
//! cargo run --release --example kv_microbench
//! ```

use std::rc::Rc;

use rdma_bb::prelude::*;
use rdma_bb::rdmasim::RdmaStack;
use rdma_bb::rkv::server::KvServerConfig;
use rdma_bb::rkv::{KvClient, KvClientConfig, KvServer};

fn run(profile: TransportProfile) -> (f64, f64, f64) {
    let sim = Sim::new();
    let fabric = Fabric::new(sim.clone(), 2, NetConfig::default());
    let stack = RdmaStack::with_profile(fabric, profile);
    let server = KvServer::new(Rc::clone(&stack), NodeId(0), KvServerConfig::default());
    let client = KvClient::new(
        Rc::clone(&stack),
        NodeId(1),
        vec![server],
        KvClientConfig::default(),
    );
    let s = sim.clone();
    let out = sim.block_on(async move {
        // small-value latency
        client
            .set(b"k", Bytes::from(vec![7u8; 4096]), 0, 0)
            .await
            .unwrap();
        let t0 = s.now();
        for _ in 0..100 {
            client.get(b"k").await.unwrap().unwrap();
        }
        let get_us = (s.now() - t0).as_secs_f64() * 1e6 / 100.0;
        // large-value bandwidth (one-sided path)
        let big = Bytes::from(vec![9u8; 512 << 10]);
        let t1 = s.now();
        for i in 0..50 {
            client
                .set(format!("big{i}").as_bytes(), big.clone(), 0, 0)
                .await
                .unwrap();
        }
        let set_mbps = 50.0 * 0.5 * 1.048_576 / (s.now() - t1).as_secs_f64();
        // counters round-trip
        client
            .set(b"ctr", Bytes::from_static(b"0"), 0, 0)
            .await
            .unwrap();
        let t2 = s.now();
        for _ in 0..100 {
            client.incr(b"ctr", 1).await.unwrap();
        }
        let incr_us = (s.now() - t2).as_secs_f64() * 1e6 / 100.0;
        assert_eq!(client.incr(b"ctr", 0).await.unwrap(), 100);
        (get_us, set_mbps, incr_us)
    });
    sim.reset();
    out
}

fn main() {
    println!("RDMA-Memcached microbenchmark (1 server, 1 client)\n");
    println!(
        "{:<12} {:>14} {:>16} {:>14}",
        "transport", "get 4KiB (µs)", "set 512KiB MB/s", "incr (µs)"
    );
    for profile in [
        TransportProfile::verbs_qdr(),
        TransportProfile::ipoib_qdr(),
        TransportProfile::ten_gige(),
        TransportProfile::one_gige(),
    ] {
        let (get_us, set_mbps, incr_us) = run(profile);
        println!(
            "{:<12} {:>14.1} {:>16.0} {:>14.1}",
            profile.name, get_us, set_mbps, incr_us
        );
    }
    println!("\n(the verbs row is why the paper builds its burst buffer on RDMA)");
}
