//! TestDFSIO across all five systems — a miniature of the paper's headline
//! experiment (E3/E4): write and read 16 files × 64 MiB on 16 nodes and
//! compare HDFS, Lustre, and the three burst-buffer schemes.
//!
//! ```text
//! cargo run --release --example testdfsio_demo
//! ```

use rdma_bb::prelude::*;
use rdma_bb::workloads::testdfsio::{self, DfsioConfig};

fn main() {
    let cfg = DfsioConfig {
        files: 16,
        file_size: 64 << 20,
        ..DfsioConfig::default()
    };
    println!(
        "TestDFSIO: {} files × {} MiB on 16 nodes\n",
        cfg.files,
        cfg.file_size >> 20
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "system", "write MB/s", "read MB/s", "local GiB"
    );
    for kind in SystemKind::all_five() {
        let tb = Testbed::build(kind, TestbedConfig::default());
        let pool = PayloadPool::standard();
        let cfg = cfg.clone();
        let sim = tb.sim.clone();
        let (w, r, local) = sim.block_on(async move {
            let fs_for = tb.fs_for();
            let w = testdfsio::write(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg)
                .await
                .expect("write phase");
            let r = testdfsio::read(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg, false)
                .await
                .expect("read phase");
            let local = tb.local_storage_used();
            tb.shutdown();
            (w, r, local)
        });
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>12.2}",
            kind.label(),
            w.aggregate.mb_per_sec(),
            r.aggregate.mb_per_sec(),
            local as f64 / (1u64 << 30) as f64
        );
    }
    println!("\n(paper shape: BB-Async write ≈2.6× HDFS / ≈1.5× Lustre; read gain up to 8×)");
}
