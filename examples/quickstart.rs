//! Quickstart: deploy a burst buffer between 8 compute nodes and a Lustre
//! filesystem, write a file through it over simulated RDMA, read it back,
//! and watch it become durable in Lustre.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rdma_bb::prelude::*;

fn main() {
    // a complete system under test: fabric + Lustre + 4 KV servers +
    // persistence manager + per-node clients
    let tb = Testbed::build(
        SystemKind::Bb(Scheme::AsyncLustre),
        TestbedConfig {
            compute_nodes: 8,
            ..TestbedConfig::default()
        },
    );
    let sim = tb.sim.clone();
    let pool = PayloadPool::standard();

    sim.block_on(async move {
        let fs = tb.fs_for()(tb.nodes[0]);
        println!("system under test : {}", tb.kind.label());
        println!("compute nodes     : {}", tb.nodes.len());
        let bb = tb.bb.as_ref().unwrap();
        println!(
            "burst buffer      : {} KV servers × {} MiB",
            bb.kv_servers.len(),
            bb.config.kv_mem_per_server >> 20
        );

        // --- write 256 MiB through the buffer ---
        let t0 = tb.sim.now();
        let writer = fs.create("/demo/data").await.expect("create");
        for piece in pool.stream(0, 256 << 20, 1 << 20) {
            writer.append(piece).await.expect("append");
        }
        writer.close().await.expect("close");
        let write_t = (tb.sim.now() - t0).as_secs_f64();
        println!(
            "write             : 256 MiB in {write_t:.3}s ({:.0} MB/s)",
            256.0 * 1.048_576 / write_t
        );
        println!(
            "buffered bytes    : {} MiB (unflushed: {} MiB)",
            bb.buffered_bytes() >> 20,
            bb.manager.unflushed_bytes() >> 20
        );

        // --- read it back (buffer-hot) ---
        let t1 = tb.sim.now();
        let reader = fs.open("/demo/data").await.expect("open");
        let back = reader.read_all().await.expect("read");
        let read_t = (tb.sim.now() - t1).as_secs_f64();
        assert_eq!(back.len(), 256 << 20);
        println!(
            "read (hot)        : 256 MiB in {read_t:.3}s ({:.0} MB/s)",
            256.0 * 1.048_576 / read_t
        );

        // --- wait for the persistence manager ---
        let client = bb.client(tb.nodes[0]);
        let state = client.wait_flushed("/demo/data").await.expect("flush");
        println!(
            "durability        : {state:?} at t={} (Lustre now holds {} MiB)",
            tb.sim.now(),
            bb.lustre.stored_bytes() >> 20
        );
        let stats = bb.manager.stats();
        println!(
            "persistence mgr   : {} chunks flushed, {} watermark stalls",
            stats.chunks_flushed, stats.watermark_stalls
        );
        tb.shutdown();
    });
    println!("virtual time total: {}", sim.now());
}
