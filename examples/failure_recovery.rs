//! Fault-tolerance walkthrough (the paper's scheme trade-off, E12):
//! the same buffer-node crash under the async scheme (data in the fault
//! window is lost) and the sync scheme (every byte already in Lustre),
//! plus the degraded write path when the buffer is down from the start.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use rdma_bb::prelude::*;

fn scenario(scheme: Scheme, slow_lustre: bool) {
    let mut cfg = TestbedConfig {
        compute_nodes: 4,
        ..TestbedConfig::default()
    };
    if slow_lustre {
        // a congested backing store keeps the flush queue deep
        cfg.lustre.ost_rate = 10e6;
    }
    let tb = Testbed::build(SystemKind::Bb(scheme), cfg);
    let sim = tb.sim.clone();
    let pool = PayloadPool::standard();
    sim.block_on(async move {
        let bb = tb.bb.as_ref().unwrap();
        let client = bb.client(tb.nodes[0]);
        println!(
            "--- {} (lustre {}) ---",
            scheme.label(),
            if slow_lustre { "slow" } else { "normal" }
        );

        let w = client.create("/victim").await.expect("create");
        for piece in pool.stream(7, 64 << 20, 1 << 20) {
            w.append(piece).await.expect("append");
        }
        w.close().await.expect("close");
        println!(
            "wrote 64 MiB; unflushed at close: {} MiB",
            bb.manager.unflushed_bytes() >> 20
        );

        // crash every KV server right after close
        for s in &bb.kv_servers {
            tb.fabric.set_up(s.node(), false);
        }
        println!("crashed all {} KV servers", bb.kv_servers.len());

        let state = client.wait_flushed("/victim").await.expect("wait");
        println!("durability state: {state:?}");
        let reader = client.open("/victim").await.expect("open");
        match reader.read_all().await {
            Ok(data) => println!("read back {} MiB from surviving tiers ✓", data.len() >> 20),
            Err(e) => println!("read failed as expected: {e}"),
        }
        let st = bb.manager.stats();
        println!(
            "flusher: {} flushed, {} lost, {} direct\n",
            st.chunks_flushed, st.chunks_lost, st.chunks_direct
        );
        tb.shutdown();
    });
}

fn main() {
    // async + slow Lustre: the fault window bites
    scenario(Scheme::AsyncLustre, true);
    // sync: the same crash is harmless
    scenario(Scheme::SyncLustre, true);
    // async + healthy Lustre: flush usually wins the race
    scenario(Scheme::AsyncLustre, false);
}
