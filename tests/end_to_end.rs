//! Cross-crate integration tests: full pipelines exercising the public
//! API from the umbrella crate, spanning fabric → RDMA → KV → burst
//! buffer → filesystems → MapReduce.

use std::rc::Rc;

use rdma_bb::mapred::logic::WordCountLogic;
use rdma_bb::mapred::JobSpec;
use rdma_bb::prelude::*;
use rdma_bb::workloads::sortbench;
use rdma_bb::workloads::testdfsio::{self, DfsioConfig};

fn small(kind: SystemKind) -> Testbed {
    Testbed::build(
        kind,
        TestbedConfig {
            compute_nodes: 6,
            ..TestbedConfig::default()
        },
    )
}

#[test]
fn every_system_round_trips_the_same_dataset() {
    let pool = PayloadPool::standard();
    // the identical logical dataset must round-trip through each system
    for kind in SystemKind::all_five() {
        let tb = small(kind);
        let pool = pool.clone();
        let sim = tb.sim.clone();
        sim.block_on(async move {
            let fs = tb.fs_for()(tb.nodes[1]);
            let w = fs.create("/it/ds").await.unwrap();
            let pieces = pool.stream(42, 24 << 20, 1 << 20);
            for p in &pieces {
                w.append(p.clone()).await.unwrap();
            }
            w.close().await.unwrap();
            // read from a different node than the writer
            let fs2 = tb.fs_for()(tb.nodes[4]);
            let r = fs2.open("/it/ds").await.unwrap();
            assert_eq!(r.size(), 24 << 20, "{}", kind.label());
            let mut off = 0u64;
            for p in &pieces {
                let got = r.read_at(off, p.len() as u64).await.unwrap();
                assert_eq!(&got, p, "{} mismatch at {off}", kind.label());
                off += p.len() as u64;
            }
            tb.shutdown();
        });
    }
}

#[test]
fn wordcount_results_identical_across_backends() {
    let text = "to be or not to be that is the question\n".repeat(50_000);
    let mut outputs = Vec::new();
    for kind in [
        SystemKind::Hdfs,
        SystemKind::Lustre,
        SystemKind::Bb(Scheme::AsyncLustre),
    ] {
        let tb = small(kind);
        let text = text.clone();
        let sim = tb.sim.clone();
        let out = sim.block_on(async move {
            let fs_for = tb.fs_for();
            let w = fs_for(tb.nodes[0]).create("/wc/in").await.unwrap();
            w.append(Bytes::from(text)).await.unwrap();
            w.close().await.unwrap();
            tb.engine
                .run(
                    &fs_for,
                    JobSpec {
                        name: "wc".into(),
                        inputs: vec!["/wc/in".into()],
                        output_dir: "/wc/out".into(),
                        reducers: 3,
                        logic: Rc::new(WordCountLogic),
                    },
                )
                .await
                .unwrap();
            let mut merged = String::new();
            for p in 0..3 {
                let f = fs_for(tb.nodes[0])
                    .open(&format!("/wc/out/part-{p:05}"))
                    .await
                    .unwrap();
                merged.push_str(&String::from_utf8_lossy(&f.read_all().await.unwrap()));
            }
            let mut lines: Vec<&str> = merged.lines().collect();
            lines.sort_unstable();
            tb.shutdown();
            lines.join("\n")
        });
        outputs.push((kind.label(), out));
    }
    // identical job → identical result regardless of the storage engine
    for w in outputs.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "wordcount differs between {} and {}",
            w[0].0, w[1].0
        );
    }
    assert!(outputs[0].1.contains("be\t100000"));
    assert!(outputs[0].1.contains("question\t50000"));
}

#[test]
fn burst_buffer_survives_full_kv_loss_after_flush() {
    let tb = small(SystemKind::Bb(Scheme::AsyncLustre));
    let pool = PayloadPool::standard();
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let bb = Rc::clone(tb.bb.as_ref().unwrap());
        let client = bb.client(tb.nodes[0]);
        let w = client.create("/it/safe").await.unwrap();
        let pieces = pool.stream(3, 32 << 20, 1 << 20);
        for p in &pieces {
            w.append(p.clone()).await.unwrap();
        }
        w.close().await.unwrap();
        // make it durable, then lose the entire buffer tier
        assert_eq!(
            client.wait_flushed("/it/safe").await.unwrap(),
            rdma_bb::bb_core::FileState::Flushed
        );
        for s in &bb.kv_servers {
            tb.fabric.set_up(s.node(), false);
        }
        let r = client.open("/it/safe").await.unwrap();
        let back = r.read_all().await.unwrap();
        let mut expect = Vec::new();
        for p in &pieces {
            expect.extend_from_slice(p);
        }
        assert_eq!(&back[..], &expect[..]);
        tb.shutdown();
    });
}

#[test]
fn dfsio_deterministic_across_runs() {
    // identical seed and config → bit-identical virtual timings
    fn run() -> (u128, u64) {
        let tb = small(SystemKind::Bb(Scheme::AsyncLustre));
        let pool = PayloadPool::standard();
        let cfg = DfsioConfig {
            files: 4,
            file_size: 16 << 20,
            ..DfsioConfig::default()
        };
        let sim = tb.sim.clone();
        let elapsed = sim.block_on(async move {
            let fs_for = tb.fs_for();
            let w = testdfsio::write(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg)
                .await
                .unwrap();
            tb.shutdown();
            w.elapsed.as_nanos()
        });
        (elapsed, sim.events_processed())
    }
    let a = run();
    let b = run();
    assert_eq!(a, b, "simulation is not deterministic");
}

#[test]
fn hybrid_scheme_sort_exploits_locality() {
    let tb = small(SystemKind::Bb(Scheme::HybridLocality));
    let pool = PayloadPool::standard();
    let cfg = sortbench::SortConfig {
        data_size: 256 << 20,
        input_files: 6,
        reducers: 6,
        ..sortbench::SortConfig::default()
    };
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let r = sortbench::generate_and_sort(&tb.engine, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .unwrap();
        assert!(r.maps > 0);
        assert!(
            r.local_maps > 0,
            "hybrid scheme should schedule node-local maps ({}/{})",
            r.local_maps,
            r.maps
        );
        tb.shutdown();
    });
}
