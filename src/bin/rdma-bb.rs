//! `rdma-bb` — command-line driver for the simulated testbed.
//!
//! Runs a single workload against a chosen system without writing any
//! code, e.g.:
//!
//! ```text
//! rdma-bb dfsio   --system bb-async --nodes 16 --files 16 --size-mb 64
//! rdma-bb sort    --system hdfs     --nodes 16 --size-mb 512
//! rdma-bb swim    --system lustre   --jobs 12
//! rdma-bb crash   --system bb-sync
//! rdma-bb systems                  # list available systems
//! ```

use std::process::exit;

use rdma_bb::bb_core::Scheme;
use rdma_bb::prelude::*;
use rdma_bb::workloads::randomwriter::{self, RandomWriterConfig};
use rdma_bb::workloads::sortbench::{self, SortConfig};
use rdma_bb::workloads::swim::{self, SwimConfig};
use rdma_bb::workloads::testdfsio::{self, DfsioConfig};

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let value = raw.get(i + 1).cloned().unwrap_or_default();
                flags.push((name.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn num(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("--{name}: not a number: {v}")))
            })
            .unwrap_or(default)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2)
}

fn system_of(name: &str) -> SystemKind {
    match name {
        "hdfs" => SystemKind::Hdfs,
        "lustre" => SystemKind::Lustre,
        "bb-async" => SystemKind::Bb(Scheme::AsyncLustre),
        "bb-sync" => SystemKind::Bb(Scheme::SyncLustre),
        "bb-hybrid" => SystemKind::Bb(Scheme::HybridLocality),
        other => die(&format!(
            "unknown system '{other}' (try: hdfs, lustre, bb-async, bb-sync, bb-hybrid)"
        )),
    }
}

fn testbed(args: &Args) -> (SystemKind, Testbed) {
    let kind = system_of(args.get("system").unwrap_or("bb-async"));
    let cfg = TestbedConfig {
        compute_nodes: args.num("nodes", 16) as usize,
        ..TestbedConfig::default()
    };
    (kind, Testbed::build(kind, cfg))
}

fn cmd_dfsio(args: &Args) {
    let (kind, tb) = testbed(args);
    let cfg = DfsioConfig {
        files: args.num("files", 16) as usize,
        file_size: args.num("size-mb", 64) << 20,
        ..DfsioConfig::default()
    };
    let pool = PayloadPool::standard();
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let w = testdfsio::write(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .unwrap_or_else(|e| die(&format!("write phase: {e}")));
        let r = testdfsio::read(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg, false)
            .await
            .unwrap_or_else(|e| die(&format!("read phase: {e}")));
        println!("system        : {}", kind.label());
        println!(
            "write         : {:.0} MB/s aggregate ({:.0} MB/s per-task avg) in {:.2}s",
            w.aggregate.mb_per_sec(),
            w.avg_io_rate_mbps,
            w.elapsed.as_secs_f64()
        );
        println!(
            "read          : {:.0} MB/s aggregate ({:.0} MB/s per-task avg) in {:.2}s",
            r.aggregate.mb_per_sec(),
            r.avg_io_rate_mbps,
            r.elapsed.as_secs_f64()
        );
        println!("local storage : {} MiB", tb.local_storage_used() >> 20);
        tb.shutdown();
    });
}

fn cmd_randomwriter(args: &Args) {
    let (kind, tb) = testbed(args);
    let cfg = RandomWriterConfig {
        bytes_per_node: args.num("size-mb", 128) << 20,
        ..RandomWriterConfig::default()
    };
    let pool = PayloadPool::standard();
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let r = randomwriter::run(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .unwrap_or_else(|e| die(&format!("randomwriter: {e}")));
        println!(
            "{}: wrote {} MiB in {:.2}s ({:.0} MB/s)",
            kind.label(),
            r.bytes >> 20,
            r.elapsed.as_secs_f64(),
            r.bytes as f64 / 1e6 / r.elapsed.as_secs_f64()
        );
        tb.shutdown();
    });
}

fn cmd_sort(args: &Args) {
    let (kind, tb) = testbed(args);
    let cfg = SortConfig {
        data_size: args.num("size-mb", 512) << 20,
        input_files: tb.nodes.len(),
        reducers: tb.nodes.len(),
        ..SortConfig::default()
    };
    let pool = PayloadPool::standard();
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let r = sortbench::generate_and_sort(&tb.engine, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .unwrap_or_else(|e| die(&format!("sort: {e}")));
        println!("system   : {}", kind.label());
        println!("teragen  : {:.2}s", r.gen_time.as_secs_f64());
        println!(
            "sort     : {:.2}s (map phase {:.2}s, {}/{} maps node-local)",
            r.sort_time.as_secs_f64(),
            r.map_phase.as_secs_f64(),
            r.local_maps,
            r.maps
        );
        tb.shutdown();
    });
}

fn cmd_swim(args: &Args) {
    let (kind, tb) = testbed(args);
    let cfg = SwimConfig {
        jobs: args.num("jobs", 12) as usize,
        ..SwimConfig::default()
    };
    let pool = PayloadPool::standard();
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let r = swim::run(&tb.engine, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .unwrap_or_else(|e| die(&format!("swim: {e}")));
        println!("system    : {}", kind.label());
        println!("jobs      : {}", r.jobs.len());
        println!("makespan  : {:.2}s", r.makespan.as_secs_f64());
        println!("mean job  : {:.2}s", r.mean_job_time.as_secs_f64());
        println!("p95 job   : {:.2}s", r.p95_job_time.as_secs_f64());
        tb.shutdown();
    });
}

fn cmd_crash(args: &Args) {
    let (kind, tb) = testbed(args);
    if tb.bb.is_none() {
        die("crash scenario applies to burst-buffer systems (bb-async / bb-sync / bb-hybrid)");
    }
    let pool = PayloadPool::standard();
    let size = args.num("size-mb", 256) << 20;
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let bb = tb.bb.as_ref().unwrap();
        let client = bb.client(tb.nodes[0]);
        let w = client.create("/cli/crash").await.unwrap();
        for piece in pool.stream(1, size, 1 << 20) {
            w.append(piece).await.unwrap();
        }
        w.close().await.unwrap();
        println!(
            "{}: wrote {} MiB; unflushed at close: {} MiB",
            kind.label(),
            size >> 20,
            bb.manager.unflushed_bytes() >> 20
        );
        for s in &bb.kv_servers {
            tb.fabric.set_up(s.node(), false);
        }
        println!("crashed all {} KV servers", bb.kv_servers.len());
        let state = client.wait_flushed("/cli/crash").await.unwrap();
        let st = bb.manager.stats();
        println!(
            "state: {state:?} ({} chunks flushed, {} lost, {} direct)",
            st.chunks_flushed, st.chunks_lost, st.chunks_direct
        );
        tb.shutdown();
    });
}

fn usage() -> ! {
    eprintln!(
        "usage: rdma-bb <command> [--system S] [--nodes N] ...\n\
         commands:\n\
         \x20 dfsio        --files N --size-mb M    TestDFSIO write+read\n\
         \x20 randomwriter --size-mb M              bulk ingest per node\n\
         \x20 sort         --size-mb M              TeraGen + Sort\n\
         \x20 swim         --jobs N                 mixed job trace\n\
         \x20 crash        --size-mb M              buffer-crash scenario (bb-* only)\n\
         \x20 systems                               list systems\n\
         systems: hdfs, lustre, bb-async, bb-sync, bb-hybrid"
    );
    exit(2)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        usage()
    };
    let args = Args::parse(&raw[1..]);
    match cmd.as_str() {
        "dfsio" => cmd_dfsio(&args),
        "randomwriter" => cmd_randomwriter(&args),
        "sort" => cmd_sort(&args),
        "swim" => cmd_swim(&args),
        "crash" => cmd_crash(&args),
        "systems" => {
            for k in SystemKind::all_five() {
                println!("{}", k.label());
            }
        }
        _ => usage(),
    }
}
