//! # rdma-bb — RDMA key-value-store burst buffer for Big-Data I/O on HPC
//!
//! Umbrella crate for the workspace reproducing *"Accelerating I/O
//! Performance of Big Data Analytics on HPC Clusters through RDMA-Based
//! Key-Value Store"* (ICPP 2015). Re-exports every layer so examples,
//! integration tests, and downstream users need a single dependency.
//!
//! ## Layers (bottom-up)
//!
//! * [`simkit`] — deterministic virtual-time simulation core;
//! * [`netsim`] — cluster fabric with RDMA-verbs / IPoIB / Ethernet
//!   transport profiles;
//! * [`rdmasim`] — verbs-shaped API (QPs, MRs, one-sided READ/WRITE);
//! * [`storesim`] — timed storage devices and object stores;
//! * [`rkv`] — RDMA-Memcached: slab/LRU store, hybrid RDMA protocol,
//!   ketama client;
//! * [`lustre`] — MDS + OSS/OST parallel filesystem;
//! * [`hdfs`] — NameNode/DataNode DFS with pipelined replication;
//! * [`bb_core`] — **the paper's contribution**: the burst buffer and its
//!   three HDFS⇄Lustre integration schemes;
//! * [`mapred`] — a mini MapReduce engine over the unified FS layer;
//! * [`workloads`] — TestDFSIO, RandomWriter, Sort, SWIM, and the
//!   testbed builder.
//!
//! ## Quickstart
//!
//! ```
//! use rdma_bb::prelude::*;
//!
//! let tb = Testbed::build(
//!     SystemKind::Bb(Scheme::AsyncLustre),
//!     TestbedConfig { compute_nodes: 4, ..TestbedConfig::default() },
//! );
//! let sim = tb.sim.clone();
//! sim.block_on(async move {
//!     let fs = tb.fs_for()(tb.nodes[0]);
//!     let w = fs.create("/demo").await.unwrap();
//!     w.append(bytes::Bytes::from_static(b"hello burst buffer")).await.unwrap();
//!     w.close().await.unwrap();
//!     let r = fs.open("/demo").await.unwrap();
//!     assert_eq!(&r.read_all().await.unwrap()[..], b"hello burst buffer");
//!     tb.shutdown();
//! });
//! ```

pub use bb_core;
pub use hdfs;
pub use lustre;
pub use mapred;
pub use netsim;
pub use rdmasim;
pub use rkv;
pub use simkit;
pub use storesim;
pub use workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use bb_core::fs::{AnyFs, AnyReader, AnyWriter, FsError};
    pub use bb_core::{BbConfig, BbDeployment, Scheme};
    pub use bytes::Bytes;
    pub use hdfs::{HdfsCluster, HdfsConfig};
    pub use lustre::{LustreCluster, LustreConfig};
    pub use mapred::{JobSpec, MrConfig, MrEngine};
    pub use netsim::{Fabric, NetConfig, NodeId, TransportProfile};
    pub use simkit::{dur, Sim, Time};
    pub use workloads::{PayloadPool, SystemKind, Testbed, TestbedConfig};
}
