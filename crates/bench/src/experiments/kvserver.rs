//! AB9: shard-per-core server scaling — single-server throughput vs
//! modeled cores (batched CQ draining, one store stripe per core), plus
//! the slab-calcification scenario the `reclaim_idle` knob exists for.

use std::rc::Rc;

use bytes::Bytes;
use netsim::{Fabric, NetConfig, NodeId};
use rdmasim::RdmaStack;
use rkv::server::KvServerConfig;
use rkv::slab::SlabConfig;
use rkv::store::KvStore;
use rkv::{KvClient, KvClientConfig, KvServer};
use simkit::Sim;

use crate::experiments::ExpReport;
use crate::table::Table;
use crate::telemetry::{attach, capture_cell, CellTelemetry};

/// One throughput cell: a single server under `config`, `clients`
/// closed-loop clients doing a set phase then a get phase of
/// `ops_per_client` 512 B operations each. Connections are warmed before
/// the clock starts so setup cost never weighs on the scaling ratio.
pub fn engine_cell(
    config: KvServerConfig,
    clients: usize,
    ops_per_client: usize,
    capture: bool,
    trace: bool,
) -> (f64, f64, Option<CellTelemetry>) {
    let sim = Sim::new();
    if trace {
        sim.tracer().enable();
    }
    let fabric = Fabric::new(sim.clone(), clients + 1, NetConfig::default());
    let stack = RdmaStack::new(fabric);
    let servers = vec![KvServer::new(Rc::clone(&stack), NodeId(0), config)];
    let s = sim.clone();
    let out = sim.block_on(async move {
        let payload = Bytes::from(vec![0x51u8; 512]);
        let kv_clients: Vec<Rc<KvClient>> = (0..clients)
            .map(|c| {
                KvClient::new(
                    Rc::clone(&stack),
                    NodeId((c + 1) as u32),
                    servers.clone(),
                    KvClientConfig::default(),
                )
            })
            .collect();
        // warm every connection off the clock
        let warms: Vec<_> = kv_clients
            .iter()
            .enumerate()
            .map(|(c, cl)| {
                let cl = Rc::clone(cl);
                let payload = payload.clone();
                s.spawn(async move {
                    let key = format!("warm{c}");
                    cl.set(key.as_bytes(), payload, 0, 0).await.unwrap();
                })
            })
            .collect();
        for w in warms {
            w.await;
        }
        let t0 = s.now();
        let mut handles = Vec::new();
        for (c, cl) in kv_clients.into_iter().enumerate() {
            let payload = payload.clone();
            let s2 = s.clone();
            handles.push(s.spawn(async move {
                for i in 0..ops_per_client {
                    let key = format!("c{c}-k{i}");
                    cl.set(key.as_bytes(), payload.clone(), 0, 0).await.unwrap();
                }
                let set_done = s2.now();
                for i in 0..ops_per_client {
                    let key = format!("c{c}-k{i}");
                    cl.get(key.as_bytes()).await.unwrap().unwrap();
                }
                (set_done, s2.now())
            }));
        }
        let mut set_end = t0;
        let mut get_end = t0;
        for h in handles {
            let (se, ge) = h.await;
            set_end = set_end.max(se);
            get_end = get_end.max(ge);
        }
        let total_ops = (clients * ops_per_client) as f64;
        let set_secs = (set_end - t0).as_secs_f64();
        let get_secs = (get_end - set_end).as_secs_f64();
        (
            total_ops / get_secs.max(1e-12) / 1e3,
            total_ops / set_secs.max(1e-12) / 1e3,
        )
    });
    let cell = capture.then(|| capture_cell(&sim));
    sim.reset();
    (out.0, out.1, cell)
}

/// The calcification scenario: fill the budget with 1 MiB-class items at
/// t = 0, then shift the workload to small items past the idle window.
/// Returns (strandable pages, pages reclaimed, small sets that stuck).
pub fn calcification(reclaim_idle_ns: u64) -> (u64, u64, u64) {
    let mut store = KvStore::new(SlabConfig {
        mem_limit: 8 << 20,
        ..SlabConfig::default()
    });
    store.set_reclaim_idle(reclaim_idle_ns);
    for i in 0..8 {
        let key = format!("big{i}");
        let _ = store.set(
            key.as_bytes(),
            Bytes::from(vec![0xbb; (1 << 20) - 100]),
            0,
            0,
            0,
        );
    }
    // every claimed page now belongs to the big class — all strandable
    let strandable: u64 = (0..store.slab().class_count())
        .map(|c| store.slab().pages_in(c as u8) as u64)
        .sum();
    // workload shift, two idle windows later
    let now = 2 * reclaim_idle_ns.max(1_000_000);
    let mut stored = 0u64;
    for i in 0..2048 {
        let key = format!("small{i}");
        if store
            .set(key.as_bytes(), Bytes::from(vec![1u8; 3 << 10]), 0, 0, now)
            .is_ok()
        {
            stored += 1;
        }
    }
    (strandable, store.stats().reclaimed_pages, stored)
}

/// AB9: single-server throughput vs modeled cores, 512 B values,
/// closed-loop clients, `cq_batch = 16` — plus the reclamation scenario.
pub fn ab9_core_scaling(quick: bool, trace: bool) -> ExpReport {
    let cores_sweep: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let clients = if quick { 16 } else { 32 };
    let ops = if quick { 120 } else { 400 };
    let mut t = Table::new(
        "AB9: shard-per-core server scaling (K ops/s) — 1 server, 512 B values, cq_batch=16",
        &["server", "get Kops/s", "set Kops/s", "get vs 1 core"],
    );
    // reference: the seed's single-context per-connection model
    let (legacy_get, legacy_set, _) =
        engine_cell(KvServerConfig::default(), clients, ops, false, false);
    t.row(vec![
        "single-context".into(),
        format!("{legacy_get:.1}"),
        format!("{legacy_set:.1}"),
        "-".into(),
    ]);
    let mut one_core_get = 0.0;
    let mut four_core_get = 0.0;
    let mut telemetry = None;
    for &cores in cores_sweep {
        let rep = cores == 4;
        let (get_kops, set_kops, cell) = engine_cell(
            KvServerConfig {
                cores,
                cq_batch: 16,
                ..KvServerConfig::default()
            },
            clients,
            ops,
            rep,
            rep && trace,
        );
        if let Some(c) = cell {
            telemetry = Some(c);
        }
        if cores == 1 {
            one_core_get = get_kops;
        }
        if cores == 4 {
            four_core_get = get_kops;
        }
        t.row(vec![
            format!("{cores} cores"),
            format!("{get_kops:.1}"),
            format!("{set_kops:.1}"),
            format!("{:.2}x", get_kops / one_core_get.max(1e-12)),
        ]);
    }
    let scaling = four_core_get / one_core_get.max(1e-12);
    let (strandable, reclaimed, small_stored) = calcification(1_000_000);
    let (_, no_reclaim_pages, no_reclaim_stored) = calcification(0);
    let reclaim_frac = reclaimed as f64 / strandable.max(1) as f64;
    t.note(format!(
        "{scaling:.2}x get scaling 1→4 cores (target ≥3.2x); calcification: \
         {reclaimed}/{strandable} stranded pages reclaimed ({:.0}%), \
         {small_stored} small sets stuck vs {no_reclaim_stored} without reclaim \
         ({no_reclaim_pages} pages moved)",
        reclaim_frac * 100.0
    ));
    let mut report = ExpReport {
        id: "AB9",
        table: t,
        shape_holds: scaling >= 3.2 && reclaim_frac >= 0.9,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}
