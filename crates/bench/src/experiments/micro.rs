//! E1/E2: key-value store microbenchmarks — the RDMA-vs-IPoIB-vs-Ethernet
//! latency figure and the client-scaling throughput figure.

use std::rc::Rc;

use bytes::Bytes;
use netsim::{Fabric, NetConfig, NodeId, TransportProfile};
use rdmasim::RdmaStack;
use rkv::server::KvServerConfig;
use rkv::{KvClient, KvClientConfig, KvServer};
use simkit::Sim;

use crate::experiments::ExpReport;
use crate::table::Table;
use crate::telemetry::{attach, capture_cell, CellTelemetry};

fn transports() -> [TransportProfile; 3] {
    [
        TransportProfile::verbs_qdr(),
        TransportProfile::ipoib_qdr(),
        TransportProfile::ten_gige(),
    ]
}

/// Measure one (transport, value size) cell: mean set and get latency.
/// The representative cell (verbs, 4 KiB) passes `capture` to keep its
/// telemetry; `trace` additionally records spans.
fn latency_cell(
    profile: TransportProfile,
    value_size: usize,
    reps: usize,
    capture: bool,
    trace: bool,
) -> (f64, f64, Option<CellTelemetry>) {
    let sim = Sim::new();
    if trace {
        sim.tracer().enable();
    }
    let fabric = Fabric::new(sim.clone(), 2, NetConfig::default());
    let stack = RdmaStack::with_profile(fabric, profile);
    let server = KvServer::new(Rc::clone(&stack), NodeId(0), KvServerConfig::default());
    let client = KvClient::new(
        Rc::clone(&stack),
        NodeId(1),
        vec![server],
        KvClientConfig::default(),
    );
    let s = sim.clone();
    let out = sim.block_on(async move {
        let payload = Bytes::from(vec![0x5au8; value_size]);
        // warm the connection and the key
        client.set(b"warm", payload.clone(), 0, 0).await.unwrap();
        let t0 = s.now();
        for i in 0..reps {
            let key = format!("k{}", i % 8);
            client
                .set(key.as_bytes(), payload.clone(), 0, 0)
                .await
                .unwrap();
        }
        let set_lat = (s.now() - t0).as_secs_f64() / reps as f64;
        let t1 = s.now();
        for i in 0..reps {
            let key = format!("k{}", i % 8);
            client.get(key.as_bytes()).await.unwrap().unwrap();
        }
        let get_lat = (s.now() - t1).as_secs_f64() / reps as f64;
        (set_lat, get_lat)
    });
    let cell = capture.then(|| capture_cell(&sim));
    sim.reset();
    (out.0, out.1, cell)
}

/// E1: set/get latency vs value size across transports.
pub fn e1_kv_latency(trace: bool) -> ExpReport {
    // the largest value stays under memcached's 1 MiB item limit
    // (key + header + value must fit the top slab class)
    let sizes = [
        64usize,
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        (1 << 20) - 128,
    ];
    let mut t = Table::new(
        "E1: KV store latency (µs) vs value size — hybrid protocol per transport",
        &[
            "size",
            "verbs set",
            "verbs get",
            "ipoib set",
            "ipoib get",
            "10gige set",
            "10gige get",
        ],
    );
    let mut verbs_small_get = 0.0;
    let mut ipoib_small_get = 0.0;
    let mut telemetry = None;
    for &size in &sizes {
        let mut cells = vec![human_size(size)];
        for (ti, profile) in transports().iter().enumerate() {
            let rep = size == 4 << 10 && ti == 0;
            let (set_s, get_s, cell) = latency_cell(*profile, size, 30, rep, rep && trace);
            if let Some(c) = cell {
                telemetry = Some(c);
            }
            if size == 4 << 10 {
                if ti == 0 {
                    verbs_small_get = get_s;
                }
                if ti == 1 {
                    ipoib_small_get = get_s;
                }
            }
            cells.push(format!("{:.1}", set_s * 1e6));
            cells.push(format!("{:.1}", get_s * 1e6));
        }
        t.row(cells);
    }
    let speedup = ipoib_small_get / verbs_small_get.max(1e-12);
    t.note(format!(
        "verbs beats IPoIB by {speedup:.1}x on 4 KiB gets (paper: RDMA-Memcached ≫ IPoIB-memcached)"
    ));
    let shape_holds = speedup > 2.0;
    let mut report = ExpReport {
        id: "E1",
        table: t,
        shape_holds,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// E2: aggregate throughput vs concurrent clients.
pub fn e2_kv_throughput(quick: bool, trace: bool) -> ExpReport {
    let client_counts: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let mut t = Table::new(
        "E2: KV store throughput (K ops/s) vs concurrent clients — 4 KiB values",
        &["clients", "get Kops/s", "set Kops/s"],
    );
    let mut first_get = 0.0;
    let mut last_get = 0.0;
    let mut telemetry = None;
    for &n in client_counts {
        let rep = n == *client_counts.last().unwrap();
        let (get_kops, set_kops, cell) =
            throughput_cell(n, 4 << 10, if quick { 150 } else { 400 }, rep, rep && trace);
        if let Some(c) = cell {
            telemetry = Some(c);
        }
        if first_get == 0.0 {
            first_get = get_kops;
        }
        last_get = get_kops;
        t.row(vec![
            n.to_string(),
            format!("{get_kops:.1}"),
            format!("{set_kops:.1}"),
        ]);
    }
    let scaling = last_get / first_get.max(1e-12);
    t.note(format!(
        "{}x get-throughput scaling from {} to {} clients",
        scaling as u64,
        client_counts[0],
        client_counts[client_counts.len() - 1]
    ));
    let mut report = ExpReport {
        id: "E2",
        table: t,
        shape_holds: scaling > client_counts.len() as f64 / 2.0,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

fn throughput_cell(
    clients: usize,
    value_size: usize,
    ops_per_client: usize,
    capture: bool,
    trace: bool,
) -> (f64, f64, Option<CellTelemetry>) {
    let sim = Sim::new();
    if trace {
        sim.tracer().enable();
    }
    let fabric = Fabric::new(sim.clone(), clients + 2, NetConfig::default());
    let stack = RdmaStack::new(fabric);
    // two servers so multi-client runs are not a single-NIC measurement
    let servers = vec![
        KvServer::new(Rc::clone(&stack), NodeId(0), KvServerConfig::default()),
        KvServer::new(Rc::clone(&stack), NodeId(1), KvServerConfig::default()),
    ];
    let s = sim.clone();
    let out = sim.block_on(async move {
        let payload = Bytes::from(vec![1u8; value_size]);
        let mut handles = Vec::new();
        let t0 = s.now();
        for c in 0..clients {
            let client = KvClient::new(
                Rc::clone(&stack),
                NodeId((c + 2) as u32),
                servers.clone(),
                KvClientConfig::default(),
            );
            let payload = payload.clone();
            let s2 = s.clone();
            handles.push(s.spawn(async move {
                for i in 0..ops_per_client {
                    let key = format!("c{c}-k{i}");
                    client
                        .set(key.as_bytes(), payload.clone(), 0, 0)
                        .await
                        .unwrap();
                }
                let set_done = s2.now();
                for i in 0..ops_per_client {
                    let key = format!("c{c}-k{i}");
                    client.get(key.as_bytes()).await.unwrap().unwrap();
                }
                (set_done, s2.now())
            }));
        }
        let mut set_end = t0;
        let mut get_end = t0;
        for h in handles {
            let (se, ge) = h.await;
            set_end = set_end.max(se);
            get_end = get_end.max(ge);
        }
        let total_ops = (clients * ops_per_client) as f64;
        let set_secs = (set_end - t0).as_secs_f64();
        let get_secs = (get_end - set_end).as_secs_f64();
        (
            total_ops / get_secs.max(1e-12) / 1e3,
            total_ops / set_secs.max(1e-12) / 1e3,
        )
    });
    let cell = capture.then(|| capture_cell(&sim));
    sim.reset();
    (out.0, out.1, cell)
}

fn human_size(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{}MiB", n >> 20)
    } else if n >= 1 << 10 {
        format!("{}KiB", n >> 10)
    } else {
        format!("{n}B")
    }
}
