//! AB12: traffic-aware burst-buffer admission under a mixed
//! burst+stream workload.
//!
//! Two long sequential streams and two spurt-writing burst files share a
//! deliberately small buffer (aggregate KV memory a fraction of the
//! stream volume) over a narrow Lustre. Always-admit (the seed policy)
//! lets the streams monopolise the buffer: unflushed bytes slam into the
//! flush watermark and the overload watermarks, so the burst writers —
//! the tenants a burst buffer exists for — stall behind stream drainage
//! and their append p99 balloons. With the windowed classifier on
//! ([`bb_core::BbConfig::bb_admit_stream_bytes`]), each stream is
//! labelled long-sequential after its first few buffered megabytes and
//! routed write-through to Lustre, while the spurt files (idle gaps
//! longer than [`bb_core::BbConfig::bb_admit_window`] reset their byte
//! count) keep the buffer to themselves.
//!
//! Claimed shape: admission-on beats always-admit on **both** burst
//! append p99 and total runtime (write + drain of every file). Both
//! cells run `r = 2` with [`bb_core::AckMode::LocalOnly`] acks, so the
//! representative (admission-on) snapshot carries the `bb.ack.*` and
//! `bb.admit.*` families CI gates on.

use std::rc::Rc;

use bb_core::{AckMode, FileState, Scheme};
use simkit::dur;
use workloads::{PayloadPool, SystemKind, Testbed, TestbedConfig};

use crate::experiments::ExpReport;
use crate::table::Table;
use crate::telemetry::{attach, capture_cell, CellTelemetry};

/// Everything one admission cell reports.
pub struct AdmissionCell {
    /// Virtual end time (ns): every file written, closed, and flushed.
    pub end_ns: u64,
    /// Burst append latency percentiles (p50, p99), nanoseconds.
    pub burst_p50: u64,
    pub burst_p99: u64,
    /// `bb.admit.stream_detected` (0 with the classifier off).
    pub stream_detected: u64,
    /// `bb.admit.writethrough_chunks` (0 with the classifier off).
    pub writethrough_chunks: u64,
    /// `bb.admit.window_resets` (0 with the classifier off).
    pub window_resets: u64,
    /// `bb.ack.quorum_acks` — relaxed-mode acks issued at quorum.
    pub quorum_acks: u64,
    /// `bb.mgr.watermark_stalls` — writer stalls at the flush watermark.
    pub watermark_stalls: u64,
    /// Files that ended [`FileState::Flushed`] (must be all 4).
    pub flushed_files: usize,
    /// Metrics snapshot JSON (determinism probes).
    pub metrics_json: String,
    /// The cell's full telemetry, when requested.
    pub telemetry: Option<CellTelemetry>,
}

fn pctl(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64) * q / 100.0).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

/// Run one admission cell. `admit` arms the classifier; everything else
/// is held identical so the two cells differ only in policy.
pub fn run_admission_cell(quick: bool, admit: bool, capture: bool) -> AdmissionCell {
    let chunk: u64 = 512 << 10;
    let stream_bytes: u64 = if quick { 24 << 20 } else { 48 << 20 };
    let spurts: u64 = 4;
    let spurt_bytes: u64 = 4 << 20;
    // spurt cadence: gaps long enough that the classifier window resets
    // between spurts (a burst file totals 16 MiB — over the stream
    // threshold — but never accumulates 8 MiB inside one window)
    let spurt_every = dur::ms(700);
    let first_spurt = dur::ms(400);

    let mut cfg = TestbedConfig {
        compute_nodes: 4,
        ..TestbedConfig::default()
    };
    // small buffer: aggregate KV memory is a fraction of the stream
    // volume, so always-admit saturates it mid-run. The watermarks are
    // pulled down with it (physical footprint stays clear of per-server
    // OOM at r=2) and the hysteresis band is wide, so the unmanaged cell
    // flaps between credit stalls and overload write-through
    cfg.bb.kv_mem_per_server = 32 << 20;
    cfg.bb.flush_watermark = 0.3;
    cfg.bb.bb_high_watermark = 0.4;
    cfg.bb.bb_low_watermark = 0.1;
    cfg.bb.kv_replication = 2;
    cfg.bb.bb_ack_mode = AckMode::LocalOnly;
    cfg.bb.bb_ack_ahead = 8;
    cfg.bb.bb_admit_stream_bytes = if admit { 6 << 20 } else { 0 };
    cfg.bb.bb_admit_window = dur::ms(250);
    // narrow Lustre: the drain is the shared bottleneck under study. Wide
    // stripes + a real positioning cost make I/O granularity matter: the
    // buffered drain pays one access per 512 KiB chunk, while classified
    // streams coalesce write-through extents up to the stripe size
    cfg.lustre.oss_count = 1;
    cfg.lustre.osts_per_oss = 1;
    cfg.lustre.stripe_count = 1;
    cfg.lustre.stripe_size = 4 << 20;
    cfg.lustre.ost_rate = 24e6;
    cfg.lustre.ost_access = dur::ms(2);
    let tb = Testbed::build(SystemKind::Bb(Scheme::AsyncLustre), cfg);
    let bb = Rc::clone(tb.bb.as_ref().expect("bb testbed"));
    let sim = tb.sim.clone();
    let pool = PayloadPool::standard();
    let nodes = tb.nodes.clone();

    let s = sim.clone();
    let driver = sim.spawn(async move {
        let mut handles = Vec::new();
        // two long sequential streams, one per compute node
        for i in 0..2u64 {
            let client = bb.client(nodes[i as usize]);
            let pieces = pool.stream(20 + i, stream_bytes, 1 << 20);
            handles.push(s.spawn(async move {
                let w = client
                    .create(&format!("/ab12/stream{i}"))
                    .await
                    .expect("create stream");
                for (n, piece) in pieces.into_iter().enumerate() {
                    if std::env::var_os("AB12_DEBUG").is_some() {
                        eprintln!("[ab12] stream{i} append {n}");
                    }
                    w.append(piece).await.expect("append stream");
                }
                w.close().await.expect("close stream");
                Vec::new()
            }));
        }
        // two burst files written in spurts, staggered across the run so
        // they land inside the always-admit saturation window
        for b in 0..2u64 {
            let client = bb.client(nodes[2 + b as usize]);
            let s2 = s.clone();
            let spurt_pieces: Vec<Vec<bytes::Bytes>> = (0..spurts)
                .map(|sp| pool.stream(40 + b * 8 + sp, spurt_bytes, chunk as usize))
                .collect();
            handles.push(s.spawn(async move {
                let mut lats = Vec::new();
                let w = client
                    .create(&format!("/ab12/burst{b}"))
                    .await
                    .expect("create burst");
                for (sp, pieces) in spurt_pieces.into_iter().enumerate() {
                    if std::env::var_os("AB12_DEBUG").is_some() {
                        eprintln!("[ab12] burst{b} spurt {sp} at {:?}", s2.now());
                    }
                    let at = first_spurt + spurt_every * sp as u32 + dur::ms(350) * b as u32;
                    let now = s2.now() - simkit::Time::ZERO;
                    if at > now {
                        s2.sleep(at - now).await;
                    }
                    for piece in pieces {
                        let t0 = s2.now();
                        w.append(piece).await.expect("append burst");
                        lats.push((s2.now() - t0).as_nanos() as u64);
                    }
                }
                w.close().await.expect("close burst");
                lats
            }));
        }
        let mut lats = Vec::new();
        for h in handles {
            lats.extend(h.await);
        }
        // total runtime includes the drain: every file durable on Lustre
        let client = bb.client(nodes[0]);
        let mut flushed = 0;
        for path in [
            "/ab12/stream0",
            "/ab12/stream1",
            "/ab12/burst0",
            "/ab12/burst1",
        ] {
            if std::env::var_os("AB12_DEBUG").is_some() {
                eprintln!("[ab12] wait_flushed {path} at {:?}", s.now());
            }
            if matches!(client.wait_flushed(path).await, Ok(FileState::Flushed)) {
                flushed += 1;
            }
        }
        (s.now().as_nanos(), lats, flushed)
    });
    // step in 1 s slices so a wedged cell surfaces as a bounded failure
    // instead of hanging the harness behind background ticks
    let deadline = sim.now() + dur::secs(120);
    while !driver.is_finished() && sim.now() < deadline {
        let step = (sim.now() + dur::secs(1)).min(deadline);
        crate::experiments::integrity::step_to(&sim, step);
    }
    if std::env::var_os("AB12_DEBUG").is_some() && !driver.is_finished() {
        let dep = tb.bb.as_ref().expect("bb testbed");
        eprintln!(
            "[ab12] DEADLINE admit={admit}: stats={:?} unflushed={}",
            dep.manager.stats(),
            dep.manager.unflushed_bytes()
        );
    }
    let (end_ns, mut lats, flushed_files) =
        driver
            .try_take()
            .unwrap_or((sim.now().as_nanos(), Vec::new(), 0));
    lats.sort_unstable();
    // harness-side measurement (bench namespace, not `bb.*`: the product
    // must not appear to register admission metrics in the off cell)
    let h = sim.metrics().histogram("ab12.burst_append_ns");
    for &ns in &lats {
        h.record_ns(ns);
    }
    let cell = capture_cell(&tb.sim);
    let metrics_json = cell.snapshot.to_json();
    let counter = |name: &str| cell.snapshot.counter(name);
    // the gated families read 0 through the snapshot when unregistered,
    // so the off cell never touches them
    AdmissionCell {
        end_ns,
        burst_p50: pctl(&lats, 50.0),
        burst_p99: pctl(&lats, 99.0),
        stream_detected: counter("bb.admit.stream_detected"),
        writethrough_chunks: counter("bb.admit.writethrough_chunks"),
        window_resets: counter("bb.admit.window_resets"),
        quorum_acks: counter("bb.ack.quorum_acks"),
        watermark_stalls: counter("bb.mgr.watermark_stalls"),
        flushed_files,
        metrics_json,
        telemetry: capture.then_some(cell),
    }
}

/// AB12 with the timeline artifact: the experiment report plus a text
/// timeline of both cells for CI upload.
pub fn ab12_with_artifacts(quick: bool) -> (ExpReport, String) {
    let mut timeline = String::new();
    let mut line = |s: String| {
        timeline.push_str(&s);
        timeline.push('\n');
    };
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut t = Table::new(
        "AB12: traffic-aware admission — 2 streams + 2 spurt files over a 24 MiB \
         buffer (r=2, local_only acks) and a 24 MB/s Lustre",
        &[
            "cell",
            "burst p50 ms",
            "burst p99 ms",
            "runtime s",
            "streams detected",
            "writethrough chunks",
            "stalls",
        ],
    );
    let mut cells = Vec::new();
    for &admit in &[false, true] {
        let cell = run_admission_cell(quick, admit, admit);
        let label = if admit {
            "admission on"
        } else {
            "always admit"
        };
        t.row(vec![
            label.into(),
            format!("{:.1}", ms(cell.burst_p50)),
            format!("{:.1}", ms(cell.burst_p99)),
            format!("{:.2}", cell.end_ns as f64 / 1e9),
            format!("{}", cell.stream_detected),
            format!("{}", cell.writethrough_chunks),
            format!("{}", cell.watermark_stalls),
        ]);
        line(format!(
            "{label}: burst p50={} ns p99={} ns end={} ns flushed={}/4 \
             stream_detected={} writethrough={} window_resets={} quorum_acks={} stalls={}",
            cell.burst_p50,
            cell.burst_p99,
            cell.end_ns,
            cell.flushed_files,
            cell.stream_detected,
            cell.writethrough_chunks,
            cell.window_resets,
            cell.quorum_acks,
            cell.watermark_stalls,
        ));
        cells.push(cell);
    }
    let (off, on) = (&cells[0], &cells[1]);
    t.note(format!(
        "admission cuts burst p99 {:.1} -> {:.1} ms and runtime {:.2} -> {:.2} s; \
         both streams classified ({} write-through chunks), spurts kept buffered \
         ({} window resets)",
        ms(off.burst_p99),
        ms(on.burst_p99),
        off.end_ns as f64 / 1e9,
        on.end_ns as f64 / 1e9,
        on.stream_detected,
        on.window_resets,
    ));
    let shape_holds = on.burst_p99 < off.burst_p99
        && on.end_ns < off.end_ns
        && on.stream_detected >= 2
        && on.writethrough_chunks > 0
        && on.window_resets > 0
        && on.quorum_acks > 0
        && off.stream_detected == 0
        && off.flushed_files == 4
        && on.flushed_files == 4;
    let mut report = ExpReport {
        id: "AB12",
        table: t,
        shape_holds,
        metrics: None,
        trace: None,
    };
    let telemetry = cells.pop().and_then(|c| c.telemetry);
    attach(&mut report, telemetry);
    (report, timeline)
}

/// AB12 without the artifact (registry entry point).
pub fn ab12_admission(quick: bool) -> ExpReport {
    ab12_with_artifacts(quick).0
}
