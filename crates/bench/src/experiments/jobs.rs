//! E6/E7/E8/E10: the MapReduce-level experiments — RandomWriter, Sort,
//! the scheme comparison, and the I/O-intensive mixed workloads.

use rayon::prelude::*;

use bb_core::Scheme;
use workloads::randomwriter::{self, RandomWriterConfig};
use workloads::sortbench::{self, SortConfig};
use workloads::swim::{self, SwimConfig};
use workloads::testdfsio::DfsioConfig;
use workloads::{PayloadPool, SystemKind, Testbed, TestbedConfig};

use crate::experiments::ExpReport;
use crate::table::{mbps, ratio, secs, Table};
use crate::telemetry::{attach, capture_cell, CellTelemetry};

fn run_randomwriter(
    kind: SystemKind,
    bytes_per_node: u64,
    capture: bool,
    trace: bool,
) -> (f64, Option<CellTelemetry>) {
    let tb = Testbed::build(kind, TestbedConfig::default());
    if trace {
        tb.sim.tracer().enable();
    }
    let pool = PayloadPool::standard();
    let cfg = RandomWriterConfig {
        bytes_per_node,
        ..RandomWriterConfig::default()
    };
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let r = randomwriter::run(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .expect("randomwriter");
        let cell = capture.then(|| capture_cell(&tb.sim));
        tb.shutdown();
        (r.elapsed.as_secs_f64(), cell)
    })
}

/// E6: RandomWriter execution time vs data size.
pub fn e6_randomwriter(quick: bool, trace: bool) -> ExpReport {
    let sizes: &[u64] = if quick {
        &[64 << 20, 128 << 20]
    } else {
        &[64 << 20, 128 << 20, 256 << 20]
    };
    let cells: Vec<(u64, SystemKind)> = sizes
        .iter()
        .flat_map(|&sz| SystemKind::all_five().into_iter().map(move |k| (sz, k)))
        .collect();
    let largest = *sizes.last().unwrap();
    let raw: Vec<(u64, SystemKind, f64, Option<CellTelemetry>)> = cells
        .into_par_iter()
        .map(|(sz, kind)| {
            let rep = sz == largest && kind == SystemKind::Bb(Scheme::AsyncLustre);
            let (dt, cell) = run_randomwriter(kind, sz, rep, rep && trace);
            (sz, kind, dt, cell)
        })
        .collect();
    let mut telemetry = None;
    let results: Vec<(u64, SystemKind, f64)> = raw
        .into_iter()
        .map(|(sz, k, dt, cell)| {
            if let Some(c) = cell {
                telemetry = Some(c);
            }
            (sz, k, dt)
        })
        .collect();
    let mut t = Table::new(
        "E6: RandomWriter execution time (s) vs bytes per node (16 nodes)",
        &[
            "per node",
            "HDFS",
            "Lustre",
            "BB-Async",
            "BB-Sync",
            "BB-Hybrid",
        ],
    );
    let mut shape = true;
    for &sz in sizes {
        let get = |k: SystemKind| {
            results
                .iter()
                .find(|(s, kk, _)| *s == sz && *kk == k)
                .map(|(_, _, v)| *v)
                .unwrap_or(0.0)
        };
        let (h, l, a) = (
            get(SystemKind::Hdfs),
            get(SystemKind::Lustre),
            get(SystemKind::Bb(Scheme::AsyncLustre)),
        );
        shape &= a < h && a < l;
        t.row(vec![
            format!("{} MiB", sz >> 20),
            secs(h),
            secs(l),
            secs(a),
            secs(get(SystemKind::Bb(Scheme::SyncLustre))),
            secs(get(SystemKind::Bb(Scheme::HybridLocality))),
        ]);
    }
    t.note("paper: the buffered design ingests bulk writes fastest");
    let mut report = ExpReport {
        id: "E6",
        table: t,
        shape_holds: shape,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

fn run_sort(kind: SystemKind, data_size: u64) -> (f64, usize, usize) {
    let (out, _) = run_sort_telemetry(kind, data_size, false, false);
    out
}

fn run_sort_telemetry(
    kind: SystemKind,
    data_size: u64,
    capture: bool,
    trace: bool,
) -> ((f64, usize, usize), Option<CellTelemetry>) {
    let tb = Testbed::build(kind, TestbedConfig::default());
    if trace {
        tb.sim.tracer().enable();
    }
    let pool = PayloadPool::standard();
    let cfg = SortConfig {
        data_size,
        input_files: 16,
        reducers: 16,
        ..SortConfig::default()
    };
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let r = sortbench::generate_and_sort(&tb.engine, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .expect("sort");
        let cell = capture.then(|| capture_cell(&tb.sim));
        tb.shutdown();
        ((r.sort_time.as_secs_f64(), r.local_maps, r.maps), cell)
    })
}

/// E7: Sort execution time vs data size.
pub fn e7_sort(quick: bool, trace: bool) -> ExpReport {
    let sizes: &[u64] = if quick {
        &[512 << 20, 1 << 30]
    } else {
        &[512 << 20, 1 << 30, 2 << 30]
    };
    let cells: Vec<(u64, SystemKind)> = sizes
        .iter()
        .flat_map(|&sz| {
            [
                SystemKind::Hdfs,
                SystemKind::Lustre,
                SystemKind::Bb(Scheme::AsyncLustre),
                SystemKind::Bb(Scheme::HybridLocality),
            ]
            .into_iter()
            .map(move |k| (sz, k))
        })
        .collect();
    let largest = *sizes.last().unwrap();
    let raw: Vec<(u64, SystemKind, f64, Option<CellTelemetry>)> = cells
        .into_par_iter()
        .map(|(sz, kind)| {
            let rep = sz == largest && kind == SystemKind::Bb(Scheme::AsyncLustre);
            let ((dt, _, _), cell) = run_sort_telemetry(kind, sz, rep, rep && trace);
            (sz, kind, dt, cell)
        })
        .collect();
    let mut telemetry = None;
    let results: Vec<(u64, SystemKind, f64)> = raw
        .into_iter()
        .map(|(sz, k, dt, cell)| {
            if let Some(c) = cell {
                telemetry = Some(c);
            }
            (sz, k, dt)
        })
        .collect();
    let mut t = Table::new(
        "E7: Sort execution time (s) vs data size (16 nodes, 16 reducers)",
        &[
            "size",
            "HDFS",
            "Lustre",
            "BB-Async",
            "BB-Hybrid",
            "vs HDFS",
            "vs Lustre",
        ],
    );
    let mut best_vs_hdfs: f64 = 0.0;
    let mut best_vs_lustre: f64 = 0.0;
    for &sz in sizes {
        let get = |k: SystemKind| {
            results
                .iter()
                .find(|(s, kk, _)| *s == sz && *kk == k)
                .map(|(_, _, v)| *v)
                .unwrap_or(0.0)
        };
        let (h, l, a, hy) = (
            get(SystemKind::Hdfs),
            get(SystemKind::Lustre),
            get(SystemKind::Bb(Scheme::AsyncLustre)),
            get(SystemKind::Bb(Scheme::HybridLocality)),
        );
        let best = a.min(hy);
        best_vs_hdfs = best_vs_hdfs.max(1.0 - best / h);
        best_vs_lustre = best_vs_lustre.max(1.0 - best / l);
        t.row(vec![
            format!("{} MiB", sz >> 20),
            secs(h),
            secs(l),
            secs(a),
            secs(hy),
            format!("-{:.0}%", (1.0 - best / h) * 100.0),
            format!("-{:.0}%", (1.0 - best / l) * 100.0),
        ]);
    }
    t.note(format!(
        "paper: up to -28% vs Lustre, -19% vs HDFS; measured best -{:.0}% / -{:.0}%",
        best_vs_lustre * 100.0,
        best_vs_hdfs * 100.0
    ));
    let mut report = ExpReport {
        id: "E7",
        table: t,
        shape_holds: best_vs_hdfs > 0.05 && best_vs_lustre > 0.05,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// E8: the three schemes side by side on write, read, and sort.
pub fn e8_schemes(quick: bool, trace: bool) -> ExpReport {
    let total: u64 = if quick { 1 << 30 } else { 2 << 30 };
    let dfsio = DfsioConfig {
        files: 16,
        file_size: total / 16,
        ..DfsioConfig::default()
    };
    let schemes = Scheme::all();
    type SchemeCell = (
        Scheme,
        f64,
        f64,
        Option<bb_core::ReadStats>,
        Option<CellTelemetry>,
    );
    let raw: Vec<SchemeCell> = schemes
        .into_par_iter()
        .map(|s| {
            let rep = s == Scheme::AsyncLustre;
            let (w, r, stats, cell) = crate::experiments::dfsio::dfsio_cell_telemetry(
                SystemKind::Bb(s),
                TestbedConfig::default(),
                dfsio.clone(),
                rep && trace,
            );
            (s, w, r, stats, rep.then_some(cell))
        })
        .collect();
    let mut telemetry = None;
    let io: Vec<(Scheme, f64, f64, Option<bb_core::ReadStats>)> = raw
        .into_iter()
        .map(|(s, w, r, stats, cell)| {
            if let Some(c) = cell {
                telemetry = Some(c);
            }
            (s, w, r, stats)
        })
        .collect();
    let sorts: Vec<(Scheme, f64)> = schemes
        .into_par_iter()
        .map(|s| (s, run_sort(SystemKind::Bb(s), total / 2).0))
        .collect();
    let mut t = Table::new(
        "E8: scheme comparison — write/read MB/s and sort time",
        &[
            "scheme",
            "write MB/s",
            "read MB/s",
            "sort s",
            "local data",
            "fault window",
        ],
    );
    for (i, s) in schemes.iter().enumerate() {
        let (_, w, r, ref stats) = io[i];
        let (_, st) = sorts[i];
        let (local, window) = match s {
            Scheme::AsyncLustre => ("none", "until flush"),
            Scheme::SyncLustre => ("none", "none"),
            Scheme::HybridLocality => ("1 replica", "until flush"),
        };
        t.row(vec![
            s.label().into(),
            mbps(w),
            mbps(r),
            secs(st),
            local.into(),
            window.into(),
        ]);
        if let Some(stats) = stats {
            t.note(format!(
                "{}: read tiers local/buffer/lustre = {}/{}/{} (sum {}), {} multi-GETs avg batch {:.1}",
                s.label(),
                stats.tier_local,
                stats.tier_buffer,
                stats.tier_lustre,
                stats.chunks_fetched(),
                stats.multi_gets,
                stats.avg_batch(),
            ));
        }
    }
    let aw = io[0].1;
    let sw = io[1].1;
    t.note(format!(
        "async write is {} of sync write — the price of closing the fault window",
        ratio(aw / sw)
    ));
    if let Some(cell) = &telemetry {
        t.note(buffer_hit_ratio_note(&cell.snapshot));
    }
    let mut report = ExpReport {
        id: "E8",
        table: t,
        shape_holds: aw > sw,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// Satellite footer: buffer-tier hit ratio across every KV server,
/// sourced from the registry snapshot (`rkv.server{N}.gets` / `.hits`).
pub fn buffer_hit_ratio_note(snapshot: &simkit::telemetry::Snapshot) -> String {
    let gets = snapshot.sum_matching("rkv.server", ".gets");
    let hits = snapshot.sum_matching("rkv.server", ".hits");
    let evictions = snapshot.sum_matching("rkv.server", ".evictions");
    format!(
        "buffer tier (registry): {hits}/{gets} GET hits = {:.1}% hit ratio, {evictions} evictions",
        hits as f64 / (gets as f64).max(1.0) * 100.0
    )
}

/// E10: I/O-intensive workloads — WordCount, Grep, and a SWIM trace.
pub fn e10_io_intensive(quick: bool, trace: bool) -> ExpReport {
    let systems = [
        SystemKind::Hdfs,
        SystemKind::Lustre,
        SystemKind::Bb(Scheme::AsyncLustre),
    ];
    let raw: Vec<(SystemKind, f64, f64, f64, Option<CellTelemetry>)> = systems
        .into_par_iter()
        .map(|kind| {
            let rep = matches!(kind, SystemKind::Bb(_));
            let (wc, grep) = run_text_jobs(kind, if quick { 256 << 20 } else { 512 << 20 });
            let (swim, cell) = run_swim(kind, if quick { 8 } else { 16 }, rep, rep && trace);
            (kind, wc, grep, swim, cell)
        })
        .collect();
    let mut telemetry = None;
    let rows: Vec<(SystemKind, f64, f64, f64)> = raw
        .into_iter()
        .map(|(k, wc, grep, swim, cell)| {
            if let Some(c) = cell {
                telemetry = Some(c);
            }
            (k, wc, grep, swim)
        })
        .collect();
    let mut t = Table::new(
        "E10: I/O-intensive workloads — execution time (s)",
        &["system", "WordCount", "Grep", "SWIM makespan"],
    );
    for (kind, wc, grep, swim) in &rows {
        t.row(vec![
            kind.label().into(),
            secs(*wc),
            secs(*grep),
            secs(*swim),
        ]);
    }
    let bb = rows
        .iter()
        .find(|r| matches!(r.0, SystemKind::Bb(_)))
        .unwrap();
    let hdfs = rows.iter().find(|r| r.0 == SystemKind::Hdfs).unwrap();
    let shape = bb.3 < hdfs.3 && bb.1 <= hdfs.1 * 1.05;
    t.note("paper: the buffered design significantly benefits I/O-intensive workloads vs both baselines");
    let mut report = ExpReport {
        id: "E10",
        table: t,
        shape_holds: shape,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

fn run_text_jobs(kind: SystemKind, text_size: u64) -> (f64, f64) {
    use mapred::logic::{GrepLogic, WordCountLogic};
    use mapred::JobSpec;
    use std::rc::Rc;

    let tb = Testbed::build(kind, TestbedConfig::default());
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        swim::stage_text(&fs_for(tb.nodes[0]), "/e10/text", text_size)
            .await
            .expect("stage");
        let t0 = tb.sim.now();
        tb.engine
            .run(
                &fs_for,
                JobSpec {
                    name: "wordcount".into(),
                    inputs: vec!["/e10/text".into()],
                    output_dir: "/e10/wc".into(),
                    reducers: 8,
                    logic: Rc::new(WordCountLogic),
                },
            )
            .await
            .expect("wordcount");
        let wc = (tb.sim.now() - t0).as_secs_f64();
        let t1 = tb.sim.now();
        tb.engine
            .run(
                &fs_for,
                JobSpec {
                    name: "grep".into(),
                    inputs: vec!["/e10/text".into()],
                    output_dir: "/e10/grep".into(),
                    reducers: 1,
                    logic: Rc::new(GrepLogic {
                        needle: "lazy".into(),
                    }),
                },
            )
            .await
            .expect("grep");
        let grep = (tb.sim.now() - t1).as_secs_f64();
        tb.shutdown();
        (wc, grep)
    })
}

fn run_swim(
    kind: SystemKind,
    jobs: usize,
    capture: bool,
    trace: bool,
) -> (f64, Option<CellTelemetry>) {
    let tb = Testbed::build(kind, TestbedConfig::default());
    if trace {
        tb.sim.tracer().enable();
    }
    let pool = PayloadPool::standard();
    let cfg = SwimConfig {
        jobs,
        min_input: 32 << 20,
        max_input: 256 << 20,
        ..SwimConfig::default()
    };
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let r = swim::run(&tb.engine, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .expect("swim");
        let cell = capture.then(|| capture_cell(&tb.sim));
        tb.shutdown();
        (r.makespan.as_secs_f64(), cell)
    })
}
