//! AB11: open-loop million-client traffic — hot-key replica fan-out and
//! per-tenant isolation.
//!
//! Two questions, one workload engine ([`workloads::traffic`]):
//!
//! 1. **Skew sweep** — a single tenant's aggregate Poisson stream at a
//!    fixed offered load, Zipf key popularity swept over
//!    s ∈ {0.0, 0.9, 0.99, 1.2}. Without fan-out, everything past
//!    s ≈ 0.99 drives the hot key's home core past saturation and the
//!    get p99 blows up; with hot-key replica fan-out
//!    (`hot_replicas = cores - 1`) the hot reads spread across all
//!    cores and the tail stays flat.
//! 2. **Tenant isolation** — a steady tenant (B) sharing the server with
//!    a bursting MMPP tenant (A). Without admission control A's bursts
//!    saturate the cores and B's p99 balloons; with per-tenant
//!    token-bucket admission A is clipped at its budget and B's p99
//!    stays within a whisker of its B-alone baseline.
//!
//! The open-loop driver dispatches pre-generated arrival events onto a
//! pool of simulated connections per tenant: the logical-client count
//! (10^5–10^6) only appears as the aggregate rate, which is exactly what
//! an open-loop tail experiment needs. Everything is a pure function of
//! the spec and the seed.

use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;
use netsim::{Fabric, NetConfig, NodeId};
use rdmasim::RdmaStack;
use rkv::client::ClientError;
use rkv::server::KvServerConfig;
use rkv::{KvClient, KvClientConfig, KvServer};
use simkit::{dur, Sim, SimRng};
use workloads::traffic::{
    ArrivalProcess, OpClass, OpEvent, TenantSpec, TrafficEngine, TrafficSpec,
};

use crate::experiments::ExpReport;
use crate::table::Table;
use crate::telemetry::{attach, capture_cell, CellTelemetry};

/// Per-tenant outcome counts of one open-loop cell.
#[derive(Debug, Default, Clone, Copy)]
pub struct TenantOutcome {
    /// Ops the driver issued.
    pub issued: u64,
    /// Ops rejected by tenant admission control.
    pub throttled: u64,
    /// Ops that failed for any other reason.
    pub errors: u64,
}

/// Everything one open-loop cell reports.
pub struct CellResult {
    /// Overall get latency percentiles (p50, p99, p999), nanoseconds.
    pub get: (u64, u64, u64),
    /// Per-tenant get p99 (`rkv.lat.get.tenant{T}.e2e`), nanoseconds.
    pub tenant_get_p99: BTreeMap<u32, u64>,
    /// Per-tenant issue/throttle/error counts.
    pub outcomes: BTreeMap<u32, TenantOutcome>,
    /// `rkv.hot.server0.replica_hits` (0 when fan-out is off).
    pub replica_hits: u64,
    /// `rkv.hot.server0.detected` (0 when fan-out is off).
    pub hot_detected: u64,
    /// The cell's snapshot, when requested.
    pub telemetry: Option<CellTelemetry>,
}

/// Run one open-loop cell: generate the merged arrival stream for
/// `spec`, then replay it against a single server under `server_config`
/// from a pool of `pool` connections per tenant (events assigned
/// round-robin, each worker sleeping until its event's virtual arrival
/// time). The keyspace of every tenant is prepopulated off the clock by
/// an untenanted client, so gets never miss and admission never gates
/// the fill.
pub fn open_loop_cell(
    server_config: KvServerConfig,
    spec: &TrafficSpec,
    pool: usize,
    seed: u64,
    capture: bool,
) -> CellResult {
    let events = TrafficEngine::new(spec, &SimRng::seed_from(seed)).collect_all();
    // per-tenant event lists, round-robin over that tenant's pool
    let tenants: Vec<TenantSpec> = spec.tenants.clone();
    let mut per_worker: BTreeMap<(u32, usize), Vec<OpEvent>> = BTreeMap::new();
    let mut rr: BTreeMap<u32, usize> = BTreeMap::new();
    for ev in events {
        let w = rr.entry(ev.tenant).or_insert(0);
        per_worker.entry((ev.tenant, *w)).or_default().push(ev);
        *w = (*w + 1) % pool;
    }
    let hot_on = server_config.hot_replicas > 0 && server_config.engine_enabled();
    let nodes = tenants.len() * pool + 2;
    let sim = Sim::new();
    sim.optrace().enable();
    let fabric = Fabric::new(sim.clone(), nodes, NetConfig::default());
    let stack = RdmaStack::new(fabric);
    let servers = vec![KvServer::new(Rc::clone(&stack), NodeId(0), server_config)];
    let s = sim.clone();
    let outcomes = sim.block_on(async move {
        // prepopulate every tenant's keyspace, untenanted (tenant 0 is
        // exempt from admission and owns no floor-protected bytes)
        let fill = KvClient::new(
            Rc::clone(&stack),
            NodeId((nodes - 1) as u32),
            servers.clone(),
            KvClientConfig::default(),
        );
        for t in &tenants {
            let payload = Bytes::from(vec![0x5a; t.value_size.max(1)]);
            for rank in 0..t.keys {
                let key = format!("t{}-k{rank}", t.tenant);
                fill.set(key.as_bytes(), payload.clone(), 0, 0)
                    .await
                    .expect("prepopulate set");
            }
        }
        // the fill consumed virtual time; arrivals are relative to the
        // instant the measured run starts, so re-base them on the
        // post-fill clock (otherwise every event would be "in the past"
        // and the open-loop schedule would collapse into a closed loop)
        let t_start = s.now().as_nanos();
        let mut handles = Vec::new();
        for (ti, t) in tenants.iter().enumerate() {
            let payload = Bytes::from(vec![0x5a; t.value_size.max(1)]);
            for w in 0..pool {
                let Some(evs) = per_worker.remove(&(t.tenant, w)) else {
                    continue;
                };
                let cl = KvClient::new(
                    Rc::clone(&stack),
                    NodeId((1 + ti * pool + w) as u32),
                    servers.clone(),
                    KvClientConfig {
                        tenant: t.tenant,
                        ..KvClientConfig::default()
                    },
                );
                let payload = payload.clone();
                let s2 = s.clone();
                let tenant = t.tenant;
                handles.push(s.spawn(async move {
                    let mut out = TenantOutcome::default();
                    for ev in evs {
                        let at = t_start + ev.at_ns;
                        let now = s2.now().as_nanos();
                        if at > now {
                            s2.sleep(dur::ns(at - now)).await;
                        }
                        out.issued += 1;
                        let key = ev.key();
                        let r = match ev.class {
                            OpClass::Get => cl.get(key.as_bytes()).await.map(|_| ()),
                            OpClass::Set => cl
                                .set(key.as_bytes(), payload.clone(), 0, 0)
                                .await
                                .map(|_| ()),
                        };
                        match r {
                            Ok(()) => {}
                            Err(ClientError::Throttled) => out.throttled += 1,
                            Err(_) => out.errors += 1,
                        }
                    }
                    (tenant, out)
                }));
            }
        }
        let mut outcomes: BTreeMap<u32, TenantOutcome> = BTreeMap::new();
        for h in handles {
            let (tenant, o) = h.await;
            let agg = outcomes.entry(tenant).or_default();
            agg.issued += o.issued;
            agg.throttled += o.throttled;
            agg.errors += o.errors;
        }
        outcomes
    });
    let tracer = sim.optrace();
    let p = |name: &str, q: f64| tracer.series_percentile(name, q);
    let get = (
        p("rkv.lat.get.e2e", 50.0),
        p("rkv.lat.get.e2e", 99.0),
        p("rkv.lat.get.e2e", 99.9),
    );
    let tenant_get_p99 = spec
        .tenants
        .iter()
        .filter(|t| t.tenant != 0)
        .map(|t| {
            (
                t.tenant,
                p(&format!("rkv.lat.get.tenant{}.e2e", t.tenant), 99.0),
            )
        })
        .collect();
    // only read (get-or-create) the gated families when they exist, so a
    // defaults-off cell's registry stays untouched
    let (replica_hits, hot_detected) = if hot_on {
        let m = sim.metrics();
        (
            m.counter("rkv.hot.server0.replica_hits").get(),
            m.counter("rkv.hot.server0.detected").get(),
        )
    } else {
        (0, 0)
    };
    let telemetry = capture.then(|| {
        tracer.publish(sim.metrics());
        capture_cell(&sim)
    });
    sim.reset();
    CellResult {
        get,
        tenant_get_p99,
        outcomes,
        replica_hits,
        hot_detected,
        telemetry,
    }
}

/// The engine server config both AB11 parts use: `proc_time` is raised
/// to 20 µs so core saturation (the regime under study) happens at event
/// counts a CI run can afford — the *shape* is what the experiment
/// claims, and it is invariant to the absolute service time.
fn ab11_server(cores: usize, hot_replicas: usize) -> KvServerConfig {
    KvServerConfig {
        cores,
        cq_batch: 16,
        proc_time: dur::us(20),
        hot_replicas,
        hot_window: 4096,
        hot_min_count: 32,
        ..KvServerConfig::default()
    }
}

/// One single-tenant Poisson spec for the skew sweep.
fn skew_spec(rate: f64, skew: f64, horizon_ns: u64) -> TrafficSpec {
    TrafficSpec {
        tenants: vec![TenantSpec {
            tenant: 1,
            arrivals: ArrivalProcess::Poisson { rate },
            logical_clients: 500_000,
            keys: 2048,
            skew,
            get_ratio: 0.99,
            value_size: 128,
        }],
        horizon_ns,
    }
}

/// The steady tenant (B) of the isolation cells.
fn steady_tenant(horizon_ns: u64) -> TrafficSpec {
    TrafficSpec {
        tenants: vec![TenantSpec {
            tenant: 2,
            arrivals: ArrivalProcess::Poisson { rate: 6_000.0 },
            logical_clients: 100_000,
            keys: 256,
            skew: 0.0,
            get_ratio: 0.9,
            value_size: 128,
        }],
        horizon_ns,
    }
}

/// B plus the bursting MMPP tenant (A).
fn burst_mix(horizon_ns: u64) -> TrafficSpec {
    let mut spec = steady_tenant(horizon_ns);
    spec.tenants.push(TenantSpec {
        tenant: 1,
        arrivals: ArrivalProcess::Mmpp {
            burst_rate: 300_000.0,
            idle_rate: 2_000.0,
            mean_burst_s: 0.010,
            mean_idle_s: 0.030,
        },
        logical_clients: 900_000,
        keys: 256,
        skew: 0.0,
        get_ratio: 0.9,
        value_size: 128,
    });
    spec
}

/// AB11 with the timeline artifact: the experiment report plus a text
/// timeline of every cell (skew sweep and isolation phases) for CI
/// upload.
pub fn ab11_with_artifacts(quick: bool) -> (ExpReport, String) {
    let mut timeline = String::new();
    let mut line = |s: String| {
        timeline.push_str(&s);
        timeline.push('\n');
    };
    let cores = 4;
    let rate = 165_000.0;
    let horizon: u64 = if quick { 50_000_000 } else { 250_000_000 };
    let pool = if quick { 64 } else { 128 };
    let us = |ns: u64| ns as f64 / 1e3;
    let mut t = Table::new(
        "AB11: open-loop traffic — 1 engine server (4 cores, cq_batch=16, 20 us proc), \
         165 Kops/s offered, 99% gets, 2048 keys",
        &[
            "cell",
            "get p50 us",
            "get p99 us",
            "get p999 us",
            "replica hits",
            "hot keys",
        ],
    );
    // part 1: skew sweep, fan-out off vs on
    let mut p99 = BTreeMap::new();
    for &fanout in &[false, true] {
        for &skew in &[0.0f64, 0.9, 0.99, 1.2] {
            let cell = open_loop_cell(
                ab11_server(cores, if fanout { cores - 1 } else { 0 }),
                &skew_spec(rate, skew, horizon),
                pool,
                11,
                false,
            );
            let label = format!("s={skew:.2} fan-out {}", if fanout { "on" } else { "off" });
            t.row(vec![
                label.clone(),
                format!("{:.1}", us(cell.get.0)),
                format!("{:.1}", us(cell.get.1)),
                format!("{:.1}", us(cell.get.2)),
                format!("{}", cell.replica_hits),
                format!("{}", cell.hot_detected),
            ]);
            line(format!(
                "skew {label}: p50={} ns p99={} ns p999={} ns replica_hits={} detected={}",
                cell.get.0, cell.get.1, cell.get.2, cell.replica_hits, cell.hot_detected
            ));
            p99.insert((fanout, skew.to_bits()), cell.get.1);
        }
    }
    let hot_bits = 0.99f64.to_bits();
    let cut = p99[&(false, hot_bits)] as f64 / (p99[&(true, hot_bits)] as f64).max(1.0);
    // part 2: tenant isolation. The representative (captured) cell is the
    // budgets-on mix with fan-out armed, so the snapshot carries both the
    // rkv.hot.* and rkv.tenant.* families CI gates on.
    let iso_horizon: u64 = if quick { 60_000_000 } else { 300_000_000 };
    let budgets = |on: bool| KvServerConfig {
        tenant_rate: if on { 8_000.0 } else { 0.0 },
        tenant_burst: 12.0,
        tenant_floor_frac: if on { 0.2 } else { 0.0 },
        ..ab11_server(cores, cores - 1)
    };
    let alone = open_loop_cell(budgets(true), &steady_tenant(iso_horizon), pool, 13, false);
    let unmanaged = open_loop_cell(budgets(false), &burst_mix(iso_horizon), pool, 13, false);
    let managed = open_loop_cell(budgets(true), &burst_mix(iso_horizon), pool, 13, true);
    let b_alone = alone.tenant_get_p99[&2];
    let b_unmanaged = unmanaged.tenant_get_p99[&2];
    let b_managed = managed.tenant_get_p99[&2];
    for (label, cell) in [
        ("B alone (baseline)", &alone),
        ("A+B, no budgets", &unmanaged),
        ("A+B, budgets on", &managed),
    ] {
        let b99 = cell.tenant_get_p99[&2];
        t.row(vec![
            label.into(),
            "-".into(),
            format!("B: {:.1}", us(b99)),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        for (tenant, o) in &cell.outcomes {
            line(format!(
                "iso {label}: tenant {tenant} issued={} throttled={} errors={}",
                o.issued, o.throttled, o.errors
            ));
        }
        line(format!("iso {label}: B get p99 = {b99} ns"));
    }
    let degrade_managed = b_managed as f64 / b_alone.max(1) as f64;
    let degrade_unmanaged = b_unmanaged as f64 / b_alone.max(1) as f64;
    let a_throttled = managed.outcomes[&1].throttled;
    t.note(format!(
        "fan-out cuts the s=0.99 get p99 {:.1} -> {:.1} us ({cut:.1}x, target >=2x); \
         B's p99 under A's bursts: {:.2}x baseline unmanaged vs {:.2}x with budgets \
         (target <=1.2x); admission clipped {a_throttled} of A's ops",
        us(p99[&(false, hot_bits)]),
        us(p99[&(true, hot_bits)]),
        degrade_unmanaged,
        degrade_managed,
    ));
    let shape_holds = cut >= 2.0
        && degrade_managed <= 1.2
        && degrade_unmanaged > degrade_managed
        && a_throttled > 0
        && managed.outcomes[&2].throttled == 0;
    let mut report = ExpReport {
        id: "AB11",
        table: t,
        shape_holds,
        metrics: None,
        trace: None,
    };
    attach(&mut report, managed.telemetry);
    (report, timeline)
}

/// AB11 without the artifact (registry entry point).
pub fn ab11_traffic(quick: bool) -> ExpReport {
    ab11_with_artifacts(quick).0
}
