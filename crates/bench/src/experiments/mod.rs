//! Experiment implementations (DESIGN.md §4). Every function is
//! deterministic: same binary, same table.
//!
//! `quick = true` shrinks sweeps for CI-speed runs; `quick = false` runs
//! the full published sweep (minutes of host time).

pub mod ablations;
pub mod admission;
pub mod dfsio;
pub mod faults;
pub mod integrity;
pub mod jobs;
pub mod kvserver;
pub mod micro;
pub mod placement;
pub mod rebalance;
pub mod tracing;
pub mod traffic;

use crate::table::Table;

/// An experiment's rendered output plus its paper-shape verdict and the
/// telemetry of its representative cell.
pub struct ExpReport {
    /// Experiment id (`E1`..`E12`, `AB1`..`AB13`).
    pub id: &'static str,
    /// The result table.
    pub table: Table,
    /// Whether the paper-reported shape held in this run.
    pub shape_holds: bool,
    /// Metrics snapshot of the representative cell (`None` only for
    /// experiments with no simulation, e.g. AB4's pure hashing study).
    pub metrics: Option<simkit::telemetry::Snapshot>,
    /// Chrome trace-event JSON of the representative cell, when it ran
    /// with tracing requested.
    pub trace: Option<String>,
}

/// Run every experiment in order (untraced; each report still carries
/// its representative cell's metrics snapshot).
pub fn run_all(quick: bool) -> Vec<ExpReport> {
    let mut out = Vec::new();
    println!(">>> E1: KV latency microbenchmark");
    out.push(micro::e1_kv_latency(false));
    println!(">>> E2: KV throughput scaling");
    out.push(micro::e2_kv_throughput(quick, false));
    println!(">>> E3: TestDFSIO write");
    out.push(dfsio::e3_write(quick, false));
    println!(">>> E4: TestDFSIO read");
    out.push(dfsio::e4_read(quick, false));
    println!(">>> E5: cluster-size scaling");
    out.push(dfsio::e5_cluster_scaling(quick, false));
    println!(">>> E6: RandomWriter");
    out.push(jobs::e6_randomwriter(quick, false));
    println!(">>> E7: Sort");
    out.push(jobs::e7_sort(quick, false));
    println!(">>> E8: scheme comparison");
    out.push(jobs::e8_schemes(quick, false));
    println!(">>> E9: local storage requirement");
    out.push(faults::e9_local_storage(false));
    println!(">>> E10: I/O-intensive workloads");
    out.push(jobs::e10_io_intensive(quick, false));
    println!(">>> E11: buffer-layer scaling");
    out.push(dfsio::e11_kv_scaling(quick, false));
    println!(">>> E12: fault tolerance");
    out.push(faults::e12_fault_tolerance(quick, false));
    println!(">>> AB1: transport ablation");
    out.push(ablations::ab1_transport(quick, false));
    println!(">>> AB2: chunk-size ablation");
    out.push(ablations::ab2_chunk_size(quick, false));
    println!(">>> AB3: flusher-parallelism ablation");
    out.push(ablations::ab3_flushers(quick, false));
    println!(">>> AB4: placement ablation");
    out.push(ablations::ab4_placement());
    println!(">>> AB5: read-window ablation");
    out.push(ablations::ab5_read_window(quick, false));
    println!(">>> AB6: readahead-overlap trace");
    out.push(ablations::ab6_readahead_trace(quick));
    println!(">>> AB7: integrity scrub-repair");
    out.push(integrity::ab7_integrity(quick, false));
    println!(">>> AB8: elastic membership scale-out/in");
    out.push(rebalance::ab8_elastic(quick, false));
    println!(">>> AB9: shard-per-core server scaling");
    out.push(kvserver::ab9_core_scaling(quick, false));
    println!(">>> AB10: tail-latency decomposition");
    out.push(tracing::ab10_latency_decomposition(quick));
    println!(">>> AB11: open-loop traffic (hot-key fan-out, tenant isolation)");
    out.push(traffic::ab11_traffic(quick));
    println!(">>> AB12: traffic-aware burst-buffer admission");
    out.push(admission::ab12_admission(quick));
    println!(">>> AB13: topology-aware placement with live migration");
    out.push(placement::ab13_placement(quick, false));
    out
}
