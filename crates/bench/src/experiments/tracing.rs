//! AB10: tail-latency decomposition — where does the p99 live? One
//! engine server under closed-loop load, with the per-operation request
//! tracer on, at 1 core vs 4 cores. The decomposition shows the
//! single-core tail is queueing (completion-ring wait + shard-queue
//! wait), not service time — which is exactly why the shard-per-core
//! engine moves the p99, and the paper's RDMA stack moves the p50.

use std::rc::Rc;

use bytes::Bytes;
use netsim::{Fabric, NetConfig, NodeId};
use rdmasim::RdmaStack;
use rkv::server::KvServerConfig;
use rkv::{KvClient, KvClientConfig, KvServer};
use simkit::Sim;

use crate::experiments::ExpReport;
use crate::table::Table;
use crate::telemetry::{attach, capture_cell, CellTelemetry};

/// The traced get-phase percentiles of one cell, in nanoseconds, plus
/// the telescoping-identity audit of its finished ops.
pub struct TracedCell {
    /// End-to-end get latency percentiles (p50, p99, p999).
    pub e2e: (u64, u64, u64),
    /// p99 of the queueing stages: completion-ring wait + shard queue.
    pub queue_p99: u64,
    /// p99 of the shard service stage.
    pub service_p99: u64,
    /// Get-class reconciliation: (ops, stage-sum ns, e2e-sum ns).
    pub recon_get: (u64, u64, u64),
    /// Whether every traced class reconciled stage sums == e2e exactly.
    pub exact: bool,
    /// The cell's metrics snapshot (traced series published into it).
    pub telemetry: Option<CellTelemetry>,
}

/// One traced engine cell: a single server with `cores` shards and
/// `cq_batch = 16`, `clients` closed-loop clients doing a set phase then
/// a get phase of `ops_per_client` 512 B operations, with the op tracer
/// recording every attempt's stage stamps in virtual time.
pub fn traced_cell(
    cores: usize,
    clients: usize,
    ops_per_client: usize,
    capture: bool,
) -> TracedCell {
    let sim = Sim::new();
    sim.optrace().enable();
    let fabric = Fabric::new(sim.clone(), clients + 1, NetConfig::default());
    let stack = RdmaStack::new(fabric);
    let servers = vec![KvServer::new(
        Rc::clone(&stack),
        NodeId(0),
        KvServerConfig {
            cores,
            cq_batch: 16,
            ..KvServerConfig::default()
        },
    )];
    let s = sim.clone();
    sim.block_on(async move {
        let payload = Bytes::from(vec![0x51u8; 512]);
        let kv_clients: Vec<Rc<KvClient>> = (0..clients)
            .map(|c| {
                KvClient::new(
                    Rc::clone(&stack),
                    NodeId((c + 1) as u32),
                    servers.clone(),
                    KvClientConfig::default(),
                )
            })
            .collect();
        let mut handles = Vec::new();
        for (c, cl) in kv_clients.into_iter().enumerate() {
            let payload = payload.clone();
            handles.push(s.spawn(async move {
                for i in 0..ops_per_client {
                    let key = format!("c{c}-k{i}");
                    cl.set(key.as_bytes(), payload.clone(), 0, 0).await.unwrap();
                }
                for i in 0..ops_per_client {
                    let key = format!("c{c}-k{i}");
                    cl.get(key.as_bytes()).await.unwrap().unwrap();
                }
            }));
        }
        for h in handles {
            h.await;
        }
    });
    let tracer = sim.optrace();
    let p = |name: &str, q: f64| tracer.series_percentile(name, q);
    let e2e = (
        p("rkv.lat.get.e2e", 50.0),
        p("rkv.lat.get.e2e", 99.0),
        p("rkv.lat.get.e2e", 99.9),
    );
    let queue_p99 = p("rkv.lat.get.cq_wait", 99.0) + p("rkv.lat.get.shard_queue", 99.0);
    let service_p99 = p("rkv.lat.get.service", 99.0);
    let mut exact = true;
    let mut recon_get = (0, 0, 0);
    for class in ["get", "set"] {
        let r = tracer
            .reconcile("rkv", class)
            .expect("traced cell finished ops of both classes");
        exact &= r.exact();
        if class == "get" {
            recon_get = (r.ops, r.stage_sum_ns, r.e2e_sum_ns);
        }
    }
    let telemetry = capture.then(|| {
        // mirror the traced series into the registry so the snapshot
        // (and any `metrics_check --slo` gate on it) carries `rkv.lat.*`
        tracer.publish(sim.metrics());
        capture_cell(&sim)
    });
    sim.reset();
    TracedCell {
        e2e,
        queue_p99,
        service_p99,
        recon_get,
        exact,
        telemetry,
    }
}

/// AB10: latency decomposition at 1 vs 4 cores. Shape: at 1 core the
/// queueing stages dominate the service stage at the p99, and 4 cores
/// pull the end-to-end p99 below the 1-core p99 — the tail is queueing,
/// not service time. Every cell must also pass the telescoping audit
/// (per-op stage sums equal end-to-end latency to the nanosecond).
pub fn ab10_latency_decomposition(quick: bool) -> ExpReport {
    let clients = if quick { 16 } else { 32 };
    let ops = if quick { 120 } else { 400 };
    let mut t = Table::new(
        "AB10: tail-latency decomposition — 1 server, 512 B gets, cq_batch=16, op tracer on",
        &[
            "server",
            "get p50 us",
            "get p99 us",
            "get p999 us",
            "queue p99 us",
            "service p99 us",
            "tail driver",
        ],
    );
    let mut cells = Vec::new();
    for &cores in &[1usize, 4] {
        let cell = traced_cell(cores, clients, ops, cores == 4);
        let us = |ns: u64| ns as f64 / 1e3;
        t.row(vec![
            format!("{cores} core{}", if cores == 1 { "" } else { "s" }),
            format!("{:.1}", us(cell.e2e.0)),
            format!("{:.1}", us(cell.e2e.1)),
            format!("{:.1}", us(cell.e2e.2)),
            format!("{:.1}", us(cell.queue_p99)),
            format!("{:.1}", us(cell.service_p99)),
            if cell.queue_p99 > cell.service_p99 {
                "queueing".into()
            } else {
                "service".into()
            },
        ]);
        cells.push(cell);
    }
    let one = &cells[0];
    let four = &cells[1];
    let exact = one.exact && four.exact;
    t.note(format!(
        "1-core tail is queueing ({:.1} us queue p99 vs {:.1} us service p99); 4 cores cut \
         the get p99 {:.1} -> {:.1} us; telescoping audit: {} gets, stage sums {} ns == e2e \
         {} ns ({})",
        one.queue_p99 as f64 / 1e3,
        one.service_p99 as f64 / 1e3,
        one.e2e.1 as f64 / 1e3,
        four.e2e.1 as f64 / 1e3,
        one.recon_get.0,
        one.recon_get.1,
        one.recon_get.2,
        if exact { "exact" } else { "MISMATCH" },
    ));
    let shape_holds = one.queue_p99 > one.service_p99 && four.e2e.1 < one.e2e.1 && exact;
    let mut report = ExpReport {
        id: "AB10",
        table: t,
        shape_holds,
        metrics: None,
        trace: None,
    };
    attach(&mut report, cells.pop().unwrap().telemetry);
    report
}
