//! AB13: topology-aware placement — telemetry-driven live migration on a
//! geo-stretched cluster.
//!
//! A two-geo fabric (rack 5 µs / zone 20 µs / geo 2 ms boundary
//! latencies) hosts the whole seed deployment — writer, Lustre, the
//! initial KV server, the manager — in geo 0, plus one admitted standby
//! server and a hot reader in geo 1. With the `locality` placement
//! policy, a file written in geo 0 lands next to its writer; the geo-1
//! reader then hammers it while the background placement optimizer
//! watches the per-chunk reader telemetry and migrates the chunks across
//! the geo boundary under the migration-bandwidth budget. The cell
//! measures the remote reader's p99 read latency per round and checks it
//! converges to within 1.3x of the local-replica floor (a second file
//! written from geo 1, so its replicas start reader-local) — with zero
//! acknowledged-data loss and zero checksum failures.
//!
//! [`run_placement_scenario`] is the reusable cell runner; the placement
//! property suite (`crates/bench/tests/placement.rs`) sweeps the same
//! machinery across random topologies and access patterns.

use std::rc::Rc;

use bb_core::manager::chunk_key;
use bb_core::{FileState, PlacementPolicy, Scheme};
use netsim::NetConfig;
use simkit::{dur, Time};
use workloads::{PayloadPool, SystemKind, Testbed, TestbedConfig};

use crate::consistency::{Checker, History};
use crate::experiments::integrity::step_to;
use crate::experiments::ExpReport;
use crate::table::Table;
use crate::telemetry::{attach, capture_cell, CellTelemetry};

/// One placement cell: the geo-stretched rig and its read schedule.
#[derive(Debug, Clone, Copy)]
pub struct PlacementCase {
    /// Stamped into the timeline artifact.
    pub seed: u64,
    /// Bytes per file (hot file and floor file alike).
    pub file_bytes: u64,
    /// Remote read rounds before the settle check.
    pub rounds: usize,
    /// Whole-file reads per round.
    pub reads_per_round: usize,
}

impl PlacementCase {
    /// The AB13 cell.
    pub fn ab13(quick: bool) -> PlacementCase {
        PlacementCase {
            seed: 0xAB13,
            file_bytes: if quick { 2 << 20 } else { 8 << 20 },
            rounds: if quick { 4 } else { 6 },
            reads_per_round: 4,
        }
    }
}

/// What one placement cell observed.
#[derive(Debug, Clone)]
pub struct PlacementOutcome {
    /// Writes, reads, settle, and final verification all finished in time.
    pub converged: bool,
    /// p99 of local-replica reads (geo-1 reader, geo-1 replicas) — the
    /// floor remote reads should converge toward.
    pub floor_p99_ns: u64,
    /// Remote-read p99 per round, migration running in the background.
    pub round_p99_ns: Vec<u64>,
    /// Remote-read p99 after the optimizer settled.
    pub final_p99_ns: u64,
    /// Primary owner of each hot chunk right after the write.
    pub routes_before: Vec<Option<usize>>,
    /// Primary owner of each hot chunk after settling.
    pub routes_after: Vec<Option<usize>>,
    /// `bb.place.decisions`.
    pub decisions: u64,
    /// `bb.place.migrations`.
    pub migrations: u64,
    /// `bb.place.bytes`.
    pub moved_bytes: u64,
    /// `bb.place.cost_before` (reader-weighted ns, summed over decisions).
    pub cost_before: u64,
    /// `bb.place.cost_after`.
    pub cost_after: u64,
    /// `bb.integrity.checksum_fail` at end of run.
    pub checksum_fails: u64,
    /// `bb.rebalance.verify_fail` (shared by placement moves).
    pub verify_fails: u64,
    /// Chunks the flusher declared lost.
    pub chunks_lost: u64,
    /// Placement moves still queued at end of run.
    pub place_backlog: usize,
    /// Both files read back byte-identical at end of run.
    pub files_ok: bool,
    /// Per-key KV history sequentially explainable, misses forbidden.
    pub consistency_ok: bool,
    /// Checker violations when `consistency_ok` is false.
    pub consistency_violations: Vec<String>,
    /// Full metrics snapshot JSON (same-seed determinism artifact).
    pub metrics_json: String,
    /// Round-by-round convergence timeline (the `--timeline` artifact).
    pub timeline: String,
    /// Virtual end-of-run instant.
    pub end: Time,
}

impl PlacementOutcome {
    /// Final remote p99 within `factor` of the local-replica floor.
    pub fn converged_within(&self, factor: f64) -> bool {
        self.floor_p99_ns > 0 && self.final_p99_ns as f64 <= factor * self.floor_p99_ns as f64
    }
}

fn pctl(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The geo-stretched AB13 rig: geo size 8 (2 nodes/rack x 2 racks/zone x
/// 2 zones/geo), everything deployed up front in geo 0, one standby KV
/// server and the reader in geo 1.
fn ab13_testbed() -> Testbed {
    let mut cfg = TestbedConfig {
        compute_nodes: 2,
        ..TestbedConfig::default()
    };
    cfg.net = NetConfig {
        nodes_per_rack: 2,
        racks_per_zone: 2,
        zones_per_geo: 2,
        rack_latency: dur::us(5),
        zone_latency: dur::us(20),
        geo_latency: dur::ms(2),
        ..NetConfig::default()
    };
    cfg.lustre.oss_count = 1;
    cfg.lustre.osts_per_oss = 1;
    cfg.bb.kv_servers = 1;
    cfg.bb.kv_replication = 1;
    cfg.bb.kv_mem_per_server = 1 << 30;
    cfg.bb.bb_place_policy = PlacementPolicy::Locality;
    cfg.bb.bb_place_interval = dur::ms(50);
    Testbed::build(SystemKind::Bb(Scheme::AsyncLustre), cfg)
}

/// Run one placement cell: geo-0 write, geo-1 floor file, rounds of
/// remote reads while the optimizer migrates, settle, verify.
pub fn run_placement_scenario(case: &PlacementCase) -> PlacementOutcome {
    run_placement_telemetry(case, false).0
}

/// [`run_placement_scenario`] plus the cell telemetry capture (Chrome
/// trace when `trace` is set).
pub fn run_placement_telemetry(
    case: &PlacementCase,
    trace: bool,
) -> (PlacementOutcome, CellTelemetry) {
    let tb = ab13_testbed();
    if trace {
        tb.sim.tracer().enable();
    }
    let sim = tb.sim.clone();
    let bb = Rc::clone(tb.bb.as_ref().expect("bb testbed"));
    // geo membership must match the rig's story: compute nodes, Lustre,
    // the seed server, and the manager all inside geo 0 (nodes 0..8);
    // the standby opens geo 1, the reader joins it
    assert!(bb.manager.node().0 < 8, "infra must fit in geo 0");
    while tb.fabric.len() < 8 {
        tb.fabric.add_node();
    }
    let standby = bb.standby_kv_server();
    assert_eq!(standby.node().0, 8, "standby must open geo 1");
    let reader_node = tb.fabric.add_node();
    assert_eq!(reader_node.0, 9, "reader must sit in geo 1");

    let chunks = case.file_bytes.div_ceil(512 << 10);
    let payloads = PayloadPool::standard();
    let rclient = bb.client(reader_node);
    let wclient = bb.client(tb.nodes[0]);
    let history = History::new();
    history.attach(rclient.kv());

    let mut timeline = String::new();
    timeline.push_str(&format!(
        "AB13 placement timeline (seed {:#x}): {} MiB/file, {} chunks, geo boundary 2 ms\n",
        case.seed,
        case.file_bytes >> 20,
        chunks
    ));

    let routes_of = {
        let bb = Rc::clone(&bb);
        move |fid: u64| -> Vec<Option<usize>> {
            (0..chunks)
                .map(|seq| bb.membership().route(&chunk_key(fid, seq)))
                .collect()
        }
    };

    let driver = {
        let spawner = sim.clone();
        let sim = sim.clone();
        let bb = Rc::clone(&bb);
        let rclient = Rc::clone(&rclient);
        let wclient = Rc::clone(&wclient);
        let pool = payloads.clone();
        let case = *case;
        spawner.spawn(async move {
            assert!(bb.admit_kv_server(standby.node()));
            // hot file from geo 0: locality placement pins it writer-side
            let w = wclient.create("/ab13/hot").await.ok()?;
            for piece in pool.stream(7, case.file_bytes, 1 << 20) {
                w.append(piece).await.ok()?;
            }
            w.close().await.ok()?;
            if wclient.wait_flushed("/ab13/hot").await != Ok(FileState::Flushed) {
                return None;
            }
            // floor file from geo 1: locality placement starts it
            // reader-local, giving the convergence target
            let w = rclient.create("/ab13/floor").await.ok()?;
            for piece in pool.stream(8, case.file_bytes, 1 << 20) {
                w.append(piece).await.ok()?;
            }
            w.close().await.ok()?;
            if rclient.wait_flushed("/ab13/floor").await != Ok(FileState::Flushed) {
                return None;
            }
            let timed_read = |path: &'static str| {
                let sim = sim.clone();
                let rclient = Rc::clone(&rclient);
                async move {
                    let t0 = sim.now();
                    let rd = rclient.open(path).await.ok()?;
                    let bytes = rd.read_all().await.ok()?;
                    (bytes.len() as u64 == case.file_bytes)
                        .then(|| (sim.now() - t0).as_nanos() as u64)
                }
            };
            // the local-replica floor
            let mut floor: Vec<u64> = Vec::new();
            for _ in 0..case.reads_per_round {
                floor.push(timed_read("/ab13/floor").await?);
            }
            floor.sort_unstable();
            // remote read rounds; the optimizer migrates in the background
            let mut rounds: Vec<Vec<u64>> = Vec::new();
            for _ in 0..case.rounds {
                let mut lats = Vec::new();
                for _ in 0..case.reads_per_round {
                    lats.push(timed_read("/ab13/hot").await?);
                }
                lats.sort_unstable();
                rounds.push(lats);
                sim.sleep(dur::ms(100)).await;
            }
            // settle: every queued placement move executed
            let deadline = sim.now() + dur::secs(20);
            while bb.manager.place_backlog() > 0 && sim.now() < deadline {
                sim.sleep(dur::ms(100)).await;
            }
            sim.sleep(dur::secs(1)).await;
            // post-migration measurement round
            let mut fin = Vec::new();
            for _ in 0..case.reads_per_round {
                fin.push(timed_read("/ab13/hot").await?);
            }
            fin.sort_unstable();
            // byte-verify both acknowledged files end to end
            let mut ok = true;
            for (path, seed) in [("/ab13/hot", 7u64), ("/ab13/floor", 8u64)] {
                let expected: Vec<u8> = pool
                    .stream(seed, case.file_bytes, 1 << 20)
                    .iter()
                    .flat_map(|b| b.iter().copied())
                    .collect();
                let rd = rclient.open(path).await.ok()?;
                ok &= matches!(rd.read_all().await, Ok(b) if b[..] == expected[..]);
            }
            Some((floor, rounds, fin, ok))
        })
    };

    // capture the hot file's starting layout as soon as the write lands
    let mut routes_before: Option<Vec<Option<usize>>> = None;
    let deadline = sim.now() + dur::secs(120);
    while !driver.is_finished() && sim.now() < deadline {
        step_to(&sim, sim.now() + dur::ms(50));
        if routes_before.is_none() {
            let r = routes_of(1);
            if r.iter().all(|o| o.is_some()) {
                routes_before = Some(r);
            }
        }
    }
    let converged = driver.is_finished();
    let (floor, rounds, fin, files_ok) =
        driver
            .try_take()
            .flatten()
            .unwrap_or((Vec::new(), Vec::new(), Vec::new(), false));
    let routes_before = routes_before.unwrap_or_default();
    let routes_after = routes_of(1);

    // harness-side latency histograms (bench namespace, not `bb.*`): the
    // SLO file gates the post-migration remote reads and the floor
    let h = sim.metrics().histogram("ab13.remote_read_ns");
    for &ns in &fin {
        h.record_ns(ns);
    }
    let h = sim.metrics().histogram("ab13.floor_read_ns");
    for &ns in &floor {
        h.record_ns(ns);
    }

    let floor_p99 = pctl(&floor, 99.0);
    let round_p99: Vec<u64> = rounds.iter().map(|r| pctl(r, 99.0)).collect();
    let final_p99 = pctl(&fin, 99.0);
    timeline.push_str(&format!(
        "floor: p99 {:>9} ns (geo-1 reader -> geo-1 replica)\n",
        floor_p99
    ));
    for (i, p) in round_p99.iter().enumerate() {
        timeline.push_str(&format!("round {i}: remote p99 {:>9} ns\n", p));
    }

    let cell = capture_cell(&tb.sim);
    let snap = &cell.snapshot;
    let verdict = history.check(Checker { forbid_miss: true });
    timeline.push_str(&format!(
        "settled: remote p99 {:>9} ns, routes {:?} -> {:?}, {} decisions, {} migrations, {} bytes\n",
        final_p99,
        routes_before,
        routes_after,
        snap.counter("bb.place.decisions"),
        snap.counter("bb.place.migrations"),
        snap.counter("bb.place.bytes"),
    ));
    let outcome = PlacementOutcome {
        converged,
        floor_p99_ns: floor_p99,
        round_p99_ns: round_p99,
        final_p99_ns: final_p99,
        routes_before,
        routes_after,
        decisions: snap.counter("bb.place.decisions"),
        migrations: snap.counter("bb.place.migrations"),
        moved_bytes: snap.counter("bb.place.bytes"),
        cost_before: snap.counter("bb.place.cost_before"),
        cost_after: snap.counter("bb.place.cost_after"),
        checksum_fails: snap.counter("bb.integrity.checksum_fail"),
        verify_fails: snap.counter("bb.rebalance.verify_fail"),
        chunks_lost: bb.manager.stats().chunks_lost,
        place_backlog: bb.manager.place_backlog(),
        files_ok,
        consistency_ok: verdict.ok(),
        consistency_violations: verdict.violations,
        metrics_json: snap.to_json(),
        timeline,
        end: sim.now(),
    };
    tb.shutdown();
    (outcome, cell)
}

// --- property-suite runner: random topologies, patterns, faults ------

/// A fault injected while placement moves are in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceFault {
    /// No fault: the cost-monotonicity cells.
    None,
    /// Crash the migration-destination server mid-run, restart it later.
    Crash,
    /// Flap the destination server's link (3 cycles, 50 ms down each).
    Flap,
    /// Drain the destination server off the ring mid-run.
    Drain,
}

impl PlaceFault {
    /// Artifact label.
    pub fn label(&self) -> &'static str {
        match self {
            PlaceFault::None => "none",
            PlaceFault::Crash => "crash",
            PlaceFault::Flap => "flap",
            PlaceFault::Drain => "drain",
        }
    }
}

/// One property cell: a random topology, a fixed per-round access
/// pattern, and an optional fault over the migration window.
#[derive(Debug, Clone)]
pub struct PlacementPropCase {
    /// Stamped into artifacts; drives nothing probabilistic itself.
    pub seed: u64,
    /// Topology tier sizes (`nodes_per_rack` x `racks_per_zone` x
    /// `zones_per_geo`).
    pub topo: (usize, usize, usize),
    /// Boundary latencies in microseconds (rack, zone, geo).
    pub tier_us: (u64, u64, u64),
    /// Bytes per file, one entry per file written (file ids 1..=len).
    pub files: Vec<u64>,
    /// Fixed per-round access pattern: `(reader, file, whole-file
    /// reads)`, indices taken modulo the pool sizes.
    pub reads: Vec<(usize, usize, u32)>,
    /// Reader nodes added beyond the deployment (>= 1).
    pub readers: usize,
    /// Identical access rounds; the optimizer settles after each.
    pub rounds: usize,
    /// Placement on (locality + optimizer) or the hash default.
    pub policy_on: bool,
    /// Fault over the migration window.
    pub fault: PlaceFault,
    /// Virtual-time budget; overruns freeze the flight recorder.
    pub deadline_secs: u64,
    /// Wait for every file to reach `Flushed` before the read rounds
    /// (the durable regime: a mid-migration miss can fall back to
    /// Lustre). `false` starts reading while chunks are still pinned
    /// and buffer-only — reads then have no fallback, so a placement
    /// move that breaks routing for even a moment is a read error.
    pub flush_before_reads: bool,
    /// Override the backing OST streaming rate (bytes/s); `None` keeps
    /// the testbed default. A crawling rate keeps files unflushed (and
    /// their chunks pinned) deep into the read rounds.
    pub lustre_ost_rate: Option<f64>,
    /// Start with two KV servers and never admit the standby, keeping
    /// the membership epoch at 0 for the whole run. At epoch 0 a miss
    /// cannot widen to the full roster, so the read path sees exactly
    /// what the routing tables say — the regime where a placement move
    /// that breaks routing mid-flight is immediately visible.
    pub static_membership: bool,
    /// Override [`bb_core::BbConfig::read_window`]; `None` keeps the
    /// testbed default. `Some(1)` forces the serial chunk-at-a-time
    /// read path, which surfaces a routing miss directly instead of
    /// absorbing it in the pipelined path's one-shot group retry.
    pub read_window: Option<usize>,
}

/// What one property cell observed.
#[derive(Debug, Clone)]
pub struct PlacementPropOutcome {
    /// Writes, rounds, settling, and verification all finished in time.
    pub converged: bool,
    /// Files written and acknowledged.
    pub files_total: u64,
    /// Files byte-identical on final read-back.
    pub files_ok: u64,
    /// Layout cost under the cell's fixed access weights, sampled after
    /// the optimizer settled following each round.
    pub round_costs: Vec<u64>,
    /// Whole-file reads that errored during the rounds.
    pub read_errs: u64,
    /// Chunks the flusher declared lost.
    pub chunks_lost: u64,
    /// `bb.integrity.checksum_fail` at end of run.
    pub checksum_fails: u64,
    /// `bb.rebalance.verify_fail` (shared by placement moves).
    pub verify_fails: u64,
    /// `bb.scrub.unrepairable` at end of run.
    pub unrepairable: u64,
    /// `bb.place.migrations` at end of run.
    pub migrations: u64,
    /// Placement moves still queued at end of run (0 required).
    pub place_backlog: usize,
    /// Any `bb.place.*` name present in the snapshot.
    pub place_names_registered: bool,
    /// Routing overrides installed at end of run.
    pub overrides: usize,
    /// Per-key KV history sequentially explainable.
    pub consistency_ok: bool,
    /// Checker violations when `consistency_ok` is false.
    pub consistency_violations: Vec<String>,
    /// Full metrics snapshot JSON (same-seed determinism artifact).
    pub metrics_json: String,
    /// Frozen flight-recorder dumps (non-convergence artifacts).
    pub flight_dumps: Vec<String>,
    /// Virtual end-of-run instant.
    pub end: Time,
}

impl PlacementPropOutcome {
    /// Cost samples never increase round over round.
    pub fn cost_monotone(&self) -> bool {
        self.round_costs.windows(2).all(|w| w[1] <= w[0])
    }
}

/// Run one property cell: write the files from node 0, run the fixed
/// access rounds (optimizer settling after each), inject the scheduled
/// fault, then byte-verify every acknowledged file.
pub fn run_placement_property(case: &PlacementPropCase) -> PlacementPropOutcome {
    let (npr, rpz, zpg) = case.topo;
    let (rack_us, zone_us, geo_us) = case.tier_us;
    let mut cfg = TestbedConfig {
        compute_nodes: 2,
        ..TestbedConfig::default()
    };
    cfg.net = NetConfig {
        nodes_per_rack: npr.max(1),
        racks_per_zone: rpz.max(1),
        zones_per_geo: zpg.max(1),
        rack_latency: dur::us(rack_us),
        zone_latency: dur::us(zone_us),
        geo_latency: dur::us(geo_us),
        ..NetConfig::default()
    };
    cfg.lustre.oss_count = 1;
    cfg.lustre.osts_per_oss = 1;
    if let Some(rate) = case.lustre_ost_rate {
        cfg.lustre.ost_rate = rate;
    }
    cfg.bb.kv_servers = if case.static_membership { 2 } else { 1 };
    if let Some(w) = case.read_window {
        cfg.bb.read_window = w;
    }
    cfg.bb.kv_replication = 1;
    cfg.bb.kv_mem_per_server = 1 << 30;
    if case.policy_on {
        cfg.bb.bb_place_policy = PlacementPolicy::Locality;
        cfg.bb.bb_place_interval = dur::ms(50);
        // small budget: multi-chunk moves span ticks, exercising re-queue
        cfg.bb.bb_migrate_budget = 512 << 10;
    }
    let tb = Testbed::build(SystemKind::Bb(Scheme::AsyncLustre), cfg);
    let sim = tb.sim.clone();
    sim.flight().enable(simkit::flight::DEFAULT_RING_LEN);
    let bb = Rc::clone(tb.bb.as_ref().expect("bb testbed"));
    let standby = bb.standby_kv_server();
    let readers: Vec<netsim::NodeId> = (0..case.readers.max(1))
        .map(|_| tb.fabric.add_node())
        .collect();
    let wclient = bb.client(tb.nodes[0]);
    let rclient0 = bb.client(readers[0]);
    let history = History::new();
    history.attach(rclient0.kv());

    // fault window: the schedule targets the standby — the likely
    // migration destination — while round reads keep moves in flight
    let target = standby.node().0;
    let mut plan = simkit::FaultPlan::new(case.seed);
    match case.fault {
        PlaceFault::None => {}
        PlaceFault::Crash => {
            plan = plan
                .at(dur::ms(400), simkit::FaultEvent::Crash { node: target })
                .at(dur::ms(800), simkit::FaultEvent::Restart { node: target });
        }
        PlaceFault::Flap => {
            plan = plan.at(
                dur::ms(400),
                simkit::FaultEvent::LinkFlap {
                    node: target,
                    count: 3,
                    down: dur::ms(50),
                    period: dur::ms(150),
                },
            );
        }
        PlaceFault::Drain => {
            plan = plan.at(
                dur::ms(400),
                simkit::FaultEvent::DrainServer { node: target },
            );
        }
    }
    sim.install_faults(plan);

    // fixed access weights: (reader node, file id) -> whole-file reads
    // per round; the same pattern repeats each round, so cumulative
    // telemetry stays proportional to these weights and layout cost is
    // comparable across rounds
    let files_n = case.files.len().max(1);
    let mut weights: std::collections::BTreeMap<(u32, u64), u64> =
        std::collections::BTreeMap::new();
    for &(r, f, times) in &case.reads {
        let node = readers[r % readers.len()].0;
        let fid = (f % files_n) as u64 + 1;
        *weights.entry((node, fid)).or_insert(0) += times as u64;
    }

    let layout_cost = {
        let bb = Rc::clone(&bb);
        let fabric = Rc::clone(&tb.fabric);
        let files = case.files.clone();
        let weights = weights.clone();
        move || -> u64 {
            let view = bb.membership();
            let mut total = 0u64;
            for (fi, &bytes) in files.iter().enumerate() {
                let fid = fi as u64 + 1;
                for seq in 0..bytes.div_ceil(512 << 10) {
                    let Some(idx) = view.route(&chunk_key(fid, seq)) else {
                        continue;
                    };
                    let node = view.server(idx).node();
                    for ((rn, f), &w) in &weights {
                        if *f == fid {
                            let ns =
                                fabric.topo_latency(netsim::NodeId(*rn), node).as_nanos() as u64;
                            total = total.saturating_add(w.saturating_mul(ns));
                        }
                    }
                }
            }
            total
        }
    };

    let driver = {
        let spawner = sim.clone();
        let sim = sim.clone();
        let bb = Rc::clone(&bb);
        let wclient = Rc::clone(&wclient);
        let pool = PayloadPool::standard();
        let case = case.clone();
        let readers = readers.clone();
        let layout_cost = layout_cost.clone();
        spawner.spawn(async move {
            if !case.static_membership {
                assert!(bb.admit_kv_server(standby.node()));
            }
            // write every file before the read rounds. In the durable
            // regime we also wait for the flush: acked data is then
            // Lustre-backed, so a mid-migration crash can delay reads
            // but must never lose bytes. With `flush_before_reads`
            // off the rounds start while chunks are still pinned and
            // buffer-only — the only copies are the ones migration is
            // shuffling around.
            for (fi, &bytes) in case.files.iter().enumerate() {
                let path = format!("/prop/f{fi}");
                let w = wclient.create(&path).await.ok()?;
                for piece in pool.stream(fi as u64 + 40, bytes, 1 << 20) {
                    w.append(piece).await.ok()?;
                }
                w.close().await.ok()?;
                if case.flush_before_reads
                    && wclient.wait_flushed(&path).await != Ok(FileState::Flushed)
                {
                    return None;
                }
            }
            let rclients: Vec<Rc<bb_core::BbClient>> =
                readers.iter().map(|&n| bb.client(n)).collect();
            // hold the first reads until t ~ 300 ms: the first optimizer
            // decisions and the budget-throttled moves then span the
            // 400 ms fault window, so the scheduled fault hits moves
            // that are genuinely in flight
            sim.sleep(dur::ms(300)).await;
            // undurable cells also hammer file 0 with back-to-back
            // whole-file reads for the entire rounds-plus-settling
            // span, so reads overlap every phase of in-flight moves
            // (copy, verify, override install, old-copy delete) — the
            // round reads alone leave the settle windows unobserved
            let hammer_stop = Rc::new(std::cell::Cell::new(false));
            let hammer = (!case.flush_before_reads).then(|| {
                let stop = Rc::clone(&hammer_stop);
                let rc = Rc::clone(&rclients[0]);
                sim.spawn(async move {
                    let mut errs = 0u64;
                    while !stop.get() {
                        match rc.open("/prop/f0").await {
                            Ok(rd) => {
                                if rd.read_all().await.is_err() {
                                    errs += 1;
                                }
                            }
                            Err(_) => errs += 1,
                        }
                    }
                    errs
                })
            });
            let mut read_errs = 0u64;
            let mut costs: Vec<u64> = Vec::new();
            for _ in 0..case.rounds {
                for &(r, f, times) in &case.reads {
                    let rc = &rclients[r % rclients.len()];
                    let path = format!("/prop/f{}", f % case.files.len().max(1));
                    for _ in 0..times {
                        match rc.open(&path).await {
                            Ok(rd) => {
                                if rd.read_all().await.is_err() {
                                    read_errs += 1;
                                }
                            }
                            Err(_) => read_errs += 1,
                        }
                    }
                }
                // settle: give the optimizer ticks until its queue drains
                let deadline = sim.now() + dur::secs(30);
                sim.sleep(dur::ms(200)).await;
                while bb.manager.place_backlog() > 0 && sim.now() < deadline {
                    sim.sleep(dur::ms(100)).await;
                }
                sim.sleep(dur::ms(200)).await;
                costs.push(layout_cost());
            }
            hammer_stop.set(true);
            if let Some(h) = hammer {
                read_errs += h.await;
            }
            // final verification: every acknowledged file byte-identical
            // (retried: a crash cell may still be re-replicating)
            let mut files_ok = 0u64;
            for (fi, &bytes) in case.files.iter().enumerate() {
                let path = format!("/prop/f{fi}");
                let expected: Vec<u8> = pool
                    .stream(fi as u64 + 40, bytes, 1 << 20)
                    .iter()
                    .flat_map(|b| b.iter().copied())
                    .collect();
                for attempt in 0..3 {
                    let ok = match rclients[0].open(&path).await {
                        Ok(rd) => matches!(rd.read_all().await, Ok(b) if b[..] == expected[..]),
                        Err(_) => false,
                    };
                    if ok {
                        files_ok += 1;
                        break;
                    }
                    if attempt < 2 {
                        sim.sleep(dur::ms(300)).await;
                    }
                }
            }
            // the verification reads are telemetry too: give the
            // optimizer a chance to act on them, then drain the queue so
            // the cell ends with no move in flight
            let deadline = sim.now() + dur::secs(30);
            loop {
                sim.sleep(dur::ms(200)).await;
                while bb.manager.place_backlog() > 0 && sim.now() < deadline {
                    sim.sleep(dur::ms(100)).await;
                }
                sim.sleep(dur::ms(200)).await;
                if bb.manager.place_backlog() == 0 || sim.now() >= deadline {
                    break;
                }
            }
            Some((read_errs, costs, files_ok))
        })
    };

    let deadline = sim.now() + dur::secs(case.deadline_secs);
    while !driver.is_finished() && sim.now() < deadline {
        step_to(&sim, sim.now() + dur::ms(250));
    }
    let converged = driver.is_finished();
    if !converged {
        sim.flight().trigger(
            sim.now().as_nanos(),
            "placement cell hung past the deadline",
        );
    }
    let (read_errs, round_costs, files_ok) =
        driver.try_take().flatten().unwrap_or((0, Vec::new(), 0));

    let snap = sim.metrics().snapshot();
    let verdict = history.check(Checker {
        forbid_miss: matches!(case.fault, PlaceFault::None | PlaceFault::Drain),
    });
    if !verdict.ok() {
        sim.flight().trigger(
            sim.now().as_nanos(),
            &format!("consistency violation: {:?}", verdict.violations),
        );
    }
    let flight_dumps: Vec<String> = sim
        .flight()
        .dumps()
        .into_iter()
        .map(|(_, json)| json)
        .collect();
    let outcome = PlacementPropOutcome {
        converged,
        files_total: case.files.len() as u64,
        files_ok,
        round_costs,
        read_errs,
        chunks_lost: bb.manager.stats().chunks_lost,
        checksum_fails: snap.counter("bb.integrity.checksum_fail"),
        verify_fails: snap.counter("bb.rebalance.verify_fail"),
        unrepairable: snap.counter("bb.scrub.unrepairable"),
        migrations: snap.counter("bb.place.migrations"),
        place_backlog: bb.manager.place_backlog(),
        place_names_registered: snap.names().any(|n| n.starts_with("bb.place.")),
        overrides: bb.membership().overrides_len(),
        consistency_ok: verdict.ok(),
        consistency_violations: verdict.violations,
        metrics_json: snap.to_json(),
        flight_dumps,
        end: sim.now(),
    };
    // persist dumps under the workspace-root target/ so a failing CI run
    // can upload them as artifacts
    if !outcome.flight_dumps.is_empty() {
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/flight-recorder");
        if std::fs::create_dir_all(&dir).is_ok() {
            for (i, dump) in outcome.flight_dumps.iter().enumerate() {
                let name = format!(
                    "placement-{}-seed{:x}-{i}.json",
                    case.fault.label(),
                    case.seed
                );
                let _ = std::fs::write(dir.join(name), dump);
            }
        }
    }
    tb.shutdown();
    outcome
}

/// AB13 report only (timeline artifact discarded).
pub fn ab13_placement(quick: bool, trace: bool) -> ExpReport {
    ab13_with_artifacts(quick, trace).0
}

/// [`ab13_placement`] plus the convergence timeline (the `--timeline`
/// artifact of `repro_ab13`).
pub fn ab13_with_artifacts(quick: bool, trace: bool) -> (ExpReport, String) {
    let case = PlacementCase::ab13(quick);
    let (o, cell) = run_placement_telemetry(&case, trace);

    let mut t = Table::new(
        "AB13: topology-aware placement — remote reads converge to the local floor",
        &["stage", "result"],
    );
    t.row(vec![
        "rig".into(),
        format!(
            "2 geos (2 ms apart), {} MiB hot file written in geo 0, reader in geo 1",
            case.file_bytes >> 20
        ),
    ]);
    t.row(vec![
        "floor".into(),
        format!("local-replica read p99 {} us", o.floor_p99_ns / 1_000),
    ]);
    t.row(vec![
        "remote before".into(),
        format!(
            "round-0 p99 {} us ({:.1}x floor)",
            o.round_p99_ns.first().copied().unwrap_or(0) / 1_000,
            o.round_p99_ns.first().copied().unwrap_or(0) as f64 / o.floor_p99_ns.max(1) as f64
        ),
    ]);
    t.row(vec![
        "remote after".into(),
        format!(
            "settled p99 {} us ({:.2}x floor)",
            o.final_p99_ns / 1_000,
            o.final_p99_ns as f64 / o.floor_p99_ns.max(1) as f64
        ),
    ]);
    t.row(vec![
        "migration".into(),
        format!(
            "{} decisions, {} chunks / {:.1} MiB moved, cost {} -> {} (reader-weighted ns)",
            o.decisions,
            o.migrations,
            o.moved_bytes as f64 / (1 << 20) as f64,
            o.cost_before,
            o.cost_after
        ),
    ]);
    t.row(vec![
        "layout".into(),
        format!("primaries {:?} -> {:?}", o.routes_before, o.routes_after),
    ]);
    t.row(vec![
        "integrity".into(),
        format!(
            "{} checksum fails, {} verify fails, {} chunks lost, files byte-correct: {}",
            o.checksum_fails, o.verify_fails, o.chunks_lost, o.files_ok
        ),
    ]);
    t.row(vec![
        "consistency".into(),
        if o.consistency_ok {
            "KV history sequentially explainable (misses forbidden)".into()
        } else {
            format!("{} violations", o.consistency_violations.len())
        },
    ]);
    t.note("hot chunks start writer-side (locality policy), then migrate toward the geo-1 reader");
    t.note("convergence gate: settled remote p99 <= 1.3x the local-replica floor, zero loss");

    let first_round = o.round_p99_ns.first().copied().unwrap_or(0);
    let shape = o.converged
        && o.converged_within(1.3)
        && first_round > 2 * o.floor_p99_ns
        && o.decisions > 0
        && o.migrations > 0
        && o.moved_bytes >= case.file_bytes
        && o.cost_after < o.cost_before
        && o.place_backlog == 0
        && o.checksum_fails == 0
        && o.verify_fails == 0
        && o.chunks_lost == 0
        && o.files_ok
        && o.consistency_ok;
    let mut report = ExpReport {
        id: "AB13",
        table: t,
        shape_holds: shape,
        metrics: None,
        trace: None,
    };
    attach(&mut report, Some(cell));
    (report, o.timeline)
}
