//! AB8: elastic membership — scale the KV tier out and in under load.
//!
//! A sustained E3-style write stream runs against a burst buffer whose
//! KV tier grows from 4 to 8 servers mid-load and then drains back to 6.
//! Each scripted [`FaultEvent::AddServer`]/[`FaultEvent::DrainServer`]
//! bumps the shared membership epoch; the cell measures, per epoch, the
//! fraction of keys whose primary owner moved (which must track the
//! consistent-hashing ideal ≈ k/n), the time for the background
//! rebalancer to migrate every remapped resident chunk, and the depth of
//! the throughput dip the churn causes — all with zero acknowledged-data
//! loss and zero checksum failures on post-epoch read-back.
//!
//! [`run_rebalance_scenario`] is the reusable cell runner; the
//! migration-invariant proptest suite (`crates/bench/tests/rebalance.rs`)
//! sweeps it across random add/drain schedules.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use bb_core::{FileState, Scheme};
use simkit::{dur, FaultEvent, FaultPlan, Sim, Time};
use workloads::{PayloadPool, SystemKind, Testbed, TestbedConfig};

use crate::consistency::{Checker, History};
use crate::experiments::integrity::step_to;
use crate::experiments::ExpReport;
use crate::table::Table;
use crate::telemetry::{attach, capture_cell, CellTelemetry};

/// A scripted membership change.
#[derive(Debug, Clone, Copy)]
pub enum ChangeOp {
    /// Promote the next unused standby server onto the ring.
    Add,
    /// Drain the `sel`-th node of the combined (initial + standby) pool
    /// (modulo its size). Draining an inactive node, or the last active
    /// one, is a legal no-op — random schedules need no legality filter.
    Drain(usize),
}

/// One scheduled change at a virtual-time offset from run start.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledChange {
    /// Offset from run start.
    pub at: Duration,
    /// What to do.
    pub op: ChangeOp,
}

/// One rebalance cell: topology, schedule, and workload.
#[derive(Debug, Clone)]
pub struct RebalanceCase {
    /// Fault-plan seed (drives nothing probabilistic here, but keeps the
    /// timeline artifact seed-stamped like every other cell).
    pub seed: u64,
    /// Servers on the ring at deploy time.
    pub initial_servers: usize,
    /// Standby servers pre-created off-ring (candidates for `Add`).
    pub standbys: usize,
    /// Replicas per chunk.
    pub replication: usize,
    /// Bytes per written file.
    pub file_bytes: u64,
    /// The membership schedule.
    pub changes: Vec<ScheduledChange>,
    /// After each applied change, wait for the rebalancer to drain and
    /// byte-verify every file closed so far (the per-epoch read-back
    /// invariant). Slower; the AB8 cell and the proptests enable it.
    pub verify_each_epoch: bool,
}

impl RebalanceCase {
    /// The AB8 schedule: 4 servers, add 4 under load, then drain 2.
    pub fn ab8(quick: bool) -> RebalanceCase {
        RebalanceCase {
            seed: 0xAB8,
            initial_servers: 4,
            standbys: 4,
            replication: 2,
            file_bytes: if quick { 2 << 20 } else { 8 << 20 },
            changes: vec![
                ScheduledChange {
                    at: dur::ms(500),
                    op: ChangeOp::Add,
                },
                ScheduledChange {
                    at: dur::ms(600),
                    op: ChangeOp::Add,
                },
                ScheduledChange {
                    at: dur::ms(700),
                    op: ChangeOp::Add,
                },
                ScheduledChange {
                    at: dur::ms(800),
                    op: ChangeOp::Add,
                },
                ScheduledChange {
                    at: dur::ms(2000),
                    op: ChangeOp::Drain(0),
                },
                ScheduledChange {
                    at: dur::ms(2200),
                    op: ChangeOp::Drain(1),
                },
            ],
            verify_each_epoch: true,
        }
    }
}

/// The ownership shift one epoch transition caused.
#[derive(Debug, Clone, Copy)]
pub struct RemapSample {
    /// Epoch after the transition.
    pub epoch: u64,
    /// Active servers before.
    pub from_active: usize,
    /// Active servers after.
    pub to_active: usize,
    /// Fraction of sampled keys whose primary owner moved.
    pub moved_frac: f64,
    /// Consistent-hashing ideal: |Δservers| / max(before, after).
    pub ideal: f64,
}

/// What one rebalance cell observed.
#[derive(Debug, Clone)]
pub struct RebalanceOutcome {
    /// Writer, flush wait, and final read-back all finished in time.
    pub converged: bool,
    /// Final membership epoch (= applied changes).
    pub epochs: u64,
    /// Per-transition ownership shift.
    pub remaps: Vec<RemapSample>,
    /// `bb.rebalance.moved` — chunks migrated.
    pub moved: u64,
    /// `bb.rebalance.bytes` — payload bytes migrated.
    pub moved_bytes: u64,
    /// `bb.rebalance.verify_fail` — migrated copies failing read-back.
    pub verify_fails: u64,
    /// `bb.integrity.checksum_fail` at end of run.
    pub checksum_fails: u64,
    /// Chunks the flusher declared lost.
    pub chunks_lost: u64,
    /// Virtual time from the last applied change until the rebalance
    /// backlog drained at the final epoch.
    pub migration_done: Option<Duration>,
    /// Files written and acknowledged.
    pub files_total: u64,
    /// Files that flushed and read back byte-identical at end of run.
    pub files_ok: u64,
    /// Files failing the per-epoch read-back sweeps (0 required).
    pub epoch_readback_bad: u64,
    /// Acked bytes per ~250 ms slice during the write phase.
    pub windows: Vec<u64>,
    /// Index of the slice containing the first membership change.
    pub first_change_window: usize,
    /// Per-key KV history explainable by a sequential order, with misses
    /// forbidden (no crash loses memory in this cell, so an acknowledged
    /// chunk must never vanish from the tier).
    pub consistency_ok: bool,
    /// Checker violations when `consistency_ok` is false.
    pub consistency_violations: Vec<String>,
    /// Full metrics snapshot JSON (same-seed determinism artifact).
    pub metrics_json: String,
    /// Applied membership/fault timeline.
    pub timeline: String,
    /// Virtual end-of-run instant.
    pub end: Time,
}

impl RebalanceOutcome {
    /// Every transition's remap fraction within `factor` of its ideal.
    pub fn remap_within(&self, factor: f64) -> bool {
        self.remaps
            .iter()
            .all(|r| r.moved_frac > 0.0 && r.moved_frac <= factor * r.ideal)
    }

    /// Depth of the write-throughput dip: `1 - worst churn window /
    /// median pre-churn window` (0 = no dip; `None` without enough
    /// samples on either side).
    pub fn throughput_dip(&self) -> Option<f64> {
        let (before, after) = self.windows.split_at(self.first_change_window);
        if before.is_empty() || after.is_empty() {
            return None;
        }
        let mut sorted = before.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        if median == 0 {
            return None;
        }
        let worst = *after.iter().min().unwrap();
        Some(1.0 - worst as f64 / median as f64)
    }
}

/// Run one elastic-membership cell: sustained writes while the scripted
/// schedule joins and drains servers, then verified read-back of every
/// acknowledged file.
pub fn run_rebalance_scenario(case: &RebalanceCase) -> RebalanceOutcome {
    run_rebalance_telemetry(case, false).0
}

/// [`run_rebalance_scenario`] plus the cell telemetry capture (Chrome
/// trace when `trace` is set).
pub fn run_rebalance_telemetry(
    case: &RebalanceCase,
    trace: bool,
) -> (RebalanceOutcome, CellTelemetry) {
    let mut cfg = TestbedConfig {
        compute_nodes: 4,
        ..TestbedConfig::default()
    };
    cfg.bb.kv_servers = case.initial_servers;
    cfg.bb.kv_replication = case.replication;
    cfg.bb.rebalance_interval = dur::ms(100);
    // ample KV memory: no eviction, so a definitive miss is always loss
    cfg.bb.kv_mem_per_server = 1 << 30;
    // Lustre narrower than the write stream: the flush queue stays deep
    // through the churn window, so migrations race live pins and flushes
    cfg.lustre.oss_count = 2;
    cfg.lustre.osts_per_oss = 2;
    cfg.lustre.ost_rate = 32e6;
    let tb = Testbed::build(SystemKind::Bb(Scheme::AsyncLustre), cfg);
    if trace {
        tb.sim.tracer().enable();
    }
    let bb = Rc::clone(tb.bb.as_ref().expect("bb testbed"));
    let client = bb.client(tb.nodes[0]);
    let history = History::new();
    history.attach(client.kv());
    let sim = tb.sim.clone();
    let t0 = sim.now();

    // standby pool first: the fault plan needs concrete node ids
    let standbys: Vec<_> = (0..case.standbys).map(|_| bb.standby_kv_server()).collect();
    let pool_nodes: Vec<u32> = bb
        .kv_servers
        .iter()
        .map(|s| s.node().0)
        .chain(standbys.iter().map(|s| s.node().0))
        .collect();

    let mut plan = FaultPlan::new(case.seed);
    let mut next_add = 0usize;
    let mut change_times: Vec<Duration> = Vec::new();
    for ch in &case.changes {
        match ch.op {
            ChangeOp::Add => {
                if next_add < standbys.len() {
                    plan = plan.at(
                        ch.at,
                        FaultEvent::AddServer {
                            node: standbys[next_add].node().0,
                        },
                    );
                    next_add += 1;
                    change_times.push(ch.at);
                }
            }
            ChangeOp::Drain(sel) => {
                plan = plan.at(
                    ch.at,
                    FaultEvent::DrainServer {
                        node: pool_nodes[sel % pool_nodes.len()],
                    },
                );
                change_times.push(ch.at);
            }
        }
    }
    change_times.sort_unstable();
    change_times.dedup();
    tb.sim.install_faults(plan);

    // --- sustained writer: files back-to-back until told to stop ---
    let payloads = PayloadPool::standard();
    let stop = Rc::new(Cell::new(false));
    let acked = Rc::new(Cell::new(0u64));
    let files: Rc<RefCell<Vec<(String, u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    let writer = {
        let client = Rc::clone(&client);
        let stop = Rc::clone(&stop);
        let acked = Rc::clone(&acked);
        let files = Rc::clone(&files);
        let pool = payloads.clone();
        let file_bytes = case.file_bytes;
        sim.spawn(async move {
            let mut i = 0u64;
            while !stop.get() {
                let path = format!("/ab8/f{i}");
                let seed = 100 + i;
                let Ok(w) = client.create(&path).await else {
                    break;
                };
                let mut werr = false;
                for piece in pool.stream(seed, file_bytes, 1 << 20) {
                    let n = piece.len() as u64;
                    if w.append(piece).await.is_err() {
                        werr = true;
                        break;
                    }
                    acked.set(acked.get() + n);
                }
                if werr || w.close().await.is_err() {
                    break;
                }
                files.borrow_mut().push((path, seed, file_bytes));
                i += 1;
            }
        })
    };

    let slice = dur::ms(250);
    let mut windows: Vec<u64> = Vec::new();
    let mut sampler = WindowSampler {
        acked: Rc::clone(&acked),
        last: 0,
    };
    let mut first_change_window: Option<usize> = None;
    let mut epoch_readback_bad = 0u64;

    // Remap samples are recorded from a membership hook — it fires at the
    // exact virtual instant each change applies (after the deployment's
    // own hook updated the view), so the before/after rings are exact no
    // matter how coarsely the driving loop steps. Measured over a fixed
    // synthetic key sample: ketama movement is key-set independent, and a
    // fixed sample keeps cells comparable.
    let remaps_cell: Rc<RefCell<Vec<RemapSample>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let sample: Vec<Vec<u8>> = (0..2048).map(|i| format!("s{i:04}").into_bytes()).collect();
        let prev = RefCell::new((
            bb.membership().ring_snapshot(),
            bb.membership().active_len(),
        ));
        let view = Rc::downgrade(bb.membership());
        let remaps = Rc::clone(&remaps_cell);
        sim.faults().on_membership(move |_ev| {
            let Some(view) = view.upgrade() else { return };
            let (new_ring, new_active) = (view.ring_snapshot(), view.active_len());
            let (old_ring, old_active) = prev.replace((new_ring.clone(), new_active));
            if old_active == new_active {
                return; // refused drain / redundant add: no epoch bump
            }
            let moved = sample
                .iter()
                .filter(|k| old_ring.route(k) != new_ring.route(k))
                .count();
            remaps.borrow_mut().push(RemapSample {
                epoch: view.epoch(),
                from_active: old_active,
                to_active: new_active,
                moved_frac: moved as f64 / sample.len() as f64,
                ideal: old_active.abs_diff(new_active) as f64 / old_active.max(new_active) as f64,
            });
        });
    }

    // drive virtual time through the schedule; after each change (and any
    // others that fired while a verify sweep was running), settle the
    // rebalancer and byte-verify every file closed so far
    let mut swept_epoch = 0u64;
    for &ct in &change_times {
        let change_abs = t0 + ct + dur::ms(1);
        if first_change_window.is_none() && sim.now() < change_abs {
            first_change_window = Some(windows.len().max(1));
        }
        while sim.now() < change_abs {
            step_to(&sim, (sim.now() + slice).min(change_abs));
            sampler.sample(&mut windows);
        }
        let epoch = bb.membership().epoch();
        if case.verify_each_epoch && epoch > swept_epoch {
            swept_epoch = epoch;
            // clone out of the RefCell *before* stepping the sim: the
            // writer task pushes into `files` while we verify
            let closed: Vec<(String, u64, u64)> = files.borrow().clone();
            epoch_readback_bad += settle_and_verify(
                &sim,
                &bb,
                &client,
                &payloads,
                &closed,
                &mut sampler,
                &mut windows,
            );
        }
    }

    // let the load run on briefly past the last change, then stop writing
    let stop_at = change_times
        .last()
        .map(|&d| t0 + d + dur::secs(1))
        .unwrap_or(t0 + dur::secs(1));
    while sim.now() < stop_at {
        step_to(&sim, (sim.now() + slice).min(stop_at));
        sampler.sample(&mut windows);
    }
    stop.set(true);

    // migration completion: backlog drained at the final epoch
    let last_change_abs = change_times.last().map(|&d| t0 + d).unwrap_or(t0);
    let mig_deadline = sim.now() + dur::secs(60);
    let mut migration_done = None;
    loop {
        if bb.manager.rebalance_backlog() == 0
            && bb.manager.rebalance_epoch() == bb.membership().epoch()
        {
            migration_done = Some(sim.now() - last_change_abs);
            break;
        }
        if sim.now() >= mig_deadline {
            break;
        }
        step_to(&sim, sim.now() + dur::ms(100));
    }

    // writer drains its current file, then flush + final verified read-back
    let wdeadline = sim.now() + dur::secs(30);
    while !writer.is_finished() && sim.now() < wdeadline {
        step_to(&sim, sim.now() + slice);
    }
    let all_files: Vec<(String, u64, u64)> = files.borrow().clone();
    let files_total = all_files.len() as u64;
    let fin = {
        let client = Rc::clone(&client);
        let pool = payloads.clone();
        sim.spawn(async move {
            let mut ok = 0u64;
            for (path, seed, len) in all_files {
                if client.wait_flushed(&path).await != Ok(FileState::Flushed) {
                    continue;
                }
                if read_back_ok(&client, &pool, &path, seed, len).await {
                    ok += 1;
                }
            }
            ok
        })
    };
    let fdeadline = sim.now() + dur::secs(120);
    while !fin.is_finished() && sim.now() < fdeadline {
        step_to(&sim, sim.now() + slice);
    }
    let converged = writer.is_finished() && fin.is_finished();
    let files_ok = fin.try_take().unwrap_or(0);

    let cell = capture_cell(&tb.sim);
    let snap = &cell.snapshot;
    let verdict = history.check(Checker { forbid_miss: true });
    let outcome = RebalanceOutcome {
        converged,
        epochs: bb.membership().epoch(),
        remaps: remaps_cell.borrow().clone(),
        moved: snap.counter("bb.rebalance.moved"),
        moved_bytes: snap.counter("bb.rebalance.bytes"),
        verify_fails: snap.counter("bb.rebalance.verify_fail"),
        checksum_fails: snap.counter("bb.integrity.checksum_fail"),
        chunks_lost: bb.manager.stats().chunks_lost,
        migration_done,
        files_total,
        files_ok,
        epoch_readback_bad,
        first_change_window: first_change_window.unwrap_or_else(|| windows.len().max(1)),
        windows,
        consistency_ok: verdict.ok(),
        consistency_violations: verdict.violations,
        metrics_json: snap.to_json(),
        timeline: tb.sim.faults().timeline_text(),
        end: sim.now(),
    };
    tb.shutdown();
    (outcome, cell)
}

/// Tracks acked-byte deltas between sampling points.
struct WindowSampler {
    acked: Rc<Cell<u64>>,
    last: u64,
}

impl WindowSampler {
    fn sample(&mut self, windows: &mut Vec<u64>) {
        let a = self.acked.get();
        windows.push(a - self.last);
        self.last = a;
    }
}

/// Wait for the rebalancer to drain at the current epoch, then byte-
/// verify every file closed so far. Returns the mismatch count.
#[allow(clippy::too_many_arguments)]
fn settle_and_verify(
    sim: &Sim,
    bb: &Rc<bb_core::BbDeployment>,
    client: &Rc<bb_core::BbClient>,
    pool: &PayloadPool,
    files: &[(String, u64, u64)],
    sampler: &mut WindowSampler,
    windows: &mut Vec<u64>,
) -> u64 {
    let settle_deadline = sim.now() + dur::secs(20);
    while (bb.manager.rebalance_backlog() > 0
        || bb.manager.rebalance_epoch() != bb.membership().epoch())
        && sim.now() < settle_deadline
    {
        step_to(sim, sim.now() + dur::ms(100));
        sampler.sample(windows);
    }
    let snapshot: Vec<(String, u64, u64)> = files.to_vec();
    let vclient = Rc::clone(client);
    let vpool = pool.clone();
    let task = sim.spawn(async move {
        let mut bad = 0u64;
        for (path, seed, len) in snapshot {
            if !read_back_ok(&vclient, &vpool, &path, seed, len).await {
                bad += 1;
            }
        }
        bad
    });
    let vdeadline = sim.now() + dur::secs(60);
    while !task.is_finished() && sim.now() < vdeadline {
        step_to(sim, sim.now() + dur::ms(250));
        sampler.sample(windows);
    }
    task.try_take().unwrap_or(1)
}

async fn read_back_ok(
    client: &Rc<bb_core::BbClient>,
    pool: &PayloadPool,
    path: &str,
    seed: u64,
    len: u64,
) -> bool {
    let expected: Vec<u8> = pool
        .stream(seed, len, 1 << 20)
        .iter()
        .flat_map(|b| b.iter().copied())
        .collect();
    match client.open(path).await {
        Ok(rd) => matches!(rd.read_all().await, Ok(b) if b[..] == expected[..]),
        Err(_) => false,
    }
}

/// AB8 report only (timeline artifact discarded).
pub fn ab8_elastic(quick: bool, trace: bool) -> ExpReport {
    ab8_with_artifacts(quick, trace).0
}

/// [`ab8_elastic`] plus the applied membership timeline (the
/// `--timeline` artifact of `repro_ab8`).
pub fn ab8_with_artifacts(quick: bool, trace: bool) -> (ExpReport, String) {
    let case = RebalanceCase::ab8(quick);
    let (o, cell) = run_rebalance_telemetry(&case, trace);

    let mut t = Table::new(
        "AB8: elastic membership — scale-out and scale-in under write load",
        &["stage", "result"],
    );
    t.row(vec![
        "load".into(),
        format!(
            "{} files x {} MiB acked (r={}), {} epochs applied",
            o.files_total,
            case.file_bytes >> 20,
            case.replication,
            o.epochs
        ),
    ]);
    for r in &o.remaps {
        t.row(vec![
            format!(
                "epoch {} ({}→{} servers)",
                r.epoch, r.from_active, r.to_active
            ),
            format!(
                "remap {:.3} vs ideal {:.3} ({:.2}x)",
                r.moved_frac,
                r.ideal,
                r.moved_frac / r.ideal
            ),
        ]);
    }
    t.row(vec![
        "migration".into(),
        format!(
            "{} chunks / {:.1} MiB moved, {} verify failures{}",
            o.moved,
            o.moved_bytes as f64 / (1 << 20) as f64,
            o.verify_fails,
            match o.migration_done {
                Some(d) => format!(", drained {:.2}s after last change", d.as_secs_f64()),
                None => ", DID NOT DRAIN within 60s".into(),
            }
        ),
    ]);
    t.row(vec![
        "throughput dip".into(),
        match o.throughput_dip() {
            Some(d) => format!("{:.0}% below pre-churn median at worst", d * 100.0),
            None => "n/a".into(),
        },
    ]);
    t.row(vec![
        "read-back".into(),
        format!(
            "{}/{} files byte-correct at end; {} per-epoch sweep failures; {} checksum fails",
            o.files_ok, o.files_total, o.epoch_readback_bad, o.checksum_fails
        ),
    ]);
    t.row(vec![
        "consistency".into(),
        if o.consistency_ok {
            "KV history sequentially explainable (misses forbidden)".into()
        } else {
            format!("{} violations", o.consistency_violations.len())
        },
    ]);
    t.note(
        "remap fraction per transition must track the consistent-hashing ideal k/n (within 1.5x)",
    );
    t.note("pinned unflushed chunks migrate first; old copies are deleted only after CRC-verified read-back");

    let shape = o.converged
        && o.epochs == 6
        && o.remap_within(1.5)
        && o.migration_done.is_some()
        && o.files_total > 0
        && o.files_ok == o.files_total
        && o.epoch_readback_bad == 0
        && o.verify_fails == 0
        && o.checksum_fails == 0
        && o.chunks_lost == 0
        && o.consistency_ok;
    let mut report = ExpReport {
        id: "AB8",
        table: t,
        shape_holds: shape,
        metrics: None,
        trace: None,
    };
    attach(&mut report, Some(cell));
    (report, o.timeline)
}
