//! E9/E12: the local-storage table and the fault-tolerance experiment.
//!
//! E12 drives a scripted [`FaultPlan`] against live burst-buffer
//! deployments: KV servers crash (losing their volatile contents),
//! restart empty, flap their links, or drop a fraction of transfers.
//! [`run_fault_scenario`] is the reusable cell runner — the fault-matrix
//! integration suite (`crates/bench/tests/faults.rs`) sweeps it across
//! {scheme} × {scenario} × {replication} with per-combination invariants.

use std::rc::Rc;
use std::time::Duration;

use bb_core::manager::chunk_key;
use bb_core::{AckMode, FileState, Scheme};
use simkit::{dur, FaultEvent, FaultPlan};
use workloads::{PayloadPool, SystemKind, Testbed, TestbedConfig};

use crate::experiments::ExpReport;
use crate::table::Table;
use crate::telemetry::{attach, capture_cell, CellTelemetry};

/// E9: node-local storage consumed per system for the same dataset.
pub fn e9_local_storage(trace: bool) -> ExpReport {
    let data: u64 = 512 << 20;
    let mut t = Table::new(
        "E9: node-local storage consumed for a 512 MiB dataset",
        &["system", "local bytes", "multiple of data"],
    );
    let mut shape = true;
    let mut telemetry = None;
    for kind in SystemKind::all_five() {
        let rep = kind == SystemKind::Bb(Scheme::HybridLocality);
        let tb = Testbed::build(kind, TestbedConfig::default());
        if rep && trace {
            tb.sim.tracer().enable();
        }
        let pool = PayloadPool::standard();
        let sim = tb.sim.clone();
        let (used, cell) = sim.block_on(async move {
            let fs_for = tb.fs_for();
            let w = fs_for(tb.nodes[0])
                .create("/e9/data")
                .await
                .expect("create");
            for piece in pool.stream(0, data, 1 << 20) {
                w.append(piece).await.expect("append");
            }
            w.close().await.expect("close");
            tb.drain_flush(&["/e9/data".into()]).await;
            let used = tb.local_storage_used();
            let cell = rep.then(|| capture_cell(&tb.sim));
            tb.shutdown();
            (used, cell)
        });
        if let Some(c) = cell {
            telemetry = Some(c);
        }
        let mult = used as f64 / data as f64;
        let expect = match kind {
            SystemKind::Hdfs => 3.0,
            SystemKind::Lustre => 0.0,
            SystemKind::Bb(Scheme::HybridLocality) => 1.0,
            SystemKind::Bb(_) => 0.0,
        };
        shape &= (mult - expect).abs() < 0.05;
        t.row(vec![
            kind.label().into(),
            format!("{} MiB", used >> 20),
            format!("{mult:.2}x"),
        ]);
    }
    t.note("paper: the buffered schemes eliminate (or reduce to one replica) the local storage HDFS demands");
    let mut report = ExpReport {
        id: "E9",
        table: t,
        shape_holds: shape,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// The four injected-fault shapes of the E12 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultScenario {
    /// Crash the most-loaded KV server mid-write; it never comes back.
    CrashOne,
    /// Crash the most-loaded KV server mid-write, restart it (empty)
    /// shortly after.
    CrashRestart,
    /// Flap the most-loaded KV server's link: 3 × (20 ms down / 50 ms
    /// cycle) starting mid-write. No state is lost.
    LinkFlap,
    /// Drop 1 % of every transfer to or from any KV server for the whole
    /// run (seeded draws — deterministic per plan seed).
    RpcLoss,
    /// Repeated at-rest corruption sweeps over every KV server: starting
    /// mid-write, each resident value has a 1 % chance per sweep of one
    /// silently flipped bit (seeded draws).
    CorruptValues,
    /// Corrupt 1 % of every transfer to or from any KV server in flight
    /// for the whole run (seeded draws).
    CorruptTransfers,
    /// The loss-window probe for relaxed ack modes: from t=0 every
    /// transfer *into* a non-victim KV server is delayed (holding async
    /// replica tails in flight), then the most-loaded server crashes
    /// mid-write. Chunks acked below full replication whose tails were
    /// still delay-held are recoverable only per the ack mode's contract.
    CrashAsyncReplica,
}

impl FaultScenario {
    /// All scenarios, matrix order.
    pub fn all() -> [FaultScenario; 7] {
        [
            FaultScenario::CrashOne,
            FaultScenario::CrashRestart,
            FaultScenario::LinkFlap,
            FaultScenario::RpcLoss,
            FaultScenario::CorruptValues,
            FaultScenario::CorruptTransfers,
            FaultScenario::CrashAsyncReplica,
        ]
    }

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultScenario::CrashOne => "crash one server",
            FaultScenario::CrashRestart => "crash + restart",
            FaultScenario::LinkFlap => "link flap",
            FaultScenario::RpcLoss => "1% rpc loss",
            FaultScenario::CorruptValues => "1% value corruption",
            FaultScenario::CorruptTransfers => "1% transfer corruption",
            FaultScenario::CrashAsyncReplica => "crash during async replication",
        }
    }
}

/// One cell of the fault matrix.
#[derive(Debug, Clone, Copy)]
pub struct FaultCase {
    /// Burst-buffer scheme under test.
    pub scheme: Scheme,
    /// Injected fault shape.
    pub scenario: FaultScenario,
    /// KV replicas per chunk (`r`).
    pub replication: usize,
    /// Write-ack durability mode ([`bb_core::BbConfig::bb_ack_mode`]).
    /// The default, [`AckMode::FullR`], is the seed behaviour.
    pub ack_mode: AckMode,
    /// Ack-ahead window for relaxed modes
    /// ([`bb_core::BbConfig::bb_ack_ahead`]).
    pub ack_ahead: usize,
    /// Fault-plan RNG seed (drives probabilistic drops).
    pub seed: u64,
    /// Shrink the dataset for CI-speed runs.
    pub quick: bool,
    /// Virtual-time convergence deadline in seconds. The default (120 s)
    /// out-waits every legitimate recovery; a deliberately tiny value
    /// forces a non-convergence verdict, which is how tests exercise the
    /// crash flight-recorder dump path.
    pub deadline_secs: u64,
}

impl FaultCase {
    /// A matrix cell with the default seed, deadline, and quick sizing.
    pub fn quick(scheme: Scheme, scenario: FaultScenario, replication: usize) -> FaultCase {
        FaultCase {
            scheme,
            scenario,
            replication,
            ack_mode: AckMode::FullR,
            ack_ahead: 8,
            seed: 0xE12,
            quick: true,
            deadline_secs: 120,
        }
    }
}

/// What one fault-matrix cell observed.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// The workload driver finished before the virtual-time deadline
    /// (the no-hang invariant).
    pub converged: bool,
    /// Final durability state (`None` when the driver did not converge).
    pub state: Option<FileState>,
    /// Chunks in the dataset.
    pub chunks_total: u64,
    /// Chunks the flusher declared lost (the data-loss window).
    pub chunks_lost: u64,
    /// Chunks persisted via the degraded direct path.
    pub chunks_direct: u64,
    /// Per-chunk read-back verifications attempted.
    pub reads_total: u64,
    /// Reads that returned the exact expected bytes.
    pub reads_ok: u64,
    /// `kv.retry.attempts` at end of run.
    pub retry_attempts: u64,
    /// `kv.failover.reads` at end of run.
    pub failover_reads: u64,
    /// Transfers dropped by the injected loss rules.
    pub dropped_transfers: u64,
    /// Transfers corrupted in flight by the injected corruption rules.
    pub corrupted_transfers: u64,
    /// Resident values damaged by at-rest corruption sweeps.
    pub corrupted_values: u64,
    /// Checksum verification failures observed (`bb.integrity.checksum_fail`).
    pub checksum_fails: u64,
    /// Bad copies the background scrubber rewrote (`bb.scrub.repaired`).
    pub scrub_repaired: u64,
    /// Bad copies with no good source left (`bb.scrub.unrepairable`).
    pub scrub_unrepairable: u64,
    /// Writes acked at a relaxed quorum (`bb.ack.quorum_acks`; 0 under
    /// the default [`AckMode::FullR`], whose counters never register).
    pub ack_quorum_acks: u64,
    /// Acks that could not honor their mode — a replica target down or
    /// an async tail exhausted its retries (`bb.ack.downgrade`).
    pub ack_downgrades: u64,
    /// Server crash events delivered.
    pub crashes: u64,
    /// Virtual time from the last scripted fault until the workload
    /// converged (recovery time; `None` without a scripted fault or
    /// convergence).
    pub recovery: Option<Duration>,
    /// Virtual end-of-run instant.
    pub end: simkit::Time,
    /// The applied fault timeline (`FaultInjector::timeline_text`) — the
    /// recovery-trace artifact.
    pub timeline: String,
    /// Full metrics snapshot JSON at end of run (byte-identical across
    /// same-seed runs — the determinism contract).
    pub metrics_json: String,
    /// The recorded per-key KV history is explainable by a sequential
    /// order ([`crate::consistency`]); misses are excused (crashes and
    /// eviction legally lose buffer copies — durability is judged by the
    /// read-back, not the KV tier).
    pub consistency_ok: bool,
    /// Checker violation descriptions when `consistency_ok` is false.
    pub consistency_violations: Vec<String>,
    /// Frozen flight-recorder dumps (`rdma-bb.flight.v1` JSON), one per
    /// trigger: non-convergence, a write failure, a consistency
    /// violation, or an unrepairable scrub verdict during the run. Empty
    /// on a clean cell. Byte-identical across same-seed runs.
    pub flight_dumps: Vec<String>,
}

impl FaultOutcome {
    /// Reads that failed or returned wrong bytes.
    pub fn reads_failed(&self) -> u64 {
        self.reads_total - self.reads_ok
    }

    /// Every byte of the dataset was read back intact.
    pub fn data_intact(&self) -> bool {
        self.converged && self.reads_ok == self.reads_total
    }
}

struct ScenarioEnd {
    state: FileState,
    reads_ok: u64,
    write_err: bool,
    end: simkit::Time,
}

/// Run one fault-matrix cell: write a dataset through the buffer while
/// the scripted fault plan fires, wait for the flusher's verdict, then
/// read every chunk back and verify it byte-for-byte.
pub fn run_fault_scenario(case: FaultCase) -> FaultOutcome {
    run_fault_scenario_telemetry(case, false).0
}

/// [`run_fault_scenario`] plus the representative-cell telemetry capture
/// (Chrome trace when `trace` is set).
pub fn run_fault_scenario_telemetry(
    case: FaultCase,
    trace: bool,
) -> (FaultOutcome, Option<CellTelemetry>) {
    let chunk_size: u64 = 512 << 10;
    let data: u64 = if case.quick { 16 << 20 } else { 48 << 20 };
    let chunks_total = data / chunk_size;
    // the write takes data / client_write_rate ≈ 0.3 s (quick) / 0.9 s;
    // faults land mid-write so the flush queue is live when they hit
    let fault_at = if case.quick {
        dur::ms(150)
    } else {
        dur::ms(450)
    };
    let restart_at = fault_at + dur::ms(200);

    let mut cfg = TestbedConfig {
        compute_nodes: 4,
        ..TestbedConfig::default()
    };
    cfg.bb.kv_replication = case.replication;
    cfg.bb.bb_ack_mode = case.ack_mode;
    cfg.bb.bb_ack_ahead = case.ack_ahead;
    // slow, narrow Lustre: the flush drains over seconds, keeping the
    // async fault window open across the injected faults
    cfg.lustre.oss_count = 1;
    cfg.lustre.osts_per_oss = 1;
    cfg.lustre.stripe_count = 1;
    cfg.lustre.ost_rate = 8e6;
    let tb = Testbed::build(SystemKind::Bb(case.scheme), cfg);
    if trace {
        tb.sim.tracer().enable();
    }
    // fault cells always fly the recorder: retries, poisonings,
    // failovers, pressure transitions, and every applied fault land in
    // bounded rings, frozen to a dump if the cell ends badly
    tb.sim.flight().enable(simkit::flight::DEFAULT_RING_LEN);
    let bb = Rc::clone(tb.bb.as_ref().expect("bb testbed"));
    let client = bb.client(tb.nodes[0]);
    // record every logical KV op the client issues; checked at end of run
    let history = crate::consistency::History::new();
    history.attach(client.kv());

    // Victim: the server owning the most chunk keys (ketama placement is
    // uneven; crashing an unloaded server would exercise nothing). The
    // first file created gets file_id 1.
    let mut owned = vec![0u64; bb.kv_servers.len()];
    for seq in 0..chunks_total {
        if let Ok(idx) = client.kv().route(&chunk_key(1, seq)) {
            owned[idx] += 1;
        }
    }
    let victim_idx = (0..owned.len()).max_by_key(|&i| owned[i]).unwrap_or(0);
    let victim = bb.kv_servers[victim_idx].node();

    let mut plan = FaultPlan::new(case.seed);
    let mut last_fault = Some(fault_at);
    match case.scenario {
        FaultScenario::CrashOne => {
            plan = plan.at(fault_at, FaultEvent::Crash { node: victim.0 });
        }
        FaultScenario::CrashRestart => {
            plan = plan
                .at(fault_at, FaultEvent::Crash { node: victim.0 })
                .at(restart_at, FaultEvent::Restart { node: victim.0 });
            last_fault = Some(restart_at);
        }
        FaultScenario::LinkFlap => {
            plan = plan.at(
                fault_at,
                FaultEvent::LinkFlap {
                    node: victim.0,
                    count: 3,
                    down: dur::ms(20),
                    period: dur::ms(50),
                },
            );
            last_fault = Some(fault_at + dur::ms(50) * 3);
        }
        FaultScenario::RpcLoss => {
            for s in &bb.kv_servers {
                plan = plan
                    .at(
                        Duration::ZERO,
                        FaultEvent::Loss {
                            src: Some(s.node().0),
                            dst: None,
                            p: 0.01,
                        },
                    )
                    .at(
                        Duration::ZERO,
                        FaultEvent::Loss {
                            src: None,
                            dst: Some(s.node().0),
                            p: 0.01,
                        },
                    );
            }
            last_fault = None;
        }
        FaultScenario::CorruptValues => {
            // 20 sweeps, 50 ms apart, per server: enough seeded 1% draws
            // over the resident set that some values reliably flip, while
            // the flush queue and the read phase are both still live
            let mut at = fault_at;
            for _ in 0..20 {
                for s in &bb.kv_servers {
                    plan = plan.at(
                        at,
                        FaultEvent::CorruptValue {
                            node: s.node().0,
                            p: 0.01,
                        },
                    );
                }
                at += dur::ms(50);
                last_fault = Some(at);
            }
        }
        FaultScenario::CorruptTransfers => {
            for s in &bb.kv_servers {
                plan = plan
                    .at(
                        Duration::ZERO,
                        FaultEvent::CorruptTransfer {
                            src: Some(s.node().0),
                            dst: None,
                            p: 0.01,
                        },
                    )
                    .at(
                        Duration::ZERO,
                        FaultEvent::CorruptTransfer {
                            src: None,
                            dst: Some(s.node().0),
                            p: 0.01,
                        },
                    );
            }
            last_fault = None;
        }
        FaultScenario::CrashAsyncReplica => {
            // hold the writer's transfers into the non-victim servers so
            // async replica tails are still in flight when the victim
            // (holding the only durable copy of quorum-acked chunks)
            // crashes. Only the writer's edges are delayed — the flusher
            // reads from the manager node at full speed, so it probes the
            // replicas inside the window where the tail has not landed
            // yet. The delay stays well under `kv_op_timeout` so tails
            // complete slowly rather than failing outright. The crash
            // lands later than the other scenarios': the victim-primary
            // chunks (the only ones acked fast, single-copy) must be
            // mid-flight when it fires.
            for s in &bb.kv_servers {
                if s.node() == victim {
                    continue;
                }
                plan = plan.at(
                    Duration::ZERO,
                    FaultEvent::Delay {
                        src: Some(tb.nodes[0].0),
                        dst: Some(s.node().0),
                        extra: dur::ms(200),
                    },
                );
            }
            let crash_at = dur::secs(5);
            plan = plan.at(crash_at, FaultEvent::Crash { node: victim.0 });
            last_fault = Some(crash_at);
        }
    }
    tb.sim.install_faults(plan);

    let pool = PayloadPool::standard();
    let expected: Rc<Vec<u8>> = Rc::new(
        pool.stream(9, data, 1 << 20)
            .iter()
            .flat_map(|b| b.iter().copied())
            .collect(),
    );
    let sim = tb.sim.clone();
    let driver_client = Rc::clone(&client);
    let driver_expected = Rc::clone(&expected);
    let driver_sim = sim.clone();
    let driver = sim.spawn(async move {
        let sim = driver_sim;
        let fail = |end| ScenarioEnd {
            state: FileState::Lost,
            reads_ok: 0,
            write_err: true,
            end,
        };
        let Ok(w) = driver_client.create("/e12/f").await else {
            return fail(sim.now());
        };
        for piece in pool.stream(9, data, 1 << 20) {
            if w.append(piece).await.is_err() {
                return fail(sim.now());
            }
        }
        if w.close().await.is_err() {
            return fail(sim.now());
        }
        let state = driver_client
            .wait_flushed("/e12/f")
            .await
            .unwrap_or(FileState::Lost);
        let mut reads_ok = 0;
        if let Ok(rd) = driver_client.open("/e12/f").await {
            for seq in 0..chunks_total {
                let off = seq * chunk_size;
                let len = chunk_size.min(data - off);
                if let Ok(b) = rd.read_at(off, len).await {
                    if b[..] == driver_expected[off as usize..(off + len) as usize] {
                        reads_ok += 1;
                    }
                }
            }
        }
        ScenarioEnd {
            state,
            reads_ok,
            write_err: false,
            end: sim.now(),
        }
    });
    // step the clock in 1 s slices so the run stops as soon as the driver
    // finishes instead of idling the background scrubber out to the full
    // deadline (run-to-quiescence would never return with it ticking)
    let deadline = tb.sim.now() + dur::secs(case.deadline_secs);
    while !driver.is_finished() && tb.sim.now() < deadline {
        let step = (tb.sim.now() + dur::secs(1)).min(deadline);
        crate::experiments::integrity::step_to(&tb.sim, step);
    }
    let converged = driver.is_finished();
    let finish = driver.try_take();

    let cell = capture_cell(&tb.sim);
    let metrics_json = cell.snapshot.to_json();
    let crashes: u64 = bb
        .kv_servers
        .iter()
        .map(|s| {
            cell.snapshot
                .counter(&format!("rkv.server{}.crashes", s.node().0))
        })
        .sum();
    let corrupted_values: u64 = bb
        .kv_servers
        .iter()
        .map(|s| {
            cell.snapshot
                .counter(&format!("rkv.server{}.corrupted", s.node().0))
        })
        .sum();
    let mgr = bb.manager.stats();
    let timeline = tb.sim.faults().timeline_text();
    let end = finish.as_ref().map(|f| f.end).unwrap_or(deadline);
    let recovery = match (&finish, last_fault) {
        (Some(f), Some(at)) if !f.write_err => (f.end - simkit::Time::ZERO).checked_sub(at),
        _ => None,
    };
    let verdict = history.check(crate::consistency::Checker { forbid_miss: false });
    // freeze the recorder on any bad ending (the unrepairable-scrub path
    // triggers from inside the manager on its own), then collect every
    // dump produced during the run
    let now_ns = tb.sim.now().as_nanos();
    if !converged {
        tb.sim
            .flight()
            .trigger(now_ns, "fault cell hung past the deadline");
    }
    if finish.as_ref().is_some_and(|f| f.write_err) {
        tb.sim.flight().trigger(now_ns, "fault cell write failed");
    }
    if !verdict.ok() {
        tb.sim.flight().trigger(
            now_ns,
            &format!("consistency violation: {:?}", verdict.violations),
        );
    }
    let flight_dumps: Vec<String> = tb
        .sim
        .flight()
        .dumps()
        .into_iter()
        .map(|(_, json)| json)
        .collect();
    let outcome = FaultOutcome {
        converged: converged && finish.as_ref().is_some_and(|f| !f.write_err),
        state: finish.as_ref().map(|f| f.state),
        chunks_total,
        chunks_lost: mgr.chunks_lost,
        chunks_direct: mgr.chunks_direct,
        reads_total: chunks_total,
        reads_ok: finish.as_ref().map(|f| f.reads_ok).unwrap_or(0),
        retry_attempts: cell.snapshot.counter("kv.retry.attempts"),
        failover_reads: cell.snapshot.counter("kv.failover.reads"),
        dropped_transfers: cell.snapshot.counter("netsim.fabric.dropped"),
        corrupted_transfers: cell.snapshot.counter("rdma.corrupted"),
        corrupted_values,
        checksum_fails: cell.snapshot.counter("bb.integrity.checksum_fail"),
        scrub_repaired: cell.snapshot.counter("bb.scrub.repaired"),
        scrub_unrepairable: cell.snapshot.counter("bb.scrub.unrepairable"),
        ack_quorum_acks: cell.snapshot.counter("bb.ack.quorum_acks"),
        ack_downgrades: cell.snapshot.counter("bb.ack.downgrade"),
        crashes,
        recovery,
        end,
        timeline,
        metrics_json,
        consistency_ok: verdict.ok(),
        consistency_violations: verdict.violations,
        flight_dumps,
    };
    // persist dumps under the workspace-root target/ (anchored via the
    // manifest dir — test binaries run with CWD = crate root) so a
    // failing CI run can upload them as artifacts
    if !outcome.flight_dumps.is_empty() {
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/flight-recorder");
        if std::fs::create_dir_all(&dir).is_ok() {
            for (i, dump) in outcome.flight_dumps.iter().enumerate() {
                let name = format!(
                    "{}-{}-r{}-seed{:x}-{i}.json",
                    case.scheme.label().replace(' ', "_"),
                    case.scenario.label().replace(' ', "_"),
                    case.replication,
                    case.seed
                );
                let _ = std::fs::write(dir.join(name), dump);
            }
        }
    }
    tb.shutdown();
    (outcome, Some(cell))
}

/// E12: scripted fault plans against every scheme — availability,
/// recovery time, and the size of the data-loss window.
pub fn e12_fault_tolerance(quick: bool, trace: bool) -> ExpReport {
    e12_with_artifacts(quick, trace).0
}

/// [`e12_fault_tolerance`] plus the representative cell's recovery-trace
/// timeline (the `--timeline` artifact of `repro_e12`).
pub fn e12_with_artifacts(quick: bool, trace: bool) -> (ExpReport, String) {
    let mut t = Table::new(
        "E12: fault injection — availability and recovery",
        &["scenario", "outcome", "detail"],
    );
    let mut shape = true;

    // --- scenario 1: HDFS DataNode death → re-replication ---
    {
        let tb = Testbed::build(SystemKind::Hdfs, TestbedConfig::default());
        let pool = PayloadPool::standard();
        let sim = tb.sim.clone();
        let (recovered, repl_cmds, dt) = sim.block_on(async move {
            let fs_for = tb.fs_for();
            let w = fs_for(tb.nodes[0]).create("/e12/h").await.unwrap();
            for piece in pool.stream(1, 256 << 20, 1 << 20) {
                w.append(piece).await.unwrap();
            }
            w.close().await.unwrap();
            let hdfs = tb.hdfs.as_ref().unwrap();
            // kill the node holding the writer-local replicas
            hdfs.dn_on(tb.nodes[0]).unwrap().kill();
            let t0 = tb.sim.now();
            // wait for detection + re-replication
            tb.sim.sleep(dur::secs(60)).await;
            let stats = hdfs.nn.stats();
            let r = fs_for(tb.nodes[1]).open("/e12/h").await.unwrap();
            let ok = r.read_all().await.map(|b| b.len() as u64) == Ok(256 << 20);
            let recovered = stats.under_replicated == 0;
            tb.shutdown();
            (
                ok && recovered,
                stats.replications_issued,
                (tb.sim.now() - t0).as_secs_f64(),
            )
        });
        shape &= recovered;
        t.row(vec![
            "HDFS: kill 1 of 16 DataNodes".into(),
            if recovered {
                "recovered".into()
            } else {
                "DEGRADED".into()
            },
            format!("{repl_cmds} re-replications within {dt:.0}s window"),
        ]);
    }

    let case = |scheme, scenario, replication| FaultCase {
        quick,
        ..FaultCase::quick(scheme, scenario, replication)
    };
    let row_label = |scheme: Scheme, scenario: FaultScenario, r: usize| {
        format!("{}: {} (r={r})", scheme.label(), scenario.label())
    };
    let state_label = |o: &FaultOutcome| match o.state {
        _ if !o.converged => "HUNG".to_string(),
        Some(s) => format!("{s:?}"),
        None => "write failed".to_string(),
    };

    // --- crash one server, r=1, all three schemes ---
    for scheme in Scheme::all() {
        let o = run_fault_scenario(case(scheme, FaultScenario::CrashOne, 1));
        let ok = match scheme {
            // async single-copy: losing the buffer node may lose exactly
            // the unflushed window, never silently (failed reads are
            // accounted by chunks_lost > 0)
            Scheme::AsyncLustre => {
                o.converged && (o.reads_failed() == 0 || o.chunks_lost > 0) && o.crashes == 1
            }
            // write-through: zero loss, every read served
            Scheme::SyncLustre => o.converged && o.chunks_lost == 0 && o.data_intact(),
            // locality scheme: node-local replica covers every read
            Scheme::HybridLocality => o.converged && o.data_intact(),
        };
        shape &= ok;
        t.row(vec![
            row_label(scheme, FaultScenario::CrashOne, 1),
            state_label(&o),
            format!(
                "{} of {} chunks lost; {}/{} reads ok; {} retries",
                o.chunks_lost, o.chunks_total, o.reads_ok, o.reads_total, o.retry_attempts
            ),
        ]);
    }

    // --- crash one server with r=2: replication closes the window ---
    {
        let o = run_fault_scenario(case(Scheme::AsyncLustre, FaultScenario::CrashOne, 2));
        let ok = o.converged && o.chunks_lost == 0 && o.data_intact() && o.failover_reads > 0;
        shape &= ok;
        t.row(vec![
            row_label(Scheme::AsyncLustre, FaultScenario::CrashOne, 2),
            state_label(&o),
            format!(
                "0 lost; {}/{} reads ok via {} failovers",
                o.reads_ok, o.reads_total, o.failover_reads
            ),
        ]);
    }

    // --- crash + restart (the representative cell: full fault lifecycle) ---
    let timeline;
    let telemetry;
    {
        let (o, cell) = run_fault_scenario_telemetry(
            case(Scheme::AsyncLustre, FaultScenario::CrashRestart, 1),
            trace,
        );
        timeline = o.timeline.clone();
        telemetry = cell;
        let ok = o.converged && (o.reads_failed() == 0 || o.chunks_lost > 0) && o.crashes == 1;
        shape &= ok;
        let rec = o.recovery.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN);
        t.row(vec![
            row_label(Scheme::AsyncLustre, FaultScenario::CrashRestart, 1),
            state_label(&o),
            format!(
                "{} lost; recovered {rec:.1}s after restart (restarted server is empty)",
                o.chunks_lost
            ),
        ]);
    }

    // --- link flap: retries absorb it, nothing is lost from the buffer ---
    {
        let o = run_fault_scenario(case(Scheme::AsyncLustre, FaultScenario::LinkFlap, 1));
        let ok = o.converged && o.data_intact();
        shape &= ok;
        t.row(vec![
            row_label(Scheme::AsyncLustre, FaultScenario::LinkFlap, 1),
            state_label(&o),
            format!(
                "{}/{} reads ok; {} retries, {} direct writes rode out the flap",
                o.reads_ok, o.reads_total, o.retry_attempts, o.chunks_direct
            ),
        ]);
    }

    // --- 1% transfer loss: bounded backoff hides it completely ---
    {
        let o = run_fault_scenario(case(Scheme::AsyncLustre, FaultScenario::RpcLoss, 1));
        let ok = o.converged && o.chunks_lost == 0 && o.data_intact();
        shape &= ok;
        t.row(vec![
            row_label(Scheme::AsyncLustre, FaultScenario::RpcLoss, 1),
            state_label(&o),
            format!(
                "{} transfers dropped, {} retries, zero loss",
                o.dropped_transfers, o.retry_attempts
            ),
        ]);
    }

    t.note("paper: the sync scheme trades write speed for a closed fault window; async risks only not-yet-flushed data");
    t.note("replication r=2 closes the async window too, at the cost of double buffer traffic");
    let mut report = ExpReport {
        id: "E12",
        table: t,
        shape_holds: shape,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    (report, timeline)
}
