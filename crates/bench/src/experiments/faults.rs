//! E9/E12: the local-storage table and the fault-tolerance experiment.

use bb_core::{FileState, Scheme};
use simkit::dur;
use workloads::{PayloadPool, SystemKind, Testbed, TestbedConfig};

use crate::experiments::ExpReport;
use crate::table::Table;
use crate::telemetry::{attach, capture_cell, CellTelemetry};

/// E9: node-local storage consumed per system for the same dataset.
pub fn e9_local_storage(trace: bool) -> ExpReport {
    let data: u64 = 512 << 20;
    let mut t = Table::new(
        "E9: node-local storage consumed for a 512 MiB dataset",
        &["system", "local bytes", "multiple of data"],
    );
    let mut shape = true;
    let mut telemetry = None;
    for kind in SystemKind::all_five() {
        let rep = kind == SystemKind::Bb(Scheme::HybridLocality);
        let tb = Testbed::build(kind, TestbedConfig::default());
        if rep && trace {
            tb.sim.tracer().enable();
        }
        let pool = PayloadPool::standard();
        let sim = tb.sim.clone();
        let (used, cell) = sim.block_on(async move {
            let fs_for = tb.fs_for();
            let w = fs_for(tb.nodes[0])
                .create("/e9/data")
                .await
                .expect("create");
            for piece in pool.stream(0, data, 1 << 20) {
                w.append(piece).await.expect("append");
            }
            w.close().await.expect("close");
            tb.drain_flush(&["/e9/data".into()]).await;
            let used = tb.local_storage_used();
            let cell = rep.then(|| capture_cell(&tb.sim));
            tb.shutdown();
            (used, cell)
        });
        if let Some(c) = cell {
            telemetry = Some(c);
        }
        let mult = used as f64 / data as f64;
        let expect = match kind {
            SystemKind::Hdfs => 3.0,
            SystemKind::Lustre => 0.0,
            SystemKind::Bb(Scheme::HybridLocality) => 1.0,
            SystemKind::Bb(_) => 0.0,
        };
        shape &= (mult - expect).abs() < 0.05;
        t.row(vec![
            kind.label().into(),
            format!("{} MiB", used >> 20),
            format!("{mult:.2}x"),
        ]);
    }
    t.note("paper: the buffered schemes eliminate (or reduce to one replica) the local storage HDFS demands");
    let mut report = ExpReport {
        id: "E9",
        table: t,
        shape_holds: shape,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// E12: kill storage nodes mid-experiment and report what survives.
pub fn e12_fault_tolerance(trace: bool) -> ExpReport {
    let mut t = Table::new(
        "E12: fault injection — availability and recovery",
        &["scenario", "outcome", "detail"],
    );
    let mut shape = true;

    // --- scenario 1: HDFS DataNode death → re-replication ---
    {
        let tb = Testbed::build(SystemKind::Hdfs, TestbedConfig::default());
        let pool = PayloadPool::standard();
        let sim = tb.sim.clone();
        let (recovered, repl_cmds, dt) = sim.block_on(async move {
            let fs_for = tb.fs_for();
            let w = fs_for(tb.nodes[0]).create("/e12/h").await.unwrap();
            for piece in pool.stream(1, 256 << 20, 1 << 20) {
                w.append(piece).await.unwrap();
            }
            w.close().await.unwrap();
            let hdfs = tb.hdfs.as_ref().unwrap();
            // kill the node holding the writer-local replicas
            hdfs.dn_on(tb.nodes[0]).unwrap().kill();
            let t0 = tb.sim.now();
            // wait for detection + re-replication
            tb.sim.sleep(dur::secs(60)).await;
            let stats = hdfs.nn.stats();
            let r = fs_for(tb.nodes[1]).open("/e12/h").await.unwrap();
            let ok = r.read_all().await.map(|b| b.len() as u64) == Ok(256 << 20);
            let recovered = stats.under_replicated == 0;
            tb.shutdown();
            (
                ok && recovered,
                stats.replications_issued,
                (tb.sim.now() - t0).as_secs_f64(),
            )
        });
        shape &= recovered;
        t.row(vec![
            "HDFS: kill 1 of 16 DataNodes".into(),
            if recovered {
                "recovered".into()
            } else {
                "DEGRADED".into()
            },
            format!("{repl_cmds} re-replications within {dt:.0}s window"),
        ]);
    }

    // --- scenario 2: BB-Async, buffer dies with a deep flush queue ---
    // (the representative cell: the crash path exercises the manager's
    // loss accounting)
    let telemetry;
    {
        let ((state, lost), cell) = bb_crash_telemetry(Scheme::AsyncLustre, true, true, trace);
        telemetry = cell;
        let ok = state == FileState::Lost && lost > 0;
        shape &= ok;
        t.row(vec![
            "BB-Async: kill buffer, slow Lustre".into(),
            format!("{state:?}"),
            format!("{lost} unflushed chunks lost (the async fault window)"),
        ]);
    }

    // --- scenario 3: BB-Sync, same crash ---
    {
        let (state, lost) = bb_crash(Scheme::SyncLustre, true);
        let ok = state == FileState::Flushed && lost == 0;
        shape &= ok;
        t.row(vec![
            "BB-Sync: kill buffer, slow Lustre".into(),
            format!("{state:?}"),
            "write-through: every byte already durable".into(),
        ]);
    }

    // --- scenario 4: BB-Async with healthy Lustre (flush wins the race) ---
    {
        let (state, lost) = bb_crash(Scheme::AsyncLustre, false);
        let ok = state == FileState::Flushed && lost == 0;
        shape &= ok;
        t.row(vec![
            "BB-Async: kill buffer, healthy Lustre".into(),
            format!("{state:?}"),
            "flush completed before the crash".into(),
        ]);
    }

    t.note("paper: the sync scheme trades write speed for a closed fault window; async risks only not-yet-flushed data");
    let mut report = ExpReport {
        id: "E12",
        table: t,
        shape_holds: shape,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// Write 256 MiB, crash every KV server at close, report (state, chunks lost).
fn bb_crash(scheme: Scheme, slow_lustre: bool) -> (FileState, u64) {
    let (out, _) = bb_crash_telemetry(scheme, slow_lustre, false, false);
    out
}

fn bb_crash_telemetry(
    scheme: Scheme,
    slow_lustre: bool,
    capture: bool,
    trace: bool,
) -> ((FileState, u64), Option<CellTelemetry>) {
    let mut cfg = TestbedConfig::default();
    if slow_lustre {
        cfg.lustre.ost_rate = 5e6;
    }
    let tb = Testbed::build(SystemKind::Bb(scheme), cfg);
    if trace {
        tb.sim.tracer().enable();
    }
    let pool = PayloadPool::standard();
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let bb = tb.bb.as_ref().unwrap();
        let client = bb.client(tb.nodes[0]);
        let w = client.create("/e12/bb").await.unwrap();
        for piece in pool.stream(9, 256 << 20, 1 << 20) {
            w.append(piece).await.unwrap();
        }
        w.close().await.unwrap();
        if !slow_lustre {
            // let the flusher finish first
            let _ = client.wait_flushed("/e12/bb").await;
        }
        for s in &bb.kv_servers {
            tb.fabric.set_up(s.node(), false);
        }
        let state = client.wait_flushed("/e12/bb").await.unwrap();
        let lost = bb.manager.stats().chunks_lost;
        let cell = capture.then(|| capture_cell(&tb.sim));
        tb.shutdown();
        ((state, lost), cell)
    })
}
