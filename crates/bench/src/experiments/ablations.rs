//! AB1–AB5: ablations of the design choices DESIGN.md calls out —
//! transport, chunk size, flusher parallelism, placement strategy, and
//! the read-path pipeline window.

use rayon::prelude::*;

use netsim::TransportProfile;
use rkv::HashRing;
use workloads::testdfsio::DfsioConfig;
use workloads::{SystemKind, TestbedConfig};

use crate::experiments::dfsio::dfsio_cell_telemetry;
use crate::experiments::ExpReport;
use crate::table::{mbps, ratio, secs, Table};
use crate::telemetry::{attach, capture_cell, CellTelemetry};

fn base_dfsio(quick: bool) -> DfsioConfig {
    DfsioConfig {
        files: 16,
        file_size: if quick { 64 << 20 } else { 128 << 20 },
        ..DfsioConfig::default()
    }
}

/// AB1: the same burst buffer over verbs / IPoIB / 10GigE, hybrid vs
/// SEND-only protocol — isolating what RDMA buys.
pub fn ab1_transport(quick: bool, trace: bool) -> ExpReport {
    struct Variant {
        name: &'static str,
        profile: TransportProfile,
        one_sided: bool,
    }
    let variants = [
        Variant {
            name: "verbs + one-sided",
            profile: TransportProfile::verbs_qdr(),
            one_sided: true,
        },
        Variant {
            name: "verbs SEND-only",
            profile: TransportProfile::verbs_qdr(),
            one_sided: false,
        },
        Variant {
            name: "ipoib + one-sided",
            profile: TransportProfile::ipoib_qdr(),
            one_sided: true,
        },
        Variant {
            name: "10gige + one-sided",
            profile: TransportProfile::ten_gige(),
            one_sided: true,
        },
    ];
    let dfsio = base_dfsio(quick);
    let raw: Vec<(usize, f64, f64, Option<CellTelemetry>)> = (0..variants.len())
        .into_par_iter()
        .map(|i| {
            let v = &variants[i];
            let mut cfg = TestbedConfig::default();
            cfg.bb.transport = v.profile;
            cfg.bb.one_sided = v.one_sided;
            // lift the client cap so transport differences show
            cfg.bb.client_write_rate = 3.0e9;
            cfg.bb.client_read_rate = 3.0e9;
            let rep = i == 0;
            let (w, r, _, cell) = dfsio_cell_telemetry(
                SystemKind::Bb(bb_core::Scheme::AsyncLustre),
                cfg,
                dfsio.clone(),
                rep && trace,
            );
            (i, w, r, rep.then_some(cell))
        })
        .collect();
    let mut telemetry = None;
    let results: Vec<(usize, f64, f64)> = raw
        .into_iter()
        .map(|(i, w, r, cell)| {
            if let Some(c) = cell {
                telemetry = Some(c);
            }
            (i, w, r)
        })
        .collect();
    let mut t = Table::new(
        "AB1: transport/protocol ablation — BB-Async DFSIO MB/s (client cap lifted)",
        &["variant", "write MB/s", "read MB/s"],
    );
    for (i, w, r) in &results {
        t.row(vec![variants[*i].name.into(), mbps(*w), mbps(*r)]);
    }
    let verbs_r = results[0].2;
    let ipoib_r = results[2].2;
    t.note(format!(
        "RDMA verbs reads beat IPoIB by {} — the paper's core premise",
        ratio(verbs_r / ipoib_r)
    ));
    let mut report = ExpReport {
        id: "AB1",
        table: t,
        shape_holds: verbs_r > ipoib_r * 1.5,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// AB2: chunk-size sweep for the block→KV key schema.
pub fn ab2_chunk_size(quick: bool, trace: bool) -> ExpReport {
    // the top size stays under the 1 MiB item limit (key + header fit too)
    const NEAR_MAX: u64 = (1 << 20) - (4 << 10);
    let sizes: &[u64] = if quick {
        &[64 << 10, 512 << 10, NEAR_MAX]
    } else {
        &[64 << 10, 128 << 10, 256 << 10, 512 << 10, NEAR_MAX]
    };
    let dfsio = base_dfsio(quick);
    let raw: Vec<(u64, f64, f64, Option<CellTelemetry>)> = sizes
        .par_iter()
        .map(|&chunk| {
            let mut cfg = TestbedConfig::default();
            cfg.bb.chunk_size = chunk;
            cfg.bb.client_write_rate = 3.0e9;
            cfg.bb.client_read_rate = 3.0e9;
            let rep = chunk == 512 << 10;
            let (w, r, _, cell) = dfsio_cell_telemetry(
                SystemKind::Bb(bb_core::Scheme::AsyncLustre),
                cfg,
                dfsio.clone(),
                rep && trace,
            );
            (chunk, w, r, rep.then_some(cell))
        })
        .collect();
    let mut telemetry = None;
    let results: Vec<(u64, f64, f64)> = raw
        .into_iter()
        .map(|(c, w, r, cell)| {
            if let Some(t) = cell {
                telemetry = Some(t);
            }
            (c, w, r)
        })
        .collect();
    let mut t = Table::new(
        "AB2: KV chunk-size sweep — BB-Async DFSIO MB/s (client cap lifted)",
        &["chunk", "write MB/s", "read MB/s"],
    );
    let mut best = (0u64, 0.0f64);
    for (c, w, r) in &results {
        if *w > best.1 {
            best = (*c, *w);
        }
        t.row(vec![format!("{} KiB", c >> 10), mbps(*w), mbps(*r)]);
    }
    t.note(format!(
        "small chunks pay per-op overhead; the default 512 KiB sits near the knee (best here: {} KiB)",
        best.0 >> 10
    ));
    // shape: the largest chunk should beat the smallest on writes
    let smallest = results.first().unwrap().1;
    let largest = results.last().unwrap().1;
    let mut report = ExpReport {
        id: "AB2",
        table: t,
        shape_holds: largest > smallest,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// AB3: persistence-manager flush parallelism vs time-to-durable.
pub fn ab3_flushers(quick: bool, trace: bool) -> ExpReport {
    use workloads::{PayloadPool, Testbed};
    let counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };
    let largest = *counts.last().unwrap();
    let raw: Vec<(usize, f64, Option<CellTelemetry>)> = counts
        .par_iter()
        .map(|&n| {
            let rep = n == largest;
            let mut cfg = TestbedConfig::default();
            cfg.bb.flusher_threads = n;
            let tb = Testbed::build(SystemKind::Bb(bb_core::Scheme::AsyncLustre), cfg);
            if rep && trace {
                tb.sim.tracer().enable();
            }
            let pool = PayloadPool::standard();
            let sim = tb.sim.clone();
            let (t, cell) = sim.block_on(async move {
                let bb = tb.bb.as_ref().unwrap();
                let client = bb.client(tb.nodes[0]);
                // 16 files burst, then measure time until all durable
                let t0 = tb.sim.now();
                let mut paths = Vec::new();
                for f in 0..16 {
                    let path = format!("/ab3/f{f}");
                    let w = bb
                        .client(tb.nodes[f % tb.nodes.len()])
                        .create(&path)
                        .await
                        .unwrap();
                    for piece in pool.stream(f as u64, 64 << 20, 1 << 20) {
                        w.append(piece).await.unwrap();
                    }
                    w.close().await.unwrap();
                    paths.push(path);
                }
                for p in &paths {
                    client.wait_flushed(p).await.unwrap();
                }
                let dt = (tb.sim.now() - t0).as_secs_f64();
                let cell = rep.then(|| capture_cell(&tb.sim));
                tb.shutdown();
                (dt, cell)
            });
            (n, t, cell)
        })
        .collect();
    let mut telemetry = None;
    let results: Vec<(usize, f64)> = raw
        .into_iter()
        .map(|(n, t, cell)| {
            if let Some(c) = cell {
                telemetry = Some(c);
            }
            (n, t)
        })
        .collect();
    let mut t = Table::new(
        "AB3: flusher parallelism — time until a 1 GiB burst is durable (s)",
        &["flushers", "time to durable (s)", "speedup"],
    );
    let base = results[0].1;
    for (n, dt) in &results {
        t.row(vec![n.to_string(), format!("{dt:.2}"), ratio(base / dt)]);
    }
    t.note("more flush streams drain the buffer faster until Lustre saturates");
    let last = results.last().unwrap().1;
    let mut report = ExpReport {
        id: "AB3",
        table: t,
        shape_holds: last <= base * 1.01,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// AB5: read-window sweep on the E4 workload — how deep the pipelined
/// tiered read path must run before the fabric egress saturates.
pub fn ab5_read_window(quick: bool, trace: bool) -> ExpReport {
    let windows: &[usize] = if quick {
        &[1, 4, 8, 32]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let dfsio = base_dfsio(quick);
    let raw: Vec<(
        usize,
        f64,
        Option<bb_core::ReadStats>,
        Option<CellTelemetry>,
    )> = windows
        .par_iter()
        .map(|&w| {
            let mut cfg = TestbedConfig::default();
            cfg.bb.read_window = w;
            let rep = w == 8;
            let (_, r, stats, cell) = dfsio_cell_telemetry(
                SystemKind::Bb(bb_core::Scheme::AsyncLustre),
                cfg,
                dfsio.clone(),
                rep && trace,
            );
            (w, r, stats, rep.then_some(cell))
        })
        .collect();
    let mut telemetry = None;
    let results: Vec<(usize, f64, Option<bb_core::ReadStats>)> = raw
        .into_iter()
        .map(|(w, r, stats, cell)| {
            if let Some(c) = cell {
                telemetry = Some(c);
            }
            (w, r, stats)
        })
        .collect();
    let mut t = Table::new(
        "AB5: read-window sweep — BB-Async DFSIO READ MB/s (buffer-hot, E4 workload)",
        &[
            "window",
            "read MB/s",
            "vs window 1",
            "avg GET batch",
            "stalls",
        ],
    );
    let base = results[0].1;
    for (w, r, stats) in &results {
        let (batch, stalls) = stats
            .as_ref()
            .map(|s| (s.avg_batch(), s.readahead_stalls))
            .unwrap_or((0.0, 0));
        t.row(vec![
            w.to_string(),
            mbps(*r),
            ratio(r / base),
            format!("{batch:.1}"),
            stalls.to_string(),
        ]);
    }
    // shape: throughput is monotone (within noise) in the window, then
    // saturates — each step is no worse than 97% of the previous one,
    // and the default window 8 is a real win over serial
    let mut monotone = true;
    for pair in results.windows(2) {
        monotone &= pair[1].1 >= pair[0].1 * 0.97;
    }
    let w8 = results
        .iter()
        .find(|(w, _, _)| *w == 8)
        .map(|(_, r, _)| *r)
        .unwrap_or(0.0);
    t.note(format!(
        "window 8 reads at {} of serial; deeper windows add little once \
         the {}-server fabric egress is saturated",
        ratio(w8 / base),
        TestbedConfig::default().bb.kv_servers
    ));
    let mut report = ExpReport {
        id: "AB5",
        table: t,
        shape_holds: monotone && w8 > base * 1.3,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// AB4: ketama consistent hashing vs modulo placement on membership change.
pub fn ab4_placement() -> ExpReport {
    let keys: Vec<String> = (0..60_000)
        .map(|i| format!("blk_{i}_c{}", i % 13))
        .collect();
    let build_ring = |n: usize| {
        let members: Vec<usize> = (0..n).collect();
        let labels: Vec<String> = (0..n).map(|i| format!("kv-server-{i}")).collect();
        HashRing::new(members, &labels, 160)
    };
    let modulo = |n: usize, key: &str| (rkv::fnv1a(key.as_bytes()) % n as u64) as usize;

    let mut t = Table::new(
        "AB4: placement — keys remapped when growing the buffer layer",
        &[
            "transition",
            "ketama remap %",
            "modulo remap %",
            "ketama max-load skew",
        ],
    );
    let mut shape = true;
    for (from, to) in [(4usize, 5usize), (8, 9), (8, 12)] {
        let ring_a = build_ring(from);
        let ring_b = build_ring(to);
        let mut moved_k = 0;
        let mut moved_m = 0;
        let mut load = vec![0usize; to];
        for k in &keys {
            if ring_a.route(k.as_bytes()) != ring_b.route(k.as_bytes()) {
                moved_k += 1;
            }
            if modulo(from, k) != modulo(to, k) {
                moved_m += 1;
            }
            load[*ring_b.route(k.as_bytes())] += 1;
        }
        let pk = moved_k as f64 / keys.len() as f64 * 100.0;
        let pm = moved_m as f64 / keys.len() as f64 * 100.0;
        let ideal = keys.len() as f64 / to as f64;
        let skew = load.iter().copied().max().unwrap() as f64 / ideal;
        shape &= pk < pm / 2.0;
        t.row(vec![
            format!("{from} → {to} servers"),
            format!("{pk:.1}%"),
            format!("{pm:.1}%"),
            format!("{skew:.2}x"),
        ]);
    }
    t.note("consistent hashing moves ~1/n of keys; modulo reshuffles most of the keyspace");
    // AB4 is a pure hashing study: no simulation, so no telemetry.
    ExpReport {
        id: "AB4",
        table: t,
        shape_holds: shape,
        metrics: None,
        trace: None,
    }
}

/// One AB6 cell: write the E4-style dataset, then run the read phase
/// with the tracer on. Returns the read throughput, the number of
/// read-path fetch spans, their summed duration ("busy"), the length of
/// their union on the virtual timeline ("wall"), and the cell
/// telemetry with the Chrome trace attached. busy/wall > 1 is fetch
/// concurrency — the overlap the readahead pipeline exists to create.
fn traced_read_cell(read_window: usize, quick: bool) -> (f64, usize, u64, u64, CellTelemetry) {
    use workloads::{PayloadPool, Testbed};
    let mut cfg = TestbedConfig::default();
    cfg.bb.read_window = read_window;
    let dfsio = base_dfsio(quick);
    let tb = Testbed::build(SystemKind::Bb(bb_core::Scheme::AsyncLustre), cfg);
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let pool = PayloadPool::standard();
        workloads::testdfsio::write(&tb.sim, &tb.nodes, &fs_for, &pool, &dfsio)
            .await
            .expect("write phase");
        // trace only the read phase: the question is how fetches overlap
        tb.sim.tracer().enable();
        let r = workloads::testdfsio::read(&tb.sim, &tb.nodes, &fs_for, &pool, &dfsio, false)
            .await
            .expect("read phase");
        tb.sim.tracer().disable();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        tb.sim.tracer().for_each_event(|e| {
            if e.cat == "bb" && (e.name == "bb.run_group" || e.name == "bb.fetch_chunk") {
                spans.push((e.ts_ns, e.ts_ns + e.dur_ns));
            }
        });
        spans.sort_unstable();
        let busy: u64 = spans.iter().map(|(a, b)| b - a).sum();
        let mut wall = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        for &(a, b) in &spans {
            match &mut cur {
                Some((_, ce)) if a <= *ce => *ce = (*ce).max(b),
                _ => {
                    if let Some((cs, ce)) = cur {
                        wall += ce - cs;
                    }
                    cur = Some((a, b));
                }
            }
        }
        if let Some((cs, ce)) = cur {
            wall += ce - cs;
        }
        let cell = CellTelemetry {
            snapshot: tb.sim.metrics().snapshot(),
            trace: Some(tb.sim.tracer().export_chrome()),
        };
        tb.shutdown();
        (r.aggregate.mb_per_sec(), spans.len(), busy, wall, cell)
    })
}

/// AB6: the tracer demonstration — span-level evidence that the
/// pipelined read path actually overlaps chunk fetches. The pipelined
/// run's Chrome trace rides on the report (`repro_ab6 --trace out.json`
/// then load in Perfetto).
pub fn ab6_readahead_trace(quick: bool) -> ExpReport {
    let variants: [(&str, usize); 2] = [("serial (window 1)", 1), ("pipelined (window 8)", 8)];
    let results: Vec<(&str, f64, usize, u64, u64, CellTelemetry)> = variants
        .par_iter()
        .map(|&(label, w)| {
            let (r, spans, busy, wall, cell) = traced_read_cell(w, quick);
            (label, r, spans, busy, wall, cell)
        })
        .collect();
    let mut t = Table::new(
        "AB6: readahead overlap — read-phase fetch spans on the virtual timeline",
        &[
            "variant",
            "read MB/s",
            "fetch spans",
            "busy (s)",
            "wall (s)",
            "overlap",
        ],
    );
    let mut overlaps = Vec::new();
    for (label, r, spans, busy, wall, _) in &results {
        let overlap = *busy as f64 / (*wall).max(1) as f64;
        overlaps.push(overlap);
        t.row(vec![
            (*label).into(),
            mbps(*r),
            spans.to_string(),
            secs(*busy as f64 / 1e9),
            secs(*wall as f64 / 1e9),
            format!("{overlap:.2}x"),
        ]);
    }
    let (serial_overlap, pipe_overlap) = (overlaps[0], overlaps[1]);
    let (serial_r, pipe_r) = (results[0].1, results[1].1);
    t.note(format!(
        "overlap = concurrent fetch spans on the virtual timeline; window 1 keeps {serial_overlap:.1} in flight (the reader tasks alone), readahead raises that to {pipe_overlap:.1} and reads run {} faster",
        ratio(pipe_r / serial_r)
    ));
    // the traced pipelined run is the representative cell
    let telemetry = results.into_iter().nth(1).map(|(_, _, _, _, _, c)| c);
    let mut report = ExpReport {
        id: "AB6",
        table: t,
        shape_holds: pipe_overlap > serial_overlap * 1.1 && pipe_overlap > 1.2 && pipe_r > serial_r,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}
