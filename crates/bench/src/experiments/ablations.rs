//! AB1–AB5: ablations of the design choices DESIGN.md calls out —
//! transport, chunk size, flusher parallelism, placement strategy, and
//! the read-path pipeline window.

use rayon::prelude::*;

use netsim::TransportProfile;
use rkv::HashRing;
use workloads::testdfsio::DfsioConfig;
use workloads::{SystemKind, TestbedConfig};

use crate::experiments::dfsio::{dfsio_cell, dfsio_cell_stats};
use crate::experiments::ExpReport;
use crate::table::{mbps, ratio, Table};

fn base_dfsio(quick: bool) -> DfsioConfig {
    DfsioConfig {
        files: 16,
        file_size: if quick { 64 << 20 } else { 128 << 20 },
        ..DfsioConfig::default()
    }
}

/// AB1: the same burst buffer over verbs / IPoIB / 10GigE, hybrid vs
/// SEND-only protocol — isolating what RDMA buys.
pub fn ab1_transport(quick: bool) -> ExpReport {
    struct Variant {
        name: &'static str,
        profile: TransportProfile,
        one_sided: bool,
    }
    let variants = [
        Variant {
            name: "verbs + one-sided",
            profile: TransportProfile::verbs_qdr(),
            one_sided: true,
        },
        Variant {
            name: "verbs SEND-only",
            profile: TransportProfile::verbs_qdr(),
            one_sided: false,
        },
        Variant {
            name: "ipoib + one-sided",
            profile: TransportProfile::ipoib_qdr(),
            one_sided: true,
        },
        Variant {
            name: "10gige + one-sided",
            profile: TransportProfile::ten_gige(),
            one_sided: true,
        },
    ];
    let dfsio = base_dfsio(quick);
    let results: Vec<(usize, f64, f64)> = (0..variants.len())
        .into_par_iter()
        .map(|i| {
            let v = &variants[i];
            let mut cfg = TestbedConfig::default();
            cfg.bb.transport = v.profile;
            cfg.bb.one_sided = v.one_sided;
            // lift the client cap so transport differences show
            cfg.bb.client_write_rate = 3.0e9;
            cfg.bb.client_read_rate = 3.0e9;
            let (w, r) = dfsio_cell(
                SystemKind::Bb(bb_core::Scheme::AsyncLustre),
                cfg,
                dfsio.clone(),
            );
            (i, w, r)
        })
        .collect();
    let mut t = Table::new(
        "AB1: transport/protocol ablation — BB-Async DFSIO MB/s (client cap lifted)",
        &["variant", "write MB/s", "read MB/s"],
    );
    for (i, w, r) in &results {
        t.row(vec![variants[*i].name.into(), mbps(*w), mbps(*r)]);
    }
    let verbs_r = results[0].2;
    let ipoib_r = results[2].2;
    t.note(format!(
        "RDMA verbs reads beat IPoIB by {} — the paper's core premise",
        ratio(verbs_r / ipoib_r)
    ));
    ExpReport {
        id: "AB1",
        table: t,
        shape_holds: verbs_r > ipoib_r * 1.5,
    }
}

/// AB2: chunk-size sweep for the block→KV key schema.
pub fn ab2_chunk_size(quick: bool) -> ExpReport {
    // the top size stays under the 1 MiB item limit (key + header fit too)
    const NEAR_MAX: u64 = (1 << 20) - (4 << 10);
    let sizes: &[u64] = if quick {
        &[64 << 10, 512 << 10, NEAR_MAX]
    } else {
        &[64 << 10, 128 << 10, 256 << 10, 512 << 10, NEAR_MAX]
    };
    let dfsio = base_dfsio(quick);
    let results: Vec<(u64, f64, f64)> = sizes
        .par_iter()
        .map(|&chunk| {
            let mut cfg = TestbedConfig::default();
            cfg.bb.chunk_size = chunk;
            cfg.bb.client_write_rate = 3.0e9;
            cfg.bb.client_read_rate = 3.0e9;
            let (w, r) = dfsio_cell(
                SystemKind::Bb(bb_core::Scheme::AsyncLustre),
                cfg,
                dfsio.clone(),
            );
            (chunk, w, r)
        })
        .collect();
    let mut t = Table::new(
        "AB2: KV chunk-size sweep — BB-Async DFSIO MB/s (client cap lifted)",
        &["chunk", "write MB/s", "read MB/s"],
    );
    let mut best = (0u64, 0.0f64);
    for (c, w, r) in &results {
        if *w > best.1 {
            best = (*c, *w);
        }
        t.row(vec![format!("{} KiB", c >> 10), mbps(*w), mbps(*r)]);
    }
    t.note(format!(
        "small chunks pay per-op overhead; the default 512 KiB sits near the knee (best here: {} KiB)",
        best.0 >> 10
    ));
    // shape: the largest chunk should beat the smallest on writes
    let smallest = results.first().unwrap().1;
    let largest = results.last().unwrap().1;
    ExpReport {
        id: "AB2",
        table: t,
        shape_holds: largest > smallest,
    }
}

/// AB3: persistence-manager flush parallelism vs time-to-durable.
pub fn ab3_flushers(quick: bool) -> ExpReport {
    use workloads::{PayloadPool, Testbed};
    let counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };
    let results: Vec<(usize, f64)> = counts
        .par_iter()
        .map(|&n| {
            let mut cfg = TestbedConfig::default();
            cfg.bb.flusher_threads = n;
            let tb = Testbed::build(SystemKind::Bb(bb_core::Scheme::AsyncLustre), cfg);
            let pool = PayloadPool::standard();
            let sim = tb.sim.clone();
            let t = sim.block_on(async move {
                let bb = tb.bb.as_ref().unwrap();
                let client = bb.client(tb.nodes[0]);
                // 16 files burst, then measure time until all durable
                let t0 = tb.sim.now();
                let mut paths = Vec::new();
                for f in 0..16 {
                    let path = format!("/ab3/f{f}");
                    let w = bb
                        .client(tb.nodes[f % tb.nodes.len()])
                        .create(&path)
                        .await
                        .unwrap();
                    for piece in pool.stream(f as u64, 64 << 20, 1 << 20) {
                        w.append(piece).await.unwrap();
                    }
                    w.close().await.unwrap();
                    paths.push(path);
                }
                for p in &paths {
                    client.wait_flushed(p).await.unwrap();
                }
                let dt = (tb.sim.now() - t0).as_secs_f64();
                tb.shutdown();
                dt
            });
            (n, t)
        })
        .collect();
    let mut t = Table::new(
        "AB3: flusher parallelism — time until a 1 GiB burst is durable (s)",
        &["flushers", "time to durable (s)", "speedup"],
    );
    let base = results[0].1;
    for (n, dt) in &results {
        t.row(vec![n.to_string(), format!("{dt:.2}"), ratio(base / dt)]);
    }
    t.note("more flush streams drain the buffer faster until Lustre saturates");
    let last = results.last().unwrap().1;
    ExpReport {
        id: "AB3",
        table: t,
        shape_holds: last <= base * 1.01,
    }
}

/// AB5: read-window sweep on the E4 workload — how deep the pipelined
/// tiered read path must run before the fabric egress saturates.
pub fn ab5_read_window(quick: bool) -> ExpReport {
    let windows: &[usize] = if quick {
        &[1, 4, 8, 32]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let dfsio = base_dfsio(quick);
    let results: Vec<(usize, f64, Option<bb_core::ReadStats>)> = windows
        .par_iter()
        .map(|&w| {
            let mut cfg = TestbedConfig::default();
            cfg.bb.read_window = w;
            let (_, r, stats) = dfsio_cell_stats(
                SystemKind::Bb(bb_core::Scheme::AsyncLustre),
                cfg,
                dfsio.clone(),
            );
            (w, r, stats)
        })
        .collect();
    let mut t = Table::new(
        "AB5: read-window sweep — BB-Async DFSIO READ MB/s (buffer-hot, E4 workload)",
        &[
            "window",
            "read MB/s",
            "vs window 1",
            "avg GET batch",
            "stalls",
        ],
    );
    let base = results[0].1;
    for (w, r, stats) in &results {
        let (batch, stalls) = stats
            .as_ref()
            .map(|s| (s.avg_batch(), s.readahead_stalls))
            .unwrap_or((0.0, 0));
        t.row(vec![
            w.to_string(),
            mbps(*r),
            ratio(r / base),
            format!("{batch:.1}"),
            stalls.to_string(),
        ]);
    }
    // shape: throughput is monotone (within noise) in the window, then
    // saturates — each step is no worse than 97% of the previous one,
    // and the default window 8 is a real win over serial
    let mut monotone = true;
    for pair in results.windows(2) {
        monotone &= pair[1].1 >= pair[0].1 * 0.97;
    }
    let w8 = results
        .iter()
        .find(|(w, _, _)| *w == 8)
        .map(|(_, r, _)| *r)
        .unwrap_or(0.0);
    t.note(format!(
        "window 8 reads at {} of serial; deeper windows add little once \
         the {}-server fabric egress is saturated",
        ratio(w8 / base),
        TestbedConfig::default().bb.kv_servers
    ));
    ExpReport {
        id: "AB5",
        table: t,
        shape_holds: monotone && w8 > base * 1.3,
    }
}

/// AB4: ketama consistent hashing vs modulo placement on membership change.
pub fn ab4_placement() -> ExpReport {
    let keys: Vec<String> = (0..60_000)
        .map(|i| format!("blk_{i}_c{}", i % 13))
        .collect();
    let build_ring = |n: usize| {
        let members: Vec<usize> = (0..n).collect();
        let labels: Vec<String> = (0..n).map(|i| format!("kv-server-{i}")).collect();
        HashRing::new(members, &labels, 160)
    };
    let modulo = |n: usize, key: &str| (rkv::fnv1a(key.as_bytes()) % n as u64) as usize;

    let mut t = Table::new(
        "AB4: placement — keys remapped when growing the buffer layer",
        &[
            "transition",
            "ketama remap %",
            "modulo remap %",
            "ketama max-load skew",
        ],
    );
    let mut shape = true;
    for (from, to) in [(4usize, 5usize), (8, 9), (8, 12)] {
        let ring_a = build_ring(from);
        let ring_b = build_ring(to);
        let mut moved_k = 0;
        let mut moved_m = 0;
        let mut load = vec![0usize; to];
        for k in &keys {
            if ring_a.route(k.as_bytes()) != ring_b.route(k.as_bytes()) {
                moved_k += 1;
            }
            if modulo(from, k) != modulo(to, k) {
                moved_m += 1;
            }
            load[*ring_b.route(k.as_bytes())] += 1;
        }
        let pk = moved_k as f64 / keys.len() as f64 * 100.0;
        let pm = moved_m as f64 / keys.len() as f64 * 100.0;
        let ideal = keys.len() as f64 / to as f64;
        let skew = load.iter().copied().max().unwrap() as f64 / ideal;
        shape &= pk < pm / 2.0;
        t.row(vec![
            format!("{from} → {to} servers"),
            format!("{pk:.1}%"),
            format!("{pm:.1}%"),
            format!("{skew:.2}x"),
        ]);
    }
    t.note("consistent hashing moves ~1/n of keys; modulo reshuffles most of the keyspace");
    ExpReport {
        id: "AB4",
        table: t,
        shape_holds: shape,
    }
}
