//! AB7: end-to-end integrity — write a dataset, corrupt resident copies
//! at rest, let the background scrubber detect and repair them, then
//! read everything back verified.
//!
//! The cell demonstrates the whole integrity loop of DESIGN.md §7: CRC32C
//! digests sealed at the writer, silent at-rest damage injected by a
//! seeded [`FaultPlan`] sweep, checksum-verified scrub passes repairing
//! bad copies in place (replica first, Lustre once flushed), and a
//! byte-verified read-back served from the repaired buffer.

use std::rc::Rc;
use std::time::Duration;

use bb_core::{FileState, Scheme};
use simkit::{dur, FaultEvent, FaultPlan, Sim, Time};
use workloads::{PayloadPool, SystemKind, Testbed, TestbedConfig};

use crate::experiments::ExpReport;
use crate::table::Table;
use crate::telemetry::{attach, capture_cell};

/// Advance the simulation to exactly `horizon`. `run_until` alone stops
/// early when the next timer lies beyond the horizon without moving the
/// clock; planting a sleeper at the horizon makes the step land there,
/// so polling loops always make progress through idle stretches.
pub fn step_to(sim: &Sim, horizon: Time) {
    let s = sim.clone();
    sim.spawn(async move { s.sleep_until(horizon).await });
    sim.run_until(horizon);
}

/// AB7 report only (timeline artifact discarded).
pub fn ab7_integrity(quick: bool, trace: bool) -> ExpReport {
    ab7_with_artifacts(quick, trace).0
}

/// [`ab7_integrity`] plus the applied fault timeline (the `--timeline`
/// artifact of `repro_ab7`).
pub fn ab7_with_artifacts(quick: bool, trace: bool) -> (ExpReport, String) {
    let chunk_size: u64 = 512 << 10;
    let data: u64 = if quick { 16 << 20 } else { 64 << 20 };
    let chunks_total = data / chunk_size;

    let mut cfg = TestbedConfig {
        compute_nodes: 4,
        ..TestbedConfig::default()
    };
    // r=2 so the scrubber can repair from a surviving replica; chunks
    // whose two copies are both damaged exercise the Lustre repair source
    cfg.bb.kv_replication = 2;
    let tb = Testbed::build(SystemKind::Bb(Scheme::AsyncLustre), cfg);
    if trace {
        tb.sim.tracer().enable();
    }
    let bb = Rc::clone(tb.bb.as_ref().expect("bb testbed"));
    let client = bb.client(tb.nodes[0]);
    let sim = tb.sim.clone();
    let t0 = sim.now();

    // one silent corruption sweep over every server, well after the write
    // and flush have settled (p per resident value, seeded draws)
    let inject_at = dur::secs(10);
    let inject_abs = t0 + inject_at;
    let mut plan = FaultPlan::new(0xAB7);
    for s in &bb.kv_servers {
        plan = plan.at(
            inject_at,
            FaultEvent::CorruptValue {
                node: s.node().0,
                p: 0.35,
            },
        );
    }
    tb.sim.install_faults(plan);

    // --- phase 1: write + flush ---
    let pool = PayloadPool::standard();
    let pieces = pool.stream(7, data, 1 << 20);
    let wpieces = pieces.clone();
    let wclient = Rc::clone(&client);
    let writer = sim.spawn(async move {
        let w = wclient.create("/ab7/f").await.expect("create");
        for piece in wpieces {
            w.append(piece).await.expect("append");
        }
        w.close().await.expect("close");
        wclient.wait_flushed("/ab7/f").await.expect("wait_flushed")
    });
    while !writer.is_finished() && sim.now() < inject_abs {
        step_to(&sim, (sim.now() + dur::ms(250)).min(inject_abs));
    }
    let flushed = writer.try_take();

    // --- phase 2: deliver the corruption sweep ---
    step_to(&sim, inject_abs + dur::ms(1));
    let damaged: u64 = bb
        .kv_servers
        .iter()
        .map(|s| {
            sim.metrics()
                .snapshot()
                .counter(&format!("rkv.server{}.corrupted", s.node().0))
        })
        .sum();

    // --- phase 3: scrub until every damaged copy is resolved ---
    let scrub_deadline = sim.now() + dur::secs(60);
    let mut scrub_done: Option<Duration> = None;
    while sim.now() < scrub_deadline {
        step_to(&sim, sim.now() + dur::ms(250));
        let snap = sim.metrics().snapshot();
        let resolved = snap.counter("bb.scrub.repaired") + snap.counter("bb.scrub.unrepairable");
        if resolved >= damaged {
            scrub_done = Some(sim.now() - inject_abs);
            break;
        }
    }

    // --- phase 4: verified read-back (background loops stopped so the
    // read phase runs to quiescence) ---
    let expected: Rc<Vec<u8>> = Rc::new(pieces.iter().flat_map(|b| b.iter().copied()).collect());
    bb.reset_read_stats();
    tb.shutdown();
    let rclient = Rc::clone(&client);
    let rexpected = Rc::clone(&expected);
    let reads_ok: u64 = sim.block_on(async move {
        let rd = rclient.open("/ab7/f").await.expect("open");
        let mut ok = 0;
        for seq in 0..chunks_total {
            let off = seq * chunk_size;
            let len = chunk_size.min(data - off);
            if let Ok(b) = rd.read_at(off, len).await {
                if b[..] == rexpected[off as usize..(off + len) as usize] {
                    ok += 1;
                }
            }
        }
        ok
    });

    let cell = capture_cell(&tb.sim);
    let timeline = tb.sim.faults().timeline_text();
    let snap = &cell.snapshot;
    let repaired = snap.counter("bb.scrub.repaired");
    let unrepairable = snap.counter("bb.scrub.unrepairable");
    let detected = snap.counter("bb.integrity.checksum_fail");
    let scanned = snap.counter("bb.scrub.scanned");
    let tiers = bb.read_stats();

    let mut t = Table::new(
        "AB7: integrity — corrupt at rest, scrub-repair, verified read-back",
        &["stage", "result"],
    );
    t.row(vec![
        "dataset".into(),
        format!(
            "{} MiB, {chunks_total} chunks x r=2, state {:?}",
            data >> 20,
            flushed
        ),
    ]);
    t.row(vec![
        "injected".into(),
        format!("{damaged} copies silently damaged (p=0.35 sweep, seed 0xAB7)"),
    ]);
    t.row(vec![
        "detected".into(),
        format!("{detected} checksum failures over {scanned} scrub scans"),
    ]);
    t.row(vec![
        "repaired".into(),
        format!("{repaired} copies rewritten in place; {unrepairable} unrepairable"),
    ]);
    t.row(vec![
        "scrub latency".into(),
        match scrub_done {
            Some(d) => format!("{:.2}s from injection to last repair", d.as_secs_f64()),
            None => "DID NOT CONVERGE within 60s".into(),
        },
    ]);
    t.row(vec![
        "read-back".into(),
        format!(
            "{reads_ok}/{chunks_total} chunks byte-correct ({} from buffer, {} from Lustre)",
            tiers.tier_buffer, tiers.tier_lustre
        ),
    ]);
    t.note("the scrubber repairs from a surviving replica first, falling back to the flushed Lustre copy");
    t.note("no silent wrong bytes: every read is digest-verified before it is returned");

    let shape = flushed == Some(FileState::Flushed)
        && damaged > 0
        && detected > 0
        && repaired == damaged
        && unrepairable == 0
        && scrub_done.is_some()
        && reads_ok == chunks_total;
    let mut report = ExpReport {
        id: "AB7",
        table: t,
        shape_holds: shape,
        metrics: None,
        trace: None,
    };
    attach(&mut report, Some(cell));
    (report, timeline)
}
