//! E3/E4/E5/E11: the TestDFSIO family — write throughput vs data size,
//! read throughput, cluster-size scaling, and buffer-layer scaling.

use rayon::prelude::*;

use workloads::testdfsio::{self, DfsioConfig};
use workloads::{PayloadPool, SystemKind, Testbed, TestbedConfig};

use crate::experiments::ExpReport;
use crate::table::{mbps, ratio, Table};
use crate::telemetry::{attach, capture_cell, CellTelemetry};

/// One DFSIO cell: (write MB/s, read MB/s) for a system at a total size.
pub fn dfsio_cell(kind: SystemKind, config: TestbedConfig, cfg: DfsioConfig) -> (f64, f64) {
    let (w, r, _) = dfsio_cell_stats(kind, config, cfg);
    (w, r)
}

/// Like [`dfsio_cell`], also returning the burst buffer's read-path tier
/// counters for the read phase (`None` for non-BB systems).
pub fn dfsio_cell_stats(
    kind: SystemKind,
    config: TestbedConfig,
    cfg: DfsioConfig,
) -> (f64, f64, Option<bb_core::ReadStats>) {
    let (w, r, stats, _) = dfsio_cell_telemetry(kind, config, cfg, false);
    (w, r, stats)
}

/// The full-fat cell runner: numbers, read-path tier counters, and the
/// cell simulation's telemetry (metrics snapshot + Chrome trace when
/// `trace`). Every DFSIO-family experiment captures its representative
/// cell through this.
pub fn dfsio_cell_telemetry(
    kind: SystemKind,
    config: TestbedConfig,
    cfg: DfsioConfig,
    trace: bool,
) -> (f64, f64, Option<bb_core::ReadStats>, CellTelemetry) {
    let tb = Testbed::build(kind, config);
    if trace {
        tb.sim.tracer().enable();
    }
    let pool = PayloadPool::standard();
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let w = testdfsio::write(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .expect("write phase");
        // count only the read phase's chunk fetches
        if let Some(bb) = &tb.bb {
            bb.reset_read_stats();
        }
        let r = testdfsio::read(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg, false)
            .await
            .expect("read phase");
        let stats = tb.bb.as_ref().map(|bb| bb.read_stats());
        let cell = capture_cell(&tb.sim);
        tb.shutdown();
        (
            w.aggregate.mb_per_sec(),
            r.aggregate.mb_per_sec(),
            stats,
            cell,
        )
    })
}

fn size_sweep(quick: bool) -> Vec<u64> {
    if quick {
        vec![1 << 30, 2 << 30]
    } else {
        vec![1 << 30, 2 << 30, 4 << 30]
    }
}

fn dfsio_for_total(total: u64) -> DfsioConfig {
    DfsioConfig {
        files: 16,
        file_size: total / 16,
        ..DfsioConfig::default()
    }
}

/// Full write+read sweep over the five systems (shared by E3 and E4).
/// The representative cell — BB-Async at the largest size — also yields
/// its telemetry (traced when `trace`).
#[allow(clippy::type_complexity)]
fn sweep(
    quick: bool,
    trace: bool,
) -> (
    Vec<(u64, SystemKind, f64, f64, Option<bb_core::ReadStats>)>,
    Option<CellTelemetry>,
) {
    let sizes = size_sweep(quick);
    let largest = *sizes.last().unwrap();
    let cells: Vec<(u64, SystemKind)> = sizes
        .iter()
        .flat_map(|&sz| SystemKind::all_five().into_iter().map(move |k| (sz, k)))
        .collect();
    let mut rows = Vec::new();
    let mut telemetry = None;
    for (sz, kind, w, r, stats, cell) in cells
        .into_par_iter()
        .map(|(sz, kind)| {
            let rep = sz == largest && kind == SystemKind::Bb(bb_core::Scheme::AsyncLustre);
            let (w, r, stats, cell) = dfsio_cell_telemetry(
                kind,
                TestbedConfig::default(),
                dfsio_for_total(sz),
                rep && trace,
            );
            (sz, kind, w, r, stats, rep.then_some(cell))
        })
        .collect::<Vec<_>>()
    {
        rows.push((sz, kind, w, r, stats));
        if let Some(c) = cell {
            telemetry = Some(c);
        }
    }
    (rows, telemetry)
}

fn gb(sz: u64) -> String {
    format!("{} GiB", sz >> 30)
}

/// E3: TestDFSIO write throughput vs data size, five systems.
pub fn e3_write(quick: bool, trace: bool) -> ExpReport {
    let (results, telemetry) = sweep(quick, trace);
    let mut t = Table::new(
        "E3: TestDFSIO WRITE aggregate MB/s vs total data size (16 files, 16 nodes)",
        &[
            "size",
            "HDFS",
            "Lustre",
            "BB-Async",
            "BB-Sync",
            "BB-Hybrid",
            "BB/HDFS",
            "BB/Lustre",
        ],
    );
    let mut worst_vs_hdfs = f64::MAX;
    let mut worst_vs_lustre = f64::MAX;
    for &sz in &size_sweep(quick) {
        let get = |k: SystemKind| {
            results
                .iter()
                .find(|(s, kk, _, _, _)| *s == sz && *kk == k)
                .map(|(_, _, w, _, _)| *w)
                .unwrap_or(0.0)
        };
        let (h, l, a, s, hy) = (
            get(SystemKind::Hdfs),
            get(SystemKind::Lustre),
            get(SystemKind::Bb(bb_core::Scheme::AsyncLustre)),
            get(SystemKind::Bb(bb_core::Scheme::SyncLustre)),
            get(SystemKind::Bb(bb_core::Scheme::HybridLocality)),
        );
        worst_vs_hdfs = worst_vs_hdfs.min(a / h);
        worst_vs_lustre = worst_vs_lustre.min(a / l);
        t.row(vec![
            gb(sz),
            mbps(h),
            mbps(l),
            mbps(a),
            mbps(s),
            mbps(hy),
            ratio(a / h),
            ratio(a / l),
        ]);
    }
    t.note(format!(
        "paper: up to 2.6x over HDFS, 1.5x over Lustre; measured worst-case {} / {}",
        ratio(worst_vs_hdfs),
        ratio(worst_vs_lustre)
    ));
    let mut report = ExpReport {
        id: "E3",
        table: t,
        shape_holds: worst_vs_hdfs > 2.0 && worst_vs_lustre > 1.3,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// E4: TestDFSIO read throughput vs data size, five systems.
pub fn e4_read(quick: bool, trace: bool) -> ExpReport {
    let (results, telemetry) = sweep(quick, trace);
    let mut t = Table::new(
        "E4: TestDFSIO READ aggregate MB/s vs total data size (buffer-hot reads)",
        &["size", "HDFS", "Lustre", "BB-Async", "BB/HDFS", "BB/Lustre"],
    );
    let mut best_gain: f64 = 0.0;
    let mut tiers_account = true;
    for &sz in &size_sweep(quick) {
        let get = |k: SystemKind| {
            results
                .iter()
                .find(|(s, kk, _, _, _)| *s == sz && *kk == k)
                .map(|(_, _, _, r, _)| *r)
                .unwrap_or(0.0)
        };
        let (h, l, a) = (
            get(SystemKind::Hdfs),
            get(SystemKind::Lustre),
            get(SystemKind::Bb(bb_core::Scheme::AsyncLustre)),
        );
        best_gain = best_gain.max((a / h).max(a / l));
        t.row(vec![
            gb(sz),
            mbps(h),
            mbps(l),
            mbps(a),
            ratio(a / h),
            ratio(a / l),
        ]);
        // tier accounting: every chunk of the dataset is served by
        // exactly one tier during the read phase
        if let Some(stats) = results
            .iter()
            .find(|(s, kk, _, _, _)| {
                *s == sz && *kk == SystemKind::Bb(bb_core::Scheme::AsyncLustre)
            })
            .and_then(|(_, _, _, _, st)| st.clone())
        {
            let chunk = TestbedConfig::default().bb.chunk_size;
            let expect = 16 * (sz / 16).div_ceil(chunk);
            tiers_account &= stats.chunks_fetched() == expect;
            t.note(format!(
                "{}: BB-Async tiers local/buffer/lustre = {}/{}/{} (sum {}, dataset {} chunks), \
                 {} multi-GETs avg batch {:.1}, {} readahead stalls",
                gb(sz),
                stats.tier_local,
                stats.tier_buffer,
                stats.tier_lustre,
                stats.chunks_fetched(),
                expect,
                stats.multi_gets,
                stats.avg_batch(),
                stats.readahead_stalls,
            ));
        }
    }
    t.note(format!(
        "paper: read gain up to 8x; measured best gain {}",
        ratio(best_gain)
    ));
    let mut report = ExpReport {
        id: "E4",
        table: t,
        shape_holds: best_gain > 4.0 && tiers_account,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// E5: write/read throughput vs cluster size.
pub fn e5_cluster_scaling(quick: bool, trace: bool) -> ExpReport {
    let sizes: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32] };
    let largest = *sizes.last().unwrap();
    let systems = [
        SystemKind::Hdfs,
        SystemKind::Lustre,
        SystemKind::Bb(bb_core::Scheme::AsyncLustre),
    ];
    let cells: Vec<(usize, SystemKind)> = sizes
        .iter()
        .flat_map(|&n| systems.into_iter().map(move |k| (n, k)))
        .collect();
    let raw: Vec<(usize, SystemKind, f64, f64, Option<CellTelemetry>)> = cells
        .into_par_iter()
        .map(|(nodes, kind)| {
            let cfg = TestbedConfig {
                compute_nodes: nodes,
                ..TestbedConfig::default()
            };
            // fixed per-node data: 128 MiB each
            let dfsio = DfsioConfig {
                files: nodes,
                file_size: 128 << 20,
                ..DfsioConfig::default()
            };
            let rep = nodes == largest && kind == SystemKind::Bb(bb_core::Scheme::AsyncLustre);
            let (w, r, _, cell) = dfsio_cell_telemetry(kind, cfg, dfsio, rep && trace);
            (nodes, kind, w, r, rep.then_some(cell))
        })
        .collect();
    let mut telemetry = None;
    let results: Vec<(usize, SystemKind, f64, f64)> = raw
        .into_iter()
        .map(|(n, k, w, r, cell)| {
            if let Some(c) = cell {
                telemetry = Some(c);
            }
            (n, k, w, r)
        })
        .collect();
    let mut t = Table::new(
        "E5: TestDFSIO aggregate MB/s vs cluster size (128 MiB per node)",
        &[
            "nodes", "HDFS w", "Lustre w", "BB w", "HDFS r", "Lustre r", "BB r",
        ],
    );
    let mut bb_wins_at_largest = false;
    for &n in sizes {
        let get = |k: SystemKind| {
            results
                .iter()
                .find(|(s, kk, _, _)| *s == n && *kk == k)
                .map(|(_, _, w, r)| (*w, *r))
                .unwrap_or((0.0, 0.0))
        };
        let (hw, hr) = get(SystemKind::Hdfs);
        let (lw, lr) = get(SystemKind::Lustre);
        let (bw, br) = get(SystemKind::Bb(bb_core::Scheme::AsyncLustre));
        if n == *sizes.last().unwrap() {
            bb_wins_at_largest = bw > hw && bw > lw && br > hr && br > lr;
        }
        t.row(vec![
            n.to_string(),
            mbps(hw),
            mbps(lw),
            mbps(bw),
            mbps(hr),
            mbps(lr),
            mbps(br),
        ]);
    }
    t.note("HDFS scales with spindles; Lustre is fixed infrastructure; the buffer's advantage widens with cluster size");
    let mut report = ExpReport {
        id: "E5",
        table: t,
        shape_holds: bb_wins_at_largest,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}

/// E11: write throughput vs number of KV (burst-buffer) servers.
pub fn e11_kv_scaling(quick: bool, trace: bool) -> ExpReport {
    let counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let largest = *counts.last().unwrap();
    let raw: Vec<(usize, f64, Option<CellTelemetry>)> = counts
        .par_iter()
        .map(|&servers| {
            let mut cfg = TestbedConfig::default();
            cfg.bb.kv_servers = servers;
            // lift the client-side cap so the buffer layer is the bottleneck
            cfg.bb.client_write_rate = 3.0e9;
            // even one server must hold the whole burst: a 512 KiB chunk
            // occupies a full 1 MiB slab page, so budget ≥ 2× the dataset
            cfg.bb.kv_mem_per_server = 6 << 30;
            let dfsio = DfsioConfig {
                files: 16,
                file_size: 64 << 20,
                ..DfsioConfig::default()
            };
            let rep = servers == largest;
            let (w, _, _, cell) = dfsio_cell_telemetry(
                SystemKind::Bb(bb_core::Scheme::AsyncLustre),
                cfg,
                dfsio,
                rep && trace,
            );
            (servers, w, rep.then_some(cell))
        })
        .collect();
    let mut telemetry = None;
    let results: Vec<(usize, f64)> = raw
        .into_iter()
        .map(|(n, w, cell)| {
            if let Some(c) = cell {
                telemetry = Some(c);
            }
            (n, w)
        })
        .collect();
    let mut t = Table::new(
        "E11: BB-Async WRITE aggregate MB/s vs KV servers (client cap lifted)",
        &["kv servers", "write MB/s", "scaling"],
    );
    let base = results[0].1;
    for (n, w) in &results {
        t.row(vec![n.to_string(), mbps(*w), ratio(w / base)]);
    }
    let last = results.last().unwrap();
    let shape_holds = last.1 / base > (last.0 as f64) * 0.4;
    t.note("throughput scales with buffer servers until the fabric/flush path binds");
    let mut report = ExpReport {
        id: "E11",
        table: t,
        shape_holds,
        metrics: None,
        trace: None,
    };
    attach(&mut report, telemetry);
    report
}
