//! # bench — the experiment harness
//!
//! One function per experiment in DESIGN.md §4 (E1–E12 plus the four
//! ablations), each returning a printable [`table::Table`]. The
//! `repro_*` binaries are thin wrappers; `repro_all` runs the full suite
//! and regenerates `EXPERIMENTS.md`.
//!
//! Parameter sweeps fan out with rayon — every cell builds its own
//! deterministic simulation, so cells are embarrassingly parallel across
//! host cores.

pub mod consistency;
pub mod experiments;
pub mod table;
pub mod telemetry;

pub use table::Table;
