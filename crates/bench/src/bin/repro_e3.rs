//! E3: TestDFSIO write throughput vs data size.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e3 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::dfsio;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = dfsio::e3_write(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
