//! E3: TestDFSIO write throughput vs data size.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e3 [--quick]
//! ```

use bench::experiments::dfsio;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = dfsio::e3_write(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
