//! E2: KV throughput scaling vs concurrent clients.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e2 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::micro;
use bench::telemetry::{print_shard_footer, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    let report = micro::e2_kv_throughput(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    print_shard_footer(&report);
    opts.write(&report);
}
