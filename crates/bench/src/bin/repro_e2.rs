//! E2: KV throughput vs concurrent clients.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e2 [--quick]
//! ```

use bench::experiments::micro;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = micro::e2_kv_throughput(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
