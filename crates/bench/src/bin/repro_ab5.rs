//! AB5: read-window sweep on the E4 workload — pipelined read depth vs
//! aggregate read throughput.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab5 [--quick]
//! ```

use bench::experiments::ablations;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = ablations::ab5_read_window(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
