//! AB5: read-window sweep on the E4 workload — pipelined read depth vs
//! aggregate read throughput.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab5 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::ablations;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = ablations::ab5_read_window(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
