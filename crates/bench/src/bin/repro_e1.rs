//! E1: KV latency microbenchmark (RDMA vs IPoIB vs Ethernet).
//!
//! ```text
//! cargo run --release -p bench --bin repro_e1 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::micro;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = micro::e1_kv_latency(opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
