//! E1: KV latency microbenchmark (RDMA vs IPoIB vs Ethernet).
//!
//! ```text
//! cargo run --release -p bench --bin repro_e1 [--quick]
//! ```

use bench::experiments::micro;

fn main() {
    let report = micro::e1_kv_latency();
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
