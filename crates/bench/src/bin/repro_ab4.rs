//! AB4: placement-strategy ablation.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab4 [--quick]
//! ```

use bench::experiments::ablations;

fn main() {
    let report = ablations::ab4_placement();
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
