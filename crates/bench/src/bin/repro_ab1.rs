//! AB1: transport/protocol ablation.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab1 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::ablations;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = ablations::ab1_transport(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
