//! AB1: transport/protocol ablation.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab1 [--quick]
//! ```

use bench::experiments::ablations;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = ablations::ab1_transport(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
