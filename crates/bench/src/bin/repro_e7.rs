//! E7: Sort execution time.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e7 [--quick]
//! ```

use bench::experiments::jobs;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = jobs::e7_sort(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
