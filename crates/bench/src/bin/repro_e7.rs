//! E7: Sort execution time vs data size.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e7 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::jobs;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = jobs::e7_sort(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
