//! E8: the three integration schemes side by side.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e8 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::jobs;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = jobs::e8_schemes(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    if let Some(snap) = &report.metrics {
        println!("{}", bench::experiments::jobs::buffer_hit_ratio_note(snap));
    }
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
