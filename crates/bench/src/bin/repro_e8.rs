//! E8: the three integration schemes compared.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e8 [--quick]
//! ```

use bench::experiments::jobs;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = jobs::e8_schemes(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
