//! E10: I/O-intensive workloads (WordCount, Grep, SWIM).
//!
//! ```text
//! cargo run --release -p bench --bin repro_e10 [--quick]
//! ```

use bench::experiments::jobs;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = jobs::e10_io_intensive(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
