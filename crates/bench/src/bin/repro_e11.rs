//! E11: throughput vs number of KV servers.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e11 [--quick]
//! ```

use bench::experiments::dfsio;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = dfsio::e11_kv_scaling(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
