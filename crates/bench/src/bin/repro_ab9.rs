//! AB9: shard-per-core server scaling — single-server throughput vs
//! modeled cores with batched CQ draining, plus the slab-reclamation
//! calcification scenario. The representative cell (4 cores) carries the
//! `rkv.shard.*`, `rkv.slab.reclaim.*` and `rdma.cq.*` families.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab9 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::kvserver;
use bench::telemetry::{print_shard_footer, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    let report = kvserver::ab9_core_scaling(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    print_shard_footer(&report);
    opts.write(&report);
}
