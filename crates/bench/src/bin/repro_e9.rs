//! E9: local storage requirement per system.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e9 [--quick]
//! ```

use bench::experiments::faults;

fn main() {
    let report = faults::e9_local_storage();
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
