//! E9: local storage requirement per system.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e9 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::faults;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = faults::e9_local_storage(opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
