//! AB13: topology-aware placement — telemetry-driven live migration on a
//! geo-stretched cluster.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab13 [--quick] [--metrics-json PATH] \
//!     [--trace PATH] [--timeline PATH]
//! ```
//!
//! `--timeline PATH` writes the round-by-round convergence timeline (the
//! placement artifact CI uploads).

use bench::experiments::placement;
use bench::telemetry::RunOpts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = RunOpts::parse();
    let (report, timeline) = placement::ab13_with_artifacts(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
    if let Some(path) = args
        .iter()
        .position(|a| a == "--timeline")
        .and_then(|i| args.get(i + 1))
    {
        std::fs::write(path, &timeline).expect("write timeline");
        println!("wrote placement timeline: {path}");
    }
}
