//! AB6: readahead-overlap trace — span-level evidence that the pipelined
//! read path overlaps chunk fetches (the tracer demo; `--trace` writes a
//! Perfetto-loadable Chrome trace of the pipelined read phase).
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab6 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::ablations;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = ablations::ab6_readahead_trace(opts.quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
