//! E4: TestDFSIO read throughput vs data size.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e4 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::dfsio;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = dfsio::e4_read(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    if let Some(snap) = &report.metrics {
        println!("{}", bench::experiments::jobs::buffer_hit_ratio_note(snap));
    }
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
