//! E4: TestDFSIO read throughput vs data size.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e4 [--quick]
//! ```

use bench::experiments::dfsio;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = dfsio::e4_read(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
