//! AB7: end-to-end integrity — corrupt at rest, scrub-repair, verified
//! read-back.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab7 [--quick] [--metrics-json PATH] \
//!     [--trace PATH] [--timeline PATH]
//! ```
//!
//! `--timeline PATH` writes the applied corruption timeline (the scrub
//! artifact CI uploads).

use bench::experiments::integrity;
use bench::telemetry::RunOpts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = RunOpts::parse();
    let (report, timeline) = integrity::ab7_with_artifacts(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
    if let Some(path) = args
        .iter()
        .position(|a| a == "--timeline")
        .and_then(|i| args.get(i + 1))
    {
        std::fs::write(path, &timeline).expect("write timeline");
        println!("wrote scrub timeline: {path}");
    }
}
