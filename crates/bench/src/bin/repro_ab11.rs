//! AB11: open-loop million-client traffic — Zipf skew sweep with hot-key
//! replica fan-out on/off, plus tenant isolation under a bursting
//! neighbour with per-tenant token-bucket admission. The representative
//! cell (budgets on, fan-out armed) publishes the `rkv.hot.*` and
//! `rkv.tenant.*` families CI gates on.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab11 [--quick] [--metrics-json PATH] \
//!     [--timeline PATH]
//! ```
//!
//! `--timeline PATH` writes the per-cell traffic timeline (the artifact
//! CI uploads).

use bench::experiments::traffic;
use bench::telemetry::RunOpts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = RunOpts::parse();
    let (report, timeline) = traffic::ab11_with_artifacts(opts.quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
    if let Some(path) = args
        .iter()
        .position(|a| a == "--timeline")
        .and_then(|i| args.get(i + 1))
    {
        std::fs::write(path, &timeline).expect("write timeline");
        println!("wrote traffic timeline: {path}");
    }
}
