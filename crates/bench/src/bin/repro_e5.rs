//! E5: TestDFSIO throughput vs cluster size.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e5 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::dfsio;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = dfsio::e5_cluster_scaling(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
