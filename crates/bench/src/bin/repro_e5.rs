//! E5: throughput vs cluster size.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e5 [--quick]
//! ```

use bench::experiments::dfsio;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = dfsio::e5_cluster_scaling(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
