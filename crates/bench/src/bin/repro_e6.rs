//! E6: RandomWriter execution time.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e6 [--quick]
//! ```

use bench::experiments::jobs;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = jobs::e6_randomwriter(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
