//! Structural validator for `--metrics-json` snapshots (the CI gate):
//! checks the schema marker, the presence of each subsystem's metric
//! family, and — with `--expect-chunks N` — that the burst buffer's
//! read-tier counters account for every chunk of the dataset exactly
//! once.
//!
//! ```text
//! cargo run --release -p bench --bin metrics_check -- PATH \
//!     [--expect-chunks N] [--require-prefix PREFIX]... [--kv-only] \
//!     [--slo FILE]
//! ```
//!
//! `--require-prefix` (repeatable) demands at least one metric under the
//! given name prefix — e.g. `--require-prefix kv.retry.` asserts a fault
//! run actually exercised the retry path. `--kv-only` validates a
//! KV-microbenchmark snapshot (e.g. AB9's): the burst-buffer and Lustre
//! families are not expected, the KV/fabric families still are. `--slo`
//! gates the snapshot's latency histograms against a committed budget
//! file (`rdma-bb.slo.v1`, e.g. `slo/ab10.json`): each `<field>_max`
//! entry bounds that histogram field, in nanoseconds.
//!
//! Exits non-zero with a message on the first violation.

use bench::telemetry::{
    counter_in_json, has_metric_prefix, histogram_field_in_json, parse_slo_budgets,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // a bare arg is the snapshot path unless it is the value of
            // the preceding flag
            !a.starts_with("--")
                && !matches!(
                    i.checked_sub(1).and_then(|p| args.get(p)),
                    Some(f) if f == "--expect-chunks" || f == "--require-prefix" || f == "--slo"
                )
        })
        .map(|(_, a)| a)
        .next()
        .expect(
            "usage: metrics_check PATH [--expect-chunks N] [--require-prefix PREFIX]... \
             [--kv-only] [--slo FILE]",
        );
    let kv_only = args.iter().any(|a| a == "--kv-only");
    let expect_chunks: Option<u64> = args
        .iter()
        .position(|a| a == "--expect-chunks")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--expect-chunks takes an integer"));
    let required: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--require-prefix")
        .filter_map(|(i, _)| args.get(i + 1))
        .collect();
    let slo_path = args
        .iter()
        .position(|a| a == "--slo")
        .and_then(|i| args.get(i + 1));
    let json = std::fs::read_to_string(path).expect("read snapshot");

    let mut failures = Vec::new();
    // v1 snapshots (pre-percentile histograms) stay valid; v2 adds
    // p50/p99/p999 fields to every histogram
    if !json.contains("\"schema\": \"rdma-bb.metrics.v1\"")
        && !json.contains("\"schema\": \"rdma-bb.metrics.v2\"")
    {
        failures.push("missing schema marker rdma-bb.metrics.v1/v2".to_string());
    }
    // every instrumented subsystem must show up in a burst-buffer cell;
    // a KV-only cell (`--kv-only`) has no buffer or Lustre layer but
    // still owes the KV server, shard, reclamation, and fabric families
    let bb_families: &[&str] = &[
        "bb.read.",
        "bb.mgr.",
        "bb.integrity.",
        "bb.scrub.",
        "bb.pressure.",
        "bb.rebalance.",
        "lustre.",
    ];
    let kv_families: &[&str] = &[
        "rkv.server",
        "rkv.shard.",
        "rkv.slab.reclaim.",
        "rdma.",
        "netsim.",
    ];
    let expected = if kv_only {
        kv_families.to_vec()
    } else {
        bb_families.iter().chain(kv_families).copied().collect()
    };
    for prefix in expected {
        if !has_metric_prefix(&json, prefix) {
            failures.push(format!("no metric under prefix {prefix:?}"));
        }
    }
    for prefix in &required {
        if !has_metric_prefix(&json, prefix) {
            failures.push(format!("no metric under required prefix {prefix:?}"));
        }
    }
    let tiers = [
        "bb.read.tier_local",
        "bb.read.tier_buffer",
        "bb.read.tier_lustre",
    ];
    let sum: u64 = tiers
        .iter()
        .map(|n| counter_in_json(&json, n).unwrap_or(0))
        .sum();
    if let Some(expect) = expect_chunks {
        if sum != expect {
            failures.push(format!(
                "read-tier counters sum to {sum}, expected {expect} dataset chunks"
            ));
        }
    }
    let mut slo_checked = 0usize;
    if let Some(slo_path) = slo_path {
        let slo = std::fs::read_to_string(slo_path).expect("read SLO budget file");
        if !slo.contains("\"schema\": \"rdma-bb.slo.v1\"") {
            failures.push(format!("{slo_path}: missing schema marker rdma-bb.slo.v1"));
        }
        let budgets = parse_slo_budgets(&slo);
        if budgets.is_empty() {
            failures.push(format!("{slo_path}: no budgets parsed"));
        }
        for (metric, field, budget) in budgets {
            slo_checked += 1;
            match histogram_field_in_json(&json, &metric, &field) {
                Some(v) if v <= budget => {}
                Some(v) => failures.push(format!(
                    "SLO violation: {metric} {field} = {v} ns exceeds budget {budget} ns"
                )),
                None => failures.push(format!(
                    "SLO budget for {metric} but the snapshot has no such histogram"
                )),
            }
        }
    }

    if failures.is_empty() {
        let slo_note = if slo_checked > 0 {
            format!(", {slo_checked} SLO budgets honoured")
        } else {
            String::new()
        };
        println!(
            "ok: {path} — schema valid, all subsystem families present, tier sum {sum}{slo_note}"
        );
    } else {
        for f in &failures {
            eprintln!("metrics_check: {f}");
        }
        std::process::exit(1);
    }
}
