//! E12: fault injection and recovery.
//!
//! ```text
//! cargo run --release -p bench --bin repro_e12 [--quick]
//! ```

use bench::experiments::faults;

fn main() {
    let report = faults::e12_fault_tolerance();
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
