//! AB2: chunk-size ablation.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab2 [--quick]
//! ```

use bench::experiments::ablations;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = ablations::ab2_chunk_size(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
