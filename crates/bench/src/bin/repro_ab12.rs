//! AB12: traffic-aware burst-buffer admission — mixed burst+stream
//! workload over a small buffer, always-admit vs classifier-on. The
//! representative cell (admission on, r=2, local_only acks) publishes
//! the `bb.admit.*` and `bb.ack.*` families CI gates on.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab12 [--quick] [--metrics-json PATH] \
//!     [--timeline PATH]
//! ```
//!
//! `--timeline PATH` writes the per-cell admission timeline (the
//! artifact CI uploads).

use bench::experiments::admission;
use bench::telemetry::RunOpts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = RunOpts::parse();
    let (report, timeline) = admission::ab12_with_artifacts(opts.quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
    if let Some(path) = args
        .iter()
        .position(|a| a == "--timeline")
        .and_then(|i| args.get(i + 1))
    {
        std::fs::write(path, &timeline).expect("write timeline");
        println!("wrote admission timeline: {path}");
    }
}
