//! AB10: tail-latency decomposition — per-operation request tracing of
//! one engine server at 1 vs 4 cores, showing the single-core p99 is
//! queueing (CQ wait + shard queue), not service time, and proving the
//! stage sums telescope to the end-to-end latency exactly. The
//! representative cell (4 cores) publishes the `rkv.lat.*` histogram
//! families, which `metrics_check --slo slo/ab10.json` gates.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab10 [--quick] [--metrics-json PATH]
//! ```

use bench::experiments::tracing;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = tracing::ab10_latency_decomposition(opts.quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
