//! AB3: flusher-parallelism ablation.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab3 [--quick] [--metrics-json PATH] [--trace PATH]
//! ```

use bench::experiments::ablations;
use bench::telemetry::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let report = ablations::ab3_flushers(opts.quick, opts.trace_enabled());
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
    opts.write(&report);
}
