//! AB3: flusher-parallelism ablation.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ab3 [--quick]
//! ```

use bench::experiments::ablations;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = ablations::ab3_flushers(quick);
    print!("{}", report.table.to_text());
    println!(
        "paper shape: {}",
        if report.shape_holds {
            "HOLDS"
        } else {
            "DIVERGES"
        }
    );
}
