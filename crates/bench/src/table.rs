//! Plain-text and markdown table rendering for experiment output.

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes rendered under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Render as aligned plain text.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("*{n}*\n\n"));
            }
        }
        out
    }
}

/// Format a throughput cell.
pub fn mbps(v: f64) -> String {
    format!("{v:.0}")
}

/// Format a seconds cell.
pub fn secs(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a ratio cell.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text_and_markdown() {
        let mut t = Table::new("E0: demo", &["system", "MB/s"]);
        t.row(vec!["HDFS".into(), "123".into()]);
        t.row(vec!["BB-Async".into(), "4567".into()]);
        t.note("shape holds");
        let text = t.to_text();
        assert!(text.contains("E0: demo"));
        assert!(text.contains("BB-Async"));
        assert!(text.contains("note: shape holds"));
        let md = t.to_markdown();
        assert!(md.contains("| system | MB/s |"));
        assert!(md.contains("| HDFS | 123 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
