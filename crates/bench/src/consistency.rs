//! Test-only consistency checking for the KV chunk tier.
//!
//! A [`History`] collects one [`rkv::OpRecord`] per logical client
//! operation (installed via [`KvClient::set_observer`]); [`History::check`]
//! then decides whether the per-key histories are explainable by *some*
//! sequential order of the operations. The chunk tier's discipline is
//! simple — each chunk key is written with one immutable payload, read
//! back, and eventually deleted — so the checker needs only three rules:
//!
//! 1. **No invented values.** A get returning value-hash `h` must be
//!    covered by a set of `h` on the same key that *started* before the
//!    get *ended* (values cannot arrive from the future or from nowhere).
//!    Failed sets count as covering — an errored replicated set may have
//!    landed on some replica, so its value is allowed (not required) to
//!    be visible.
//! 2. **No resurrection.** After a successful delete completes, a get
//!    that starts later must not return a value unless some set started
//!    after the delete began (concurrent ops may legally interleave
//!    either way; strictly-ordered ones may not).
//! 3. **No lost values** (optional, [`Checker::forbid_miss`]): a get
//!    returning `None` when a successful set completed strictly before it
//!    started and no delete or failure has intervened. Legal in suites
//!    that crash servers (a restarted server loses its memory) or run the
//!    buffer at eviction pressure; a hard violation in membership-change
//!    suites, where rebalancing must never drop an acknowledged chunk.
//!
//! All comparisons use virtual time, so verdicts are deterministic.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rkv::{KvClient, OpKind, OpRecord};

/// A shared recorder of logical KV operations. Clone the `Rc` and attach
/// it to as many clients as the scenario uses — records land in one log.
#[derive(Default)]
pub struct History {
    ops: RefCell<Vec<OpRecord>>,
}

impl History {
    pub fn new() -> Rc<History> {
        Rc::new(History::default())
    }

    /// Install this history as `client`'s observer.
    pub fn attach(self: &Rc<Self>, client: &KvClient) {
        let h = Rc::clone(self);
        client.set_observer(Rc::new(move |rec| h.ops.borrow_mut().push(rec)));
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.ops.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.borrow().is_empty()
    }

    /// Run the checker over everything recorded so far.
    pub fn check(&self, checker: Checker) -> Verdict {
        checker.run(&self.ops.borrow())
    }
}

/// Checker policy knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checker {
    /// Treat an unexplained `get -> None` as a violation (rule 3). Enable
    /// only when the scenario neither crashes servers nor evicts chunks.
    pub forbid_miss: bool,
}

/// Checker outcome: the rule-by-rule violation lists.
#[derive(Debug, Default)]
pub struct Verdict {
    /// Total operations inspected.
    pub ops: usize,
    /// Distinct keys inspected.
    pub keys: usize,
    /// Human-readable violation descriptions (empty = history explainable).
    pub violations: Vec<String>,
}

impl Verdict {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn fmt_key(key: &[u8]) -> String {
    match std::str::from_utf8(key) {
        Ok(s) => s.to_string(),
        Err(_) => format!("{key:02x?}"),
    }
}

impl Checker {
    fn run(&self, ops: &[OpRecord]) -> Verdict {
        let mut by_key: BTreeMap<&[u8], Vec<&OpRecord>> = BTreeMap::new();
        for op in ops {
            by_key.entry(&op.key).or_default().push(op);
        }
        let mut v = Verdict {
            ops: ops.len(),
            keys: by_key.len(),
            violations: Vec::new(),
        };
        for (key, ops) in &by_key {
            self.check_key(key, ops, &mut v.violations);
        }
        v
    }

    fn check_key(&self, key: &[u8], ops: &[&OpRecord], out: &mut Vec<String>) {
        for op in ops {
            let OpKind::Get { hash } = op.kind else {
                continue;
            };
            if !op.ok {
                continue; // an errored get asserts nothing
            }
            match hash {
                Some(h) => {
                    // rule 1: some set of h must have started before this
                    // get ended (ok or not — failed sets are indeterminate
                    // and thus allowed to be visible)
                    let covered = ops.iter().any(|o| {
                        matches!(o.kind, OpKind::Set { hash } if hash == h) && o.start <= op.end
                    });
                    if !covered {
                        out.push(format!(
                            "key {}: get at {:?} returned value {h:#x} never written",
                            fmt_key(key),
                            op.end,
                        ));
                        continue;
                    }
                    // rule 2: no resurrection across a strictly-earlier
                    // successful delete, unless a set started after it
                    let resurrected = ops.iter().any(|d| {
                        matches!(d.kind, OpKind::Delete { .. })
                            && d.ok
                            && d.end < op.start
                            && !ops
                                .iter()
                                .any(|s| matches!(s.kind, OpKind::Set { .. }) && s.start >= d.start)
                    });
                    if resurrected {
                        out.push(format!(
                            "key {}: get at {:?} resurrected a deleted value",
                            fmt_key(key),
                            op.end,
                        ));
                    }
                }
                None => {
                    if !self.forbid_miss {
                        continue;
                    }
                    // rule 3: a successful set completed strictly before
                    // this get started, with no delete and no failed op
                    // anywhere on the key — the value must be visible
                    let established = ops
                        .iter()
                        .any(|s| matches!(s.kind, OpKind::Set { .. }) && s.ok && s.end < op.start);
                    let excusable = ops
                        .iter()
                        .any(|o| matches!(o.kind, OpKind::Delete { .. }) || !o.ok);
                    if established && !excusable {
                        out.push(format!(
                            "key {}: get at {:?} lost an acknowledged value",
                            fmt_key(key),
                            op.end,
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simkit::Time;

    fn rec(key: &str, kind: OpKind, start_us: u64, end_us: u64, ok: bool) -> OpRecord {
        OpRecord {
            key: Bytes::copy_from_slice(key.as_bytes()),
            kind,
            start: Time::from_micros(start_us),
            end: Time::from_micros(end_us),
            ok,
        }
    }

    #[test]
    fn clean_history_passes() {
        let ops = vec![
            rec("k", OpKind::Set { hash: 7 }, 0, 10, true),
            rec("k", OpKind::Get { hash: Some(7) }, 20, 30, true),
            rec("k", OpKind::Delete { found: true }, 40, 50, true),
            rec("k", OpKind::Get { hash: None }, 60, 70, true),
        ];
        let v = Checker { forbid_miss: true }.run(&ops);
        assert!(v.ok(), "{:?}", v.violations);
        assert_eq!((v.ops, v.keys), (4, 1));
    }

    #[test]
    fn invented_value_is_flagged() {
        let ops = vec![
            rec("k", OpKind::Set { hash: 7 }, 0, 10, true),
            rec("k", OpKind::Get { hash: Some(9) }, 20, 30, true),
        ];
        let v = Checker::default().run(&ops);
        assert_eq!(v.violations.len(), 1);
        assert!(v.violations[0].contains("never written"));
    }

    #[test]
    fn resurrection_is_flagged() {
        let ops = vec![
            rec("k", OpKind::Set { hash: 7 }, 0, 10, true),
            rec("k", OpKind::Delete { found: true }, 20, 30, true),
            rec("k", OpKind::Get { hash: Some(7) }, 40, 50, true),
        ];
        let v = Checker::default().run(&ops);
        assert_eq!(v.violations.len(), 1);
        assert!(v.violations[0].contains("resurrected"));
    }

    #[test]
    fn concurrent_delete_and_get_may_interleave() {
        // get overlaps the delete: either order is a legal explanation
        let ops = vec![
            rec("k", OpKind::Set { hash: 7 }, 0, 10, true),
            rec("k", OpKind::Delete { found: true }, 20, 40, true),
            rec("k", OpKind::Get { hash: Some(7) }, 30, 50, true),
        ];
        assert!(Checker::default().run(&ops).ok());
    }

    #[test]
    fn lost_value_only_flagged_when_miss_forbidden() {
        let ops = vec![
            rec("k", OpKind::Set { hash: 7 }, 0, 10, true),
            rec("k", OpKind::Get { hash: None }, 20, 30, true),
        ];
        assert!(Checker::default().run(&ops).ok());
        let v = Checker { forbid_miss: true }.run(&ops);
        assert_eq!(v.violations.len(), 1);
        assert!(v.violations[0].contains("lost"));
    }

    #[test]
    fn failed_set_is_indeterminate_both_ways() {
        // its value may be visible...
        let visible = vec![
            rec("k", OpKind::Set { hash: 7 }, 0, 10, false),
            rec("k", OpKind::Get { hash: Some(7) }, 20, 30, true),
        ];
        assert!(Checker { forbid_miss: true }.run(&visible).ok());
        // ...or absent, even with forbid_miss
        let absent = vec![
            rec("k", OpKind::Set { hash: 7 }, 0, 10, false),
            rec("k", OpKind::Get { hash: None }, 20, 30, true),
        ];
        assert!(Checker { forbid_miss: true }.run(&absent).ok());
    }
}
