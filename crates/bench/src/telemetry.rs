//! Harness-side telemetry plumbing: the `--metrics-json` / `--trace`
//! flags shared by every `repro_*` binary, representative-cell capture,
//! and the tiny JSON reader `metrics_check` and the tests use to
//! validate snapshots without a JSON dependency.
//!
//! Experiment sweeps run one [`Sim`] per cell, so a suite-wide registry
//! cannot exist; instead each experiment captures the snapshot (and,
//! when asked, the Chrome trace) of its *representative* cell — the one
//! its headline claim is about (e.g. BB-Async at the largest size for
//! E4) — and attaches it to the [`ExpReport`].

use std::path::PathBuf;

use simkit::telemetry::Snapshot;
use simkit::Sim;

use crate::experiments::ExpReport;

/// Telemetry captured from one experiment cell.
pub struct CellTelemetry {
    /// The cell simulation's full metrics snapshot.
    pub snapshot: Snapshot,
    /// Chrome trace-event JSON, when the cell ran with its tracer on.
    pub trace: Option<String>,
}

/// Freeze `sim`'s registry (and export its trace if the tracer is on).
/// Call just before the cell's shutdown, after the measured phases.
pub fn capture_cell(sim: &Sim) -> CellTelemetry {
    let snapshot = sim.metrics().snapshot();
    let trace = if sim.tracer().is_enabled() {
        Some(sim.tracer().export_chrome())
    } else {
        None
    };
    CellTelemetry { snapshot, trace }
}

/// Attach `cell` to a report (the last step of each experiment fn).
pub fn attach(report: &mut ExpReport, cell: Option<CellTelemetry>) {
    if let Some(c) = cell {
        report.metrics = Some(c.snapshot);
        report.trace = c.trace;
    }
}

/// Command-line options every `repro_*` binary understands.
pub struct RunOpts {
    /// Shrink sweeps for CI-speed runs (`--quick`).
    pub quick: bool,
    /// Write the representative cell's metrics snapshot here
    /// (`--metrics-json PATH`).
    pub metrics_json: Option<PathBuf>,
    /// Trace the representative cell and write Chrome trace-event JSON
    /// here (`--trace PATH`).
    pub trace: Option<PathBuf>,
}

impl RunOpts {
    /// Parse from the process arguments. Unknown flags are ignored so
    /// binaries with extra options can layer on top.
    pub fn parse() -> RunOpts {
        Self::from_args(std::env::args().skip(1).collect())
    }

    /// Parse from an explicit argument list (tests).
    pub fn from_args(args: Vec<String>) -> RunOpts {
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from)
        };
        RunOpts {
            quick: args.iter().any(|a| a == "--quick"),
            metrics_json: value_of("--metrics-json"),
            trace: value_of("--trace"),
        }
    }

    /// Whether the experiment should run its representative cell traced.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Write the report's telemetry to the requested paths.
    pub fn write(&self, report: &ExpReport) {
        if let Some(path) = &self.metrics_json {
            match &report.metrics {
                Some(snap) => {
                    std::fs::write(path, snap.to_json()).expect("write metrics json");
                    println!("wrote metrics snapshot: {}", path.display());
                }
                None => println!(
                    "note: {} captures no metrics snapshot (no simulation cell)",
                    report.id
                ),
            }
        }
        if let Some(path) = &self.trace {
            match &report.trace {
                Some(json) => {
                    std::fs::write(path, json).expect("write trace json");
                    println!("wrote Chrome trace: {}", path.display());
                }
                None => println!("note: {} produced no trace (no simulation cell)", report.id),
            }
        }
    }
}

/// Read a counter's value out of a snapshot JSON file produced by
/// [`Snapshot::to_json`] — a format-pinned scan, not a JSON parser,
/// which is exactly the point: it double-checks the emitted layout.
pub fn counter_in_json(json: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\": {{\"type\": \"counter\", \"value\": ");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest.find(['}', ','])?;
    rest[..end].trim().parse().ok()
}

/// Whether the snapshot JSON contains any metric whose name starts with
/// `prefix`.
pub fn has_metric_prefix(json: &str, prefix: &str) -> bool {
    json.contains(&format!("\"{prefix}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse() {
        let o = RunOpts::from_args(
            ["--quick", "--metrics-json", "m.json", "--trace", "t.json"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert!(o.quick);
        assert_eq!(
            o.metrics_json.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
        assert!(o.trace_enabled());
        let o = RunOpts::from_args(vec![]);
        assert!(!o.quick && o.metrics_json.is_none() && !o.trace_enabled());
    }

    #[test]
    fn counter_scan_reads_emitted_layout() {
        let r = simkit::telemetry::Registry::default();
        r.counter("bb.read.tier_buffer").add(42);
        r.counter("z.other").add(7);
        let json = r.snapshot().to_json();
        assert_eq!(counter_in_json(&json, "bb.read.tier_buffer"), Some(42));
        assert_eq!(counter_in_json(&json, "z.other"), Some(7));
        assert_eq!(counter_in_json(&json, "missing"), None);
        assert!(has_metric_prefix(&json, "bb.read."));
        assert!(!has_metric_prefix(&json, "lustre."));
    }
}
