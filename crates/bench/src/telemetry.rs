//! Harness-side telemetry plumbing: the `--metrics-json` / `--trace`
//! flags shared by every `repro_*` binary, representative-cell capture,
//! and the tiny JSON reader `metrics_check` and the tests use to
//! validate snapshots without a JSON dependency.
//!
//! Experiment sweeps run one [`Sim`] per cell, so a suite-wide registry
//! cannot exist; instead each experiment captures the snapshot (and,
//! when asked, the Chrome trace) of its *representative* cell — the one
//! its headline claim is about (e.g. BB-Async at the largest size for
//! E4) — and attaches it to the [`ExpReport`].

use std::path::PathBuf;

use simkit::telemetry::Snapshot;
use simkit::Sim;

use crate::experiments::ExpReport;

/// Telemetry captured from one experiment cell.
pub struct CellTelemetry {
    /// The cell simulation's full metrics snapshot.
    pub snapshot: Snapshot,
    /// Chrome trace-event JSON, when the cell ran with its tracer on.
    pub trace: Option<String>,
}

/// Freeze `sim`'s registry (and export its trace if the tracer is on).
/// Call just before the cell's shutdown, after the measured phases.
pub fn capture_cell(sim: &Sim) -> CellTelemetry {
    let snapshot = sim.metrics().snapshot();
    let trace = if sim.tracer().is_enabled() {
        Some(sim.tracer().export_chrome())
    } else {
        None
    };
    CellTelemetry { snapshot, trace }
}

/// Attach `cell` to a report (the last step of each experiment fn).
pub fn attach(report: &mut ExpReport, cell: Option<CellTelemetry>) {
    if let Some(c) = cell {
        report.metrics = Some(c.snapshot);
        report.trace = c.trace;
    }
}

/// Print a per-shard service-time footer from the representative cell's
/// snapshot: one line per `rkv.server{N}.shard{S}.svc_ns` histogram with
/// its count and p50/p99/p999 in nanoseconds. Silent when the cell
/// carried no shard histograms (non-engine servers) or no snapshot.
pub fn print_shard_footer(report: &ExpReport) {
    use simkit::telemetry::MetricValue;
    let Some(snap) = &report.metrics else { return };
    let names: Vec<&str> = snap
        .names()
        .filter(|n| n.starts_with("rkv.server") && n.contains(".shard") && n.ends_with(".svc_ns"))
        .collect();
    let mut printed_header = false;
    for name in names {
        let Some(MetricValue::Histogram(h)) = snap.get(name) else {
            continue;
        };
        if h.count() == 0 {
            continue;
        }
        if !printed_header {
            println!("per-shard service time (representative cell):");
            printed_header = true;
        }
        println!(
            "  {name}: count={} p50={} ns p99={} ns p999={} ns",
            h.count(),
            h.percentile(50.0).as_nanos(),
            h.percentile(99.0).as_nanos(),
            h.percentile(99.9).as_nanos(),
        );
    }
}

/// Command-line options every `repro_*` binary understands.
pub struct RunOpts {
    /// Shrink sweeps for CI-speed runs (`--quick`).
    pub quick: bool,
    /// Write the representative cell's metrics snapshot here
    /// (`--metrics-json PATH`).
    pub metrics_json: Option<PathBuf>,
    /// Trace the representative cell and write Chrome trace-event JSON
    /// here (`--trace PATH`).
    pub trace: Option<PathBuf>,
}

impl RunOpts {
    /// Parse from the process arguments. Unknown flags are ignored so
    /// binaries with extra options can layer on top.
    pub fn parse() -> RunOpts {
        Self::from_args(std::env::args().skip(1).collect())
    }

    /// Parse from an explicit argument list (tests).
    pub fn from_args(args: Vec<String>) -> RunOpts {
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from)
        };
        RunOpts {
            quick: args.iter().any(|a| a == "--quick"),
            metrics_json: value_of("--metrics-json"),
            trace: value_of("--trace"),
        }
    }

    /// Whether the experiment should run its representative cell traced.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Write the report's telemetry to the requested paths.
    pub fn write(&self, report: &ExpReport) {
        if let Some(path) = &self.metrics_json {
            match &report.metrics {
                Some(snap) => {
                    std::fs::write(path, snap.to_json()).expect("write metrics json");
                    println!("wrote metrics snapshot: {}", path.display());
                }
                None => println!(
                    "note: {} captures no metrics snapshot (no simulation cell)",
                    report.id
                ),
            }
        }
        if let Some(path) = &self.trace {
            match &report.trace {
                Some(json) => {
                    std::fs::write(path, json).expect("write trace json");
                    println!("wrote Chrome trace: {}", path.display());
                }
                None => println!("note: {} produced no trace (no simulation cell)", report.id),
            }
        }
    }
}

/// Read a counter's value out of a snapshot JSON file produced by
/// [`Snapshot::to_json`] — a format-pinned scan, not a JSON parser,
/// which is exactly the point: it double-checks the emitted layout.
pub fn counter_in_json(json: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\": {{\"type\": \"counter\", \"value\": ");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest.find(['}', ','])?;
    rest[..end].trim().parse().ok()
}

/// Whether the snapshot JSON contains any metric whose name starts with
/// `prefix`.
pub fn has_metric_prefix(json: &str, prefix: &str) -> bool {
    json.contains(&format!("\"{prefix}"))
}

/// Read one integer field (`count`, `p99_ns`, …) of a histogram metric
/// out of a snapshot JSON file — the same format-pinned scan as
/// [`counter_in_json`], against the v2 histogram layout.
pub fn histogram_field_in_json(json: &str, name: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{name}\": {{\"type\": \"histogram\", ");
    let at = json.find(&needle)? + needle.len();
    let obj = &json[at..at + json[at..].find('}')?];
    let f = format!("\"{field}\": ");
    let fat = obj.find(&f)? + f.len();
    let rest = &obj[fat..];
    let end = rest.find(',').unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parse a declarative SLO budget file (`rdma-bb.slo.v1`) into
/// `(metric, histogram_field, budget_ns)` triples. The format is one
/// budget object per line:
///
/// ```text
/// "rkv.lat.get.e2e": {"p99_ns_max": 120000, "p999_ns_max": 400000},
/// ```
///
/// Each `<field>_max` key bounds the snapshot histogram's `<field>`
/// value (`p50_ns`, `p99_ns`, `p999_ns`, `max_ns`).
pub fn parse_slo_budgets(slo: &str) -> Vec<(String, String, u64)> {
    let mut out = Vec::new();
    for line in slo.lines() {
        if !line.contains("_max") || line.contains("\"schema\"") {
            continue;
        }
        let mut quoted = line.split('"').skip(1).step_by(2);
        let Some(metric) = quoted.next() else {
            continue;
        };
        for key in quoted {
            let Some(field) = key.strip_suffix("_max") else {
                continue;
            };
            let tail = &line[line.find(&format!("\"{key}\"")).unwrap() + key.len() + 2..];
            let digits: String = tail
                .chars()
                .skip_while(|c| !c.is_ascii_digit())
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(budget) = digits.parse() {
                out.push((metric.to_string(), field.to_string(), budget));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse() {
        let o = RunOpts::from_args(
            ["--quick", "--metrics-json", "m.json", "--trace", "t.json"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert!(o.quick);
        assert_eq!(
            o.metrics_json.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
        assert!(o.trace_enabled());
        let o = RunOpts::from_args(vec![]);
        assert!(!o.quick && o.metrics_json.is_none() && !o.trace_enabled());
    }

    #[test]
    fn counter_scan_reads_emitted_layout() {
        let r = simkit::telemetry::Registry::default();
        r.counter("bb.read.tier_buffer").add(42);
        r.counter("z.other").add(7);
        let json = r.snapshot().to_json();
        assert_eq!(counter_in_json(&json, "bb.read.tier_buffer"), Some(42));
        assert_eq!(counter_in_json(&json, "z.other"), Some(7));
        assert_eq!(counter_in_json(&json, "missing"), None);
        assert!(has_metric_prefix(&json, "bb.read."));
        assert!(!has_metric_prefix(&json, "lustre."));
    }

    #[test]
    fn histogram_scan_reads_emitted_layout() {
        let r = simkit::telemetry::Registry::default();
        let h = r.histogram("rkv.lat.get.e2e");
        for v in [10u64, 20, 30, 40] {
            h.record_ns(v);
        }
        let json = r.snapshot().to_json();
        assert_eq!(
            histogram_field_in_json(&json, "rkv.lat.get.e2e", "count"),
            Some(4)
        );
        assert_eq!(
            histogram_field_in_json(&json, "rkv.lat.get.e2e", "max_ns"),
            Some(40)
        );
        assert!(histogram_field_in_json(&json, "rkv.lat.get.e2e", "p99_ns").is_some());
        assert_eq!(histogram_field_in_json(&json, "missing", "p99_ns"), None);
    }

    #[test]
    fn slo_budgets_parse() {
        let slo = r#"{
  "schema": "rdma-bb.slo.v1",
  "budgets": {
    "rkv.lat.get.e2e": {"p99_ns_max": 120000, "p999_ns_max": 400000},
    "rkv.lat.set.e2e": {"max_ns_max": 9000000}
  }
}"#;
        let budgets = parse_slo_budgets(slo);
        assert_eq!(
            budgets,
            vec![
                ("rkv.lat.get.e2e".into(), "p99_ns".into(), 120000),
                ("rkv.lat.get.e2e".into(), "p999_ns".into(), 400000),
                ("rkv.lat.set.e2e".into(), "max_ns".into(), 9000000),
            ]
        );
    }
}
