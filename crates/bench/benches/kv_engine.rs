//! Criterion microbenches of the real (host-time) data structures: the
//! slab allocator's memcpy path, the store engine, the lock-striped facade
//! under threads, and the consistent-hash ring.

use std::sync::Arc;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rkv::hash::{fnv1a, HashRing};
use rkv::slab::{SlabAllocator, SlabConfig};
use rkv::store::KvStore;
use rkv::ShardedKv;

fn bench_slab(c: &mut Criterion) {
    let mut g = c.benchmark_group("slab");
    for &size in &[128usize, 4096, 65536] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(
            BenchmarkId::new("alloc_write_free", size),
            &size,
            |b, &size| {
                let mut slab = SlabAllocator::new(SlabConfig {
                    mem_limit: 64 << 20,
                    ..SlabConfig::default()
                });
                let payload = vec![0xa5u8; size];
                b.iter(|| {
                    let chunk = slab.alloc(size).expect("capacity");
                    slab.write(chunk, &payload);
                    std::hint::black_box(slab.read(chunk, size)[0]);
                    slab.free(chunk);
                });
            },
        );
    }
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv_store");
    g.throughput(Throughput::Elements(1));
    g.bench_function("set_overwrite_4k", |b| {
        let mut s = KvStore::new(SlabConfig {
            mem_limit: 64 << 20,
            ..SlabConfig::default()
        });
        let v = Bytes::from(vec![1u8; 4096]);
        let mut i = 0u64;
        b.iter(|| {
            let key = [(i % 251) as u8, (i / 251 % 251) as u8, 7, 9];
            s.set(&key, v.clone(), 0, 0, 0).expect("set");
            i += 1;
        });
    });
    g.bench_function("get_hit_4k", |b| {
        let mut s = KvStore::new(SlabConfig {
            mem_limit: 64 << 20,
            ..SlabConfig::default()
        });
        let v = Bytes::from(vec![1u8; 4096]);
        for i in 0..1000u64 {
            s.set(format!("key-{i}").as_bytes(), v.clone(), 0, 0, 0)
                .unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key-{}", i % 1000);
            std::hint::black_box(s.get(key.as_bytes(), 0).expect("hit"));
            i += 1;
        });
    });
    g.bench_function("set_under_eviction_pressure", |b| {
        // store sized far below the working set: every set evicts
        let mut s = KvStore::new(SlabConfig {
            mem_limit: 2 << 20,
            ..SlabConfig::default()
        });
        let v = Bytes::from(vec![2u8; 16 << 10]);
        let mut i = 0u64;
        b.iter(|| {
            s.set(format!("key-{i}").as_bytes(), v.clone(), 0, 0, 0)
                .expect("set");
            i += 1;
        });
    });
    g.finish();
}

fn bench_sharded_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded_kv");
    for &threads in &[1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("mixed_ops_threads", threads),
            &threads,
            |b, &threads| {
                let kv = Arc::new(ShardedKv::new(
                    8,
                    SlabConfig {
                        mem_limit: 64 << 20,
                        ..SlabConfig::default()
                    },
                ));
                let v = Bytes::from(vec![3u8; 1024]);
                // preload
                for i in 0..4096u64 {
                    kv.set(format!("k{i}").as_bytes(), v.clone(), 0, 0, 0)
                        .unwrap();
                }
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..threads {
                            let kv = Arc::clone(&kv);
                            let v = v.clone();
                            scope.spawn(move || {
                                for i in 0..512u64 {
                                    let k = format!("k{}", (i * 7 + t as u64 * 131) % 4096);
                                    if i % 4 == 0 {
                                        kv.set(k.as_bytes(), v.clone(), 0, 0, 0).unwrap();
                                    } else {
                                        std::hint::black_box(kv.get(k.as_bytes(), 0));
                                    }
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    g.bench_function("fnv1a_32B", |b| {
        let key = b"blk_1234567890_chunk_00042_extra";
        b.iter(|| std::hint::black_box(fnv1a(key)));
    });
    let members: Vec<usize> = (0..16).collect();
    let labels: Vec<String> = (0..16).map(|i| format!("kv-server-{i}")).collect();
    let ring = HashRing::new(members, &labels, 160);
    g.bench_function("ketama_route_16x160", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("f{}:{}", i % 977, i % 61);
            i += 1;
            std::hint::black_box(*ring.route(key.as_bytes()))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_slab, bench_store, bench_sharded_threads, bench_hashing
}
criterion_main!(benches);
