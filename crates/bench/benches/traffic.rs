//! Criterion bench of the open-loop traffic engine: the memoized
//! `Zipf::new` (a repeat construction over a million-key CDF must be a
//! cache lookup, not an O(n) rebuild — the guard for the AB11 hot-path
//! fix), Zipf sampling, and end-to-end arrival-event generation.
//! CI runs it with `CRITERION_JSON=BENCH_traffic.json` to keep a
//! committable baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use simkit::{SimRng, Zipf};
use workloads::traffic::{ArrivalProcess, TenantSpec, TrafficEngine, TrafficSpec};

const ZIPF_KEYS: usize = 1_000_000;

fn spec(horizon_ns: u64) -> TrafficSpec {
    TrafficSpec {
        tenants: vec![
            TenantSpec {
                tenant: 1,
                arrivals: ArrivalProcess::Poisson { rate: 200_000.0 },
                logical_clients: 500_000,
                keys: 4096,
                skew: 0.99,
                get_ratio: 0.95,
                value_size: 128,
            },
            TenantSpec {
                tenant: 2,
                arrivals: ArrivalProcess::Mmpp {
                    burst_rate: 300_000.0,
                    idle_rate: 2_000.0,
                    mean_burst_s: 0.010,
                    mean_idle_s: 0.030,
                },
                logical_clients: 500_000,
                keys: 4096,
                skew: 0.9,
                get_ratio: 0.9,
                value_size: 128,
            },
        ],
        horizon_ns,
    }
}

fn bench_traffic(c: &mut Criterion) {
    // warm the CDF cache once so the bench measures the memoized path —
    // the whole point of the guard: a regression to per-call O(n)
    // precompute shows up as a ~10^5x blowup here
    std::hint::black_box(Zipf::new(ZIPF_KEYS, 0.99));
    let mut g = c.benchmark_group("traffic");
    g.bench_function("zipf_new_memoized", |b| {
        b.iter(|| std::hint::black_box(Zipf::new(ZIPF_KEYS, 0.99)))
    });
    let zipf = Zipf::new(ZIPF_KEYS, 0.99);
    let rng = SimRng::seed_from(9);
    g.bench_function("zipf_sample", |b| {
        b.iter(|| std::hint::black_box(zipf.sample(&rng)))
    });
    let horizon: u64 = 100_000_000; // ~23k events across both tenants
    let events = TrafficEngine::new(&spec(horizon), &SimRng::seed_from(9))
        .collect_all()
        .len();
    g.throughput(Throughput::Elements(events as u64));
    g.bench_function("generate_events", |b| {
        b.iter(|| {
            std::hint::black_box(
                TrafficEngine::new(&spec(horizon), &SimRng::seed_from(9)).collect_all(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_traffic
}
criterion_main!(benches);
