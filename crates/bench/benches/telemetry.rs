//! Criterion bench of the telemetry layer's host-time cost: the same
//! burst-buffer read cell untraced vs traced (spans + Chrome export)
//! vs with a metrics snapshot taken. The registry counters are always
//! live (they are the instrumentation itself); this bench guards the
//! claim that the *tracer* is near-zero cost when disabled — the
//! untraced and traced variants should stay within a few percent.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bb_core::{BbConfig, BbDeployment, Scheme};
use lustre::{LustreCluster, LustreConfig};
use netsim::{Fabric, NetConfig, NodeId};
use simkit::Sim;

const FILE_SIZE: u64 = 8 << 20; // 16 chunks of 512 KiB

enum Mode {
    Untraced,
    Traced,
    TracedExported,
    Snapshotted,
}

fn run_cell(mode: &Mode) -> u64 {
    let sim = Sim::new();
    if matches!(mode, Mode::Traced | Mode::TracedExported) {
        sim.tracer().enable();
    }
    let fabric = Fabric::new(sim.clone(), 2, NetConfig::default());
    let lustre = LustreCluster::deploy(&fabric, LustreConfig::default());
    let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
    let cfg = BbConfig {
        scheme: Scheme::AsyncLustre,
        read_window: 8,
        ..BbConfig::default()
    };
    let dep = BbDeployment::deploy(&fabric, lustre, &nodes, cfg);
    let client = dep.client(NodeId(0));
    let len = sim.block_on(async move {
        let w = client.create("/bench").await.unwrap();
        w.append(Bytes::from(vec![7u8; FILE_SIZE as usize]))
            .await
            .unwrap();
        w.close().await.unwrap();
        let rd = client.open("/bench").await.unwrap();
        let data = rd.read_all().await.unwrap();
        dep.shutdown();
        data.len() as u64
    });
    match mode {
        Mode::TracedExported => sim.tracer().export_chrome().len() as u64 + len,
        Mode::Snapshotted => sim.metrics().snapshot().to_json().len() as u64 + len,
        _ => len,
    }
}

fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    g.throughput(Throughput::Bytes(FILE_SIZE));
    for (name, mode) in [
        ("cell_untraced", Mode::Untraced),
        ("cell_traced", Mode::Traced),
        ("cell_traced_exported", Mode::TracedExported),
        ("cell_snapshotted", Mode::Snapshotted),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(run_cell(&mode)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_telemetry
}
criterion_main!(benches);
