//! Criterion microbenches of the wire protocol codec and the simulation
//! core itself (events/second the host can push — the "meta-benchmark"
//! bounding how big an experiment the harness can run).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rkv::proto::{Carrier, Request, Response, WireBuf};
use simkit::{dur, Sim};

fn bench_proto(c: &mut Criterion) {
    let mut g = c.benchmark_group("proto");
    let set_inline = Request::Set {
        key: Bytes::from_static(b"blk_123456_42"),
        flags: 7,
        expire_at: 0,
        value: Carrier::Inline(Bytes::from(vec![9u8; 4096])),
    };
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_set_inline_4k", |b| {
        b.iter(|| std::hint::black_box(set_inline.encode()));
    });
    let frame = set_inline.encode();
    g.bench_function("decode_set_inline_4k", |b| {
        b.iter(|| std::hint::black_box(Request::decode(frame.clone()).expect("decode")));
    });
    let set_remote = Request::Set {
        key: Bytes::from_static(b"blk_123456_42"),
        flags: 7,
        expire_at: 0,
        value: Carrier::Remote {
            src: WireBuf {
                node: 3,
                rkey: 17,
                len: 1 << 20,
            },
            len: 512 << 10,
        },
    };
    g.bench_function("encode_set_remote", |b| {
        b.iter(|| std::hint::black_box(set_remote.encode()));
    });
    let resp = Response::ValueWritten {
        len: 512 << 10,
        flags: 0,
        cas: 99,
    };
    g.bench_function("roundtrip_response", |b| {
        b.iter(|| {
            let f = resp.encode();
            std::hint::black_box(Response::decode(f).expect("decode"))
        });
    });
    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("simkit");
    for &tasks in &[100usize, 1000] {
        g.throughput(Throughput::Elements(tasks as u64));
        g.bench_with_input(
            BenchmarkId::new("spawn_sleep_run", tasks),
            &tasks,
            |b, &tasks| {
                b.iter(|| {
                    let sim = Sim::new();
                    for i in 0..tasks {
                        let s = sim.clone();
                        sim.spawn(async move {
                            s.sleep(dur::us(i as u64 % 97)).await;
                        });
                    }
                    sim.run();
                    std::hint::black_box(sim.events_processed())
                });
            },
        );
    }
    g.bench_function("timer_churn_10k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.spawn(async move {
                for i in 0..10_000u64 {
                    s.sleep(dur::ns(i % 1013)).await;
                }
            });
            sim.run();
            std::hint::black_box(sim.now())
        });
    });
    g.bench_function("channel_pingpong_1k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let (tx_a, mut rx_a) = simkit::sync::mpsc::unbounded::<u64>();
            let (tx_b, mut rx_b) = simkit::sync::mpsc::unbounded::<u64>();
            sim.spawn(async move {
                for i in 0..1000u64 {
                    tx_a.try_send(i).expect("open");
                    rx_b.recv().await.expect("open");
                }
            });
            sim.spawn(async move {
                while let Ok(v) = rx_a.recv().await {
                    if tx_b.try_send(v).is_err() {
                        break;
                    }
                }
            });
            sim.run();
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_proto, bench_executor
}
criterion_main!(benches);
