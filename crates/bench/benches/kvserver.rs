//! Criterion bench of the shard-per-core KV server: host-time cost of
//! simulating a closed-loop set+get workload against one server at
//! 1/2/4/8 modeled cores (and the single-context reference). This
//! measures the harness — what the engine's poller/core/replier tasks
//! cost per simulated op — not the simulated throughput (that is AB9).
//! CI runs it with `CRITERION_JSON=BENCH_kvserver.json` to keep a
//! committable baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bench::experiments::kvserver::engine_cell;
use rkv::server::KvServerConfig;

const CLIENTS: usize = 8;
const OPS_PER_CLIENT: usize = 50;

fn bench_kvserver(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvserver");
    // each cell runs a set phase and a get phase
    g.throughput(Throughput::Elements((CLIENTS * OPS_PER_CLIENT * 2) as u64));
    for &cores in &[1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("engine", cores), &cores, |b, &cores| {
            b.iter(|| {
                std::hint::black_box(engine_cell(
                    KvServerConfig {
                        cores,
                        cq_batch: 16,
                        ..KvServerConfig::default()
                    },
                    CLIENTS,
                    OPS_PER_CLIENT,
                    false,
                    false,
                ))
            });
        });
    }
    g.bench_function("single_context", |b| {
        b.iter(|| {
            std::hint::black_box(engine_cell(
                KvServerConfig::default(),
                CLIENTS,
                OPS_PER_CLIENT,
                false,
                false,
            ))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kvserver
}
criterion_main!(benches);
