//! Criterion bench of the pipelined tiered read path: host-time cost of
//! simulating a whole-file read, buffered (RDMA GET tier) vs cold
//! (coalesced Lustre fallback), across read-window depths. This measures
//! the harness itself — how expensive the extra spawned readahead tasks
//! are per simulated byte — not the simulated throughput (that is AB5).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bb_core::manager::chunk_key;
use bb_core::{BbConfig, BbDeployment, Scheme};
use lustre::{LustreCluster, LustreConfig};
use netsim::{Fabric, NetConfig, NodeId};
use simkit::Sim;

const FILE_SIZE: u64 = 8 << 20; // 16 chunks of 512 KiB

fn run_read(read_window: usize, cold: bool) -> Bytes {
    let sim = Sim::new();
    let fabric = Fabric::new(sim.clone(), 2, NetConfig::default());
    let lustre = LustreCluster::deploy(&fabric, LustreConfig::default());
    let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
    let cfg = BbConfig {
        scheme: Scheme::AsyncLustre,
        read_window,
        ..BbConfig::default()
    };
    let chunk_size = cfg.chunk_size;
    let dep = BbDeployment::deploy(&fabric, lustre, &nodes, cfg);
    let client = dep.client(NodeId(0));
    sim.block_on(async move {
        let w = client.create("/bench").await.unwrap();
        w.append(Bytes::from(vec![7u8; FILE_SIZE as usize]))
            .await
            .unwrap();
        w.close().await.unwrap();
        if cold {
            client.wait_flushed("/bench").await.unwrap();
            for seq in 0..FILE_SIZE.div_ceil(chunk_size) {
                let _ = client.kv().delete(&chunk_key(1, seq)).await;
            }
        }
        let rd = client.open("/bench").await.unwrap();
        let data = rd.read_all().await.unwrap();
        dep.shutdown();
        data
    })
}

fn bench_read_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_path");
    g.throughput(Throughput::Bytes(FILE_SIZE));
    for &window in &[1usize, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("buffered", window), &window, |b, &w| {
            b.iter(|| std::hint::black_box(run_read(w, false)));
        });
        g.bench_with_input(BenchmarkId::new("cold", window), &window, |b, &w| {
            b.iter(|| std::hint::black_box(run_read(w, true)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_read_path
}
criterion_main!(benches);
