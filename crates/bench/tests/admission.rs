//! AB12 acceptance suite: traffic-aware burst-buffer admission.
//!
//! * **paper shape** — with the classifier on, the mixed burst+stream
//!   workload must beat always-admit on BOTH burst append p99 AND total
//!   runtime (the tentpole claim: long sequential streams gain nothing
//!   from the buffer and should not evict burst data).
//! * **determinism** — the same seed replays to the same virtual end
//!   time, the same percentiles, and a byte-identical metrics snapshot.
//! * **defaults-off** — the always-admit cell (classifier off) must not
//!   even register `bb.admit.*` metrics: off means byte-identical to
//!   the seed telemetry stream, not merely zero-valued counters.

use bench::experiments::admission::{ab12_admission, run_admission_cell};

#[test]
fn ab12_admission_beats_always_admit_on_p99_and_runtime() {
    let rep = ab12_admission(true);
    assert!(
        rep.shape_holds,
        "AB12 quick shape diverged:\n{}",
        rep.table.to_text()
    );
}

#[test]
fn admission_cell_is_deterministic_across_replays() {
    let a = run_admission_cell(true, true, false);
    let b = run_admission_cell(true, true, false);
    assert_eq!(a.end_ns, b.end_ns, "virtual end time must replay exactly");
    assert_eq!(a.burst_p50, b.burst_p50);
    assert_eq!(a.burst_p99, b.burst_p99);
    assert_eq!(a.stream_detected, b.stream_detected);
    assert_eq!(a.writethrough_chunks, b.writethrough_chunks);
    assert_eq!(a.window_resets, b.window_resets);
    assert_eq!(a.quorum_acks, b.quorum_acks);
    assert_eq!(
        a.metrics_json, b.metrics_json,
        "same-seed cells must produce byte-identical metric snapshots"
    );
}

#[test]
fn always_admit_cell_registers_no_classifier_metrics() {
    let off = run_admission_cell(true, false, false);
    assert_eq!(off.stream_detected, 0);
    assert_eq!(off.writethrough_chunks, 0);
    assert_eq!(off.window_resets, 0);
    assert!(
        !off.metrics_json.contains("bb.admit."),
        "classifier-off cell leaked bb.admit.* into the registry"
    );
    // all four files still flush — always-admit is slower, not lossy
    assert_eq!(off.flushed_files, 4);
}
