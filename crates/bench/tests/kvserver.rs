//! Shard-per-core server acceptance suite (fault-free, deterministic):
//! the default configuration is byte-identical to an explicit
//! `cores = 1, cq_batch = 1` one (the engine gate), same-config engine
//! runs are byte-identical to each other, the AB9 core-scaling shape
//! (≥ 3.2x get throughput from 1 → 4 modeled cores) holds, and the
//! calcification scenario regains ≥ 90 % of strandable pages.

use bench::experiments::kvserver::{calcification, engine_cell};
use bench::telemetry::has_metric_prefix;
use rkv::server::KvServerConfig;

/// Run one engine cell and return (get Kops/s, set Kops/s, metrics JSON).
fn cell(config: KvServerConfig) -> (f64, f64, String) {
    let (get_kops, set_kops, telem) = engine_cell(config, 16, 120, true, false);
    (
        get_kops,
        set_kops,
        telem.expect("capture requested").snapshot.to_json(),
    )
}

/// The engine gate: the default config and an explicitly spelled-out
/// `cores = 1, cq_batch = 1` config take the same (legacy) code path and
/// produce byte-identical metrics — the seed's E2 numbers are untouched.
#[test]
fn default_config_is_byte_identical_to_explicit_single_context() {
    let a = cell(KvServerConfig::default());
    let b = cell(KvServerConfig {
        cores: 1,
        cq_batch: 1,
        reclaim_idle: std::time::Duration::ZERO,
        ..KvServerConfig::default()
    });
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "engine gate must not perturb the default path");
}

/// Same seed, same config → byte-identical snapshots, with the engine on.
#[test]
fn same_seed_engine_runs_are_byte_identical() {
    let cfg = KvServerConfig {
        cores: 4,
        cq_batch: 16,
        ..KvServerConfig::default()
    };
    let a = cell(cfg);
    let b = cell(cfg);
    assert_eq!(a.2, b.2, "engine must be deterministic");
}

/// The tentpole claim: single-server get throughput scales ≥ 3.2x from
/// 1 to 4 modeled cores, and the engine snapshot carries the per-shard
/// and CQ-batching telemetry.
#[test]
fn four_cores_scale_get_throughput_at_least_3_2x() {
    let one = cell(KvServerConfig {
        cores: 1,
        cq_batch: 16,
        ..KvServerConfig::default()
    });
    let four = cell(KvServerConfig {
        cores: 4,
        cq_batch: 16,
        ..KvServerConfig::default()
    });
    let get_scaling = four.0 / one.0.max(1e-12);
    let set_scaling = four.1 / one.1.max(1e-12);
    assert!(
        get_scaling >= 3.2,
        "get scaling 1→4 cores was {get_scaling:.2}x, need ≥ 3.2x"
    );
    assert!(
        set_scaling >= 3.2,
        "set scaling 1→4 cores was {set_scaling:.2}x, need ≥ 3.2x"
    );
    for prefix in ["rkv.shard.", "rkv.slab.reclaim.", "rdma.cq."] {
        assert!(
            has_metric_prefix(&four.2, prefix),
            "engine snapshot must carry {prefix:?}"
        );
    }
}

/// Slab reclamation: after a workload shift past the idle window, at
/// least 90 % of the pages stranded in the old class are reassigned;
/// with reclamation off the same shift strands everything (the seed's
/// calcification behaviour), and the scenario is same-seed deterministic.
#[test]
fn calcified_workload_regains_at_least_90_percent_of_stranded_pages() {
    let (strandable, reclaimed, stored) = calcification(1_000_000);
    assert!(strandable >= 8, "scenario must strand whole pages");
    assert!(
        reclaimed as f64 >= 0.9 * strandable as f64,
        "reclaimed {reclaimed}/{strandable} pages, need ≥ 90%"
    );
    assert!(stored > 0, "the shifted workload must make progress");
    let (_, no_reclaim, no_stored) = calcification(0);
    assert_eq!(no_reclaim, 0, "reclaim_idle = 0 must disable reclamation");
    assert_eq!(no_stored, 0, "without reclamation the shift is starved");
    assert_eq!(
        (strandable, reclaimed, stored),
        calcification(1_000_000),
        "calcification scenario must be deterministic"
    );
}
