//! AB11 acceptance suite: statistical properties of the open-loop
//! traffic engine (Poisson/MMPP/Zipf against their analytic values, and
//! same-seed byte determinism), the per-tenant eviction-floor invariant,
//! hot-replica read consistency under write invalidation, and the
//! defaults-off registry regression (a server with every AB11 feature at
//! its default must produce a byte-identical snapshot to the pre-PR
//! engine path).

use std::rc::Rc;

use bytes::Bytes;
use netsim::{Fabric, NetConfig, NodeId};
use rdmasim::RdmaStack;
use rkv::server::KvServerConfig;
use rkv::{KvClient, KvClientConfig, KvServer, ShardedKv, SlabConfig};
use simkit::{dur, Sim, SimRng, Zipf};
use workloads::traffic::{ArrivalProcess, TenantSpec, TrafficEngine, TrafficSpec};

use bench::consistency::{Checker, History};
use bench::experiments::kvserver::engine_cell;
use bench::telemetry::has_metric_prefix;

fn one_tenant(arrivals: ArrivalProcess, skew: f64, horizon_ns: u64) -> TrafficSpec {
    TrafficSpec {
        tenants: vec![TenantSpec {
            tenant: 1,
            arrivals,
            logical_clients: 100_000,
            keys: 1024,
            skew,
            get_ratio: 0.9,
            value_size: 64,
        }],
        horizon_ns,
    }
}

/// Poisson arrivals: over a 2 s horizon at 50 Kops/s the sample mean
/// inter-arrival sits within a tight CI of 1/λ (the standard error of
/// the mean at n ≈ 100k is ~0.3 % of the mean; 3 % absorbs seeds).
#[test]
fn poisson_interarrival_mean_matches_rate() {
    let rate = 50_000.0;
    let spec = one_tenant(ArrivalProcess::Poisson { rate }, 0.0, 2_000_000_000);
    let events = TrafficEngine::new(&spec, &SimRng::seed_from(7)).collect_all();
    assert!(events.len() > 90_000, "got {} events", events.len());
    let mut prev = 0u64;
    let mut sum = 0u64;
    for ev in &events {
        assert!(ev.at_ns >= prev, "arrivals must be time-ordered");
        assert!(ev.at_ns < spec.horizon_ns, "arrivals must respect horizon");
        sum += ev.at_ns - prev;
        prev = ev.at_ns;
    }
    let mean = sum as f64 / events.len() as f64;
    let expect = 1e9 / rate;
    let rel = (mean - expect).abs() / expect;
    assert!(
        rel < 0.03,
        "Poisson mean inter-arrival {mean:.1} ns vs analytic {expect:.1} ns (rel {rel:.4})"
    );
}

/// MMPP arrivals: the observed event count over many burst/idle cycles
/// matches the analytic time-weighted mean rate, and sits strictly
/// between the idle and burst rates.
#[test]
fn mmpp_duty_cycle_matches_analytic_mean_rate() {
    let arrivals = ArrivalProcess::Mmpp {
        burst_rate: 100_000.0,
        idle_rate: 10_000.0,
        mean_burst_s: 0.010,
        mean_idle_s: 0.030,
    };
    let horizon_s = 4.0;
    let spec = one_tenant(arrivals, 0.0, (horizon_s * 1e9) as u64);
    let events = TrafficEngine::new(&spec, &SimRng::seed_from(21)).collect_all();
    let observed = events.len() as f64 / horizon_s;
    let expect = arrivals.mean_rate();
    let rel = (observed - expect).abs() / expect;
    // ~100 phase switches in 4 s; the phase-duration randomness dominates
    // the CI, so the tolerance is looser than the Poisson test's
    assert!(
        rel < 0.10,
        "MMPP observed rate {observed:.0}/s vs analytic mean {expect:.0}/s (rel {rel:.4})"
    );
    assert!(observed > 10_000.0 && observed < 100_000.0);
}

/// Zipf key popularity: the empirical rank-0 mass matches the analytic
/// `Zipf::prob(0)` at YCSB skew.
#[test]
fn zipf_rank0_mass_matches_analytic() {
    let spec = one_tenant(
        ArrivalProcess::Poisson { rate: 100_000.0 },
        0.99,
        2_000_000_000,
    );
    let events = TrafficEngine::new(&spec, &SimRng::seed_from(3)).collect_all();
    let n = events.len() as f64;
    let rank0 = events.iter().filter(|e| e.rank == 0).count() as f64;
    let expect = Zipf::new(1024, 0.99).prob(0);
    let rel = (rank0 / n - expect).abs() / expect;
    assert!(
        rel < 0.05,
        "rank-0 mass {:.4} vs analytic {expect:.4} (rel {rel:.4})",
        rank0 / n
    );
}

/// Same spec + same seed → byte-identical event streams; a different
/// seed must not reproduce the stream.
#[test]
fn same_seed_traffic_is_byte_identical() {
    let spec = TrafficSpec {
        tenants: vec![
            TenantSpec {
                tenant: 1,
                arrivals: ArrivalProcess::Poisson { rate: 30_000.0 },
                logical_clients: 1000,
                keys: 512,
                skew: 0.99,
                get_ratio: 0.95,
                value_size: 128,
            },
            TenantSpec {
                tenant: 2,
                arrivals: ArrivalProcess::Mmpp {
                    burst_rate: 80_000.0,
                    idle_rate: 1_000.0,
                    mean_burst_s: 0.005,
                    mean_idle_s: 0.015,
                },
                logical_clients: 1000,
                keys: 64,
                skew: 0.0,
                get_ratio: 0.5,
                value_size: 32,
            },
        ],
        horizon_ns: 200_000_000,
    };
    let a = TrafficEngine::new(&spec, &SimRng::seed_from(42)).collect_all();
    let b = TrafficEngine::new(&spec, &SimRng::seed_from(42)).collect_all();
    assert_eq!(a, b, "same-seed streams must be identical");
    assert!(!a.is_empty());
    let c = TrafficEngine::new(&spec, &SimRng::seed_from(43)).collect_all();
    assert_ne!(a, c, "different seeds must diverge");
}

/// The tenant-floor invariant: once tenant B's resident bytes exceed the
/// configured floor, another tenant's traffic can evict B down to the
/// floor but never below it — across randomized victim-tenant workloads.
/// With the floor disabled the same pressure starves B (the contrast that
/// proves the mechanism, not the workload, preserved B).
#[test]
fn tenant_floor_survives_hostile_tenant_traffic() {
    let run = |frac: f64, seed: u64| -> (u64, u64, u64) {
        let cfg = SlabConfig {
            mem_limit: 256 << 10,
            page_size: 4096,
            ..SlabConfig::default()
        };
        let store = ShardedKv::new(1, cfg);
        store.set_tenant_floor_frac(frac);
        let rng = SimRng::seed_from(seed);
        // B fills far past the floor (self-eviction keeps it near the cap)
        for i in 0..4096u32 {
            let key = format!("b{i}");
            let val = Bytes::from(vec![0xb0; 64 + rng.index(64)]);
            let _ = store.set_as(2, key.as_bytes(), val, 0, 0, i as u64);
        }
        let b_filled = store.tenant_bytes(2);
        // A hammers several multiples of the whole budget
        for i in 0..8192u32 {
            let key = format!("a{}", rng.index(2048));
            let val = Bytes::from(vec![0xaa; 32 + rng.index(96)]);
            let _ = store.set_as(1, key.as_bytes(), val, 0, 0, 10_000 + i as u64);
            let floor = (256_f64 * 1024.0 * frac) as u64;
            assert!(
                frac == 0.0 || store.tenant_bytes(2) >= floor.min(b_filled),
                "seed {seed}: B at {} bytes dropped below floor {floor}",
                store.tenant_bytes(2)
            );
        }
        (b_filled, store.tenant_bytes(2), store.floor_denied())
    };
    for seed in [1u64, 2, 3, 4, 5] {
        let floor = (256_f64 * 1024.0 * 0.25) as u64;
        let (filled, survived, denied) = run(0.25, seed);
        assert!(filled > floor, "fill must exceed the floor to test it");
        assert!(survived >= floor, "B ended at {survived}, floor {floor}");
        assert!(denied > 0, "the floor must actually have denied evictions");
        let (_, starved, no_denied) = run(0.0, seed);
        assert!(
            starved < floor,
            "without a floor A's pressure must push B below it (got {starved})"
        );
        assert_eq!(no_denied, 0, "frac 0.0 must disable the floor entirely");
    }
}

/// Hot-replica consistency: a writer bumps a counter value in one hot key
/// while readers hammer it hard enough to promote it and serve from
/// replicas. Dispatch order is the linearization order, so every
/// client's view must be monotone (a stale replica read after a Set
/// invalidation would show a counter going backwards) and the sequential
/// checker must accept the history. The scenario must actually exercise
/// the replica path to prove anything.
#[test]
fn hot_replica_reads_are_never_stale_across_invalidation() {
    let sim = Sim::new();
    let readers = 3usize;
    let fabric = Fabric::new(sim.clone(), readers + 2, NetConfig::default());
    let stack = RdmaStack::new(fabric);
    let server = KvServer::new(
        Rc::clone(&stack),
        NodeId(0),
        KvServerConfig {
            cores: 4,
            cq_batch: 8,
            proc_time: dur::us(5),
            hot_replicas: 3,
            hot_window: 256,
            hot_min_count: 16,
            ..KvServerConfig::default()
        },
    );
    let history = History::new();
    let servers = vec![server];
    let violations = sim.block_on({
        let sim = sim.clone();
        let history = Rc::clone(&history);
        async move {
            let writer = KvClient::new(
                Rc::clone(&stack),
                NodeId(1),
                servers.clone(),
                KvClientConfig::default(),
            );
            history.attach(&writer);
            writer
                .set(b"hot", Bytes::from(0u64.to_le_bytes().to_vec()), 0, 0)
                .await
                .expect("seed value");
            let mut handles = Vec::new();
            for r in 0..readers {
                let cl = KvClient::new(
                    Rc::clone(&stack),
                    NodeId((2 + r) as u32),
                    servers.clone(),
                    KvClientConfig::default(),
                );
                history.attach(&cl);
                let sim2 = sim.clone();
                handles.push(sim.spawn(async move {
                    let mut last = 0u64;
                    let mut backwards = 0u64;
                    for _ in 0..500 {
                        let v = cl
                            .get(b"hot")
                            .await
                            .expect("get")
                            .expect("hot key always present");
                        let mut buf = [0u8; 8];
                        buf.copy_from_slice(&v.data[..8]);
                        let n = u64::from_le_bytes(buf);
                        if n < last {
                            backwards += 1;
                        }
                        last = last.max(n);
                        sim2.sleep(dur::us(2)).await;
                    }
                    backwards
                }));
            }
            // writer: bump the counter, then immediately read it back —
            // read-your-writes must hold through the replica cache
            let mut violations = 0u64;
            for i in 1..=200u64 {
                writer
                    .set(b"hot", Bytes::from(i.to_le_bytes().to_vec()), 0, 0)
                    .await
                    .expect("set");
                let v = writer
                    .get(b"hot")
                    .await
                    .expect("get")
                    .expect("hot key always present");
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&v.data[..8]);
                if u64::from_le_bytes(buf) < i {
                    violations += 1;
                }
                sim.sleep(dur::us(10)).await;
            }
            for h in handles {
                violations += h.await;
            }
            violations
        }
    });
    assert_eq!(violations, 0, "stale hot-replica reads observed");
    let m = sim.metrics();
    assert!(
        m.counter("rkv.hot.server0.replica_hits").get() > 0,
        "scenario never exercised the replica path"
    );
    assert!(
        m.counter("rkv.hot.server0.invalidations").get() > 0,
        "scenario never invalidated a cached hot value"
    );
    let verdict = history.check(Checker { forbid_miss: true });
    assert!(verdict.ok(), "sequential checker rejected: {verdict:?}");
}

/// Defaults-off regression: with `hot_replicas`, `tenant_rate` and
/// `tenant_floor_frac` all at their defaults, the engine snapshot is
/// byte-identical to one from a config that spells the defaults out, and
/// carries none of the gated `rkv.hot.*` / `rkv.tenant.*` families — the
/// pre-PR registry is untouched.
#[test]
fn defaults_off_registry_is_byte_identical_to_pre_feature_path() {
    let base = KvServerConfig {
        cores: 4,
        cq_batch: 16,
        ..KvServerConfig::default()
    };
    let explicit = KvServerConfig {
        hot_replicas: 0,
        hot_window: 4096,
        hot_min_count: 64,
        tenant_floor_frac: 0.0,
        tenant_rate: 0.0,
        tenant_burst: 64.0,
        ..base
    };
    let cell = |cfg| {
        let (_, _, telem) = engine_cell(cfg, 16, 120, true, false);
        telem.expect("capture requested").snapshot.to_json()
    };
    let a = cell(base);
    let b = cell(explicit);
    assert_eq!(a, b, "spelled-out defaults must not perturb the snapshot");
    for prefix in ["rkv.hot.", "rkv.tenant."] {
        assert!(
            !has_metric_prefix(&a, prefix),
            "defaults-off snapshot must not register {prefix:?}"
        );
    }
    // and the features ON do register their families, deterministically
    let on = KvServerConfig {
        hot_replicas: 3,
        tenant_rate: 50_000.0,
        tenant_floor_frac: 0.1,
        ..base
    };
    let c = cell(on);
    let d = cell(on);
    assert_eq!(c, d, "feature-on engine must stay deterministic");
    for prefix in ["rkv.hot.", "rkv.tenant."] {
        assert!(
            has_metric_prefix(&c, prefix),
            "feature-on snapshot must carry {prefix:?}"
        );
    }
}
