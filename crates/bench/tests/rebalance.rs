//! Migration invariants for elastic KV membership (DESIGN.md §8):
//! random add/drain schedules interleaved with a sustained write stream
//! must never lose an acknowledged chunk, must keep ownership movement
//! near the consistent-hashing ideal, and must replay byte-identically
//! from the same seed.
//!
//! Invariants per schedule:
//! * **no loss** — every acknowledged file reads back byte-identical
//!   after every epoch transition and at end of run; zero checksum
//!   failures, zero chunks declared lost;
//! * **bounded remap** — each transition moves a key fraction within
//!   1.5× of the ideal k/n;
//! * **determinism** — the same seed and schedule reproduce the exact
//!   metrics snapshot, applied timeline, and virtual end instant.

use std::time::Duration;

use bench::experiments::rebalance::{
    run_rebalance_scenario, ChangeOp, RebalanceCase, RebalanceOutcome, ScheduledChange,
};
use proptest::prelude::*;

/// Invariant floor shared by every cell: converged, nothing lost,
/// nothing corrupted, and the KV history sequentially explainable.
fn no_loss(o: &RebalanceOutcome, label: &str) {
    assert!(o.converged, "{label}: run hung past the deadline");
    assert!(o.files_total > 0, "{label}: writer acknowledged no files");
    assert_eq!(
        o.files_ok,
        o.files_total,
        "{label}: {}/{} files failed final read-back",
        o.files_total - o.files_ok,
        o.files_total
    );
    assert_eq!(
        o.epoch_readback_bad, 0,
        "{label}: per-epoch read-back sweep found bad bytes"
    );
    assert_eq!(o.chunks_lost, 0, "{label}: acknowledged chunks lost");
    assert_eq!(o.checksum_fails, 0, "{label}: checksum failures");
    assert_eq!(
        o.verify_fails, 0,
        "{label}: migrated copies failed CRC read-back"
    );
    assert!(
        o.consistency_ok,
        "{label}: KV history not sequentially explainable: {:?}",
        o.consistency_violations
    );
}

/// A random membership schedule: 1–4 changes at distinct offsets inside
/// the write window. `Drain` picks an arbitrary pool slot — draining an
/// inactive node (or the last active one) is a legal no-op, so no
/// legality filtering is needed.
fn schedules() -> impl Strategy<Value = Vec<ScheduledChange>> {
    proptest::collection::vec((300u64..2000, any::<bool>(), 0usize..8), 1..4).prop_map(|raw| {
        let mut changes: Vec<ScheduledChange> = raw
            .into_iter()
            .map(|(ms, is_add, sel)| ScheduledChange {
                at: Duration::from_millis(ms),
                op: if is_add {
                    ChangeOp::Add
                } else {
                    ChangeOp::Drain(sel)
                },
            })
            .collect();
        changes.sort_by_key(|c| c.at);
        changes
    })
}

fn case(seed: u64, changes: Vec<ScheduledChange>) -> RebalanceCase {
    RebalanceCase {
        seed,
        initial_servers: 3,
        standbys: 3,
        replication: 2,
        file_bytes: 1 << 20,
        changes,
        verify_each_epoch: true,
    }
}

// --- pinned cell: the AB8 schedule at test scale ---------------------

/// The deterministic AB8-style scale-out/scale-in schedule holds every
/// migration invariant, including the remap bound per transition.
#[test]
fn ab8_schedule_holds_invariants() {
    let o = run_rebalance_scenario(&RebalanceCase::ab8(true));
    no_loss(&o, "ab8");
    assert_eq!(o.epochs, 6, "all six scripted changes must apply");
    assert!(
        o.migration_done.is_some(),
        "rebalance backlog never drained"
    );
    assert!(o.moved > 0, "churn moved ownership but nothing migrated");
    for r in &o.remaps {
        assert!(
            r.moved_frac > 0.0 && r.moved_frac <= 1.5 * r.ideal,
            "epoch {} ({}→{} servers): remap {:.3} outside 1.5x of ideal {:.3}",
            r.epoch,
            r.from_active,
            r.to_active,
            r.moved_frac,
            r.ideal
        );
    }
}

// --- random schedules ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Any random add/drain schedule interleaved with writes preserves
    /// every acknowledged byte (per-epoch and final read-back), stays
    /// within 1.5× of the consistent-hashing remap ideal on every
    /// applied transition, and drains its migration backlog.
    #[test]
    fn random_schedules_never_lose_acked_data(
        seed in any::<u64>(),
        changes in schedules(),
    ) {
        let o = run_rebalance_scenario(&case(seed, changes.clone()));
        no_loss(&o, "random-schedule");
        prop_assert!(
            o.remap_within(1.5),
            "remap outside 1.5x of ideal: {:?} (schedule {:?})",
            o.remaps,
            changes
        );
        prop_assert!(
            o.migration_done.is_some(),
            "rebalance backlog never drained (schedule {:?})",
            changes
        );
        // every applied epoch must be visible in the membership timeline
        prop_assert_eq!(o.remaps.len() as u64, o.epochs);
    }

    /// The same (seed, schedule) pair replays byte-identically: metrics
    /// snapshot, applied timeline, and virtual end instant all match —
    /// the cell has no wall-clock dependence.
    #[test]
    fn same_seed_rebalance_runs_are_byte_identical(
        seed in any::<u64>(),
        changes in schedules(),
    ) {
        let c = case(seed, changes);
        let a = run_rebalance_scenario(&c);
        let b = run_rebalance_scenario(&c);
        prop_assert!(a.converged && b.converged);
        prop_assert_eq!(&a.metrics_json, &b.metrics_json, "metrics diverged for seed {}", seed);
        prop_assert_eq!(&a.timeline, &b.timeline);
        prop_assert_eq!(a.end, b.end);
        prop_assert_eq!(a.epochs, b.epochs);
        prop_assert_eq!(a.moved, b.moved);
        prop_assert_eq!(a.moved_bytes, b.moved_bytes);
    }
}
