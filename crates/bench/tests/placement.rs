//! Migration-consistency suite for the topology-aware placement engine
//! (DESIGN.md §11): random topologies and access patterns must never
//! lose an acknowledged byte, must keep the KV history sequentially
//! explainable, must drive the layout cost monotonically down round over
//! round, and must replay byte-identically from the same seed — while
//! crash/flap/drain faults during active placement moves leave the
//! migrating-set guard intact.
//!
//! Invariants per cell:
//! * **no loss** — every acknowledged file reads back byte-identical at
//!   end of run; zero chunks lost, zero checksum failures, zero failed
//!   migration read-backs;
//! * **cost monotone** — the layout cost under the cell's fixed access
//!   weights never increases across settled optimizer rounds;
//! * **determinism** — the same case reproduces the exact metrics
//!   snapshot and virtual end instant;
//! * **defaults off** — with the hash policy and a zero optimizer
//!   interval, no `bb.place.*` metric name is even registered and no
//!   routing override is installed.

use bench::experiments::placement::{
    run_placement_property, run_placement_scenario, PlaceFault, PlacementCase, PlacementPropCase,
    PlacementPropOutcome,
};
use proptest::prelude::*;

/// Invariant floor shared by every cell: converged, nothing lost,
/// nothing corrupted, the placement queue drained, and the KV history
/// sequentially explainable.
fn no_loss(o: &PlacementPropOutcome, label: &str) {
    assert!(
        o.converged,
        "{label}: run hung past the deadline ({} flight dumps frozen)",
        o.flight_dumps.len()
    );
    assert!(o.files_total > 0, "{label}: no files acknowledged");
    assert_eq!(
        o.files_ok, o.files_total,
        "{label}: acknowledged files failed final read-back"
    );
    assert_eq!(o.chunks_lost, 0, "{label}: acknowledged chunks lost");
    assert_eq!(o.checksum_fails, 0, "{label}: checksum failures");
    assert_eq!(
        o.verify_fails, 0,
        "{label}: migrated copies failed CRC read-back"
    );
    assert_eq!(
        o.unrepairable, 0,
        "{label}: scrubber found unrepairable chunks"
    );
    assert_eq!(o.place_backlog, 0, "{label}: placement queue never drained");
    assert!(
        o.consistency_ok,
        "{label}: KV history not sequentially explainable: {:?}",
        o.consistency_violations
    );
}

/// Random topology tier sizes and boundary latencies: flat single-rack
/// fabrics through two-geo WAN stretches.
fn topologies() -> impl Strategy<Value = ((usize, usize, usize), (u64, u64, u64))> {
    (
        (1usize..=3, 1usize..=3, 1usize..=2),
        (0u64..10, 10u64..50, 500u64..3000),
    )
}

/// Random fixed access pattern: 1-4 `(reader, file, reads)` triples.
fn patterns() -> impl Strategy<Value = Vec<(usize, usize, u32)>> {
    proptest::collection::vec((0usize..3, 0usize..2, 1u32..3), 1..4)
}

fn prop_case(
    seed: u64,
    topo: (usize, usize, usize),
    tier_us: (u64, u64, u64),
    files: Vec<u64>,
    reads: Vec<(usize, usize, u32)>,
    fault: PlaceFault,
) -> PlacementPropCase {
    PlacementPropCase {
        seed,
        topo,
        tier_us,
        files,
        reads,
        readers: 2,
        rounds: 3,
        policy_on: true,
        fault,
        deadline_secs: 120,
        flush_before_reads: true,
        lustre_ost_rate: None,
        static_membership: false,
        read_window: None,
    }
}

/// The pinned fault-matrix topology: two geos 2 ms apart, so a
/// mid-migration fault hits moves that genuinely cross the WAN.
fn fault_case(seed: u64, fault: PlaceFault) -> PlacementPropCase {
    prop_case(
        seed,
        (2, 2, 2),
        (5, 20, 2000),
        vec![1 << 20, 512 << 10],
        vec![(0, 0, 2), (1, 1, 1), (0, 1, 1)],
        fault,
    )
}

// --- pinned cells ----------------------------------------------------

/// The AB13 geo-convergence cell holds end to end at test scale.
#[test]
fn ab13_cell_converges_to_local_floor() {
    let o = run_placement_scenario(&PlacementCase::ab13(true));
    assert!(o.converged, "AB13 cell hung");
    assert!(
        o.converged_within(1.3),
        "settled remote p99 {} ns not within 1.3x of floor {} ns",
        o.final_p99_ns,
        o.floor_p99_ns
    );
    assert!(o.migrations > 0 && o.decisions > 0);
    assert!(o.cost_after < o.cost_before);
    assert_eq!(o.place_backlog, 0);
    assert_eq!(o.checksum_fails, 0);
    assert_eq!(o.verify_fails, 0);
    assert_eq!(o.chunks_lost, 0);
    assert!(o.files_ok, "acknowledged files failed read-back");
    assert!(
        o.consistency_ok,
        "KV history not explainable: {:?}",
        o.consistency_violations
    );
}

/// Crash of the migration destination mid-move: the migrating-set guard
/// and verified-copy protocol must keep every acknowledged byte.
#[test]
fn migration_survives_destination_crash() {
    let o = run_placement_property(&fault_case(0xC0, PlaceFault::Crash));
    no_loss(&o, "crash");
}

/// Link flaps on the migration destination: failed moves re-queue and
/// eventually complete; nothing is lost meanwhile.
#[test]
fn migration_survives_destination_flap() {
    let o = run_placement_property(&fault_case(0xF1, PlaceFault::Flap));
    no_loss(&o, "flap");
}

/// Draining the migration destination mid-move: stale overrides pointing
/// at the drained server are cleaned up and chunks return to their hash
/// owners without loss.
#[test]
fn migration_survives_destination_drain() {
    let o = run_placement_property(&fault_case(0xD0, PlaceFault::Drain));
    no_loss(&o, "drain");
    assert_eq!(
        o.overrides, 0,
        "drain left routing overrides behind: {}",
        o.overrides
    );
}

/// Placement moves over pinned, buffer-only chunks at epoch 0: a
/// crawling Lustre tier keeps the files unflushed through every read
/// round (no backing-store fallback), and static membership keeps the
/// epoch at 0 so a miss cannot widen to the full roster — the only
/// reachable copies are exactly where routing points. The routing
/// override must switch onto the verified new copies *before* the old
/// ones are deleted, or a concurrent read routes at hash owners
/// holding nothing and acked data goes unreadable mid-move
/// (regression: the override used to install only after `migrate_to`
/// had already deleted the old copies).
#[test]
fn migration_of_unflushed_chunks_keeps_reads_available() {
    let mut case = fault_case(0xB1F, PlaceFault::None);
    case.flush_before_reads = false;
    // ~47 virtual seconds to drain 4.5 MiB: unflushed well past the rounds
    case.lustre_ost_rate = Some(100e3);
    case.static_membership = true;
    // one node per rack/zone, five zones per geo: with sequential node
    // ids (compute 0-1, lustre 2-3, servers 4-5, manager 6, standby 7,
    // readers 8-9) server 4 shares the writer's geo while server 5,
    // the manager, and every reader share the other — the write-local
    // layout is strictly worse for every reader, so the optimizer must
    // move all chunks cross-geo onto server 5
    case.topo = (1, 1, 5);
    // many chunks: every 512 KiB chunk is its own budget-throttled
    // move, so the hammer reads overlap many copy/delete windows
    case.files = vec![4 << 20, 512 << 10];
    // the seed-exact serial read path surfaces a routing miss directly
    // (the pipelined path's group retry would paper over a one-shot
    // miss after the override lands)
    case.read_window = Some(1);
    let o = run_placement_property(&case);
    no_loss(&o, "unflushed");
    assert_eq!(
        o.read_errs, 0,
        "read of a pinned buffer-only chunk failed during a placement move"
    );
    assert!(o.migrations > 0, "cell never exercised a placement move");
}

/// Defaults-off contract: the hash policy with a zero optimizer interval
/// registers no `bb.place.*` metric, installs no override, and replays
/// byte-identically — the seed behaviour is untouched.
#[test]
fn defaults_off_is_seed_identical_and_unregistered() {
    let mut case = fault_case(0x0FF, PlaceFault::None);
    case.policy_on = false;
    let a = run_placement_property(&case);
    let b = run_placement_property(&case);
    no_loss(&a, "defaults-off");
    assert!(
        !a.place_names_registered,
        "defaults-off run registered a bb.place.* metric"
    );
    assert_eq!(a.overrides, 0, "defaults-off run installed overrides");
    assert_eq!(a.migrations, 0);
    assert_eq!(
        a.metrics_json, b.metrics_json,
        "defaults-off replay diverged"
    );
    assert_eq!(a.end, b.end);
}

// --- random topologies and patterns ----------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Any random topology and access pattern: migration loses nothing,
    /// the history stays explainable, and the layout cost under the
    /// cell's fixed weights never increases across settled rounds.
    #[test]
    fn random_cells_never_lose_data_and_cost_is_monotone(
        seed in any::<u64>(),
        (topo, tier_us) in topologies(),
        f0 in (512u64 << 10)..(2 << 20),
        f1 in (512u64 << 10)..(1 << 20),
        reads in patterns(),
    ) {
        let case = prop_case(seed, topo, tier_us, vec![f0, f1], reads, PlaceFault::None);
        let o = run_placement_property(&case);
        no_loss(&o, "random-cell");
        prop_assert_eq!(o.read_errs, 0, "fault-free reads errored");
        prop_assert_eq!(o.round_costs.len(), case.rounds);
        prop_assert!(
            o.cost_monotone(),
            "layout cost increased across rounds: {:?} (topo {:?}, tiers {:?})",
            o.round_costs,
            topo,
            tier_us
        );
    }

    /// The same case replays byte-identically: metrics snapshot, cost
    /// trajectory, and virtual end instant all match.
    #[test]
    fn same_seed_placement_runs_are_byte_identical(
        seed in any::<u64>(),
        (topo, tier_us) in topologies(),
        reads in patterns(),
    ) {
        let case = prop_case(seed, topo, tier_us, vec![1 << 20], reads, PlaceFault::None);
        let a = run_placement_property(&case);
        let b = run_placement_property(&case);
        prop_assert!(a.converged && b.converged);
        prop_assert_eq!(&a.metrics_json, &b.metrics_json, "metrics diverged for seed {}", seed);
        prop_assert_eq!(&a.round_costs, &b.round_costs);
        prop_assert_eq!(a.end, b.end);
        prop_assert_eq!(a.migrations, b.migrations);
    }
}
