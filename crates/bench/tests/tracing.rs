//! Property tests for per-operation request tracing (DESIGN.md §10):
//! the decomposition is deterministic, the per-op stage sums telescope
//! to the end-to-end latency exactly, and enabling the tracer does not
//! perturb the simulation it observes.

use std::rc::Rc;

use bytes::Bytes;
use netsim::{Fabric, NetConfig, NodeId};
use proptest::prelude::*;
use rdmasim::RdmaStack;
use rkv::server::KvServerConfig;
use rkv::{KvClient, KvClientConfig, KvServer};
use simkit::Sim;

/// One closed-loop engine cell (set phase then get phase of 512 B ops),
/// identical to AB10's workload shape but parameterised small enough for
/// property testing. Returns the decomposition JSON, the registry
/// metrics JSON (tracer series NOT published into it), and whether every
/// traced class reconciled stage sums == e2e exactly.
fn run_cell(cores: usize, clients: usize, ops_per_client: usize, traced: bool) -> Cell {
    let sim = Sim::new();
    if traced {
        sim.optrace().enable();
    }
    let fabric = Fabric::new(sim.clone(), clients + 1, NetConfig::default());
    let stack = RdmaStack::new(fabric);
    let servers = vec![KvServer::new(
        Rc::clone(&stack),
        NodeId(0),
        KvServerConfig {
            cores,
            cq_batch: 16,
            ..KvServerConfig::default()
        },
    )];
    let s = sim.clone();
    sim.block_on(async move {
        let payload = Bytes::from(vec![0x51u8; 512]);
        let kv_clients: Vec<Rc<KvClient>> = (0..clients)
            .map(|c| {
                KvClient::new(
                    Rc::clone(&stack),
                    NodeId((c + 1) as u32),
                    servers.clone(),
                    KvClientConfig::default(),
                )
            })
            .collect();
        let mut handles = Vec::new();
        for (c, cl) in kv_clients.into_iter().enumerate() {
            let payload = payload.clone();
            handles.push(s.spawn(async move {
                for i in 0..ops_per_client {
                    let key = format!("c{c}-k{i}");
                    cl.set(key.as_bytes(), payload.clone(), 0, 0).await.unwrap();
                }
                for i in 0..ops_per_client {
                    let key = format!("c{c}-k{i}");
                    cl.get(key.as_bytes()).await.unwrap().unwrap();
                }
            }));
        }
        for h in handles {
            h.await;
        }
    });
    let tracer = sim.optrace();
    let decomposition = tracer.decomposition_json();
    let finished = tracer.finished_ops();
    let exact = ["get", "set"]
        .iter()
        .all(|class| tracer.reconcile("rkv", class).is_some_and(|r| r.exact()));
    let get_stage_p99s: Vec<u64> = [
        "rkv.lat.get.client_queue",
        "rkv.lat.get.cq_wait",
        "rkv.lat.get.shard_queue",
        "rkv.lat.get.service",
    ]
    .iter()
    .map(|name| tracer.series_percentile(name, 99.0))
    .collect();
    let e2e_max = tracer.series_percentile("rkv.lat.get.e2e", 100.0);
    let metrics = sim.metrics().snapshot().to_json();
    sim.reset();
    Cell {
        decomposition,
        metrics,
        finished,
        exact,
        get_stage_p99s,
        e2e_max,
    }
}

struct Cell {
    decomposition: String,
    metrics: String,
    finished: u64,
    exact: bool,
    get_stage_p99s: Vec<u64>,
    e2e_max: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The decomposition JSON is a pure function of the workload: two
    /// identical traced runs produce byte-identical decompositions and
    /// byte-identical registry snapshots.
    #[test]
    fn same_workload_decomposition_is_byte_identical(
        cores in 1usize..=4,
        clients in 1usize..=6,
        ops in 1usize..=24,
    ) {
        let a = run_cell(cores, clients, ops, true);
        let b = run_cell(cores, clients, ops, true);
        prop_assert!(a.finished > 0, "traced cell finished no ops");
        prop_assert_eq!(&a.decomposition, &b.decomposition);
        prop_assert_eq!(&a.metrics, &b.metrics);
    }

    /// Telescoping identity: for every traced class the per-op stage
    /// durations sum to the end-to-end latency to the nanosecond (stages
    /// are consecutive virtual-time stamp differences, so this also
    /// proves the stamps are monotone — a non-monotone stamp would wrap
    /// the u64 subtraction and blow the sum).
    #[test]
    fn stage_sums_telescope_to_e2e_exactly(
        cores in 1usize..=4,
        clients in 1usize..=6,
        ops in 1usize..=24,
    ) {
        let cell = run_cell(cores, clients, ops, true);
        prop_assert_eq!(cell.finished, 2 * (clients * ops) as u64);
        prop_assert!(cell.exact, "stage sums diverged from e2e");
        // Each individual stage is bounded by the worst end-to-end op.
        for (i, p99) in cell.get_stage_p99s.iter().enumerate() {
            prop_assert!(
                *p99 <= cell.e2e_max,
                "stage {i} p99 {p99} ns exceeds e2e max {} ns",
                cell.e2e_max
            );
        }
    }

    /// The tracer is an observer, not a participant: running the same
    /// workload with tracing on and off yields byte-identical registry
    /// snapshots (the tracer records stamps without advancing virtual
    /// time or touching the registry until `publish` is called).
    #[test]
    fn tracing_does_not_perturb_the_simulation(
        cores in 1usize..=4,
        clients in 1usize..=6,
        ops in 1usize..=24,
    ) {
        let traced = run_cell(cores, clients, ops, true);
        let untraced = run_cell(cores, clients, ops, false);
        prop_assert!(traced.finished > 0 && untraced.finished == 0);
        prop_assert_eq!(&traced.metrics, &untraced.metrics);
    }
}

/// The decomposition JSON carries the schema marker and the series the
/// SLO gate budgets against, and a disabled tracer emits the same empty
/// document every time (so untraced runs stay byte-stable too).
#[test]
fn decomposition_json_shape() {
    let cell = run_cell(2, 4, 16, true);
    assert!(cell
        .decomposition
        .contains("\"schema\": \"rdma-bb.oplat.v1\""));
    for series in ["rkv.lat.get.e2e", "rkv.lat.get.service", "rkv.lat.set.e2e"] {
        assert!(
            cell.decomposition.contains(series),
            "decomposition missing series {series}"
        );
    }
    let off_a = run_cell(1, 1, 1, false);
    let off_b = run_cell(1, 1, 1, false);
    assert_eq!(off_a.decomposition, off_b.decomposition);
}
