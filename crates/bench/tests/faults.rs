//! The fault matrix (DESIGN.md §6): every {scheme} × {injected fault}
//! combination must converge under a virtual-time deadline, lose data
//! only where the scheme's contract allows it, and behave exactly the
//! same on every same-seed run.
//!
//! Invariants per combination:
//! * **no hang** — the workload driver finishes before the deadline;
//! * **sync = zero loss** — BB-Sync never loses a chunk and serves every
//!   read, whatever the fault;
//! * **r ≥ 2 closes the window** — replicated cells lose nothing across
//!   a single-server crash;
//! * **async loss is bounded and accounted** — a failed read implies
//!   `chunks_lost > 0` (never silent);
//! * **link faults lose nothing** — flaps and 1 % transfer loss are
//!   absorbed by retry/backoff.

use bb_core::{AckMode, Scheme};
use bench::experiments::faults::{run_fault_scenario, FaultCase, FaultOutcome, FaultScenario};
use proptest::prelude::*;

fn run(scheme: Scheme, scenario: FaultScenario, replication: usize) -> FaultOutcome {
    run_fault_scenario(FaultCase::quick(scheme, scenario, replication))
}

/// Transfer-corruption cells pin a seed whose 1 % draws hit at least one
/// transfer under every scheme (the sync write-through path moves far
/// fewer KV payloads than the buffered schemes, so the default seed's
/// sparse draws can miss it entirely). Deterministic — same seed, same
/// damage, forever.
fn run_seeded(
    scheme: Scheme,
    scenario: FaultScenario,
    replication: usize,
    seed: u64,
) -> FaultOutcome {
    run_fault_scenario(FaultCase {
        seed,
        ..FaultCase::quick(scheme, scenario, replication)
    })
}

/// Matrix floor shared by every cell: the driver converged and the
/// accounting is consistent.
fn baseline(o: &FaultOutcome, label: &str) {
    assert!(o.converged, "{label}: workload hung past the deadline");
    assert!(
        o.reads_ok <= o.reads_total,
        "{label}: read accounting corrupt"
    );
    assert!(
        o.reads_failed() == 0 || o.chunks_lost > 0,
        "{label}: {} reads failed but no chunk was accounted lost",
        o.reads_failed()
    );
    assert!(
        o.consistency_ok,
        "{label}: KV history not sequentially explainable: {:?}",
        o.consistency_violations
    );
}

// --- {A, B, C} × crash-one-server -----------------------------------

#[test]
fn matrix_async_crash_one() {
    let o = run(Scheme::AsyncLustre, FaultScenario::CrashOne, 1);
    baseline(&o, "async/crash-one");
    assert_eq!(o.crashes, 1, "exactly one server crash event");
    // the crash mid-write with a deep flush queue must exhibit the
    // paper's async fault window — and account for it
    assert!(o.chunks_lost > 0, "fault window never opened");
    assert!(o.chunks_lost < o.chunks_total, "lost more than the window");
}

#[test]
fn matrix_sync_crash_one() {
    let o = run(Scheme::SyncLustre, FaultScenario::CrashOne, 1);
    baseline(&o, "sync/crash-one");
    assert_eq!(o.chunks_lost, 0, "write-through must not lose chunks");
    assert!(o.data_intact(), "sync reads must all be served");
}

#[test]
fn matrix_hybrid_crash_one() {
    let o = run(Scheme::HybridLocality, FaultScenario::CrashOne, 1);
    baseline(&o, "hybrid/crash-one");
    // the node-local replica covers every read even when buffer chunks died
    assert!(o.data_intact(), "local replica must cover all reads");
}

// --- {A, B, C} × crash-then-restart ---------------------------------

#[test]
fn matrix_async_crash_restart() {
    let o = run(Scheme::AsyncLustre, FaultScenario::CrashRestart, 1);
    baseline(&o, "async/crash-restart");
    assert_eq!(o.crashes, 1);
    // the restarted server is empty: its unflushed chunks are the loss
    // window, and recovery completes in bounded virtual time
    let rec = o.recovery.expect("converged run reports recovery time");
    assert!(
        rec.as_secs_f64() < 60.0,
        "recovery took {rec:?} — not bounded"
    );
}

#[test]
fn matrix_sync_crash_restart() {
    let o = run(Scheme::SyncLustre, FaultScenario::CrashRestart, 1);
    baseline(&o, "sync/crash-restart");
    assert_eq!(o.chunks_lost, 0);
    assert!(o.data_intact());
}

#[test]
fn matrix_hybrid_crash_restart() {
    let o = run(Scheme::HybridLocality, FaultScenario::CrashRestart, 1);
    baseline(&o, "hybrid/crash-restart");
    assert!(o.data_intact());
}

// --- {A, B, C} × link flap ------------------------------------------

#[test]
fn matrix_async_link_flap() {
    let o = run(Scheme::AsyncLustre, FaultScenario::LinkFlap, 1);
    baseline(&o, "async/link-flap");
    // a flap loses no state: buffer contents survive, so every read is
    // served even if some flush attempts had to wait out a down window
    assert!(o.data_intact(), "link flap must not lose data");
    assert!(o.retry_attempts > 0, "flap must exercise the retry path");
}

#[test]
fn matrix_sync_link_flap() {
    let o = run(Scheme::SyncLustre, FaultScenario::LinkFlap, 1);
    baseline(&o, "sync/link-flap");
    assert_eq!(o.chunks_lost, 0);
    assert!(o.data_intact());
}

#[test]
fn matrix_hybrid_link_flap() {
    let o = run(Scheme::HybridLocality, FaultScenario::LinkFlap, 1);
    baseline(&o, "hybrid/link-flap");
    assert!(o.data_intact());
}

// --- {A, B, C} × 1% transfer loss -----------------------------------

#[test]
fn matrix_async_rpc_loss() {
    let o = run(Scheme::AsyncLustre, FaultScenario::RpcLoss, 1);
    baseline(&o, "async/rpc-loss");
    assert_eq!(o.chunks_lost, 0, "1% loss must be absorbed by retries");
    assert!(o.data_intact());
}

#[test]
fn matrix_sync_rpc_loss() {
    let o = run(Scheme::SyncLustre, FaultScenario::RpcLoss, 1);
    baseline(&o, "sync/rpc-loss");
    assert_eq!(o.chunks_lost, 0);
    assert!(o.data_intact());
}

#[test]
fn matrix_hybrid_rpc_loss() {
    let o = run(Scheme::HybridLocality, FaultScenario::RpcLoss, 1);
    baseline(&o, "hybrid/rpc-loss");
    assert_eq!(o.chunks_lost, 0);
    assert!(o.data_intact());
}

// --- {A, B, C} × 1% at-rest value corruption ------------------------
//
// The end-to-end integrity contract: a completed read NEVER returns
// wrong bytes. Corruption is either repaired (replica/Lustre), routed
// around, or surfaces as accounted loss — `baseline` enforces the
// never-silent half, the per-cell asserts the detection half.

#[test]
fn matrix_async_corrupt_values() {
    let o = run(Scheme::AsyncLustre, FaultScenario::CorruptValues, 1);
    baseline(&o, "async/corrupt-values");
    assert!(o.corrupted_values > 0, "no sweep damaged a value");
    assert!(o.checksum_fails > 0, "corruption was never detected");
}

#[test]
fn matrix_sync_corrupt_values() {
    let o = run(Scheme::SyncLustre, FaultScenario::CorruptValues, 1);
    baseline(&o, "sync/corrupt-values");
    assert!(o.corrupted_values > 0, "no sweep damaged a value");
    assert!(o.checksum_fails > 0, "corruption was never detected");
    // every byte is in Lustre before close: reads verify and fall back
    assert_eq!(o.chunks_lost, 0);
    assert!(o.data_intact(), "sync must serve correct bytes regardless");
}

#[test]
fn matrix_hybrid_corrupt_values() {
    let o = run(Scheme::HybridLocality, FaultScenario::CorruptValues, 1);
    baseline(&o, "hybrid/corrupt-values");
    assert!(o.corrupted_values > 0, "no sweep damaged a value");
    assert!(o.checksum_fails > 0, "corruption was never detected");
    assert!(o.data_intact(), "local replica must cover corrupted chunks");
}

#[test]
fn corrupt_values_with_replication_repair_to_zero() {
    let o = run(Scheme::AsyncLustre, FaultScenario::CorruptValues, 2);
    baseline(&o, "async-r2/corrupt-values");
    assert!(o.corrupted_values > 0, "no sweep damaged a value");
    assert!(o.checksum_fails > 0, "corruption was never detected");
    assert_eq!(o.chunks_lost, 0, "a good replica always survives p=1%");
    assert!(o.data_intact());
    assert!(o.scrub_repaired > 0, "scrubber never repaired a bad copy");
    assert_eq!(
        o.scrub_unrepairable, 0,
        "r=2 must leave nothing unrepairable"
    );
}

// --- {A, B, C} × 1% in-flight transfer corruption -------------------

#[test]
fn matrix_async_corrupt_transfers() {
    let o = run_seeded(Scheme::AsyncLustre, FaultScenario::CorruptTransfers, 1, 0x3);
    baseline(&o, "async/corrupt-transfers");
    assert!(o.corrupted_transfers > 0, "no transfer was corrupted");
    assert_eq!(o.chunks_lost, 0, "in-flight corruption must be retried");
    assert!(o.data_intact(), "every read must be byte-correct");
}

#[test]
fn matrix_sync_corrupt_transfers() {
    let o = run_seeded(Scheme::SyncLustre, FaultScenario::CorruptTransfers, 1, 0x3);
    baseline(&o, "sync/corrupt-transfers");
    assert!(o.corrupted_transfers > 0, "no transfer was corrupted");
    assert_eq!(o.chunks_lost, 0);
    assert!(o.data_intact());
}

#[test]
fn matrix_hybrid_corrupt_transfers() {
    let o = run_seeded(
        Scheme::HybridLocality,
        FaultScenario::CorruptTransfers,
        1,
        0x3,
    );
    baseline(&o, "hybrid/corrupt-transfers");
    assert!(o.corrupted_transfers > 0, "no transfer was corrupted");
    assert_eq!(o.chunks_lost, 0);
    assert!(o.data_intact());
}

// --- replication closes the async window ----------------------------

#[test]
fn replication_survives_crash_without_loss() {
    let o = run(Scheme::AsyncLustre, FaultScenario::CrashOne, 2);
    baseline(&o, "async-r2/crash-one");
    assert_eq!(o.chunks_lost, 0, "r=2 must close the fault window");
    assert!(o.data_intact());
    assert!(o.failover_reads > 0, "reads must have failed over");
}

#[test]
fn replication_survives_crash_restart_without_loss() {
    let o = run(Scheme::AsyncLustre, FaultScenario::CrashRestart, 2);
    baseline(&o, "async-r2/crash-restart");
    assert_eq!(o.chunks_lost, 0);
    assert!(o.data_intact());
}

// --- durability ack modes: the loss-window contracts ------------------
//
// `CrashAsyncReplica` stretches the async-replication window (the
// writer's transfers to every non-victim server are delay-held) and then
// crashes the server holding the only quorum copy. Each ack mode's
// contract bounds what that crash may cost:
// * `full_r` — every ack waited for all replicas: zero acked loss;
// * `local_plus_one` — every ack has a second copy: one crash is free;
// * `local_only` — acked chunks may live on the victim alone, but never
//   more of them than the ack-ahead window admits.

fn run_acked(
    scenario: FaultScenario,
    replication: usize,
    ack_mode: AckMode,
    ack_ahead: usize,
) -> FaultOutcome {
    run_fault_scenario(FaultCase {
        ack_mode,
        ack_ahead,
        ..FaultCase::quick(Scheme::AsyncLustre, scenario, replication)
    })
}

#[test]
fn ack_full_r_has_zero_acked_loss_across_replica_crash() {
    let o = run_acked(FaultScenario::CrashAsyncReplica, 2, AckMode::FullR, 8);
    baseline(&o, "ack-full-r/crash-async-replica");
    assert_eq!(o.chunks_lost, 0, "full_r acked chunks must all survive");
    assert!(o.data_intact(), "every read must be served");
    // the seed path never registers the relaxed-ack counters
    assert_eq!(o.ack_quorum_acks, 0, "full_r must ride the seed ack path");
}

#[test]
fn ack_local_plus_one_survives_one_crash() {
    let o = run_acked(
        FaultScenario::CrashAsyncReplica,
        3,
        AckMode::LocalPlusOne,
        8,
    );
    baseline(&o, "ack-local-plus-one/crash-async-replica");
    assert!(o.ack_quorum_acks > 0, "relaxed quorum path never exercised");
    assert_eq!(
        o.chunks_lost, 0,
        "every ack carried a second copy — one crash must be free"
    );
    assert!(o.data_intact(), "every read must be served");
}

#[test]
fn ack_local_only_loss_is_bounded_by_ack_ahead_window() {
    let ahead = 4;
    let o = run_acked(
        FaultScenario::CrashAsyncReplica,
        2,
        AckMode::LocalOnly,
        ahead,
    );
    baseline(&o, "ack-local-only/crash-async-replica");
    assert!(o.ack_quorum_acks > 0, "relaxed quorum path never exercised");
    assert!(
        o.chunks_lost > 0,
        "the single-copy ack window never opened — the cell proves nothing"
    );
    assert!(
        o.chunks_lost <= ahead as u64,
        "{} chunks lost but the ack-ahead window admits only {ahead} \
         acked-under-replicated chunks at once",
        o.chunks_lost
    );
}

#[test]
fn ack_downgrade_is_loud_when_a_replica_target_is_down() {
    // plain crash-one under local_only: post-crash async tails aimed at
    // the dead victim exhaust their retries — that must surface as the
    // `bb.ack.downgrade` counter (and flight event), never silently
    let o = run_acked(FaultScenario::CrashOne, 2, AckMode::LocalOnly, 8);
    baseline(&o, "ack-local-only/crash-one");
    assert!(o.ack_quorum_acks > 0, "relaxed quorum path never exercised");
    assert!(
        o.ack_downgrades > 0,
        "tails to the crashed server must be accounted as downgrades"
    );
}

// --- determinism: same seed + plan ⇒ byte-identical run --------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Two runs of the same seeded fault plan produce byte-identical
    /// metrics snapshots, identical applied-fault timelines, and the
    /// same virtual end instant — all jitter comes from the plan's
    /// seeded RNG, never the wall clock.
    #[test]
    fn same_seed_runs_are_byte_identical(seed in any::<u64>()) {
        let case = FaultCase {
            seed,
            ..FaultCase::quick(Scheme::AsyncLustre, FaultScenario::RpcLoss, 1)
        };
        let a = run_fault_scenario(case);
        let b = run_fault_scenario(case);
        prop_assert!(a.converged && b.converged);
        prop_assert_eq!(&a.metrics_json, &b.metrics_json, "metrics diverged for seed {}", seed);
        prop_assert_eq!(&a.timeline, &b.timeline);
        prop_assert_eq!(a.end, b.end);
        prop_assert_eq!(a.dropped_transfers, b.dropped_transfers);
    }

    /// `CorruptValue` expansion is a pure function of the plan seed: the
    /// same seed damages the same values the same way, so two runs are
    /// byte-identical end to end (metrics, timeline, virtual end time).
    #[test]
    fn corrupt_value_expansion_is_deterministic(seed in any::<u64>()) {
        let case = FaultCase {
            seed,
            ..FaultCase::quick(Scheme::AsyncLustre, FaultScenario::CorruptValues, 2)
        };
        let a = run_fault_scenario(case);
        let b = run_fault_scenario(case);
        prop_assert!(a.converged && b.converged);
        prop_assert_eq!(a.corrupted_values, b.corrupted_values);
        prop_assert_eq!(a.checksum_fails, b.checksum_fails);
        prop_assert_eq!(a.scrub_repaired, b.scrub_repaired);
        prop_assert_eq!(&a.metrics_json, &b.metrics_json, "metrics diverged for seed {}", seed);
        prop_assert_eq!(&a.timeline, &b.timeline);
        prop_assert_eq!(a.end, b.end);
    }

    /// A deliberately impossible convergence deadline forces the
    /// fault-matrix failure path: the crash flight recorder must freeze
    /// a dump naming the reason, and two same-seed forced failures must
    /// produce byte-identical dumps (the triage artifact is as
    /// deterministic as the run it describes).
    #[test]
    fn forced_failure_dumps_flight_recorder_deterministically(seed in any::<u64>()) {
        let case = FaultCase {
            seed,
            deadline_secs: 1,
            ..FaultCase::quick(Scheme::AsyncLustre, FaultScenario::CrashOne, 1)
        };
        let a = run_fault_scenario(case);
        let b = run_fault_scenario(case);
        prop_assert!(!a.converged, "1 s deadline cannot cover flush + read-back");
        prop_assert!(
            !a.flight_dumps.is_empty(),
            "forced failure produced no flight-recorder dump"
        );
        prop_assert!(a.flight_dumps[0].contains("\"schema\": \"rdma-bb.flight.v1\""));
        prop_assert!(a.flight_dumps[0].contains("hung past the deadline"));
        prop_assert!(
            a.flight_dumps[0].contains("faultplan"),
            "dump must carry the applied-fault ring"
        );
        prop_assert_eq!(&a.flight_dumps, &b.flight_dumps, "dumps diverged for seed {}", seed);
    }

    /// The relaxed-ack loss window replays identically: which chunks were
    /// acked under-replicated, which tails were still delay-held at the
    /// crash, and therefore exactly which chunks are lost are functions
    /// of (seed, plan) only.
    #[test]
    fn relaxed_ack_loss_window_is_deterministic(seed in any::<u64>()) {
        let case = FaultCase {
            seed,
            ack_mode: AckMode::LocalOnly,
            ack_ahead: 4,
            ..FaultCase::quick(Scheme::AsyncLustre, FaultScenario::CrashAsyncReplica, 2)
        };
        let a = run_fault_scenario(case);
        let b = run_fault_scenario(case);
        prop_assert!(a.converged && b.converged);
        prop_assert_eq!(a.chunks_lost, b.chunks_lost);
        prop_assert_eq!(a.ack_quorum_acks, b.ack_quorum_acks);
        prop_assert_eq!(a.ack_downgrades, b.ack_downgrades);
        prop_assert_eq!(&a.metrics_json, &b.metrics_json, "metrics diverged for seed {}", seed);
        prop_assert_eq!(&a.timeline, &b.timeline);
        prop_assert_eq!(a.end, b.end);
    }

    /// The full crash/restart lifecycle replays identically: recovery
    /// timeline and loss accounting are functions of (seed, plan) only.
    #[test]
    fn crash_recovery_timeline_is_deterministic(seed in any::<u64>()) {
        let case = FaultCase {
            seed,
            ..FaultCase::quick(Scheme::AsyncLustre, FaultScenario::CrashRestart, 1)
        };
        let a = run_fault_scenario(case);
        let b = run_fault_scenario(case);
        prop_assert!(a.converged && b.converged);
        prop_assert_eq!(&a.timeline, &b.timeline);
        prop_assert_eq!(a.chunks_lost, b.chunks_lost);
        prop_assert_eq!(a.reads_ok, b.reads_ok);
        prop_assert_eq!(a.recovery, b.recovery);
        prop_assert_eq!(&a.metrics_json, &b.metrics_json);
    }
}
