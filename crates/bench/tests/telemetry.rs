//! Telemetry determinism guarantees (DESIGN.md §Telemetry): same-seed
//! runs emit byte-identical metrics snapshots and Chrome traces, a
//! disabled tracer records nothing and perturbs nothing, and the
//! exported trace is structurally valid for Perfetto (monotone `ts`).

use bb_core::{BbConfig, BbDeployment, Scheme};
use bytes::Bytes;
use lustre::{LustreCluster, LustreConfig};
use netsim::{Fabric, NetConfig, NodeId};
use proptest::prelude::*;
use simkit::Sim;

struct CellRun {
    metrics_json: String,
    trace_json: Option<String>,
    end_ns: u64,
    events: usize,
}

/// One small burst-buffer cell: write `chunks` chunks, read them back
/// through the pipelined tiered path, freeze the telemetry.
fn run_cell(read_window: usize, chunks: u64, traced: bool) -> CellRun {
    let sim = Sim::new();
    if traced {
        sim.tracer().enable();
    }
    let fabric = Fabric::new(sim.clone(), 2, NetConfig::default());
    let lustre = LustreCluster::deploy(&fabric, LustreConfig::default());
    let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
    let cfg = BbConfig {
        scheme: Scheme::AsyncLustre,
        read_window,
        ..BbConfig::default()
    };
    let size = chunks * cfg.chunk_size;
    let dep = BbDeployment::deploy(&fabric, lustre, &nodes, cfg);
    let client = dep.client(NodeId(0));
    let s = sim.clone();
    let end_ns = sim.block_on(async move {
        let w = client.create("/t").await.unwrap();
        w.append(Bytes::from(vec![7u8; size as usize]))
            .await
            .unwrap();
        w.close().await.unwrap();
        let rd = client.open("/t").await.unwrap();
        let data = rd.read_all().await.unwrap();
        assert_eq!(data.len() as u64, size);
        dep.shutdown();
        s.now().as_nanos()
    });
    CellRun {
        metrics_json: sim.metrics().snapshot().to_json(),
        trace_json: traced.then(|| sim.tracer().export_chrome()),
        end_ns,
        events: sim.tracer().event_count(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Same seed (there is only the implicit seed: the program itself)
    /// → byte-identical machine-readable outputs, whatever the
    /// read-path shape.
    #[test]
    fn same_seed_runs_are_byte_identical(window in 1usize..=8, chunks in 1u64..=4) {
        let a = run_cell(window, chunks, true);
        let b = run_cell(window, chunks, true);
        prop_assert_eq!(&a.metrics_json, &b.metrics_json);
        prop_assert_eq!(&a.trace_json, &b.trace_json);
        prop_assert_eq!(a.end_ns, b.end_ns);
    }
}

/// A disabled tracer adds zero events and does not move virtual time or
/// any metric relative to a traced run of the same program.
#[test]
fn disabled_tracer_is_inert() {
    let off = run_cell(8, 3, false);
    assert_eq!(off.events, 0, "disabled tracer must record nothing");
    assert!(off.trace_json.is_none());
    let on = run_cell(8, 3, true);
    assert!(on.events > 0, "traced read path must record spans");
    assert_eq!(
        off.end_ns, on.end_ns,
        "tracing must not perturb virtual time"
    );
    assert_eq!(off.metrics_json, on.metrics_json);
}

/// The exported trace is shaped for Perfetto: a `traceEvents` array of
/// complete events whose `ts` stream (virtual µs) is monotone, and the
/// read-tier counters account for every chunk exactly once.
#[test]
fn chrome_trace_is_perfetto_shaped_and_tiers_account() {
    let chunks = 4u64;
    let run = run_cell(8, chunks, true);
    let trace = run.trace_json.unwrap();
    assert!(trace.contains("\"traceEvents\":["));
    assert!(trace.contains("\"ph\":\"X\""));
    let mut last = f64::MIN;
    let mut seen = 0;
    for part in trace.split("\"ts\":").skip(1) {
        let num: f64 = part
            .split(',')
            .next()
            .unwrap()
            .parse()
            .expect("ts must be a number");
        assert!(num >= last, "ts stream must be monotone");
        last = num;
        seen += 1;
    }
    assert!(seen > 0, "trace must contain events");

    let tiers: u64 = [
        "bb.read.tier_local",
        "bb.read.tier_buffer",
        "bb.read.tier_lustre",
    ]
    .iter()
    .map(|n| bench::telemetry::counter_in_json(&run.metrics_json, n).unwrap_or(0))
    .sum();
    assert_eq!(tiers, chunks, "each chunk is served by exactly one tier");
}
