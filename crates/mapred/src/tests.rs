//! End-to-end engine tests over real filesystem backends.

use std::rc::Rc;

use bytes::{BufMut, Bytes, BytesMut};
use netsim::{Fabric, NetConfig, NodeId};
use simkit::Sim;

use bb_core::fs::AnyFs;
use bb_core::{BbConfig, BbDeployment, Scheme};
use hdfs::{HdfsCluster, HdfsConfig};
use lustre::{LustreCluster, LustreConfig};

use crate::engine::{JobSpec, MrConfig, MrEngine};
use crate::logic::{
    GrepLogic, IdentityLogic, RecordSortLogic, SyntheticShuffleLogic, WordCountLogic,
    SORT_RECORD_LEN,
};

struct Rig {
    sim: Sim,
    #[allow(dead_code)]
    fabric: Rc<Fabric>,
    engine: Rc<MrEngine>,
    hdfs: Rc<HdfsCluster>,
    lustre: Rc<LustreCluster>,
    bb: Rc<BbDeployment>,
}

fn rig(compute: usize) -> Rig {
    let sim = Sim::new();
    let fabric = Fabric::new(sim.clone(), compute, NetConfig::default());
    let nodes: Vec<NodeId> = (0..compute as u32).map(NodeId).collect();
    let hdfs = HdfsCluster::deploy(
        &fabric,
        &nodes,
        HdfsConfig {
            block_size: 4 << 20,
            packet_size: 512 << 10,
            ..HdfsConfig::default()
        },
    );
    let lustre = LustreCluster::deploy(&fabric, LustreConfig::default());
    let bb = BbDeployment::deploy(
        &fabric,
        Rc::clone(&lustre),
        &nodes,
        BbConfig {
            scheme: Scheme::AsyncLustre,
            kv_servers: 2,
            ..BbConfig::default()
        },
    );
    let engine = MrEngine::new(
        Rc::clone(&fabric),
        nodes,
        MrConfig {
            split_size: 4 << 20,
            ..MrConfig::default()
        },
    );
    Rig {
        sim,
        fabric,
        engine,
        hdfs,
        lustre,
        bb,
    }
}

impl Rig {
    fn fs_hdfs(&self) -> impl Fn(NodeId) -> AnyFs + '_ {
        move |n| AnyFs::Hdfs(self.hdfs.client(n))
    }
    fn fs_lustre(&self) -> impl Fn(NodeId) -> AnyFs + '_ {
        move |n| AnyFs::Lustre(self.lustre.client(n))
    }
    fn fs_bb(&self) -> impl Fn(NodeId) -> AnyFs + '_ {
        move |n| AnyFs::Bb(self.bb.client(n))
    }
    fn shutdown(&self) {
        self.hdfs.shutdown();
        self.bb.shutdown();
    }
}

async fn put(fs: &AnyFs, path: &str, data: Bytes) {
    let w = fs.create(path).await.unwrap();
    w.append(data).await.unwrap();
    w.close().await.unwrap();
}

#[test]
fn identity_job_copies_input() {
    let r = rig(4);
    let engine = Rc::clone(&r.engine);
    let data = Bytes::from((0..6 << 20).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let expect = data.clone();
    r.sim.clone().block_on(async move {
        let fs = r.fs_hdfs();
        put(&fs(NodeId(0)), "/in/data", data).await;
        let report = engine
            .run(
                &fs,
                JobSpec {
                    name: "copy".into(),
                    inputs: vec!["/in/data".into()],
                    output_dir: "/out".into(),
                    reducers: 1,
                    logic: Rc::new(IdentityLogic),
                },
            )
            .await
            .unwrap();
        assert_eq!(report.maps, 2); // 6 MiB over 4 MiB blocks
        assert_eq!(report.bytes_read, 6 << 20);
        assert_eq!(report.bytes_written, 6 << 20);
        let out = fs(NodeId(1)).open("/out/part-00000").await.unwrap();
        assert_eq!(out.read_all().await.unwrap(), expect);
        r.shutdown();
    });
}

#[test]
fn record_sort_produces_globally_sorted_output() {
    let r = rig(4);
    let engine = Rc::clone(&r.engine);
    // TeraGen-ish input: pseudorandom keys
    let n_records = 40_000usize;
    let mut input = BytesMut::with_capacity(n_records * SORT_RECORD_LEN);
    let mut x = 12345u64;
    for _ in 0..n_records {
        let mut rec = [0u8; SORT_RECORD_LEN];
        for b in rec.iter_mut().take(10) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 33) as u8;
        }
        input.put_slice(&rec);
    }
    let input = input.freeze();
    r.sim.clone().block_on(async move {
        let fs = r.fs_bb();
        put(&fs(NodeId(0)), "/sort/in", input).await;
        let report = engine
            .run(
                &fs,
                JobSpec {
                    name: "sort".into(),
                    inputs: vec!["/sort/in".into()],
                    output_dir: "/sort/out".into(),
                    reducers: 4,
                    logic: Rc::new(RecordSortLogic),
                },
            )
            .await
            .unwrap();
        assert_eq!(report.bytes_written, (n_records * SORT_RECORD_LEN) as u64);
        // every partition internally sorted; partitions ordered by range
        let mut last_key_prev_part: Option<Vec<u8>> = None;
        for p in 0..4 {
            let path = format!("/sort/out/part-{p:05}");
            let out = fs(NodeId(0)).open(&path).await.unwrap();
            let data = out.read_all().await.unwrap();
            let mut prev: Option<&[u8]> = None;
            for rec in data.chunks(SORT_RECORD_LEN) {
                let key = &rec[..10];
                if let Some(p) = prev {
                    assert!(p <= key, "partition {p:?} not sorted");
                }
                prev = Some(key);
            }
            if let (Some(last), Some(first)) = (
                last_key_prev_part.as_deref(),
                data.chunks(SORT_RECORD_LEN).next().map(|r| &r[..10]),
            ) {
                assert!(last <= first, "partition ranges out of order");
            }
            if let Some(last) = data.chunks(SORT_RECORD_LEN).last() {
                last_key_prev_part = Some(last[..10].to_vec());
            }
        }
        r.shutdown();
    });
}

#[test]
fn word_count_over_lustre() {
    let r = rig(3);
    let engine = Rc::clone(&r.engine);
    let text = "alpha beta gamma alpha beta alpha\n".repeat(20_000);
    r.sim.clone().block_on(async move {
        let fs = r.fs_lustre();
        put(&fs(NodeId(0)), "/wc/in", Bytes::from(text)).await;
        engine
            .run(
                &fs,
                JobSpec {
                    name: "wordcount".into(),
                    inputs: vec!["/wc/in".into()],
                    output_dir: "/wc/out".into(),
                    reducers: 2,
                    logic: Rc::new(WordCountLogic),
                },
            )
            .await
            .unwrap();
        // gather both partitions and check totals
        let mut all = String::new();
        for p in 0..2 {
            let out = fs(NodeId(0))
                .open(&format!("/wc/out/part-{p:05}"))
                .await
                .unwrap();
            all.push_str(&String::from_utf8_lossy(&out.read_all().await.unwrap()));
        }
        assert!(all.contains("alpha\t60000"), "got: {all}");
        assert!(all.contains("beta\t40000"));
        assert!(all.contains("gamma\t20000"));
        r.shutdown();
    });
}

#[test]
fn grep_finds_needles_across_splits() {
    let r = rig(3);
    let engine = Rc::clone(&r.engine);
    let mut text = String::new();
    for i in 0..200_000 {
        if i % 1000 == 0 {
            text.push_str(&format!("line {i} with NEEDLE inside\n"));
        } else {
            text.push_str(&format!("plain line {i}\n"));
        }
    }
    r.sim.clone().block_on(async move {
        let fs = r.fs_hdfs();
        put(&fs(NodeId(0)), "/grep/in", Bytes::from(text)).await;
        engine
            .run(
                &fs,
                JobSpec {
                    name: "grep".into(),
                    inputs: vec!["/grep/in".into()],
                    output_dir: "/grep/out".into(),
                    reducers: 1,
                    logic: Rc::new(GrepLogic {
                        needle: "NEEDLE".into(),
                    }),
                },
            )
            .await
            .unwrap();
        let out = fs(NodeId(0)).open("/grep/out/part-00000").await.unwrap();
        let data = out.read_all().await.unwrap();
        let text = String::from_utf8_lossy(&data);
        assert_eq!(text.lines().count(), 200);
        assert!(text.lines().all(|l| l.contains("NEEDLE")));
        r.shutdown();
    });
}

#[test]
fn hdfs_maps_are_mostly_local_lustre_never() {
    let r = rig(4);
    let engine = Rc::clone(&r.engine);
    let data = Bytes::from(vec![9u8; 16 << 20]);
    r.sim.clone().block_on(async move {
        let hfs = r.fs_hdfs();
        put(&hfs(NodeId(0)), "/loc/h", data.clone()).await;
        let lfs = r.fs_lustre();
        put(&lfs(NodeId(0)), "/loc/l", data).await;
        let job = |input: &str, out: &str| JobSpec {
            name: "scan".into(),
            inputs: vec![input.into()],
            output_dir: out.into(),
            reducers: 1,
            logic: Rc::new(SyntheticShuffleLogic::aggregation(0.01)),
        };
        let hr = engine.run(&hfs, job("/loc/h", "/loc/hout")).await.unwrap();
        let lr = engine.run(&lfs, job("/loc/l", "/loc/lout")).await.unwrap();
        // HDFS: 3 replicas over 4 nodes → locality easy to achieve
        assert!(
            hr.local_maps * 2 >= hr.maps,
            "HDFS locality too low: {}/{}",
            hr.local_maps,
            hr.maps
        );
        assert_eq!(lr.local_maps, 0, "Lustre has no node-local data");
        r.shutdown();
    });
}

#[test]
fn map_only_job_writes_nothing() {
    let r = rig(2);
    let engine = Rc::clone(&r.engine);
    let data = Bytes::from(vec![1u8; 4 << 20]);
    r.sim.clone().block_on(async move {
        let fs = r.fs_hdfs();
        put(&fs(NodeId(0)), "/mo/in", data).await;
        let report = engine
            .run(
                &fs,
                JobSpec {
                    name: "maponly".into(),
                    inputs: vec!["/mo/in".into()],
                    output_dir: "/mo/out".into(),
                    reducers: 0,
                    logic: Rc::new(IdentityLogic),
                },
            )
            .await
            .unwrap();
        assert_eq!(report.reduces, 0);
        assert_eq!(report.bytes_written, 0);
        assert!(fs(NodeId(0)).list("/mo/out").await.unwrap().is_empty());
        r.shutdown();
    });
}

#[test]
fn multiple_inputs_and_many_reducers() {
    let r = rig(4);
    let engine = Rc::clone(&r.engine);
    r.sim.clone().block_on(async move {
        let fs = r.fs_bb();
        for i in 0..3 {
            put(
                &fs(NodeId(i % 4)),
                &format!("/multi/in{i}"),
                Bytes::from(vec![i as u8; 5 << 20]),
            )
            .await;
        }
        let report = engine
            .run(
                &fs,
                JobSpec {
                    name: "multi".into(),
                    inputs: (0..3).map(|i| format!("/multi/in{i}")).collect(),
                    output_dir: "/multi/out".into(),
                    reducers: 8,
                    logic: Rc::new(SyntheticShuffleLogic::sort()),
                },
            )
            .await
            .unwrap();
        assert_eq!(report.bytes_read, 15 << 20);
        assert_eq!(report.bytes_written, 15 << 20);
        assert_eq!(fs(NodeId(0)).list("/multi/out").await.unwrap().len(), 8);
        r.shutdown();
    });
}
