//! Job logics: how map turns split bytes into per-partition outputs and
//! how reduce folds shuffled pieces into final output.
//!
//! Two families:
//! * **real** logics (word count, grep, record sort) process actual byte
//!   content — used for correctness tests and small runs;
//! * **synthetic** logics move real bytes with zero-copy slicing but skip
//!   content inspection — used for multi-gigabyte benchmark runs where CPU
//!   cost is charged to the virtual clock, not the host.

use bytes::{BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

/// A MapReduce job's data transformation.
pub trait JobLogic {
    /// Turn one split's bytes into per-partition map outputs.
    fn map(&self, split_index: usize, data: Bytes, partitions: u32) -> Vec<(u32, Bytes)>;

    /// Fold one partition's shuffled pieces (in map order) into output
    /// chunks, written to the partition's output file in order.
    fn reduce(&self, partition: u32, pieces: Vec<Bytes>) -> Vec<Bytes>;

    /// Map CPU throughput (bytes/s of input processed).
    fn map_cpu_rate(&self) -> f64 {
        250e6
    }

    /// Reduce CPU throughput (bytes/s of shuffled data processed).
    fn reduce_cpu_rate(&self) -> f64 {
        250e6
    }
}

/// Pass input through unchanged to a single partition (a distributed copy).
pub struct IdentityLogic;

impl JobLogic for IdentityLogic {
    fn map(&self, _split: usize, data: Bytes, _partitions: u32) -> Vec<(u32, Bytes)> {
        vec![(0, data)]
    }
    fn reduce(&self, _partition: u32, pieces: Vec<Bytes>) -> Vec<Bytes> {
        pieces
    }
}

/// Sort/shuffle-shaped synthetic logic: every split is sliced (zero-copy)
/// into `partitions` pieces scaled by `output_ratio`, and reduce passes the
/// gathered pieces through. Models the data volumes of a sort (`ratio =
/// 1.0`) or an aggregation (`ratio < 1`) without touching content.
pub struct SyntheticShuffleLogic {
    /// Map output bytes per input byte.
    pub output_ratio: f64,
    /// Map CPU rate override.
    pub map_rate: f64,
    /// Reduce CPU rate override.
    pub reduce_rate: f64,
}

impl SyntheticShuffleLogic {
    /// Sort-shaped: all bytes shuffle (ratio 1.0) at typical sort CPU rates.
    pub fn sort() -> Self {
        SyntheticShuffleLogic {
            output_ratio: 1.0,
            map_rate: 400e6,
            reduce_rate: 300e6,
        }
    }

    /// Aggregation-shaped: `ratio` of the input survives the map.
    pub fn aggregation(ratio: f64) -> Self {
        SyntheticShuffleLogic {
            output_ratio: ratio,
            map_rate: 200e6,
            reduce_rate: 250e6,
        }
    }
}

impl JobLogic for SyntheticShuffleLogic {
    fn map(&self, _split: usize, data: Bytes, partitions: u32) -> Vec<(u32, Bytes)> {
        let out_len = (data.len() as f64 * self.output_ratio) as usize;
        let out = data.slice(..out_len.min(data.len()));
        let n = partitions.max(1) as usize;
        let per = out.len() / n;
        let mut pieces = Vec::with_capacity(n);
        for p in 0..n {
            let start = p * per;
            let end = if p == n - 1 { out.len() } else { (p + 1) * per };
            if end > start {
                pieces.push((p as u32, out.slice(start..end)));
            }
        }
        pieces
    }
    fn reduce(&self, _partition: u32, pieces: Vec<Bytes>) -> Vec<Bytes> {
        pieces
    }
    fn map_cpu_rate(&self) -> f64 {
        self.map_rate
    }
    fn reduce_cpu_rate(&self) -> f64 {
        self.reduce_rate
    }
}

/// Key width of a [`RecordSortLogic`] record.
pub const SORT_KEY_LEN: usize = 10;
/// Record width of a [`RecordSortLogic`] record (TeraSort-style).
pub const SORT_RECORD_LEN: usize = 100;

/// Real record sort over TeraSort-style 100-byte records with 10-byte keys:
/// map range-partitions by first key byte, reduce merge-sorts.
pub struct RecordSortLogic;

impl JobLogic for RecordSortLogic {
    fn map(&self, _split: usize, data: Bytes, partitions: u32) -> Vec<(u32, Bytes)> {
        let n = partitions.max(1);
        let mut buckets: Vec<BytesMut> = (0..n).map(|_| BytesMut::new()).collect();
        for rec in data.chunks(SORT_RECORD_LEN) {
            if rec.len() < SORT_RECORD_LEN {
                continue; // trailing fragment (split-aligned inputs avoid this)
            }
            let p = (rec[0] as u32 * n) / 256;
            buckets[p as usize].put_slice(rec);
        }
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(p, b)| (p as u32, b.freeze()))
            .collect()
    }

    fn reduce(&self, _partition: u32, pieces: Vec<Bytes>) -> Vec<Bytes> {
        let mut records: Vec<&[u8]> = Vec::new();
        for piece in &pieces {
            for rec in piece.chunks(SORT_RECORD_LEN) {
                if rec.len() == SORT_RECORD_LEN {
                    records.push(rec);
                }
            }
        }
        records.sort_unstable_by_key(|r| &r[..SORT_KEY_LEN]);
        let mut out = BytesMut::with_capacity(records.len() * SORT_RECORD_LEN);
        for r in records {
            out.put_slice(r);
        }
        vec![out.freeze()]
    }

    fn map_cpu_rate(&self) -> f64 {
        350e6
    }
    fn reduce_cpu_rate(&self) -> f64 {
        200e6
    }
}

/// Real word counting over whitespace-separated text.
pub struct WordCountLogic;

fn wc_partition(word: &str, partitions: u32) -> u32 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in word.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % partitions.max(1) as u64) as u32
}

impl JobLogic for WordCountLogic {
    fn map(&self, _split: usize, data: Bytes, partitions: u32) -> Vec<(u32, Bytes)> {
        let text = String::from_utf8_lossy(&data);
        let mut counts: Vec<BTreeMap<&str, u64>> =
            (0..partitions.max(1)).map(|_| BTreeMap::new()).collect();
        for word in text.split_whitespace() {
            let p = wc_partition(word, partitions);
            *counts[p as usize].entry(word).or_default() += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(p, m)| {
                let mut buf = BytesMut::new();
                for (w, c) in m {
                    buf.put_slice(format!("{w}\t{c}\n").as_bytes());
                }
                (p as u32, buf.freeze())
            })
            .collect()
    }

    fn reduce(&self, _partition: u32, pieces: Vec<Bytes>) -> Vec<Bytes> {
        let mut total: BTreeMap<String, u64> = BTreeMap::new();
        for piece in &pieces {
            let text = String::from_utf8_lossy(piece);
            for line in text.lines() {
                if let Some((w, c)) = line.split_once('\t') {
                    if let Ok(c) = c.parse::<u64>() {
                        *total.entry(w.to_owned()).or_default() += c;
                    }
                }
            }
        }
        let mut buf = BytesMut::new();
        for (w, c) in total {
            buf.put_slice(format!("{w}\t{c}\n").as_bytes());
        }
        vec![buf.freeze()]
    }

    fn map_cpu_rate(&self) -> f64 {
        150e6
    }
}

/// Real grep: emit lines containing the needle.
pub struct GrepLogic {
    /// Substring to search for.
    pub needle: String,
}

impl JobLogic for GrepLogic {
    fn map(&self, _split: usize, data: Bytes, _partitions: u32) -> Vec<(u32, Bytes)> {
        let text = String::from_utf8_lossy(&data);
        let mut buf = BytesMut::new();
        for line in text.lines() {
            if line.contains(&self.needle) {
                buf.put_slice(line.as_bytes());
                buf.put_u8(b'\n');
            }
        }
        if buf.is_empty() {
            Vec::new()
        } else {
            vec![(0, buf.freeze())]
        }
    }

    fn reduce(&self, _partition: u32, pieces: Vec<Bytes>) -> Vec<Bytes> {
        pieces
    }

    fn map_cpu_rate(&self) -> f64 {
        400e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_passthrough() {
        let l = IdentityLogic;
        let out = l.map(0, Bytes::from_static(b"abc"), 4);
        assert_eq!(out, vec![(0u32, Bytes::from_static(b"abc"))]);
        let red = l.reduce(0, vec![Bytes::from_static(b"x"), Bytes::from_static(b"y")]);
        assert_eq!(red.len(), 2);
    }

    #[test]
    fn synthetic_partitions_cover_scaled_output() {
        let l = SyntheticShuffleLogic::sort();
        let data = Bytes::from(vec![7u8; 1000]);
        let out = l.map(0, data, 4);
        let total: usize = out.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 1000);
        assert_eq!(out.len(), 4);
        let agg = SyntheticShuffleLogic::aggregation(0.1);
        let out = agg.map(0, Bytes::from(vec![1u8; 1000]), 2);
        let total: usize = out.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn record_sort_end_to_end_sorted() {
        let logic = RecordSortLogic;
        // build 50 records with descending keys
        let mut input = BytesMut::new();
        for i in (0..50u8).rev() {
            let mut rec = vec![0u8; SORT_RECORD_LEN];
            rec[0] = i;
            rec[1] = b'k';
            input.put_slice(&rec);
        }
        let pieces = logic.map(0, input.freeze(), 4);
        // run each partition's reduce and check global order
        let mut all = Vec::new();
        let mut by_p: Vec<Vec<Bytes>> = vec![Vec::new(); 4];
        for (p, b) in pieces {
            by_p[p as usize].push(b);
        }
        for (p, pieces) in by_p.into_iter().enumerate() {
            if pieces.is_empty() {
                continue;
            }
            for out in logic.reduce(p as u32, pieces) {
                all.push(out);
            }
        }
        let merged: Vec<u8> = all.iter().flat_map(|b| b.to_vec()).collect();
        assert_eq!(merged.len(), 50 * SORT_RECORD_LEN);
        let keys: Vec<u8> = merged.chunks(SORT_RECORD_LEN).map(|r| r[0]).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "partitioned sort is not globally ordered");
    }

    #[test]
    fn word_count_counts() {
        let l = WordCountLogic;
        let out = l.map(0, Bytes::from_static(b"the cat and the hat and the bat"), 1);
        assert_eq!(out.len(), 1);
        let red = l.reduce(0, out.into_iter().map(|(_, b)| b).collect());
        let text = String::from_utf8(red[0].to_vec()).unwrap();
        assert!(text.contains("the\t3"));
        assert!(text.contains("and\t2"));
        assert!(text.contains("cat\t1"));
    }

    #[test]
    fn word_count_merges_across_maps() {
        let l = WordCountLogic;
        let m1 = l.map(0, Bytes::from_static(b"x x y"), 1);
        let m2 = l.map(1, Bytes::from_static(b"x y z"), 1);
        let pieces: Vec<Bytes> = m1.into_iter().chain(m2).map(|(_, b)| b).collect();
        let red = l.reduce(0, pieces);
        let text = String::from_utf8(red[0].to_vec()).unwrap();
        assert!(text.contains("x\t3"));
        assert!(text.contains("y\t2"));
        assert!(text.contains("z\t1"));
    }

    #[test]
    fn grep_finds_matching_lines_only() {
        let l = GrepLogic {
            needle: "error".into(),
        };
        let out = l.map(
            0,
            Bytes::from_static(b"ok line\nerror: bad\nfine\nanother error here\n"),
            3,
        );
        assert_eq!(out.len(), 1);
        let text = String::from_utf8(out[0].1.to_vec()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.contains("error")));
        // no matches → no output pieces
        let none = l.map(0, Bytes::from_static(b"clean\n"), 3);
        assert!(none.is_empty());
    }
}
