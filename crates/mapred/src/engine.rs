//! The job engine: split planning, locality-first task scheduling, the
//! map/shuffle/reduce data path, and per-job reporting.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use netsim::{Fabric, NodeId, TransportProfile};
use simkit::future::join_all;
use simkit::resource::FifoServer;
use simkit::sync::semaphore::Semaphore;
use simkit::{dur, Sim};

use bb_core::fs::{AnyFs, FsError};

use crate::logic::JobLogic;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct MrConfig {
    /// Concurrent map tasks per node.
    pub map_slots: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots: usize,
    /// Split size when the input exposes no block geometry (Lustre).
    pub split_size: u64,
    /// Node-local spill device rate for map outputs (bytes/s).
    pub spill_rate: f64,
    /// Transport profile for shuffle traffic.
    pub shuffle: TransportProfile,
    /// Concurrent shuffle fetches per reduce task.
    pub shuffle_parallel: usize,
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig {
            map_slots: 2,
            reduce_slots: 2,
            split_size: 128 << 20,
            spill_rate: 400e6,
            shuffle: TransportProfile::ipoib_qdr(),
            shuffle_parallel: 4,
        }
    }
}

/// One job to run.
pub struct JobSpec {
    /// Job name (reports/diagnostics).
    pub name: String,
    /// Input file paths.
    pub inputs: Vec<String>,
    /// Output directory; reducers write `part-NNNNN` files under it.
    pub output_dir: String,
    /// Number of reduce tasks (0 = map-only job, map outputs discarded).
    pub reducers: usize,
    /// The data transformation.
    pub logic: Rc<dyn JobLogic>,
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobReport {
    /// Total wall-clock (virtual) time.
    pub elapsed: Duration,
    /// End of the map phase relative to job start.
    pub map_phase: Duration,
    /// Map tasks run.
    pub maps: usize,
    /// Map tasks that read a node-local replica.
    pub local_maps: usize,
    /// Reduce tasks run.
    pub reduces: usize,
    /// Input bytes read through the DFS.
    pub bytes_read: u64,
    /// Bytes moved in the shuffle.
    pub bytes_shuffled: u64,
    /// Output bytes written through the DFS.
    pub bytes_written: u64,
}

struct Split {
    path: String,
    offset: u64,
    len: u64,
    preferred: Vec<NodeId>,
}

struct MapOutput {
    node: NodeId,
    pieces: HashMap<u32, Bytes>,
}

/// The engine: bind it to a fabric and a set of compute nodes, then run
/// jobs against any filesystem backend.
pub struct MrEngine {
    fabric: Rc<Fabric>,
    nodes: Vec<NodeId>,
    config: MrConfig,
    spill: HashMap<NodeId, Rc<FifoServer>>,
}

impl MrEngine {
    /// Create an engine over `nodes`.
    pub fn new(fabric: Rc<Fabric>, nodes: Vec<NodeId>, config: MrConfig) -> Rc<MrEngine> {
        assert!(!nodes.is_empty(), "engine needs compute nodes");
        let sim = fabric.sim().clone();
        let spill = nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    Rc::new(FifoServer::new(sim.clone(), config.spill_rate, dur::us(20))),
                )
            })
            .collect();
        Rc::new(MrEngine {
            fabric,
            nodes,
            config,
            spill,
        })
    }

    /// The engine's compute nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The simulation clock this engine runs on.
    pub fn sim_handle(&self) -> Sim {
        self.fabric.sim().clone()
    }

    fn sim(&self) -> Sim {
        self.fabric.sim().clone()
    }

    /// Plan splits from the inputs' sizes and block geometry.
    async fn plan(&self, fs: &AnyFs, inputs: &[String]) -> Result<Vec<Split>, FsError> {
        let mut splits = Vec::new();
        for path in inputs {
            let reader = fs.open(path).await?;
            let size = reader.size();
            if size == 0 {
                continue;
            }
            let region = reader.location_region().unwrap_or(self.config.split_size);
            let locations = reader.locations();
            let mut off = 0;
            while off < size {
                let len = region.min(size - off);
                let li = (off / region) as usize;
                let preferred = locations.get(li).cloned().unwrap_or_default();
                splits.push(Split {
                    path: path.clone(),
                    offset: off,
                    len,
                    preferred,
                });
                off += len;
            }
        }
        Ok(splits)
    }

    /// Run `job` with one DFS client per node, produced by `fs_for`.
    pub async fn run(
        self: &Rc<Self>,
        fs_for: &dyn Fn(NodeId) -> AnyFs,
        job: JobSpec,
    ) -> Result<JobReport, FsError> {
        let sim = self.sim();
        let t0 = sim.now();
        let planner_fs = fs_for(self.nodes[0]);
        let splits = Rc::new(RefCell::new(
            self.plan(&planner_fs, &job.inputs)
                .await?
                .into_iter()
                .map(Some)
                .collect::<Vec<Option<Split>>>(),
        ));
        let total_maps = splits.borrow().len();
        let partitions = job.reducers.max(1) as u32;
        let logic: Rc<dyn JobLogic> = Rc::clone(&job.logic);
        let outputs: Rc<RefCell<Vec<Option<MapOutput>>>> =
            Rc::new(RefCell::new((0..total_maps).map(|_| None).collect()));
        let local_maps = Rc::new(RefCell::new(0usize));
        let bytes_read = Rc::new(RefCell::new(0u64));

        // ---- map phase: locality-first workers ----
        let mut workers = Vec::new();
        for &node in &self.nodes {
            for _ in 0..self.config.map_slots {
                let splits = Rc::clone(&splits);
                let outputs = Rc::clone(&outputs);
                let logic = Rc::clone(&logic);
                let local_maps = Rc::clone(&local_maps);
                let bytes_read = Rc::clone(&bytes_read);
                let fs = fs_for(node);
                let this = Rc::clone(self);
                workers.push(sim.spawn(async move {
                    loop {
                        // pick a split: node-local first, else the next one
                        let picked = {
                            let mut pool = splits.borrow_mut();
                            let idx = pool
                                .iter()
                                .position(|s| {
                                    s.as_ref()
                                        .map(|s| s.preferred.contains(&node))
                                        .unwrap_or(false)
                                })
                                .or_else(|| pool.iter().position(|s| s.is_some()));
                            idx.map(|i| (i, pool[i].take().expect("picked live slot")))
                        };
                        let Some((map_id, split)) = picked else { break };
                        if split.preferred.contains(&node) {
                            *local_maps.borrow_mut() += 1;
                        }
                        let out = this
                            .run_map(&fs, node, map_id, &split, partitions, &*logic)
                            .await?;
                        *bytes_read.borrow_mut() += split.len;
                        outputs.borrow_mut()[map_id] = Some(out);
                    }
                    Ok::<(), FsError>(())
                }));
            }
        }
        for r in join_all(&sim, workers).await {
            r?;
        }
        let map_phase = sim.now() - t0;

        // ---- shuffle + reduce phase ----
        let bytes_shuffled = Rc::new(RefCell::new(0u64));
        let bytes_written = Rc::new(RefCell::new(0u64));
        if job.reducers > 0 {
            let mut reducers = Vec::new();
            let slots: HashMap<NodeId, Rc<Semaphore>> = self
                .nodes
                .iter()
                .map(|&n| (n, Rc::new(Semaphore::new(self.config.reduce_slots))))
                .collect();
            for r in 0..job.reducers {
                let node = self.nodes[r % self.nodes.len()];
                let outputs = Rc::clone(&outputs);
                let logic = Rc::clone(&logic);
                let fs = fs_for(node);
                let this = Rc::clone(self);
                let out_path = format!("{}/part-{r:05}", job.output_dir);
                let bytes_shuffled = Rc::clone(&bytes_shuffled);
                let bytes_written = Rc::clone(&bytes_written);
                let slot = Rc::clone(&slots[&node]);
                reducers.push(sim.spawn(async move {
                    let _slot = slot.acquire().await;
                    this.run_reduce(
                        &fs,
                        node,
                        r as u32,
                        &outputs,
                        &*logic,
                        &out_path,
                        &bytes_shuffled,
                        &bytes_written,
                    )
                    .await
                }));
            }
            for r in join_all(&sim, reducers).await {
                r?;
            }
        }

        let local = *local_maps.borrow();
        let read = *bytes_read.borrow();
        let shuffled = *bytes_shuffled.borrow();
        let written = *bytes_written.borrow();
        Ok(JobReport {
            elapsed: sim.now() - t0,
            map_phase,
            maps: total_maps,
            local_maps: local,
            reduces: job.reducers,
            bytes_read: read,
            bytes_shuffled: shuffled,
            bytes_written: written,
        })
    }

    async fn run_map(
        &self,
        fs: &AnyFs,
        node: NodeId,
        map_id: usize,
        split: &Split,
        partitions: u32,
        logic: &dyn JobLogic,
    ) -> Result<MapOutput, FsError> {
        let sim = self.sim();
        let reader = fs.open(&split.path).await?;
        let data = reader.read_at(split.offset, split.len).await?;
        // map CPU
        sim.sleep(dur::transfer(data.len() as u64, logic.map_cpu_rate()))
            .await;
        let pieces_vec = logic.map(map_id, data, partitions);
        // spill map output to the node-local spill device
        let out_bytes: u64 = pieces_vec.iter().map(|(_, b)| b.len() as u64).sum();
        if out_bytes > 0 {
            self.spill[&node].serve_bytes(out_bytes).await;
        }
        let mut pieces = HashMap::new();
        for (p, b) in pieces_vec {
            pieces.insert(p, b);
        }
        Ok(MapOutput { node, pieces })
    }

    #[allow(clippy::too_many_arguments)]
    async fn run_reduce(
        &self,
        fs: &AnyFs,
        node: NodeId,
        partition: u32,
        outputs: &Rc<RefCell<Vec<Option<MapOutput>>>>,
        logic: &dyn JobLogic,
        out_path: &str,
        bytes_shuffled: &Rc<RefCell<u64>>,
        bytes_written: &Rc<RefCell<u64>>,
    ) -> Result<(), FsError> {
        let sim = self.sim();
        // gather this partition's pieces (map order), fetching remotely
        // held ones over the fabric with bounded parallelism
        let fetch_plan: Vec<(usize, NodeId, Bytes)> = {
            let outs = outputs.borrow();
            outs.iter()
                .enumerate()
                .filter_map(|(i, o)| {
                    let o = o.as_ref().expect("map phase completed");
                    o.pieces.get(&partition).map(|b| (i, o.node, b.clone()))
                })
                .collect()
        };
        let window = Rc::new(Semaphore::new(self.config.shuffle_parallel.max(1)));
        let mut fetches = Vec::new();
        for (i, src, piece) in fetch_plan {
            let fabric = Rc::clone(&self.fabric);
            let window = Rc::clone(&window);
            let profile = self.config.shuffle;
            fetches.push(async move {
                let _w = window.acquire().await;
                fabric
                    .transfer(src, node, piece.len() as u64, &profile)
                    .await
                    .map_err(|_| FsError::Bb(bb_core::BbError::NotFound("shuffle".into())))?;
                Ok::<(usize, Bytes), FsError>((i, piece))
            });
        }
        let mut gathered: Vec<(usize, Bytes)> = Vec::new();
        for r in join_all(&sim, fetches).await {
            gathered.push(r?);
        }
        gathered.sort_by_key(|(i, _)| *i);
        let pieces: Vec<Bytes> = gathered.into_iter().map(|(_, b)| b).collect();
        let total: u64 = pieces.iter().map(|b| b.len() as u64).sum();
        *bytes_shuffled.borrow_mut() += total;
        // reduce CPU
        sim.sleep(dur::transfer(total, logic.reduce_cpu_rate()))
            .await;
        let outs = logic.reduce(partition, pieces);
        // write output through the DFS
        let writer = fs.create(out_path).await?;
        for chunk in outs {
            *bytes_written.borrow_mut() += chunk.len() as u64;
            writer.append(chunk).await?;
        }
        writer.close().await?;
        Ok(())
    }
}
