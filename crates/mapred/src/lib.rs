//! # mapred — a mini MapReduce engine
//!
//! Runs Hadoop-shaped jobs over any [`bb_core::fs::AnyFs`] backend, which is
//! how the paper's Sort / WordCount / Grep experiments compare HDFS, Lustre,
//! and the burst buffer: identical job, different storage engine.
//!
//! Modeled faithfully at flow level:
//! * **splits** follow the input's block/location geometry;
//! * **scheduling** is locality-first: a node prefers splits whose replicas
//!   it holds (this is where scheme C's local replica pays off);
//! * **map** reads real split bytes through the DFS, charges CPU at the
//!   job's rate, and spills partition outputs to a node-local spill device;
//! * **shuffle** moves real bytes between nodes over the cluster fabric;
//! * **reduce** absorbs shuffled pieces (CPU-charged) and writes real
//!   output bytes back through the DFS.

#![warn(missing_docs)]

pub mod engine;
pub mod logic;

pub use engine::{JobReport, JobSpec, MrConfig, MrEngine};
pub use logic::{GrepLogic, IdentityLogic, JobLogic, SyntheticShuffleLogic, WordCountLogic};

#[cfg(test)]
mod tests;
