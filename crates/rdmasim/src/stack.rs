//! The per-fabric RDMA stack: memory-region registry, queue-pair
//! connection setup, and the shared timing rules for every operation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use bytes::BytesMut;
use simkit::sync::mpsc;
use simkit::telemetry::Counter;
use simkit::{dur, Sim};

use netsim::{Fabric, NetError, NodeId, TransportProfile};

use crate::mr::{Mr, MrInner, RKey};
use crate::qp::{Qp, QpConfig, QpShared};

/// RDMA-layer failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaError {
    /// Underlying fabric failure (endpoint down / unknown).
    Net(NetError),
    /// The rkey does not name a registered region on that node.
    InvalidRKey(RKey),
    /// Access outside the registered region's bounds.
    OutOfBounds {
        /// Requested end offset.
        end: u64,
        /// Region length.
        len: u64,
    },
    /// The queue pair's peer tore the connection down.
    Disconnected,
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::Net(e) => write!(f, "rdma transport error: {e}"),
            RdmaError::InvalidRKey(k) => write!(f, "invalid rkey {k:?}"),
            RdmaError::OutOfBounds { end, len } => {
                write!(
                    f,
                    "rdma access out of bounds: end {end} > region length {len}"
                )
            }
            RdmaError::Disconnected => f.write_str("queue pair disconnected"),
        }
    }
}
impl std::error::Error for RdmaError {}

impl From<NetError> for RdmaError {
    fn from(e: NetError) -> Self {
        RdmaError::Net(e)
    }
}

/// Registration cost model: base CPU cost plus per-page pinning cost.
/// (~5 µs + ~80 ns per 4 KiB page — the reason real RDMA codes pool and
/// reuse registered buffers.)
pub(crate) fn registration_time(bytes: u64) -> std::time::Duration {
    let pages = bytes.div_ceil(4096);
    dur::us(5) + dur::ns(80 * pages)
}

/// Verbs-level counters registered under `rdma.*` on the simulation's
/// metrics registry. One set per stack (all stacks on a sim share names,
/// so the counters aggregate).
pub(crate) struct RdmaCounters {
    pub(crate) mr_registrations: Counter,
    pub(crate) qp_connects: Counter,
    pub(crate) send_posts: Counter,
    pub(crate) send_bytes: Counter,
    pub(crate) recv_completions: Counter,
    pub(crate) write_posts: Counter,
    pub(crate) write_bytes: Counter,
    pub(crate) read_posts: Counter,
    pub(crate) read_bytes: Counter,
}

impl RdmaCounters {
    fn register(sim: &Sim) -> RdmaCounters {
        let m = sim.metrics();
        RdmaCounters {
            mr_registrations: m.counter("rdma.mr_registrations"),
            qp_connects: m.counter("rdma.qp_connects"),
            send_posts: m.counter("rdma.send_posts"),
            send_bytes: m.counter("rdma.send_bytes"),
            recv_completions: m.counter("rdma.recv_completions"),
            write_posts: m.counter("rdma.write_posts"),
            write_bytes: m.counter("rdma.write_bytes"),
            read_posts: m.counter("rdma.read_posts"),
            read_bytes: m.counter("rdma.read_bytes"),
        }
    }
}

/// One fabric-wide RDMA stack. All queue pairs and memory regions hang off
/// an instance of this.
pub struct RdmaStack {
    fabric: Rc<Fabric>,
    profile: TransportProfile,
    regions: RefCell<HashMap<(NodeId, RKey), Rc<MrInner>>>,
    next_rkey: RefCell<u32>,
    next_qp: RefCell<u64>,
    pub(crate) counters: RdmaCounters,
}

impl RdmaStack {
    /// Create a stack running native verbs timing over `fabric`.
    pub fn new(fabric: Rc<Fabric>) -> Rc<RdmaStack> {
        Self::with_profile(fabric, TransportProfile::verbs_qdr())
    }

    /// Create a stack with an explicit transport profile — used by the
    /// transport ablation to run the *same* protocol over IPoIB/Ethernet
    /// timing.
    pub fn with_profile(fabric: Rc<Fabric>, profile: TransportProfile) -> Rc<RdmaStack> {
        let counters = RdmaCounters::register(fabric.sim());
        Rc::new(RdmaStack {
            fabric,
            profile,
            regions: RefCell::new(HashMap::new()),
            next_rkey: RefCell::new(1),
            next_qp: RefCell::new(1),
            counters,
        })
    }

    /// The fabric this stack runs on.
    pub fn fabric(&self) -> &Rc<Fabric> {
        &self.fabric
    }

    /// The simulation clock.
    pub fn sim(&self) -> &Sim {
        self.fabric.sim()
    }

    /// The transport profile in force.
    pub fn profile(&self) -> &TransportProfile {
        &self.profile
    }

    /// Register `bytes` of memory on `node`, charging registration time.
    /// The returned [`Mr`] exposes the rkey for one-sided access.
    pub async fn register(self: &Rc<Self>, node: NodeId, bytes: u64) -> Mr {
        self.counters.mr_registrations.inc();
        self.sim().sleep(registration_time(bytes)).await;
        let rkey = {
            let mut k = self.next_rkey.borrow_mut();
            let v = RKey(*k);
            *k += 1;
            v
        };
        let inner = Rc::new(MrInner {
            node,
            rkey,
            buf: RefCell::new(BytesMut::zeroed(bytes as usize)),
        });
        self.regions
            .borrow_mut()
            .insert((node, rkey), Rc::clone(&inner));
        Mr {
            stack: Rc::clone(self),
            inner,
        }
    }

    /// Drop the registration for `(node, rkey)`; subsequent remote access
    /// fails with [`RdmaError::InvalidRKey`].
    pub fn deregister(&self, node: NodeId, rkey: RKey) {
        self.regions.borrow_mut().remove(&(node, rkey));
    }

    pub(crate) fn lookup(&self, node: NodeId, rkey: RKey) -> Result<Rc<MrInner>, RdmaError> {
        self.regions
            .borrow()
            .get(&(node, rkey))
            .cloned()
            .ok_or(RdmaError::InvalidRKey(rkey))
    }

    /// Establish a reliable-connected queue pair between `a` and `b`,
    /// charging connection-setup time. Returns the two endpoints.
    pub async fn connect(
        self: &Rc<Self>,
        a: NodeId,
        b: NodeId,
        config: QpConfig,
    ) -> Result<(Qp, Qp), RdmaError> {
        if !self.fabric.is_up(a) {
            return Err(NetError::SrcDown(a).into());
        }
        if !self.fabric.is_up(b) {
            return Err(NetError::DstDown(b).into());
        }
        // CM exchange: three small messages round the fabric
        self.fabric.transfer(a, b, 256, &self.profile).await?;
        self.fabric.transfer(b, a, 256, &self.profile).await?;
        self.fabric.transfer(a, b, 64, &self.profile).await?;
        self.counters.qp_connects.inc();
        let id = {
            let mut q = self.next_qp.borrow_mut();
            let v = *q;
            *q += 1;
            v
        };
        let (tx_ab, rx_ab) = mpsc::bounded(config.recv_depth);
        let (tx_ba, rx_ba) = mpsc::bounded(config.recv_depth);
        let shared = Rc::new(QpShared::new(id));
        let qa = Qp::new(
            Rc::clone(self),
            Rc::clone(&shared),
            a,
            b,
            tx_ab,
            RefCell::new(rx_ba),
        );
        let qb = Qp::new(Rc::clone(self), shared, b, a, tx_ba, RefCell::new(rx_ab));
        Ok((qa, qb))
    }

    /// Number of live registrations (diagnostic).
    pub fn registered_regions(&self) -> usize {
        self.regions.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_cost_scales_with_pages() {
        let small = registration_time(4096);
        let big = registration_time(64 << 20);
        assert!(big > small);
        // 64 MiB = 16384 pages → 5 µs + ~1.3 ms
        assert!(big > dur::ms(1) && big < dur::ms(2));
    }
}
