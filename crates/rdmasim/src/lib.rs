//! # rdmasim — verbs-shaped RDMA over the simulated fabric
//!
//! The paper's key-value store runs on native InfiniBand verbs. No RDMA
//! hardware is available here, so this crate provides the same *API shape*
//! — reliable-connected queue pairs with two-sided SEND/RECV and one-sided
//! RDMA READ/WRITE against registered memory regions — with timing charged
//! to the [`netsim`] fabric and data actually moving between buffers
//! (bounds and rkey checks included, so protocol bugs fail loudly).
//!
//! Semantics kept from real verbs that matter at flow level:
//! * SEND blocks when the peer has no RECV slot (RNR backpressure) — the
//!   receive queue has finite depth;
//! * one-sided READ/WRITE never involve the remote CPU — no mailbox, no
//!   handler, just wire time plus a DMA copy;
//! * memory registration costs time proportional to the region size, which
//!   is why the KV store pre-registers pools instead of registering per
//!   request (see `rkv`).

#![warn(missing_docs)]

pub mod cq;
pub mod mr;
pub mod qp;
pub mod stack;

pub use cq::Cq;
pub use mr::{Mr, RKey, RemoteBuf};
pub use qp::{Qp, QpConfig};
pub use stack::{RdmaError, RdmaStack};
