//! Batched completion-queue draining (io_uring idiom).
//!
//! A [`Cq`] is a submit/complete ring shared by a QP group: producers
//! [`Cq::post`] completion entries as they arrive, and a single consumer
//! [`Cq::drain`]s up to `max` entries per poll. Draining in batches
//! amortizes the per-completion wakeup/poll cost the same way io_uring's
//! `io_uring_peek_batch_cqe` does; the achieved batch sizes are recorded
//! in the `rdma.cq.batch_size` histogram so a metrics snapshot alone shows
//! how much batching a workload actually got.

use std::cell::RefCell;
use std::rc::Rc;

use simkit::sync::mpsc;
use simkit::telemetry::{Counter, HistogramMetric};
use simkit::Sim;

/// A completion ring: unbounded submit side, batched drain side.
///
/// Generic over the completion payload `T` so the server layer can carry
/// whatever per-completion context it needs (connection id, sequence
/// number, received frame).
pub struct Cq<T> {
    tx: mpsc::Sender<T>,
    rx: RefCell<mpsc::Receiver<T>>,
    batch_hist: HistogramMetric,
    polls: Counter,
    completions: Counter,
}

impl<T> Cq<T> {
    /// Create a ring on `sim`, registering the `rdma.cq.*` metrics
    /// (shared names — multiple rings on one sim aggregate).
    pub fn new(sim: &Sim) -> Rc<Cq<T>> {
        let (tx, rx) = mpsc::unbounded();
        let m = sim.metrics();
        Rc::new(Cq {
            tx,
            rx: RefCell::new(rx),
            batch_hist: m.histogram("rdma.cq.batch_size"),
            polls: m.counter("rdma.cq.polls"),
            completions: m.counter("rdma.cq.completions"),
        })
    }

    /// Post one completion entry. Never blocks (the ring is unbounded;
    /// flow control belongs to the QP `recv_depth`, not the CQ).
    pub fn post(&self, entry: T) {
        // the receiver lives as long as the ring itself, so this cannot fail
        let _ = self.tx.try_send(entry);
    }

    /// Wait until at least one completion is pending, then take up to
    /// `max` of them in arrival order. Records the achieved batch size.
    /// Returns an empty vec only if the ring is closed.
    ///
    /// Single consumer by construction (one poller per ring, and the sim
    /// is single-threaded), so holding the receiver borrow across the
    /// await cannot be contended; a second concurrent drainer would be a
    /// bug and panics deterministically.
    #[allow(clippy::await_holding_refcell_ref)]
    pub async fn drain(&self, max: usize) -> Vec<T> {
        let mut rx = self.rx.borrow_mut();
        let Ok(first) = rx.recv().await else {
            return Vec::new();
        };
        let mut batch = vec![first];
        while batch.len() < max.max(1) {
            match rx.try_recv() {
                Some(entry) => batch.push(entry),
                None => break,
            }
        }
        self.polls.inc();
        self.completions.add(batch.len() as u64);
        self.batch_hist.record_ns(batch.len() as u64);
        batch
    }

    /// Entries currently queued (diagnostic).
    pub fn len(&self) -> usize {
        self.tx.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_batches_up_to_max() {
        let sim = Sim::new();
        let cq: Rc<Cq<u32>> = Cq::new(&sim);
        for i in 0..10 {
            cq.post(i);
        }
        let batch = sim.block_on({
            let cq = Rc::clone(&cq);
            async move { cq.drain(4).await }
        });
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert_eq!(cq.len(), 6);
        let snap = sim.metrics().snapshot();
        assert_eq!(snap.counter("rdma.cq.polls"), 1);
        assert_eq!(snap.counter("rdma.cq.completions"), 4);
    }

    #[test]
    fn drain_waits_for_first_entry() {
        let sim = Sim::new();
        let cq: Rc<Cq<u32>> = Cq::new(&sim);
        let got = {
            let cq2 = Rc::clone(&cq);
            sim.spawn(async move { cq2.drain(8).await })
        };
        sim.spawn({
            let sim2 = sim.clone();
            let cq = Rc::clone(&cq);
            async move {
                sim2.sleep(simkit::dur::us(5)).await;
                cq.post(42);
            }
        });
        let batch = sim.block_on(got);
        assert_eq!(batch, vec![42]);
    }
}
