//! Reliable-connected queue pairs: two-sided SEND/RECV with receive-queue
//! backpressure, and one-sided RDMA READ/WRITE against [`RemoteBuf`]s.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use simkit::sync::mpsc;
use simkit::OpId;

use netsim::NodeId;

use crate::mr::RemoteBuf;
use crate::stack::{RdmaError, RdmaStack};

/// Queue-pair parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpConfig {
    /// Receive-queue depth: SENDs beyond this block (RNR backpressure).
    pub recv_depth: usize,
}

impl Default for QpConfig {
    fn default() -> Self {
        QpConfig { recv_depth: 128 }
    }
}

pub(crate) struct QpShared {
    id: u64,
    connected: Cell<bool>,
}

impl QpShared {
    pub(crate) fn new(id: u64) -> Self {
        QpShared {
            id,
            connected: Cell::new(true),
        }
    }
}

/// Payload carried per SEND: the wire bytes plus an out-of-band traced-op
/// tag. The tag is simulator metadata — it occupies no wire bytes and
/// never influences transfer cost, so tagged and untagged runs are
/// byte- and timing-identical.
pub(crate) type SendPayload = (Bytes, Option<OpId>);

/// One endpoint of a reliable-connected queue pair.
pub struct Qp {
    stack: Rc<RdmaStack>,
    shared: Rc<QpShared>,
    local: NodeId,
    remote: NodeId,
    tx: mpsc::Sender<SendPayload>,
    rx: RefCell<mpsc::Receiver<SendPayload>>,
}

impl Qp {
    pub(crate) fn new(
        stack: Rc<RdmaStack>,
        shared: Rc<QpShared>,
        local: NodeId,
        remote: NodeId,
        tx: mpsc::Sender<SendPayload>,
        rx: RefCell<mpsc::Receiver<SendPayload>>,
    ) -> Qp {
        Qp {
            stack,
            shared,
            local,
            remote,
            tx,
            rx,
        }
    }

    /// Node this endpoint lives on.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// Peer node.
    pub fn remote(&self) -> NodeId {
        self.remote
    }

    /// Whether the connection is still established.
    pub fn is_connected(&self) -> bool {
        self.shared.connected.get() && self.tx.is_open()
    }

    /// Tear the connection down; the peer's pending/subsequent operations
    /// fail with [`RdmaError::Disconnected`].
    pub fn disconnect(&self) {
        self.shared.connected.set(false);
    }

    fn check_connected(&self) -> Result<(), RdmaError> {
        if self.is_connected() {
            Ok(())
        } else {
            Err(RdmaError::Disconnected)
        }
    }

    /// Apply any active in-transit corruption rule for the `src → dst`
    /// payload: returns `data` with one byte flipped when the injector
    /// fires, untouched (and uncopied) otherwise.
    fn corrupted(&self, src: NodeId, dst: NodeId, data: Bytes) -> Bytes {
        match self
            .stack
            .sim()
            .faults()
            .corrupt_transfer(src.0, dst.0, data.len() as u64)
        {
            None => data,
            Some((offset, mask)) => {
                self.stack.sim().metrics().counter("rdma.corrupted").inc();
                let mut v = data.to_vec();
                v[offset as usize] ^= mask;
                Bytes::from(v)
            }
        }
    }

    /// Two-sided SEND: transfers `data` and consumes one of the peer's
    /// receive slots. Blocks while the peer's receive queue is full.
    pub async fn send(&self, data: Bytes) -> Result<(), RdmaError> {
        self.send_tagged(data, None).await
    }

    /// [`Qp::send`] carrying a traced-op tag alongside the payload. The
    /// tag rides out-of-band (no wire bytes, no timing impact) and comes
    /// back out of the peer's [`Qp::recv_tagged`].
    pub async fn send_tagged(&self, data: Bytes, op: Option<OpId>) -> Result<(), RdmaError> {
        self.check_connected()?;
        let _sp = self
            .stack
            .sim()
            .span("qp.send", "rdma", self.local.0, self.shared.id);
        self.stack.counters.send_posts.inc();
        self.stack.counters.send_bytes.add(data.len() as u64);
        self.stack
            .fabric()
            .transfer(
                self.local,
                self.remote,
                data.len() as u64,
                self.stack.profile(),
            )
            .await?;
        let data = self.corrupted(self.local, self.remote, data);
        self.tx
            .send((data, op))
            .await
            .map_err(|_| RdmaError::Disconnected)
    }

    /// Pop the next incoming SEND payload, waiting if none is queued.
    pub async fn recv(&self) -> Result<Bytes, RdmaError> {
        self.recv_tagged().await.map(|(data, _)| data)
    }

    /// [`Qp::recv`] that also yields the sender's traced-op tag (`None`
    /// for untagged sends).
    // single-threaded sim: the mailbox is only ever polled by this QP's
    // owner, so holding the borrow across the await cannot contend
    #[allow(clippy::await_holding_refcell_ref)]
    pub async fn recv_tagged(&self) -> Result<(Bytes, Option<OpId>), RdmaError> {
        let mut rx = self.rx.borrow_mut();
        let fut = rx.recv();
        let out = fut.await.map_err(|_| RdmaError::Disconnected);
        if out.is_ok() {
            self.stack.counters.recv_completions.inc();
        }
        out
    }

    /// One-sided RDMA WRITE of `data` into `dst` at `offset`: wire time plus
    /// a DMA copy, no remote CPU involvement.
    pub async fn write(&self, dst: &RemoteBuf, offset: u64, data: Bytes) -> Result<(), RdmaError> {
        self.check_connected()?;
        let end = offset + data.len() as u64;
        if end > dst.len {
            return Err(RdmaError::OutOfBounds { end, len: dst.len });
        }
        let _sp = self
            .stack
            .sim()
            .span("qp.write", "rdma", self.local.0, self.shared.id);
        self.stack.counters.write_posts.inc();
        self.stack.counters.write_bytes.add(data.len() as u64);
        self.stack
            .fabric()
            .transfer(
                self.local,
                dst.node,
                data.len() as u64,
                self.stack.profile(),
            )
            .await?;
        let data = self.corrupted(self.local, dst.node, data);
        let region = self.stack.lookup(dst.node, dst.rkey)?;
        let mut buf = region.buf.borrow_mut();
        if end > buf.len() as u64 {
            return Err(RdmaError::OutOfBounds {
                end,
                len: buf.len() as u64,
            });
        }
        buf[offset as usize..end as usize].copy_from_slice(&data);
        Ok(())
    }

    /// One-sided RDMA READ of `len` bytes from `src` at `offset`.
    pub async fn read(&self, src: &RemoteBuf, offset: u64, len: u64) -> Result<Bytes, RdmaError> {
        self.check_connected()?;
        let end = offset + len;
        if end > src.len {
            return Err(RdmaError::OutOfBounds { end, len: src.len });
        }
        let _sp = self
            .stack
            .sim()
            .span("qp.read", "rdma", self.local.0, self.shared.id);
        self.stack.counters.read_posts.inc();
        self.stack.counters.read_bytes.add(len);
        // read request: a doorbell-sized message to the remote NIC
        self.stack
            .fabric()
            .transfer(self.local, src.node, 16, self.stack.profile())
            .await?;
        // response: the payload streaming back
        self.stack
            .fabric()
            .transfer(src.node, self.local, len, self.stack.profile())
            .await?;
        let region = self.stack.lookup(src.node, src.rkey)?;
        let data = {
            let buf = region.buf.borrow();
            if end > buf.len() as u64 {
                return Err(RdmaError::OutOfBounds {
                    end,
                    len: buf.len() as u64,
                });
            }
            Bytes::copy_from_slice(&buf[offset as usize..end as usize])
        };
        Ok(self.corrupted(src.node, self.local, data))
    }
}

impl Drop for Qp {
    fn drop(&mut self) {
        self.shared.connected.set(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Fabric, NetConfig, NetError};
    use simkit::{dur, Sim};

    fn setup(n: usize) -> (Sim, Rc<Fabric>, Rc<RdmaStack>) {
        let sim = Sim::new();
        let fabric = Fabric::new(sim.clone(), n, NetConfig::default());
        let stack = RdmaStack::new(Rc::clone(&fabric));
        (sim, fabric, stack)
    }

    #[test]
    fn send_recv_roundtrip() {
        let (sim, _f, stack) = setup(2);
        let st = Rc::clone(&stack);
        let got = sim.block_on(async move {
            let (qa, qb) = st
                .connect(NodeId(0), NodeId(1), QpConfig::default())
                .await
                .unwrap();
            let s = st.sim().clone();
            let h = s.spawn(async move { qb.recv().await.unwrap() });
            qa.send(Bytes::from_static(b"ping")).await.unwrap();
            h.await
        });
        assert_eq!(&got[..], b"ping");
    }

    #[test]
    fn rdma_write_lands_in_remote_region() {
        let (sim, _f, stack) = setup(2);
        let st = Rc::clone(&stack);
        sim.block_on(async move {
            let mr = st.register(NodeId(1), 4096).await;
            let (qa, _qb) = st
                .connect(NodeId(0), NodeId(1), QpConfig::default())
                .await
                .unwrap();
            qa.write(&mr.remote(), 100, Bytes::from_static(b"payload"))
                .await
                .unwrap();
            let back = mr.read_local(100, 7).unwrap();
            assert_eq!(&back[..], b"payload");
        });
    }

    #[test]
    fn rdma_read_pulls_remote_bytes() {
        let (sim, _f, stack) = setup(2);
        let st = Rc::clone(&stack);
        sim.block_on(async move {
            let mr = st.register(NodeId(1), 1024).await;
            mr.write_local(0, b"remote-data").unwrap();
            let (qa, _qb) = st
                .connect(NodeId(0), NodeId(1), QpConfig::default())
                .await
                .unwrap();
            let got = qa.read(&mr.remote(), 0, 11).await.unwrap();
            assert_eq!(&got[..], b"remote-data");
        });
    }

    #[test]
    fn out_of_bounds_write_rejected_without_corruption() {
        let (sim, _f, stack) = setup(2);
        let st = Rc::clone(&stack);
        sim.block_on(async move {
            let mr = st.register(NodeId(1), 8).await;
            let (qa, _qb) = st
                .connect(NodeId(0), NodeId(1), QpConfig::default())
                .await
                .unwrap();
            let err = qa
                .write(&mr.remote(), 4, Bytes::from_static(b"toolong"))
                .await
                .unwrap_err();
            assert_eq!(err, RdmaError::OutOfBounds { end: 11, len: 8 });
            assert_eq!(&mr.read_local(0, 8).unwrap()[..], &[0u8; 8]);
        });
    }

    #[test]
    fn deregistered_region_is_invalid() {
        let (sim, _f, stack) = setup(2);
        let st = Rc::clone(&stack);
        sim.block_on(async move {
            let mr = st.register(NodeId(1), 64).await;
            let remote = mr.remote();
            drop(mr); // deregisters
            assert_eq!(st.registered_regions(), 0);
            let (qa, _qb) = st
                .connect(NodeId(0), NodeId(1), QpConfig::default())
                .await
                .unwrap();
            let err = qa.read(&remote, 0, 8).await.unwrap_err();
            assert_eq!(err, RdmaError::InvalidRKey(remote.rkey));
        });
    }

    #[test]
    fn send_blocks_on_full_recv_queue() {
        let (sim, _f, stack) = setup(2);
        let st = Rc::clone(&stack);
        let s = sim.clone();
        sim.block_on(async move {
            let (qa, qb) = st
                .connect(NodeId(0), NodeId(1), QpConfig { recv_depth: 2 })
                .await
                .unwrap();
            let t0 = st.sim().now();
            // two fit in the queue
            qa.send(Bytes::from_static(b"a")).await.unwrap();
            qa.send(Bytes::from_static(b"b")).await.unwrap();
            let after_two = st.sim().now() - t0;
            // third blocks until the receiver drains one at +10ms
            let drain = {
                let s = s.clone();
                s.clone().spawn(async move {
                    s.sleep(dur::ms(10)).await;
                    qb.recv().await.unwrap();
                    qb
                })
            };
            qa.send(Bytes::from_static(b"c")).await.unwrap();
            let after_three = st.sim().now() - t0;
            assert!(after_two < dur::ms(1));
            assert!(after_three >= dur::ms(10));
            drop(drain);
        });
    }

    #[test]
    fn disconnect_fails_peer_operations() {
        let (sim, _f, stack) = setup(2);
        let st = Rc::clone(&stack);
        sim.block_on(async move {
            let (qa, qb) = st
                .connect(NodeId(0), NodeId(1), QpConfig::default())
                .await
                .unwrap();
            qa.disconnect();
            let err = qb.send(Bytes::from_static(b"x")).await.unwrap_err();
            assert_eq!(err, RdmaError::Disconnected);
        });
    }

    #[test]
    fn dead_node_fails_connect() {
        let (sim, fabric, stack) = setup(2);
        fabric.set_up(NodeId(1), false);
        let st = Rc::clone(&stack);
        let err = sim.block_on(async move {
            match st.connect(NodeId(0), NodeId(1), QpConfig::default()).await {
                Err(e) => e,
                Ok(_) => panic!("connect to a down node succeeded"),
            }
        });
        assert_eq!(err, RdmaError::Net(NetError::DstDown(NodeId(1))));
    }

    #[test]
    fn small_send_latency_is_microseconds() {
        let (sim, _f, stack) = setup(2);
        let st = Rc::clone(&stack);
        let s = sim.clone();
        let elapsed = sim.block_on(async move {
            let (qa, qb) = st
                .connect(NodeId(0), NodeId(1), QpConfig::default())
                .await
                .unwrap();
            let t0 = s.now();
            qa.send(Bytes::from_static(b"tiny")).await.unwrap();
            qb.recv().await.unwrap();
            s.now() - t0
        });
        assert!(elapsed < dur::us(4), "verbs small send took {elapsed:?}");
    }

    #[test]
    fn read_of_large_payload_dominated_by_bandwidth() {
        let (sim, _f, stack) = setup(2);
        let st = Rc::clone(&stack);
        let s = sim.clone();
        let elapsed = sim.block_on(async move {
            let mr = st.register(NodeId(1), 8 << 20).await;
            let (qa, _qb) = st
                .connect(NodeId(0), NodeId(1), QpConfig::default())
                .await
                .unwrap();
            let t0 = s.now();
            qa.read(&mr.remote(), 0, 8 << 20).await.unwrap();
            s.now() - t0
        });
        // 8 MiB at 3.4 GB/s ≈ 2.5 ms
        let secs = elapsed.as_secs_f64();
        assert!(secs > 0.002 && secs < 0.004, "elapsed {secs}");
    }

    #[test]
    fn local_mr_bounds_checked() {
        let (sim, _f, stack) = setup(1);
        let st = Rc::clone(&stack);
        sim.block_on(async move {
            let mr = st.register(NodeId(0), 16).await;
            assert!(mr.write_local(10, b"1234567").is_err());
            assert!(mr.read_local(10, 7).is_err());
            assert!(mr.write_local(10, b"123456").is_ok());
            assert_eq!(mr.len(), 16);
        });
    }
}
