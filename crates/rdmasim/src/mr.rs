//! Registered memory regions.
//!
//! An [`Mr`] owns a pinned buffer on one node. The owner touches it with
//! zero-cost local reads/writes; remote peers access it one-sided through a
//! [`RemoteBuf`] descriptor (node + rkey + length), the simulated analogue
//! of exchanging `(addr, rkey)` in a real verbs application.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use netsim::NodeId;

use crate::stack::{RdmaError, RdmaStack};

/// Remote-access key for a registered region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RKey(pub u32);

pub(crate) struct MrInner {
    pub(crate) node: NodeId,
    pub(crate) rkey: RKey,
    pub(crate) buf: RefCell<BytesMut>,
}

/// Descriptor advertising a region to peers — safe to copy into protocol
/// messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteBuf {
    /// Node owning the region.
    pub node: NodeId,
    /// Remote access key.
    pub rkey: RKey,
    /// Region length in bytes.
    pub len: u64,
}

/// An owned registered memory region. Deregisters on drop.
pub struct Mr {
    pub(crate) stack: Rc<RdmaStack>,
    pub(crate) inner: Rc<MrInner>,
}

impl Mr {
    /// Node the region lives on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Remote access key.
    pub fn rkey(&self) -> RKey {
        self.inner.rkey
    }

    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.inner.buf.borrow().len() as u64
    }

    /// Whether the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Descriptor to hand to peers.
    pub fn remote(&self) -> RemoteBuf {
        RemoteBuf {
            node: self.inner.node,
            rkey: self.inner.rkey,
            len: self.len(),
        }
    }

    /// Local CPU write into the registered buffer (no simulated time — the
    /// owner writes its own memory).
    pub fn write_local(&self, offset: u64, data: &[u8]) -> Result<(), RdmaError> {
        let mut buf = self.inner.buf.borrow_mut();
        let end = offset + data.len() as u64;
        if end > buf.len() as u64 {
            return Err(RdmaError::OutOfBounds {
                end,
                len: buf.len() as u64,
            });
        }
        buf[offset as usize..end as usize].copy_from_slice(data);
        Ok(())
    }

    /// Local CPU read from the registered buffer.
    pub fn read_local(&self, offset: u64, len: u64) -> Result<Bytes, RdmaError> {
        let buf = self.inner.buf.borrow();
        let end = offset + len;
        if end > buf.len() as u64 {
            return Err(RdmaError::OutOfBounds {
                end,
                len: buf.len() as u64,
            });
        }
        Ok(Bytes::copy_from_slice(&buf[offset as usize..end as usize]))
    }
}

impl Drop for Mr {
    fn drop(&mut self) {
        self.stack.deregister(self.inner.node, self.inner.rkey);
    }
}
