//! A timed object store on top of a [`Disk`]: named byte objects with
//! write-at/read-at semantics. DataNode block storage and Lustre OST
//! objects are both instances of this.
//!
//! Storage is a *segment map*: each write stores the caller's [`Bytes`]
//! handle (zero-copy) keyed by offset, with overlapping segments trimmed.
//! This matters because the benchmark harness pushes tens of logical
//! gigabytes through the filesystems — workload generators hand out slices
//! of one shared pattern buffer, so resident memory stays proportional to
//! the number of segments, not the logical bytes stored, while reads still
//! reassemble the exact byte content.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use bytes::{Bytes, BytesMut};

use crate::disk::{Disk, StoreError};

/// Object identifier (allocated by the owning service).
pub type ObjectId = u64;

#[derive(Default)]
struct Object {
    /// offset → segment bytes; segments never overlap.
    segments: BTreeMap<u64, Bytes>,
    /// Logical length (max written end; gaps read as zeros).
    len: u64,
    /// Sum of segment lengths (what capacity accounting charges).
    stored: u64,
}

impl Object {
    /// Insert a segment, trimming any overlap. Returns the net change in
    /// stored bytes (can be negative when overwriting).
    fn insert(&mut self, offset: u64, data: Bytes) -> i64 {
        let end = offset + data.len() as u64;
        if data.is_empty() {
            return 0;
        }
        let mut removed: i64 = 0;
        // find segments intersecting [offset, end): candidates start below
        // `end`; walk from the first segment that could overlap.
        let start_key = self
            .segments
            .range(..offset)
            .next_back()
            .map(|(k, _)| *k)
            .unwrap_or(0);
        let overlapping: Vec<u64> = self
            .segments
            .range(start_key..end)
            .filter(|(k, v)| **k < end && **k + v.len() as u64 > offset)
            .map(|(k, _)| *k)
            .collect();
        for k in overlapping {
            let seg = self.segments.remove(&k).expect("collected above");
            let seg_end = k + seg.len() as u64;
            removed += seg.len() as i64;
            if k < offset {
                // keep the left remainder
                let keep = seg.slice(..(offset - k) as usize);
                removed -= keep.len() as i64;
                self.segments.insert(k, keep);
            }
            if seg_end > end {
                // keep the right remainder
                let keep = seg.slice((end - k) as usize..);
                removed -= keep.len() as i64;
                self.segments.insert(end, keep);
            }
        }
        let added = data.len() as i64;
        self.segments.insert(offset, data);
        self.len = self.len.max(end);
        self.stored = (self.stored as i64 + added - removed) as u64;
        added - removed
    }

    /// Copy `[offset, offset+len)` into a fresh buffer (gaps are zeros).
    fn read(&self, offset: u64, len: u64) -> Bytes {
        let mut out = BytesMut::zeroed(len as usize);
        let end = offset + len;
        let start_key = self
            .segments
            .range(..offset)
            .next_back()
            .map(|(k, _)| *k)
            .unwrap_or(0);
        for (&k, seg) in self.segments.range(start_key..end) {
            let seg_end = k + seg.len() as u64;
            if seg_end <= offset || k >= end {
                continue;
            }
            let copy_start = k.max(offset);
            let copy_end = seg_end.min(end);
            let src = &seg[(copy_start - k) as usize..(copy_end - k) as usize];
            out[(copy_start - offset) as usize..(copy_end - offset) as usize].copy_from_slice(src);
        }
        out.freeze()
    }
}

/// Byte objects stored on one device, with every operation charged to the
/// device's timing model and capacity budget.
pub struct ObjectStore {
    disk: Rc<Disk>,
    objects: RefCell<HashMap<ObjectId, Object>>,
}

impl ObjectStore {
    /// Create an empty store on `disk`.
    pub fn new(disk: Rc<Disk>) -> Rc<ObjectStore> {
        Rc::new(ObjectStore {
            disk,
            objects: RefCell::new(HashMap::new()),
        })
    }

    /// The backing device.
    pub fn disk(&self) -> &Rc<Disk> {
        &self.disk
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.borrow().len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` exists.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.borrow().contains_key(&id)
    }

    /// Current logical length of object `id` in bytes.
    pub fn object_len(&self, id: ObjectId) -> Result<u64, StoreError> {
        self.objects
            .borrow()
            .get(&id)
            .map(|o| o.len)
            .ok_or(StoreError::NotFound)
    }

    /// Append `data` to object `id`, creating it if absent.
    pub async fn append(&self, id: ObjectId, data: Bytes) -> Result<(), StoreError> {
        let off = self.objects.borrow().get(&id).map(|o| o.len).unwrap_or(0);
        self.write_at(id, off, data).await
    }

    /// Write `data` at `offset` within object `id` (creating it if absent),
    /// charging one write extent including positioning latency.
    pub async fn write_at(&self, id: ObjectId, offset: u64, data: Bytes) -> Result<(), StoreError> {
        self.write_at_opts(id, offset, data, true).await
    }

    /// Like [`ObjectStore::write_at`], but `charge_access = false` skips the
    /// positioning latency — for packets of an already-streaming sequential
    /// write (a DataNode receiving a block pipeline).
    pub async fn write_at_opts(
        &self,
        id: ObjectId,
        offset: u64,
        data: Bytes,
        charge_access: bool,
    ) -> Result<(), StoreError> {
        // worst-case reservation (all-new bytes); settled after the insert
        self.disk.reserve(data.len() as u64)?;
        let timed = if charge_access {
            self.disk.write_extent(data.len() as u64).await
        } else {
            self.disk.write_stream(data.len() as u64).await
        };
        match timed {
            Ok(()) => {
                let delta = {
                    let mut objects = self.objects.borrow_mut();
                    objects.entry(id).or_default().insert(offset, data.clone())
                };
                // settle: we reserved data.len() but the net growth is delta
                let over = data.len() as i64 - delta;
                debug_assert!(over >= 0, "segment insert grew more than written");
                if over > 0 {
                    self.disk.release(over as u64);
                }
                Ok(())
            }
            Err(e) => {
                self.disk.release(data.len() as u64);
                Err(e)
            }
        }
    }

    /// Read `len` bytes at `offset` from object `id`, charging one read
    /// extent. Reads past the logical end are an error.
    pub async fn read_at(&self, id: ObjectId, offset: u64, len: u64) -> Result<Bytes, StoreError> {
        self.read_at_opts(id, offset, len, true).await
    }

    /// Like [`ObjectStore::read_at`] with optional positioning latency.
    pub async fn read_at_opts(
        &self,
        id: ObjectId,
        offset: u64,
        len: u64,
        charge_access: bool,
    ) -> Result<Bytes, StoreError> {
        {
            let objects = self.objects.borrow();
            let obj = objects.get(&id).ok_or(StoreError::NotFound)?;
            if offset + len > obj.len {
                return Err(StoreError::OutOfRange);
            }
        }
        if charge_access {
            self.disk.read_extent(len).await?;
        } else {
            self.disk.read_stream(len).await?;
        }
        let objects = self.objects.borrow();
        let obj = objects.get(&id).ok_or(StoreError::NotFound)?;
        if offset + len > obj.len {
            return Err(StoreError::OutOfRange);
        }
        Ok(obj.read(offset, len))
    }

    /// Read the whole object.
    pub async fn read_all(&self, id: ObjectId) -> Result<Bytes, StoreError> {
        let len = self.object_len(id)?;
        if len == 0 {
            return Ok(Bytes::new());
        }
        self.read_at(id, 0, len).await
    }

    /// Delete object `id`, returning its stored bytes to the device.
    /// Deletion is a metadata operation and is not charged device time.
    pub fn delete(&self, id: ObjectId) -> Result<u64, StoreError> {
        let obj = self
            .objects
            .borrow_mut()
            .remove(&id)
            .ok_or(StoreError::NotFound)?;
        self.disk.release(obj.stored);
        Ok(obj.stored)
    }

    /// All object ids (unspecified order).
    pub fn ids(&self) -> Vec<ObjectId> {
        self.objects.borrow().keys().copied().collect()
    }

    /// Total stored segment bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.objects.borrow().values().map(|o| o.stored).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{DiskKind, DiskParams};
    use simkit::Sim;

    fn store(kind: DiskKind, cap: u64) -> (Sim, Rc<ObjectStore>) {
        let sim = Sim::new();
        let disk = Disk::new(sim.clone(), DiskParams::of(kind, cap));
        (sim, ObjectStore::new(disk))
    }

    #[test]
    fn append_read_roundtrip() {
        let (sim, st) = store(DiskKind::Ssd, 1 << 30);
        let st2 = Rc::clone(&st);
        let got = sim.block_on(async move {
            st2.append(1, Bytes::from_static(b"hello ")).await.unwrap();
            st2.append(1, Bytes::from_static(b"world")).await.unwrap();
            st2.read_all(1).await.unwrap()
        });
        assert_eq!(&got[..], b"hello world");
        assert_eq!(st.stored_bytes(), 11);
        assert_eq!(st.disk().used(), 11);
    }

    #[test]
    fn write_at_sparse_zero_fills_gaps_on_read() {
        let (sim, st) = store(DiskKind::RamDisk, 1 << 30);
        let st2 = Rc::clone(&st);
        let got = sim.block_on(async move {
            st2.write_at(9, 4, Bytes::from_static(b"abcd"))
                .await
                .unwrap();
            st2.read_all(9).await.unwrap()
        });
        assert_eq!(&got[..], b"\0\0\0\0abcd");
        // only 4 real bytes stored despite logical length 8
        assert_eq!(st.stored_bytes(), 4);
        assert_eq!(st.object_len(9).unwrap(), 8);
    }

    #[test]
    fn overwrite_in_place_keeps_capacity_flat() {
        let (sim, st) = store(DiskKind::RamDisk, 1 << 30);
        let st2 = Rc::clone(&st);
        sim.block_on(async move {
            st2.write_at(1, 0, Bytes::from_static(b"xxxxxxxx"))
                .await
                .unwrap();
            let used_before = st2.disk().used();
            st2.write_at(1, 2, Bytes::from_static(b"YY")).await.unwrap();
            assert_eq!(st2.disk().used(), used_before);
            let got = st2.read_all(1).await.unwrap();
            assert_eq!(&got[..], b"xxYYxxxx");
        });
    }

    #[test]
    fn overlapping_writes_trim_correctly() {
        let (sim, st) = store(DiskKind::RamDisk, 1 << 30);
        let st2 = Rc::clone(&st);
        sim.block_on(async move {
            // segment A covers [0,10), B covers [5,15), C inside A'
            st2.write_at(1, 0, Bytes::from_static(b"AAAAAAAAAA"))
                .await
                .unwrap();
            st2.write_at(1, 5, Bytes::from_static(b"BBBBBBBBBB"))
                .await
                .unwrap();
            st2.write_at(1, 2, Bytes::from_static(b"CC")).await.unwrap();
            let got = st2.read_all(1).await.unwrap();
            assert_eq!(&got[..], b"AACCABBBBBBBBBB");
            assert_eq!(st2.stored_bytes(), 15);
        });
    }

    #[test]
    fn write_fully_covering_existing_segments() {
        let (sim, st) = store(DiskKind::RamDisk, 1 << 30);
        let st2 = Rc::clone(&st);
        sim.block_on(async move {
            st2.write_at(1, 2, Bytes::from_static(b"ab")).await.unwrap();
            st2.write_at(1, 6, Bytes::from_static(b"cd")).await.unwrap();
            st2.write_at(1, 0, Bytes::from_static(b"ZZZZZZZZZZ"))
                .await
                .unwrap();
            let got = st2.read_all(1).await.unwrap();
            assert_eq!(&got[..], b"ZZZZZZZZZZ");
            assert_eq!(st2.stored_bytes(), 10);
        });
    }

    #[test]
    fn zero_copy_segments_share_backing_memory() {
        let (sim, st) = store(DiskKind::RamDisk, 1 << 30);
        let pattern = Bytes::from(vec![7u8; 1 << 20]);
        let st2 = Rc::clone(&st);
        let p = pattern.clone();
        sim.block_on(async move {
            // store 64 logical MiB as slices of the same 1 MiB buffer
            for i in 0..64u64 {
                st2.write_at(1, i << 20, p.clone()).await.unwrap();
            }
        });
        assert_eq!(st.object_len(1).unwrap(), 64 << 20);
        assert_eq!(st.stored_bytes(), 64 << 20);
        // the backing allocation is the single pattern buffer: dropping the
        // store would free ~1 MiB, not 64. (Can't measure allocator use in a
        // unit test; shared ownership is what Bytes::clone guarantees.)
        drop(pattern);
    }

    #[test]
    fn read_out_of_range() {
        let (sim, st) = store(DiskKind::Ssd, 1 << 30);
        let st2 = Rc::clone(&st);
        let r = sim.block_on(async move {
            st2.append(1, Bytes::from_static(b"abc")).await.unwrap();
            st2.read_at(1, 2, 5).await
        });
        assert_eq!(r.unwrap_err(), StoreError::OutOfRange);
    }

    #[test]
    fn missing_object_not_found() {
        let (sim, st) = store(DiskKind::Ssd, 1 << 30);
        let st2 = Rc::clone(&st);
        let r = sim.block_on(async move { st2.read_all(42).await });
        assert_eq!(r.unwrap_err(), StoreError::NotFound);
        assert_eq!(st.delete(42).unwrap_err(), StoreError::NotFound);
    }

    #[test]
    fn delete_returns_capacity() {
        let (sim, st) = store(DiskKind::Ssd, 100);
        let st2 = Rc::clone(&st);
        sim.block_on(async move {
            st2.append(1, Bytes::from(vec![0u8; 80])).await.unwrap();
            let err = st2.append(2, Bytes::from(vec![0u8; 30])).await.unwrap_err();
            assert!(matches!(err, StoreError::DiskFull { .. }));
            assert_eq!(st2.delete(1).unwrap(), 80);
            st2.append(2, Bytes::from(vec![0u8; 30])).await.unwrap();
        });
    }

    #[test]
    fn failed_write_releases_reservation() {
        let (sim, st) = store(DiskKind::Ssd, 1 << 20);
        st.disk().set_online(false);
        let st2 = Rc::clone(&st);
        let r = sim.block_on(async move { st2.append(1, Bytes::from(vec![0u8; 100])).await });
        assert_eq!(r.unwrap_err(), StoreError::Offline);
        assert_eq!(st.disk().used(), 0);
        assert!(!st.contains(1));
    }

    #[test]
    fn timing_charged_for_io() {
        let (sim, st) = store(DiskKind::Hdd, 1 << 40);
        let st2 = Rc::clone(&st);
        sim.block_on(async move {
            st2.append(1, Bytes::from(vec![0u8; 115_000_000]))
                .await
                .unwrap();
        });
        // 1 s stream + 8 ms seek
        assert!((sim.now().as_secs_f64() - 1.008).abs() < 1e-6);
    }

    #[test]
    fn streaming_writes_skip_access_latency() {
        let (sim, st) = store(DiskKind::Hdd, 1 << 40);
        let st2 = Rc::clone(&st);
        sim.block_on(async move {
            // 10 packets of 1.15 MB, only payload time charged
            for i in 0..10u64 {
                st2.write_at_opts(1, i * 1_150_000, Bytes::from(vec![0u8; 1_150_000]), false)
                    .await
                    .unwrap();
            }
        });
        assert!((sim.now().as_secs_f64() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn reads_reassemble_across_segment_boundaries() {
        let (sim, st) = store(DiskKind::RamDisk, 1 << 30);
        let st2 = Rc::clone(&st);
        sim.block_on(async move {
            st2.write_at(1, 0, Bytes::from_static(b"0123"))
                .await
                .unwrap();
            st2.write_at(1, 4, Bytes::from_static(b"4567"))
                .await
                .unwrap();
            st2.write_at(1, 8, Bytes::from_static(b"89ab"))
                .await
                .unwrap();
            let got = st2.read_at(1, 2, 8).await.unwrap();
            assert_eq!(&got[..], b"23456789");
        });
    }
}
