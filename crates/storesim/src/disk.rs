//! Timed block-device models.
//!
//! A [`Disk`] is a single-channel FIFO device with distinct read/write
//! stream rates, a per-operation access latency (seek for HDD, flash
//! translation for SSD), and a capacity budget. Operations are charged at
//! *extent* granularity — callers issue one timed op per block/chunk, not
//! per packet, mirroring how a local filesystem turns a streaming write
//! into sequential device I/O.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use simkit::resource::FifoServer;
use simkit::{dur, Sim};

/// Device technology presets (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskKind {
    /// 7.2k SATA spindle: 115/125 MB/s write/read, 8 ms access.
    Hdd,
    /// SATA SSD: 400/450 MB/s, 60 µs access.
    Ssd,
    /// RAM-backed tmpfs: 2.5 GB/s symmetric, 1 µs access.
    RamDisk,
}

/// Performance/capacity parameters for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskParams {
    /// Streaming write rate, bytes/second.
    pub write_rate: f64,
    /// Streaming read rate, bytes/second.
    pub read_rate: f64,
    /// Per-operation positioning latency.
    pub access_latency: Duration,
    /// Usable capacity in bytes.
    pub capacity: u64,
}

impl DiskParams {
    /// Preset for `kind` with the given capacity.
    pub fn of(kind: DiskKind, capacity: u64) -> Self {
        match kind {
            DiskKind::Hdd => DiskParams {
                write_rate: 115e6,
                read_rate: 125e6,
                access_latency: dur::ms(8),
                capacity,
            },
            DiskKind::Ssd => DiskParams {
                write_rate: 400e6,
                read_rate: 450e6,
                access_latency: dur::us(60),
                capacity,
            },
            DiskKind::RamDisk => DiskParams {
                write_rate: 2.5e9,
                read_rate: 2.5e9,
                access_latency: dur::us(1),
                capacity,
            },
        }
    }
}

/// Storage-layer failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Allocation would exceed device capacity.
    DiskFull {
        /// Bytes requested by the failed allocation.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// Object/block does not exist.
    NotFound,
    /// Read past the end of an object.
    OutOfRange,
    /// The device (or its host) is offline.
    Offline,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DiskFull {
                requested,
                available,
            } => write!(
                f,
                "disk full: requested {requested} B, {available} B available"
            ),
            StoreError::NotFound => f.write_str("object not found"),
            StoreError::OutOfRange => f.write_str("read out of range"),
            StoreError::Offline => f.write_str("device offline"),
        }
    }
}
impl std::error::Error for StoreError {}

/// A timed block device with capacity accounting.
pub struct Disk {
    params: DiskParams,
    channel: FifoServer,
    used: Cell<u64>,
    reads: Cell<u64>,
    writes: Cell<u64>,
    read_bytes: Cell<u64>,
    written_bytes: Cell<u64>,
    online: Cell<bool>,
}

impl Disk {
    /// Create a device owned by `sim`.
    pub fn new(sim: Sim, params: DiskParams) -> Rc<Disk> {
        Rc::new(Disk {
            params,
            // rate on the FifoServer is unused; ops carge explicit durations
            channel: FifoServer::new(sim, 1.0, Duration::ZERO),
            used: Cell::new(0),
            reads: Cell::new(0),
            writes: Cell::new(0),
            read_bytes: Cell::new(0),
            written_bytes: Cell::new(0),
            online: Cell::new(true),
        })
    }

    /// Preset constructor.
    pub fn of_kind(sim: Sim, kind: DiskKind, capacity: u64) -> Rc<Disk> {
        Disk::new(sim, DiskParams::of(kind, capacity))
    }

    /// Device parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used.get()
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.params.capacity - self.used.get()
    }

    /// Mark the device online/offline (host crash). Offline devices reject
    /// all timed operations; contents are preserved (cold restart keeps
    /// durable data, mirroring a machine reboot).
    pub fn set_online(&self, online: bool) {
        self.online.set(online);
    }

    /// Whether the device accepts operations.
    pub fn is_online(&self) -> bool {
        self.online.get()
    }

    fn check_online(&self) -> Result<(), StoreError> {
        if self.online.get() {
            Ok(())
        } else {
            Err(StoreError::Offline)
        }
    }

    /// Reserve `bytes` of capacity (fails with [`StoreError::DiskFull`]).
    pub fn reserve(&self, bytes: u64) -> Result<(), StoreError> {
        let avail = self.available();
        if bytes > avail {
            return Err(StoreError::DiskFull {
                requested: bytes,
                available: avail,
            });
        }
        self.used.set(self.used.get() + bytes);
        Ok(())
    }

    /// Return `bytes` of capacity to the free pool.
    pub fn release(&self, bytes: u64) {
        let used = self.used.get();
        debug_assert!(bytes <= used, "releasing more than allocated");
        self.used.set(used.saturating_sub(bytes));
    }

    /// Charge the timed cost of writing `bytes` as one sequential extent.
    /// Capacity must already be reserved by the caller.
    pub async fn write_extent(&self, bytes: u64) -> Result<(), StoreError> {
        self.check_online()?;
        let t = self.params.access_latency + dur::transfer(bytes, self.params.write_rate);
        self.channel.serve_for(t).await;
        self.check_online()?; // may have died mid-op
        self.writes.set(self.writes.get() + 1);
        self.written_bytes.set(self.written_bytes.get() + bytes);
        Ok(())
    }

    /// Charge the timed cost of writing `bytes` mid-stream: payload time
    /// only, no positioning latency (the stream already paid it).
    pub async fn write_stream(&self, bytes: u64) -> Result<(), StoreError> {
        self.check_online()?;
        let t = dur::transfer(bytes, self.params.write_rate);
        self.channel.serve_for(t).await;
        self.check_online()?;
        self.writes.set(self.writes.get() + 1);
        self.written_bytes.set(self.written_bytes.get() + bytes);
        Ok(())
    }

    /// Charge the timed cost of reading `bytes` mid-stream (no positioning
    /// latency).
    pub async fn read_stream(&self, bytes: u64) -> Result<(), StoreError> {
        self.check_online()?;
        let t = dur::transfer(bytes, self.params.read_rate);
        self.channel.serve_for(t).await;
        self.check_online()?;
        self.reads.set(self.reads.get() + 1);
        self.read_bytes.set(self.read_bytes.get() + bytes);
        Ok(())
    }

    /// Charge the timed cost of reading `bytes` as one sequential extent.
    pub async fn read_extent(&self, bytes: u64) -> Result<(), StoreError> {
        self.check_online()?;
        let t = self.params.access_latency + dur::transfer(bytes, self.params.read_rate);
        self.channel.serve_for(t).await;
        self.check_online()?;
        self.reads.set(self.reads.get() + 1);
        self.read_bytes.set(self.read_bytes.get() + bytes);
        Ok(())
    }

    /// (reads, writes, read_bytes, written_bytes) counters.
    pub fn io_counters(&self) -> (u64, u64, u64, u64) {
        (
            self.reads.get(),
            self.writes.get(),
            self.read_bytes.get(),
            self.written_bytes.get(),
        )
    }

    /// Requests queued behind the device channel.
    pub fn queue_len(&self) -> usize {
        self.channel.queue_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_disk(kind: DiskKind, cap: u64) -> (Sim, Rc<Disk>) {
        let sim = Sim::new();
        let d = Disk::of_kind(sim.clone(), kind, cap);
        (sim, d)
    }

    #[test]
    fn hdd_write_time_matches_rate() {
        let (sim, d) = sim_disk(DiskKind::Hdd, 1 << 40);
        let s = sim.clone();
        let d2 = Rc::clone(&d);
        let t = sim.block_on(async move {
            d2.write_extent(115_000_000).await.unwrap(); // 1 s + 8 ms seek
            s.now()
        });
        assert!((t.as_secs_f64() - 1.008).abs() < 1e-6);
    }

    #[test]
    fn ramdisk_much_faster_than_hdd() {
        let bytes = 100 << 20;
        let (sim_h, dh) = sim_disk(DiskKind::Hdd, 1 << 40);
        sim_h.block_on(async move { dh.write_extent(bytes).await.unwrap() });
        let th = sim_h.now();
        let (sim_r, dr) = sim_disk(DiskKind::RamDisk, 1 << 40);
        sim_r.block_on(async move { dr.write_extent(bytes).await.unwrap() });
        let tr = sim_r.now();
        assert!(th.as_nanos() / tr.as_nanos() > 15);
    }

    #[test]
    fn capacity_accounting() {
        let (_sim, d) = sim_disk(DiskKind::Ssd, 1000);
        assert_eq!(d.available(), 1000);
        d.reserve(600).unwrap();
        assert_eq!(d.used(), 600);
        let err = d.reserve(500).unwrap_err();
        assert_eq!(
            err,
            StoreError::DiskFull {
                requested: 500,
                available: 400
            }
        );
        d.release(600);
        assert_eq!(d.used(), 0);
        d.reserve(1000).unwrap();
    }

    #[test]
    fn concurrent_ops_serialize_on_one_channel() {
        let (sim, d) = sim_disk(DiskKind::Hdd, 1 << 40);
        for _ in 0..3 {
            let d = Rc::clone(&d);
            sim.spawn(async move { d.write_extent(115_000_000).await.unwrap() });
        }
        let end = sim.run();
        // 3 × (1s + 8ms) serialized
        assert!((end.as_secs_f64() - 3.024).abs() < 1e-6);
        let (_, w, _, wb) = d.io_counters();
        assert_eq!(w, 3);
        assert_eq!(wb, 345_000_000);
    }

    #[test]
    fn offline_device_rejects_ops() {
        let (sim, d) = sim_disk(DiskKind::Ssd, 1 << 30);
        d.set_online(false);
        let d2 = Rc::clone(&d);
        let r = sim.block_on(async move { d2.read_extent(100).await });
        assert_eq!(r, Err(StoreError::Offline));
        d.set_online(true);
        let d3 = Rc::clone(&d);
        assert!(sim
            .block_on(async move { d3.read_extent(100).await })
            .is_ok());
    }

    #[test]
    fn read_and_write_rates_differ() {
        let (sim, d) = sim_disk(DiskKind::Hdd, 1 << 40);
        let s = sim.clone();
        let d2 = Rc::clone(&d);
        let (tw, tr) = sim.block_on(async move {
            let t0 = s.now();
            d2.write_extent(125_000_000).await.unwrap();
            let t1 = s.now();
            d2.read_extent(125_000_000).await.unwrap();
            let t2 = s.now();
            (t1 - t0, t2 - t1)
        });
        assert!(tr < tw, "read {tr:?} should beat write {tw:?}");
    }
}
