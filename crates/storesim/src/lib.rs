//! # storesim — timed storage devices and object stores
//!
//! Device models for the storage tiers the paper's systems sit on: local
//! HDDs (plain HDFS), SSDs (burst-buffer spill, Gordon-style nodes), RAM
//! disks (Triple-H-style locality replicas), and the RAID arrays behind
//! Lustre OSTs.
//!
//! * [`disk`] — [`disk::Disk`]: FIFO device channel with read/write rates,
//!   access latency, capacity accounting, and online/offline state;
//! * [`object`] — [`object::ObjectStore`]: named byte objects with
//!   append/write-at/read-at, every op charged to the device.

#![warn(missing_docs)]

pub mod disk;
pub mod object;

pub use disk::{Disk, DiskKind, DiskParams, StoreError};
pub use object::{ObjectId, ObjectStore};
