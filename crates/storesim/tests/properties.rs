//! Property tests: the segment-map object store agrees with a flat
//! byte-vector model under arbitrary overlapping writes, and capacity
//! accounting never drifts.

use bytes::Bytes;
use proptest::prelude::*;
use std::rc::Rc;

use simkit::Sim;
use storesim::{Disk, DiskKind, ObjectStore};

fn store() -> (Sim, Rc<ObjectStore>) {
    let sim = Sim::new();
    let disk = Disk::of_kind(sim.clone(), DiskKind::RamDisk, 64 << 20);
    (sim, ObjectStore::new(disk))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary overlapping writes: read-back equals a flat-buffer model
    /// byte for byte, and stored-byte accounting matches the model's
    /// covered extent count.
    #[test]
    fn segment_writes_match_flat_model(
        writes in proptest::collection::vec((0u64..5000, 1usize..800, any::<u8>()), 1..40)
    ) {
        let (sim, st) = store();
        let mut model: Vec<Option<u8>> = Vec::new();
        let writes2 = writes.clone();
        let st2 = Rc::clone(&st);
        sim.block_on(async move {
            for (off, len, fill) in writes2 {
                let data = Bytes::from(vec![fill; len]);
                st2.write_at(1, off, data).await.unwrap();
            }
        });
        for (off, len, fill) in &writes {
            let end = *off as usize + len;
            if model.len() < end {
                model.resize(end, None);
            }
            for slot in &mut model[*off as usize..end] {
                *slot = Some(*fill);
            }
        }
        let expect: Vec<u8> = model.iter().map(|s| s.unwrap_or(0)).collect();
        let st3 = Rc::clone(&st);
        let got = sim.block_on(async move { st3.read_all(1).await.unwrap() });
        prop_assert_eq!(&got[..], &expect[..]);
        // stored bytes == covered (non-gap) cells
        let covered = model.iter().filter(|s| s.is_some()).count() as u64;
        prop_assert_eq!(st.stored_bytes(), covered);
        prop_assert_eq!(st.disk().used(), covered);
        sim.reset();
    }

    /// Partial reads at arbitrary offsets agree with the model.
    #[test]
    fn partial_reads_agree(
        writes in proptest::collection::vec((0u64..2000, 1usize..400, any::<u8>()), 1..20),
        read_off in 0u64..1500,
        read_len in 1u64..500,
    ) {
        let (sim, st) = store();
        let mut model: Vec<u8> = Vec::new();
        let writes2 = writes.clone();
        let st2 = Rc::clone(&st);
        sim.block_on(async move {
            for (off, len, fill) in writes2 {
                st2.write_at(7, off, Bytes::from(vec![fill; len])).await.unwrap();
            }
        });
        for (off, len, fill) in &writes {
            let end = *off as usize + len;
            if model.len() < end {
                model.resize(end, 0);
            }
            model[*off as usize..end].fill(*fill);
        }
        let logical = st.object_len(7).unwrap();
        prop_assert_eq!(logical as usize, model.len());
        let end = (read_off + read_len).min(logical);
        if read_off < end {
            let st3 = Rc::clone(&st);
            let got = sim.block_on(async move {
                st3.read_at(7, read_off, end - read_off).await.unwrap()
            });
            prop_assert_eq!(&got[..], &model[read_off as usize..end as usize]);
        }
        sim.reset();
    }

    /// Delete always returns exactly the accounted bytes, and the device
    /// ends balanced at zero.
    #[test]
    fn delete_balances_capacity(
        objects in proptest::collection::vec((1u64..20, 1usize..5000), 1..30)
    ) {
        let (sim, st) = store();
        let st2 = Rc::clone(&st);
        let objs = objects.clone();
        sim.block_on(async move {
            for (id, len) in objs {
                st2.append(id, Bytes::from(vec![1u8; len])).await.unwrap();
            }
        });
        let used_before = st.disk().used();
        prop_assert_eq!(used_before, st.stored_bytes());
        let mut freed = 0;
        for id in st.ids() {
            freed += st.delete(id).unwrap();
        }
        prop_assert_eq!(freed, used_before);
        prop_assert_eq!(st.disk().used(), 0);
        prop_assert!(st.is_empty());
        sim.reset();
    }
}
