//! # lustre — a Lustre-style parallel filesystem
//!
//! The parallel-filesystem substrate the paper's HPC clusters provide: a
//! metadata server ([`mds`]) owning the namespace and file layouts, object
//! storage servers ([`oss`]) each fronting several OSTs (RAID-backed
//! [`storesim::ObjectStore`]s), and a client ([`client`]) that stripes file
//! data across OSTs with a bounded number of RPCs in flight per OST.
//!
//! All servers are real simulated processes with mailboxes on the fabric,
//! so OSS contention — many compute nodes hammering few storage servers,
//! the effect that makes Lustre throughput flatten at scale — emerges from
//! queueing rather than being scripted.

#![warn(missing_docs)]

pub mod client;
pub mod mds;
pub mod oss;

use std::rc::Rc;
use std::time::Duration;

use netsim::{Fabric, NodeId, Switchboard, TransportProfile};
use simkit::dur;

pub use client::{LustreClient, LustreError, LustreFile};
pub use mds::{FileLayout, Mds, MdsError};
pub use oss::{commit_crc, Oss, OssMsg};

/// Cluster-wide Lustre configuration.
#[derive(Debug, Clone, Copy)]
pub struct LustreConfig {
    /// Stripe size in bytes (default 1 MiB).
    pub stripe_size: u64,
    /// OSTs per file (stripe count; default 4).
    pub stripe_count: usize,
    /// Number of OSS server nodes.
    pub oss_count: usize,
    /// OSTs attached to each OSS.
    pub osts_per_oss: usize,
    /// Streaming rate of one OST's backing RAID array (bytes/s).
    pub ost_rate: f64,
    /// Per-op positioning latency of an OST array (RAID controllers hide
    /// most spindle seeks behind their write-back cache).
    pub ost_access: Duration,
    /// Capacity per OST.
    pub ost_capacity: u64,
    /// MDS service time per metadata operation.
    pub mds_service: Duration,
    /// Max concurrent RPCs a client keeps in flight per OST.
    pub max_rpcs_in_flight: usize,
    /// LNET transport profile (o2ib: near-verbs performance).
    pub transport: TransportProfile,
    /// Client-side per-byte CPU rate (kernel client, page-cache copies).
    pub client_cpu_rate: f64,
}

impl Default for LustreConfig {
    fn default() -> Self {
        LustreConfig {
            stripe_size: 1 << 20,
            stripe_count: 4,
            oss_count: 8,
            osts_per_oss: 2,
            ost_rate: 450e6,
            ost_access: dur::us(500),
            ost_capacity: 4 << 40,
            mds_service: dur::us(100),
            max_rpcs_in_flight: 8,
            client_cpu_rate: 1.2e9,
            transport: TransportProfile {
                name: "o2ib-lnet",
                latency: dur::us(3),
                per_msg_overhead: dur::us(2),
                bandwidth: 3.0e9,
            },
        }
    }
}

/// A deployed Lustre filesystem: MDS + OSSes wired to a fabric, plus the
/// node ids they occupy.
pub struct LustreCluster {
    /// Cluster configuration.
    pub config: LustreConfig,
    /// The metadata server.
    pub mds: Rc<Mds>,
    /// Object storage servers in OST-index order.
    pub osses: Vec<Rc<Oss>>,
    /// Shared OSS switchboard.
    pub oss_net: Rc<Switchboard<OssMsg>>,
    /// Shared MDS switchboard.
    pub mds_net: Rc<Switchboard<mds::MdsMsg>>,
}

impl LustreCluster {
    /// Deploy a filesystem on `fabric`, creating fresh nodes for the MDS
    /// and each OSS (so compute nodes keep their ids).
    pub fn deploy(fabric: &Rc<Fabric>, config: LustreConfig) -> Rc<LustreCluster> {
        assert!(config.oss_count > 0 && config.osts_per_oss > 0);
        assert!(config.stripe_size > 0);
        let mds_node = fabric.add_node();
        let mds_net = Switchboard::new(Rc::clone(fabric), config.transport);
        let oss_net = Switchboard::new(Rc::clone(fabric), config.transport);
        let total_osts = config.oss_count * config.osts_per_oss;
        let mds = Mds::spawn(Rc::clone(&mds_net), mds_node, total_osts, config);
        let osses: Vec<Rc<Oss>> = (0..config.oss_count)
            .map(|i| {
                let node = fabric.add_node();
                Oss::spawn(Rc::clone(&oss_net), node, i, config)
            })
            .collect();
        Rc::new(LustreCluster {
            config,
            mds,
            osses,
            oss_net,
            mds_net,
        })
    }

    /// Node hosting OST `ost_index`, and the OSS-local OST slot.
    pub fn ost_location(&self, ost_index: usize) -> (NodeId, usize) {
        let oss = ost_index / self.config.osts_per_oss;
        let slot = ost_index % self.config.osts_per_oss;
        (self.osses[oss].node(), slot)
    }

    /// Total number of OSTs.
    pub fn total_osts(&self) -> usize {
        self.config.oss_count * self.config.osts_per_oss
    }

    /// Make a client for a compute node.
    pub fn client(self: &Rc<Self>, node: NodeId) -> LustreClient {
        LustreClient::new(Rc::clone(self), node)
    }

    /// Aggregate bytes stored across all OSTs.
    pub fn stored_bytes(&self) -> u64 {
        self.osses.iter().map(|o| o.stored_bytes()).sum()
    }
}
