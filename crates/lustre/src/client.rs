//! The Lustre client: stripe-aligned parallel I/O with a bounded number of
//! RPCs in flight, plus metadata operations against the MDS.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use netsim::{NodeId, RpcError};
use simkit::future::join_all;
use simkit::sync::semaphore::Semaphore;
use storesim::StoreError;

use crate::mds::{FileLayout, MdsError, MdsMsg, MDS_SERVICE};
use crate::oss::{OssMsg, OSS_SERVICE};
use crate::LustreCluster;

/// Client-visible failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LustreError {
    /// Metadata error.
    Mds(MdsError),
    /// OST storage error.
    Store(StoreError),
    /// Network/RPC failure.
    Rpc(RpcError),
    /// The OSS write ack's commit checksum did not match the bytes the
    /// client sent: the committed extent is corrupt on media.
    CommitMismatch {
        /// File offset of the mismatching stripe extent.
        offset: u64,
    },
}

impl fmt::Display for LustreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LustreError::Mds(e) => write!(f, "lustre mds: {e}"),
            LustreError::Store(e) => write!(f, "lustre ost: {e}"),
            LustreError::Rpc(e) => write!(f, "lustre rpc: {e}"),
            LustreError::CommitMismatch { offset } => {
                write!(f, "lustre commit checksum mismatch at offset {offset}")
            }
        }
    }
}
impl std::error::Error for LustreError {}

impl From<MdsError> for LustreError {
    fn from(e: MdsError) -> Self {
        LustreError::Mds(e)
    }
}
impl From<StoreError> for LustreError {
    fn from(e: StoreError) -> Self {
        LustreError::Store(e)
    }
}
impl From<RpcError> for LustreError {
    fn from(e: RpcError) -> Self {
        LustreError::Rpc(e)
    }
}

/// A mounted Lustre client on one compute node.
#[derive(Clone)]
pub struct LustreClient {
    cluster: Rc<LustreCluster>,
    node: NodeId,
}

impl LustreClient {
    /// Mount the filesystem on `node`.
    pub fn new(cluster: Rc<LustreCluster>, node: NodeId) -> LustreClient {
        LustreClient { cluster, node }
    }

    /// The compute node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The filesystem this client is mounted on.
    pub fn cluster(&self) -> &Rc<LustreCluster> {
        &self.cluster
    }

    async fn mds_call<R: 'static>(
        &self,
        bytes: u64,
        make: impl FnOnce(netsim::ReplyHandle<R>) -> MdsMsg,
    ) -> Result<R, LustreError> {
        let mds_node = self.cluster.mds.node();
        Ok(self
            .cluster
            .mds_net
            .call(self.node, mds_node, MDS_SERVICE, bytes, make)
            .await?)
    }

    /// Create a new file for writing.
    pub async fn create(&self, path: &str) -> Result<LustreFile, LustreError> {
        let p = path.to_owned();
        let layout = self
            .mds_call(128 + path.len() as u64, |reply| MdsMsg::Create {
                path: p,
                reply,
            })
            .await??;
        Ok(LustreFile::new(self.clone(), path.to_owned(), layout))
    }

    /// Open an existing file.
    pub async fn open(&self, path: &str) -> Result<LustreFile, LustreError> {
        let p = path.to_owned();
        let layout = self
            .mds_call(128 + path.len() as u64, |reply| MdsMsg::Open {
                path: p,
                reply,
            })
            .await??;
        Ok(LustreFile::new(self.clone(), path.to_owned(), layout))
    }

    /// Whether `path` exists.
    pub async fn exists(&self, path: &str) -> Result<bool, LustreError> {
        match self.open(path).await {
            Ok(_) => Ok(true),
            Err(LustreError::Mds(MdsError::NotFound(_))) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Remove a file and reap its objects from the OSTs.
    pub async fn unlink(&self, path: &str) -> Result<(), LustreError> {
        let p = path.to_owned();
        let layout = self
            .mds_call(128 + path.len() as u64, |reply| MdsMsg::Unlink {
                path: p,
                reply,
            })
            .await??;
        // reap the object from every OSS that may hold a stripe
        let mut oss_nodes: Vec<NodeId> = layout
            .osts
            .iter()
            .map(|&ost| self.cluster.ost_location(ost).0)
            .collect();
        oss_nodes.sort();
        oss_nodes.dedup();
        for oss_node in oss_nodes {
            let _freed: u64 = self
                .cluster
                .oss_net
                .call(self.node, oss_node, OSS_SERVICE, 64, |reply| {
                    OssMsg::Delete {
                        obj: layout.file_id,
                        reply,
                    }
                })
                .await?;
        }
        Ok(())
    }

    /// List paths under `prefix`.
    pub async fn list(&self, prefix: &str) -> Result<Vec<String>, LustreError> {
        let p = prefix.to_owned();
        self.mds_call(128 + prefix.len() as u64, |reply| MdsMsg::List {
            prefix: p,
            reply,
        })
        .await
    }
}

/// An open file handle: striped reads/writes plus size bookkeeping.
pub struct LustreFile {
    client: LustreClient,
    path: String,
    layout: FileLayout,
    write_pos: Cell<u64>,
    inflight: Rc<Semaphore>,
}

impl LustreFile {
    fn new(client: LustreClient, path: String, layout: FileLayout) -> LustreFile {
        let cap = client.cluster.config.max_rpcs_in_flight * layout.osts.len().max(1);
        LustreFile {
            client,
            path,
            layout,
            write_pos: Cell::new(0),
            inflight: Rc::new(Semaphore::new(cap.max(1))),
        }
    }

    /// The file's path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Known size (from the MDS at open; locally updated while writing).
    pub fn size(&self) -> u64 {
        self.layout.size.max(self.write_pos.get())
    }

    /// The stripe layout.
    pub fn layout(&self) -> &FileLayout {
        &self.layout
    }

    /// Split `[offset, offset+len)` into stripe-aligned extents.
    fn extents(&self, offset: u64, len: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let stripe_end = (pos / self.layout.stripe_size + 1) * self.layout.stripe_size;
            let chunk_end = stripe_end.min(end);
            out.push((pos, chunk_end - pos));
            pos = chunk_end;
        }
        out
    }

    /// Write `data` at an explicit offset, striping across OSTs in
    /// parallel (bounded by `max_rpcs_in_flight × stripe_count`). Each
    /// stripe ack carries the OSS's commit checksum; the client compares
    /// it against the checksum of the slice it sent, so a corrupted
    /// commit surfaces as [`LustreError::CommitMismatch`] rather than a
    /// silent success — without paying for a read-back.
    pub async fn write_at(&self, offset: u64, data: Bytes) -> Result<(), LustreError> {
        let sim = self.client.cluster.oss_net.fabric().sim().clone();
        // kernel-client copy cost (serial per writer)
        sim.sleep(simkit::dur::transfer(
            data.len() as u64,
            self.client.cluster.config.client_cpu_rate,
        ))
        .await;
        let mut futs = Vec::new();
        let mut cursor = 0u64;
        for (off, len) in self.extents(offset, data.len() as u64) {
            let chunk = data.slice(cursor as usize..(cursor + len) as usize);
            cursor += len;
            let (slot, obj_off) = self.layout.locate(off);
            let ost = self.layout.osts[slot];
            let (oss_node, ost_slot) = self.client.cluster.ost_location(ost);
            let net = Rc::clone(&self.client.cluster.oss_net);
            let inflight = Rc::clone(&self.inflight);
            let src = self.client.node;
            let obj = self.layout.file_id;
            futs.push(async move {
                let _permit = inflight.acquire().await;
                let wire = chunk.len() as u64 + 64;
                let sent = crate::oss::commit_crc(&chunk);
                let r: Result<u32, StoreError> = net
                    .call(src, oss_node, OSS_SERVICE, wire, |reply| OssMsg::Write {
                        ost_slot,
                        obj,
                        offset: obj_off,
                        data: chunk,
                        reply,
                    })
                    .await
                    .map_err(LustreError::from)?;
                let committed = r.map_err(LustreError::from)?;
                if committed != sent {
                    return Err(LustreError::CommitMismatch { offset: off });
                }
                Ok(())
            });
        }
        let results = join_all(&sim, futs).await;
        for r in results {
            r?;
        }
        let end = offset + data.len() as u64;
        if end > self.write_pos.get() {
            self.write_pos.set(end);
        }
        Ok(())
    }

    /// Sequential append (tracks its own position).
    pub async fn append(&self, data: Bytes) -> Result<(), LustreError> {
        self.write_at(self.write_pos.get(), data).await
    }

    /// Read `len` bytes at `offset`, gathering stripes in parallel.
    pub async fn read_at(&self, offset: u64, len: u64) -> Result<Bytes, LustreError> {
        let sim = self.client.cluster.oss_net.fabric().sim().clone();
        sim.sleep(simkit::dur::transfer(
            len,
            self.client.cluster.config.client_cpu_rate,
        ))
        .await;
        let mut futs = Vec::new();
        for (off, chunk_len) in self.extents(offset, len) {
            let (slot, obj_off) = self.layout.locate(off);
            let ost = self.layout.osts[slot];
            let (oss_node, ost_slot) = self.client.cluster.ost_location(ost);
            let net = Rc::clone(&self.client.cluster.oss_net);
            let inflight = Rc::clone(&self.inflight);
            let src = self.client.node;
            let obj = self.layout.file_id;
            futs.push(async move {
                let _permit = inflight.acquire().await;
                let r: Result<Bytes, StoreError> = net
                    .call(src, oss_node, OSS_SERVICE, 64, |reply| OssMsg::Read {
                        ost_slot,
                        obj,
                        offset: obj_off,
                        len: chunk_len,
                        reply,
                    })
                    .await
                    .map_err(LustreError::from)?;
                r.map_err(LustreError::from)
            });
        }
        let results = join_all(&sim, futs).await;
        let mut buf = BytesMut::with_capacity(len as usize);
        for r in results {
            buf.extend_from_slice(&r?);
        }
        Ok(buf.freeze())
    }

    /// Read the whole file (by known size).
    pub async fn read_all(&self) -> Result<Bytes, LustreError> {
        let size = self.size();
        if size == 0 {
            return Ok(Bytes::new());
        }
        self.read_at(0, size).await
    }

    /// Flush size metadata to the MDS. Call after writing.
    pub async fn close(&self) -> Result<(), LustreError> {
        let size = self.size();
        let p = self.path.clone();
        self.client
            .mds_call(64 + self.path.len() as u64, |reply| MdsMsg::SetSize {
                path: p,
                size,
                reply,
            })
            .await??;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LustreCluster, LustreConfig};
    use netsim::{Fabric, NetConfig};
    use simkit::Sim;

    fn fs(compute_nodes: usize, config: LustreConfig) -> (Sim, Rc<Fabric>, Rc<LustreCluster>) {
        let sim = Sim::new();
        let fabric = Fabric::new(sim.clone(), compute_nodes, NetConfig::default());
        let cluster = LustreCluster::deploy(&fabric, config);
        (sim, fabric, cluster)
    }

    fn patterned(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 241) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn write_read_roundtrip_across_stripes() {
        let (sim, _f, cluster) = fs(1, LustreConfig::default());
        let client = cluster.client(NodeId(0));
        let data = patterned(5 << 20); // 5 stripes
        let expect = data.clone();
        sim.block_on(async move {
            let fh = client.create("/bench/f0").await.unwrap();
            fh.append(data).await.unwrap();
            fh.close().await.unwrap();
            let fh2 = client.open("/bench/f0").await.unwrap();
            assert_eq!(fh2.size(), 5 << 20);
            let back = fh2.read_all().await.unwrap();
            assert_eq!(back, expect);
        });
    }

    #[test]
    fn partial_reads_at_offsets() {
        let (sim, _f, cluster) = fs(1, LustreConfig::default());
        let client = cluster.client(NodeId(0));
        let data = patterned(3 << 20);
        let expect = data.clone();
        sim.block_on(async move {
            let fh = client.create("/p").await.unwrap();
            fh.append(data).await.unwrap();
            fh.close().await.unwrap();
            let fh = client.open("/p").await.unwrap();
            // read crossing a stripe boundary
            let off = (1 << 20) - 100;
            let got = fh.read_at(off, 200).await.unwrap();
            assert_eq!(&got[..], &expect[off as usize..off as usize + 200]);
        });
    }

    #[test]
    fn create_conflicts_and_open_missing() {
        let (sim, _f, cluster) = fs(1, LustreConfig::default());
        let client = cluster.client(NodeId(0));
        sim.block_on(async move {
            client.create("/x").await.unwrap();
            match client.create("/x").await.map(|f| f.path().to_owned()) {
                Err(LustreError::Mds(MdsError::Exists(_))) => {}
                other => panic!("expected Exists, got {other:?}"),
            }
            match client.open("/y").await.map(|f| f.path().to_owned()) {
                Err(LustreError::Mds(MdsError::NotFound(_))) => {}
                other => panic!("expected NotFound, got {other:?}"),
            }
            assert!(client.exists("/x").await.unwrap());
            assert!(!client.exists("/y").await.unwrap());
        });
    }

    #[test]
    fn unlink_reaps_ost_objects() {
        let (sim, _f, cluster) = fs(1, LustreConfig::default());
        let client = cluster.client(NodeId(0));
        let c2 = Rc::clone(&cluster);
        sim.block_on(async move {
            let fh = client.create("/del").await.unwrap();
            fh.append(patterned(4 << 20)).await.unwrap();
            fh.close().await.unwrap();
            assert_eq!(c2.stored_bytes(), 4 << 20);
            client.unlink("/del").await.unwrap();
            assert_eq!(c2.stored_bytes(), 0);
            assert!(!client.exists("/del").await.unwrap());
        });
    }

    #[test]
    fn list_by_prefix() {
        let (sim, _f, cluster) = fs(1, LustreConfig::default());
        let client = cluster.client(NodeId(0));
        sim.block_on(async move {
            for p in ["/a/1", "/a/2", "/b/1"] {
                client.create(p).await.unwrap();
            }
            let got = client.list("/a/").await.unwrap();
            assert_eq!(got, vec!["/a/1".to_owned(), "/a/2".to_owned()]);
            assert_eq!(client.list("/").await.unwrap().len(), 3);
        });
    }

    #[test]
    fn striping_engages_multiple_osts() {
        let (sim, _f, cluster) = fs(1, LustreConfig::default());
        let client = cluster.client(NodeId(0));
        let c2 = Rc::clone(&cluster);
        sim.block_on(async move {
            let fh = client.create("/wide").await.unwrap();
            fh.append(patterned(8 << 20)).await.unwrap();
            fh.close().await.unwrap();
            // 4-way stripe over 8 MiB → 2 MiB per OST
            let mut hit = 0;
            for oss in &c2.osses {
                if oss.stored_bytes() > 0 {
                    hit += 1;
                }
            }
            assert!(hit >= 2, "only {hit} OSS(es) hold data");
        });
    }

    #[test]
    fn parallel_stripes_beat_single_ost_rate() {
        let (sim, _f, cluster) = fs(1, LustreConfig::default());
        let client = cluster.client(NodeId(0));
        let bytes = 64u64 << 20;
        let s = sim.clone();
        let elapsed = sim.block_on(async move {
            let fh = client.create("/fast").await.unwrap();
            let t0 = s.now();
            fh.append(patterned(bytes as usize)).await.unwrap();
            fh.close().await.unwrap();
            (s.now() - t0).as_secs_f64()
        });
        let single_ost = bytes as f64 / 450e6;
        assert!(
            elapsed < single_ost * 0.7,
            "no striping speedup: {elapsed:.3}s vs single-OST {single_ost:.3}s"
        );
    }

    #[test]
    fn stripe_count_capped_by_total_osts() {
        // ask for 8-way striping on a 2-OST filesystem: layout must cap
        let config = LustreConfig {
            oss_count: 2,
            osts_per_oss: 1,
            stripe_count: 8,
            ..LustreConfig::default()
        };
        let (sim, _f, cluster) = fs(1, config);
        let client = cluster.client(NodeId(0));
        sim.block_on(async move {
            let fh = client.create("/cap").await.unwrap();
            assert_eq!(fh.layout().osts.len(), 2);
            fh.append(patterned(3 << 20)).await.unwrap();
            fh.close().await.unwrap();
            let back = client.open("/cap").await.unwrap().read_all().await.unwrap();
            assert_eq!(back.len(), 3 << 20);
        });
    }

    #[test]
    fn zero_byte_file_roundtrips() {
        let (sim, _f, cluster) = fs(1, LustreConfig::default());
        let client = cluster.client(NodeId(0));
        sim.block_on(async move {
            let fh = client.create("/empty").await.unwrap();
            fh.close().await.unwrap();
            let fh2 = client.open("/empty").await.unwrap();
            assert_eq!(fh2.size(), 0);
            assert!(fh2.read_all().await.unwrap().is_empty());
        });
    }

    #[test]
    fn many_clients_contend_on_shared_osses() {
        // 16 writers, small Lustre (2 OSS): aggregate should be bounded by
        // OST capability, i.e. runtime scales up with client count
        let config = LustreConfig {
            oss_count: 2,
            osts_per_oss: 1,
            stripe_count: 1,
            ..LustreConfig::default()
        };
        let (sim, _f, cluster) = fs(16, config);
        let bytes = 32usize << 20;
        for n in 0..16u32 {
            let client = cluster.client(NodeId(n));
            sim.spawn(async move {
                let fh = client.create(&format!("/c{n}")).await.unwrap();
                fh.append(patterned(bytes)).await.unwrap();
                fh.close().await.unwrap();
            });
        }
        let end = sim.run().as_secs_f64();
        // 512 MiB over 2 OSTs at 450 MB/s ≈ 0.60 s minimum
        let floor = (16.0 * bytes as f64) / (2.0 * 450e6);
        assert!(end > floor * 0.9, "finished impossibly fast: {end:.3}s");
        assert!(end < floor * 2.0, "far slower than device bound: {end:.3}s");
    }
}
