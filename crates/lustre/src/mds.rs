//! The metadata server: namespace, file layouts, and sizes.
//!
//! One simulated process serves all metadata RPCs serially with a fixed
//! service time — matching the single-MDS bottleneck of classic Lustre.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use netsim::{NodeId, ReplyHandle, Switchboard};

use crate::LustreConfig;

/// Metadata-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdsError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (create).
    Exists(String),
}

impl fmt::Display for MdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdsError::NotFound(p) => write!(f, "no such file: {p}"),
            MdsError::Exists(p) => write!(f, "file exists: {p}"),
        }
    }
}
impl std::error::Error for MdsError {}

/// Where a file's data lives: which OSTs, in stripe order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileLayout {
    /// Unique file id; doubles as the object id on every stripe OST.
    pub file_id: u64,
    /// OST indices in stripe order.
    pub osts: Vec<usize>,
    /// Stripe size in bytes.
    pub stripe_size: u64,
    /// Known file size (updated on close).
    pub size: u64,
}

impl FileLayout {
    /// Map a byte offset to (stripe-OST slot, object offset).
    pub fn locate(&self, offset: u64) -> (usize, u64) {
        let stripe_index = offset / self.stripe_size;
        let slot = (stripe_index as usize) % self.osts.len();
        let round = stripe_index / self.osts.len() as u64;
        let within = offset % self.stripe_size;
        (slot, round * self.stripe_size + within)
    }
}

/// Metadata RPCs.
pub enum MdsMsg {
    /// Create a file; returns its layout.
    Create {
        /// Absolute path.
        path: String,
        /// Reply channel.
        reply: ReplyHandle<Result<FileLayout, MdsError>>,
    },
    /// Fetch layout + size.
    Open {
        /// Absolute path.
        path: String,
        /// Reply channel.
        reply: ReplyHandle<Result<FileLayout, MdsError>>,
    },
    /// Record the final size at close.
    SetSize {
        /// Absolute path.
        path: String,
        /// New size.
        size: u64,
        /// Reply channel.
        reply: ReplyHandle<Result<(), MdsError>>,
    },
    /// Remove a file; returns its layout so the client can reap objects.
    Unlink {
        /// Absolute path.
        path: String,
        /// Reply channel.
        reply: ReplyHandle<Result<FileLayout, MdsError>>,
    },
    /// List paths under a prefix.
    List {
        /// Path prefix.
        prefix: String,
        /// Reply channel.
        reply: ReplyHandle<Vec<String>>,
    },
}

/// The metadata server process.
pub struct Mds {
    node: NodeId,
    files: RefCell<HashMap<String, FileLayout>>,
    next_file_id: RefCell<u64>,
    next_ost: RefCell<usize>,
    total_osts: usize,
    config: LustreConfig,
}

/// Mailbox service name for the MDS.
pub const MDS_SERVICE: &str = "lustre-mds";

impl Mds {
    /// Spawn the MDS process on `node`.
    pub fn spawn(
        net: Rc<Switchboard<MdsMsg>>,
        node: NodeId,
        total_osts: usize,
        config: LustreConfig,
    ) -> Rc<Mds> {
        let mds = Rc::new(Mds {
            node,
            files: RefCell::new(HashMap::new()),
            next_file_id: RefCell::new(1),
            next_ost: RefCell::new(0),
            total_osts,
            config,
        });
        let mut rx = net.register(node, MDS_SERVICE);
        let sim = net.fabric().sim().clone();
        let ops = sim.metrics().counter("lustre.mds.ops");
        let this = Rc::clone(&mds);
        sim.clone().spawn(async move {
            while let Ok(env) = rx.recv().await {
                let _sp = sim.span("mds.op", "lustre", this.node.0, 0);
                ops.inc();
                sim.sleep(this.config.mds_service).await;
                this.handle(env.msg);
            }
        });
        mds
    }

    /// Fabric node of the MDS.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.files.borrow().len()
    }

    fn handle(&self, msg: MdsMsg) {
        match msg {
            MdsMsg::Create { path, reply } => {
                let r = self.create(&path);
                reply.send(r, 256);
            }
            MdsMsg::Open { path, reply } => {
                let r = self
                    .files
                    .borrow()
                    .get(&path)
                    .cloned()
                    .ok_or(MdsError::NotFound(path));
                reply.send(r, 256);
            }
            MdsMsg::SetSize { path, size, reply } => {
                let mut files = self.files.borrow_mut();
                let r = match files.get_mut(&path) {
                    Some(l) => {
                        l.size = size;
                        Ok(())
                    }
                    None => Err(MdsError::NotFound(path)),
                };
                reply.send(r, 64);
            }
            MdsMsg::Unlink { path, reply } => {
                let r = self
                    .files
                    .borrow_mut()
                    .remove(&path)
                    .ok_or(MdsError::NotFound(path));
                reply.send(r, 256);
            }
            MdsMsg::List { prefix, reply } => {
                let mut v: Vec<String> = self
                    .files
                    .borrow()
                    .keys()
                    .filter(|p| p.starts_with(&prefix))
                    .cloned()
                    .collect();
                v.sort();
                let bytes = v.iter().map(|p| p.len() as u64 + 8).sum::<u64>().max(64);
                reply.send(v, bytes);
            }
        }
    }

    fn create(&self, path: &str) -> Result<FileLayout, MdsError> {
        let mut files = self.files.borrow_mut();
        if files.contains_key(path) {
            return Err(MdsError::Exists(path.to_owned()));
        }
        let file_id = {
            let mut id = self.next_file_id.borrow_mut();
            let v = *id;
            *id += 1;
            v
        };
        // round-robin OST allocation, the default Lustre allocator
        let count = self.config.stripe_count.min(self.total_osts);
        let start = {
            let mut n = self.next_ost.borrow_mut();
            let v = *n;
            *n = (*n + count) % self.total_osts;
            v
        };
        let osts: Vec<usize> = (0..count).map(|k| (start + k) % self.total_osts).collect();
        let layout = FileLayout {
            file_id,
            osts,
            stripe_size: self.config.stripe_size,
            size: 0,
        };
        files.insert(path.to_owned(), layout.clone());
        Ok(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_locate_round_robins_stripes() {
        let l = FileLayout {
            file_id: 1,
            osts: vec![10, 11, 12],
            stripe_size: 1 << 20,
            size: 0,
        };
        // offset 0 → slot 0, object offset 0
        assert_eq!(l.locate(0), (0, 0));
        // second stripe → slot 1
        assert_eq!(l.locate(1 << 20), (1, 0));
        assert_eq!(l.locate(2 << 20), (2, 0));
        // fourth stripe wraps to slot 0, second object extent
        assert_eq!(l.locate(3 << 20), (0, 1 << 20));
        // mid-stripe offsets preserve the within-stripe remainder
        assert_eq!(l.locate((3 << 20) + 123), (0, (1 << 20) + 123));
    }

    #[test]
    fn locate_single_stripe() {
        let l = FileLayout {
            file_id: 1,
            osts: vec![5],
            stripe_size: 4096,
            size: 0,
        };
        assert_eq!(l.locate(10_000), (0, 10_000));
    }
}
