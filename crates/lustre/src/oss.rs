//! Object storage servers: each OSS fronts several OSTs (RAID-backed
//! object stores). Requests are handled concurrently — per-OST queueing
//! happens at the device, which is what actually bounds throughput.

use std::rc::Rc;

use bytes::Bytes;
use netsim::{NodeId, ReplyHandle, Switchboard};
use simkit::telemetry::{Counter, Gauge};
use storesim::{Disk, DiskParams, ObjectStore, StoreError};

use crate::LustreConfig;

/// Checksum an OSS computes over the bytes it actually commits and returns
/// in the write ack (FNV-1a 32). Clients compare it against the checksum of
/// the bytes they sent: a mismatch means the committed extent differs from
/// the submitted one (corruption between wire and media), detected at 1×
/// device cost — no read-back required.
pub fn commit_crc(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// OSS data-path RPCs. `ost_slot` addresses an OST local to the receiving
/// OSS.
pub enum OssMsg {
    /// Write `data` into object `obj` at `offset`. The ack carries the
    /// [`commit_crc`] of the committed bytes.
    Write {
        /// OST slot on this OSS.
        ost_slot: usize,
        /// Object id (the file id).
        obj: u64,
        /// Byte offset within the object.
        offset: u64,
        /// Payload.
        data: Bytes,
        /// Reply channel.
        reply: ReplyHandle<Result<u32, StoreError>>,
    },
    /// Read `len` bytes from object `obj` at `offset`.
    Read {
        /// OST slot on this OSS.
        ost_slot: usize,
        /// Object id (the file id).
        obj: u64,
        /// Byte offset within the object.
        offset: u64,
        /// Bytes to read.
        len: u64,
        /// Reply channel.
        reply: ReplyHandle<Result<Bytes, StoreError>>,
    },
    /// Delete object `obj` on every local OST (unlink reaping).
    Delete {
        /// Object id (the file id).
        obj: u64,
        /// Reply channel.
        reply: ReplyHandle<u64>,
    },
}

/// Mailbox service name for OSS data traffic.
pub const OSS_SERVICE: &str = "lustre-oss";

/// Per-OSS registered metrics (`lustre.oss{index}.*`).
struct OssMetrics {
    read_ops: Counter,
    read_bytes: Counter,
    write_ops: Counter,
    write_bytes: Counter,
    queue_depth: Gauge,
    queue_peak: Gauge,
}

/// One object storage server process with its OSTs.
pub struct Oss {
    node: NodeId,
    index: usize,
    osts: Vec<Rc<ObjectStore>>,
    metrics: OssMetrics,
    /// Simulation handle, for polling scripted at-commit corruption
    /// ([`simkit::FaultEvent::CorruptCommit`]) on the write path.
    sim: simkit::Sim,
}

impl Oss {
    /// Spawn OSS `index` on `node` with `config.osts_per_oss` OSTs.
    pub fn spawn(
        net: Rc<Switchboard<OssMsg>>,
        node: NodeId,
        index: usize,
        config: LustreConfig,
    ) -> Rc<Oss> {
        let sim = net.fabric().sim().clone();
        let osts = (0..config.osts_per_oss)
            .map(|_| {
                let disk = Disk::new(
                    sim.clone(),
                    DiskParams {
                        write_rate: config.ost_rate,
                        read_rate: config.ost_rate * 1.1,
                        access_latency: config.ost_access,
                        capacity: config.ost_capacity,
                    },
                );
                ObjectStore::new(disk)
            })
            .collect();
        let m = sim.metrics();
        let prefix = format!("lustre.oss{index}");
        let metrics = OssMetrics {
            read_ops: m.counter(format!("{prefix}.read_ops")),
            read_bytes: m.counter(format!("{prefix}.read_bytes")),
            write_ops: m.counter(format!("{prefix}.write_ops")),
            write_bytes: m.counter(format!("{prefix}.write_bytes")),
            queue_depth: m.gauge(format!("{prefix}.queue_depth")),
            queue_peak: m.gauge(format!("{prefix}.queue_peak")),
        };
        let oss = Rc::new(Oss {
            node,
            index,
            osts,
            metrics,
            sim: sim.clone(),
        });
        let mut rx = net.register(node, OSS_SERVICE);
        let this = Rc::clone(&oss);
        sim.clone().spawn(async move {
            while let Ok(env) = rx.recv().await {
                // concurrent handling: the OST device serializes
                let this = Rc::clone(&this);
                sim.spawn(async move {
                    let d = this.metrics.queue_depth.get() + 1;
                    this.metrics.queue_depth.set(d);
                    if d > this.metrics.queue_peak.get() {
                        this.metrics.queue_peak.set(d);
                    }
                    this.handle(env.msg).await;
                    this.metrics.queue_depth.add(-1);
                });
            }
        });
        oss
    }

    /// Fabric node of this OSS.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// OSS index within the cluster.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Direct access to a local OST (tests/diagnostics).
    pub fn ost(&self, slot: usize) -> &Rc<ObjectStore> {
        &self.osts[slot]
    }

    /// Total payload bytes on this OSS's OSTs.
    pub fn stored_bytes(&self) -> u64 {
        self.osts.iter().map(|o| o.stored_bytes()).sum()
    }

    async fn handle(&self, msg: OssMsg) {
        match msg {
            OssMsg::Write {
                ost_slot,
                obj,
                offset,
                data,
                reply,
            } => {
                self.metrics.write_ops.inc();
                self.metrics.write_bytes.add(data.len() as u64);
                // poll scripted at-commit corruption; flip the byte before
                // persisting so readers observe the damaged on-disk state
                let data = match self
                    .sim
                    .faults()
                    .corrupt_commit(self.node.0, data.len() as u64)
                {
                    Some((off, mask)) => {
                        let mut v = data.to_vec();
                        v[off as usize] ^= mask;
                        Bytes::from(v)
                    }
                    None => data,
                };
                // the ack checksum covers the post-corruption bytes — what
                // the media actually holds, not what the client sent
                let crc = commit_crc(&data);
                let r = self.osts[ost_slot].write_at(obj, offset, data).await;
                reply.send(r.map(|()| crc), 64);
            }
            OssMsg::Read {
                ost_slot,
                obj,
                offset,
                len,
                reply,
            } => {
                self.metrics.read_ops.inc();
                self.metrics.read_bytes.add(len);
                let r = self.osts[ost_slot].read_at(obj, offset, len).await;
                let wire = match &r {
                    Ok(b) => b.len() as u64 + 64,
                    Err(_) => 64,
                };
                reply.send(r, wire);
            }
            OssMsg::Delete { obj, reply } => {
                let mut freed = 0;
                for ost in &self.osts {
                    if let Ok(n) = ost.delete(obj) {
                        freed += n;
                    }
                }
                reply.send(freed, 64);
            }
        }
    }
}
