//! Lightweight metrics used across the simulated systems: counters and
//! log-bucketed latency histograms with percentile queries.

use std::fmt;
use std::time::Duration;

/// Linear sub-buckets per power of two (HDR-histogram style log-linear
/// bucketing): `2^SUB_BITS` sub-buckets per octave bound the relative
/// bucket width — and therefore the percentile interpolation error — to
/// `2^-SUB_BITS` (12.5 %) instead of the 2× a pure log₂ layout allows.
/// Values below `2 * 2^SUB_BITS` map one-to-one to their own bucket, so
/// tiny samples are exact.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;
/// Bucket count: indices `0..16` are exact one-value buckets; each of the
/// 60 remaining octaves (msb 4..=63) contributes `SUBS` buckets, ending at
/// index `((63 - SUB_BITS + 1) << SUB_BITS) + SUBS - 1 = 495`.
const BUCKETS: usize = 496;

/// Bucket index for a nanosecond sample (log-linear, monotone in `ns`).
fn bucket_index(ns: u64) -> usize {
    if ns < 2 * SUBS {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((ns >> shift) & (SUBS - 1)) as usize;
    (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
}

/// Inclusive `[lo, hi]` value range of a bucket.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < (2 * SUBS) as usize {
        return (idx as u64, idx as u64);
    }
    let group = (idx as u32) >> SUB_BITS;
    let sub = (idx as u64) & (SUBS - 1);
    let exp = group + SUB_BITS - 1; // the msb of every value in the bucket
    let width = 1u64 << (exp - SUB_BITS);
    let lo = (SUBS + sub) << (exp - SUB_BITS);
    (lo, lo.saturating_add(width - 1))
}

/// Log-linear-bucketed histogram over nanosecond samples. 496 buckets
/// (8 linear sub-buckets per power of two) cover the full `u64` range;
/// percentile queries interpolate within a bucket, so the approximation
/// error is bounded by one sub-bucket width (≤ 12.5 % of the value).
#[derive(Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one duration sample.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one raw nanosecond sample.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum += ns as u128;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Merge another histogram into this one.
    ///
    /// Correct in both empty-edge cases: merging into an empty `self`
    /// adopts `other`'s min/max wholesale (the empty side's `u64::MAX` min
    /// sentinel must not survive into an otherwise non-empty histogram),
    /// and merging an empty `other` is a no-op.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.sum / self.count as u128) as u64)
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max)
    }

    /// Approximate percentile (`q` in 0..=100) with linear interpolation
    /// inside the matched bucket.
    ///
    /// Accuracy note: the interpolated value is clamped to the observed
    /// `[min, max]` range, so when every sample landed in a single bucket
    /// any percentile falls within that range (and with one sample, equals
    /// it exactly) rather than drifting to the bucket's nominal edges. The
    /// error bound is the matched bucket's width — at most `2^-SUB_BITS`
    /// (12.5 %) of the true value with log-linear sub-buckets, and exact
    /// below 16 ns. Returns [`Duration::ZERO`] when empty.
    pub fn percentile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (q / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let (lo, hi) = bucket_bounds(i);
                let frac = (target - seen) as f64 / c as f64;
                let ns = lo as f64 + frac * (hi - lo) as f64;
                return Duration::from_nanos(ns.min(self.max as f64).max(self.min as f64) as u64);
            }
            seen += c;
        }
        Duration::from_nanos(self.max)
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram {{ n: {}, mean: {:?}, p50: {:?}, p99: {:?}, max: {:?} }}",
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max()
        )
    }
}

/// Throughput summary over a measured interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Payload bytes moved.
    pub bytes: u64,
    /// Interval length.
    pub elapsed: Duration,
}

impl Throughput {
    /// MB/s using decimal megabytes (how TestDFSIO reports).
    pub fn mb_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
        }
    }

    /// MiB/s (binary).
    pub fn mib_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.bytes as f64 / (1u64 << 20) as f64 / self.elapsed.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(99.0), Duration::ZERO);
    }

    #[test]
    fn mean_min_max() {
        let mut h = Histogram::new();
        for ns in [100u64, 200, 300] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Duration::from_nanos(200));
        assert_eq!(h.min(), Duration::from_nanos(100));
        assert_eq!(h.max(), Duration::from_nanos(300));
    }

    #[test]
    fn percentiles_are_ordered_and_bracketed() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record_ns(i);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max());
        assert!(h.min() <= p50);
        // log-linear buckets: p50 of uniform 1..10000 stays within the
        // sub-bucket containing 5000 ([4608, 5119])
        let v = p50.as_nanos() as f64;
        assert!((4608.0..=5120.0).contains(&v), "p50 = {v}");
    }

    #[test]
    fn percentile_error_bounds_at_ns_scale() {
        // regression: the pure-log₂ layout allowed up to 2x error; the
        // sub-bucketed layout pins p50/p99 within one bucket width
        // (≤ 12.5 % of the true value) on a uniform 1..=10000 ns stream
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record_ns(i);
        }
        let p50 = h.percentile(50.0).as_nanos() as f64;
        let p99 = h.percentile(99.0).as_nanos() as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 <= 0.125, "p50 = {p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 <= 0.125, "p99 = {p99}");
        // sub-microsecond service times no longer collapse into one
        // bucket: 600 ns and 900 ns samples stay distinguishable
        let mut m = Histogram::new();
        for _ in 0..100 {
            m.record_ns(600);
            m.record_ns(900);
        }
        let p50m = m.percentile(50.0).as_nanos() as u64;
        let p99m = m.percentile(99.0).as_nanos() as u64;
        assert!(p50m < 700, "p50 {p50m} must sit in the 600 ns bucket");
        assert!(p99m > 800, "p99 {p99m} must sit in the 900 ns bucket");
        // values below 16 ns occupy exact one-value buckets
        let mut s = Histogram::new();
        for ns in [3u64, 9, 15] {
            s.record_ns(ns);
        }
        assert_eq!(s.percentile(50.0), Duration::from_nanos(9));
    }

    #[test]
    fn bucket_layout_is_monotone_and_total() {
        // contiguous, ordered coverage of the u64 range
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let mut prev = 0usize;
        for exp in 0..64u32 {
            for ns in [1u64 << exp, (1u64 << exp) | ((1u64 << exp) - 1)] {
                let idx = bucket_index(ns);
                assert!(idx >= prev, "index must be monotone at {ns}");
                let (lo, hi) = bucket_bounds(idx);
                assert!(lo <= ns && ns <= hi, "ns {ns} outside [{lo}, {hi}]");
                prev = idx;
            }
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_ns(10);
        b.record_ns(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Duration::from_nanos(10));
        assert_eq!(a.max(), Duration::from_nanos(1000));
    }

    #[test]
    fn merge_into_empty_preserves_min() {
        // empty self must not keep its u64::MAX min sentinel visible
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record_ns(500);
        b.record_ns(700);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Duration::from_nanos(500));
        assert_eq!(a.max(), Duration::from_nanos(700));
        assert_eq!(a.mean(), Duration::from_nanos(600));
    }

    #[test]
    fn merge_empty_other_is_noop() {
        let mut a = Histogram::new();
        a.record_ns(42);
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), Duration::from_nanos(42));
        assert_eq!(a.max(), Duration::from_nanos(42));
    }

    #[test]
    fn merge_two_empties_stays_empty() {
        let mut a = Histogram::new();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), Duration::ZERO);
        assert_eq!(a.percentile(50.0), Duration::ZERO);
    }

    #[test]
    fn single_bucket_percentiles_are_clamped() {
        // all samples in one log bucket: percentiles must stay within
        // [min, max], not drift to the bucket's nominal edges
        let mut h = Histogram::new();
        for ns in [1000u64, 1100, 1200] {
            h.record_ns(ns);
        }
        for q in [0.0, 50.0, 99.0, 100.0] {
            let p = h.percentile(q);
            assert!(p >= h.min() && p <= h.max(), "q={q} p={p:?}");
        }
        // degenerate single sample: every percentile is that sample
        let mut one = Histogram::new();
        one.record_ns(777);
        assert_eq!(one.percentile(50.0), Duration::from_nanos(777));
        assert_eq!(one.percentile(99.9), Duration::from_nanos(777));
    }

    #[test]
    fn zero_sample() {
        let mut h = Histogram::new();
        h.record_ns(0);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn throughput_units() {
        let t = Throughput {
            bytes: 100_000_000,
            elapsed: Duration::from_secs(2),
        };
        assert!((t.mb_per_sec() - 50.0).abs() < 1e-9);
        assert!((t.mib_per_sec() - 47.68).abs() < 0.01);
        let z = Throughput {
            bytes: 1,
            elapsed: Duration::ZERO,
        };
        assert_eq!(z.mb_per_sec(), 0.0);
    }
}
