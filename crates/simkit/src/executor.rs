//! The deterministic virtual-time async executor.
//!
//! [`Sim`] owns a single-threaded task set and a virtual clock. Tasks are
//! ordinary Rust futures; they suspend on simulated time ([`Sim::sleep`]),
//! on channels ([`crate::sync`]), or on queueing resources
//! ([`crate::resource`]). When no task is runnable the executor advances the
//! clock to the earliest pending timer, which is the discrete-event step.
//!
//! Determinism: execution is single-threaded, ready tasks run in FIFO wake
//! order, and simultaneous timers fire in registration order, so a run is a
//! pure function of the program and the RNG seed.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::faultplan::{FaultInjector, FaultPlan};
use crate::telemetry::{Registry, Span, SpanInner, Telemetry, Tracer};
use crate::time::Time;

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// FIFO queue of runnable task ids, shared with wakers.
///
/// Wakers must be `Send + Sync` by API contract even though this executor is
/// single-threaded, so the queue sits behind a `Mutex`; it is never
/// contended.
#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<usize>>,
}

impl ReadyQueue {
    fn push(&self, id: usize) {
        self.queue
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
    }
    fn pop(&self) -> Option<usize> {
        self.queue.lock().expect("ready queue poisoned").pop_front()
    }
}

struct TaskWaker {
    id: usize,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// State shared between a pending timer in the heap and the [`Sleep`]
/// future that created it.
struct TimerState {
    fired: Cell<bool>,
    cancelled: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

struct TimerEntry {
    deadline: Time,
    seq: u64,
    state: Rc<TimerState>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct Inner {
    now: Cell<Time>,
    seq: Cell<u64>,
    ready: Arc<ReadyQueue>,
    tasks: RefCell<HashMap<usize, LocalFuture>>,
    next_task_id: Cell<usize>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    live_tasks: Cell<usize>,
    events: Cell<u64>,
    telemetry: Telemetry,
    faults: FaultInjector,
}

/// Handle to a simulation. Cheap to clone; all clones refer to the same
/// clock and task set. Not `Send` — a simulation lives on one thread
/// (parameter sweeps parallelize across *whole simulations*, e.g. with
/// rayon in the benchmark harness).
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(Inner {
                now: Cell::new(Time::ZERO),
                seq: Cell::new(0),
                ready: Arc::new(ReadyQueue::default()),
                tasks: RefCell::new(HashMap::new()),
                next_task_id: Cell::new(0),
                timers: RefCell::new(BinaryHeap::new()),
                live_tasks: Cell::new(0),
                events: Cell::new(0),
                telemetry: Telemetry::default(),
                faults: FaultInjector::default(),
            }),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.inner.now.get()
    }

    /// Total task polls performed so far (a progress/diagnostic metric).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.inner.events.get()
    }

    /// Number of tasks that have been spawned and have not yet completed.
    #[inline]
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// The simulation's metrics registry. Components register named
    /// counters/gauges/histograms at spawn and bump the returned handles;
    /// [`Registry::snapshot`](crate::telemetry::Registry::snapshot) freezes
    /// them for reporting.
    #[inline]
    pub fn metrics(&self) -> &Registry {
        &self.inner.telemetry.registry
    }

    /// The simulation's span tracer (disabled by default; see
    /// [`telemetry`](crate::telemetry)).
    #[inline]
    pub fn tracer(&self) -> &Tracer {
        &self.inner.telemetry.tracer
    }

    /// The simulation's fault injector. Components register node-event
    /// hooks and poll per-transfer fault decisions; without an installed
    /// [`FaultPlan`] everything reads as healthy.
    #[inline]
    pub fn faults(&self) -> &FaultInjector {
        &self.inner.faults
    }

    /// The per-operation request tracer (disabled by default; see
    /// [`optrace`](crate::optrace)).
    #[inline]
    pub fn optrace(&self) -> &crate::optrace::OpTracer {
        &self.inner.telemetry.optrace
    }

    /// The crash flight recorder (disabled by default; see
    /// [`flight`](crate::flight)).
    #[inline]
    pub fn flight(&self) -> &crate::flight::FlightRecorder {
        &self.inner.telemetry.flight
    }

    /// Open a traced-op context at the current virtual time. `None` when
    /// the op tracer is disabled (one boolean read).
    #[inline]
    pub fn op_begin(
        &self,
        family: &'static str,
        class: &'static str,
        tenant: u32,
    ) -> Option<crate::optrace::OpId> {
        self.inner
            .telemetry
            .optrace
            .begin(self.now().as_nanos(), family, class, tenant)
    }

    /// Stamp a stage on a traced op at the current virtual time (no-op on
    /// `None`).
    #[inline]
    pub fn op_stamp(&self, op: Option<crate::optrace::OpId>, stage: &'static str) {
        if op.is_some() {
            self.inner
                .telemetry
                .optrace
                .stamp(op, stage, self.now().as_nanos());
        }
    }

    /// Finish a traced op, folding its stage durations into the latency
    /// decomposition series (no-op on `None`).
    #[inline]
    pub fn op_finish(
        &self,
        op: Option<crate::optrace::OpId>,
    ) -> Option<crate::optrace::FinishedOp> {
        self.inner.telemetry.optrace.finish(op)
    }

    /// Record a flight-recorder event at the current virtual time (one
    /// branch and no allocation while the recorder is disabled).
    #[inline]
    pub fn flight_record(
        &self,
        component: &str,
        code: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        self.inner
            .telemetry
            .flight
            .record(self.now().as_nanos(), component, code, detail);
    }

    /// Install a [`FaultPlan`]: reseed the injector from the plan, expand
    /// flaps, and spawn the driver task that applies each event at its
    /// scheduled offset from *now*. Installing a new plan clears the
    /// previous plan's edge rules and timeline (a driver already in flight
    /// keeps running — install at most one plan per simulation).
    pub fn install_faults(&self, plan: FaultPlan) {
        self.inner.faults.arm(plan.seed());
        let events = plan.expand();
        if events.is_empty() {
            return;
        }
        let sim = self.clone();
        let base = self.now();
        self.spawn(async move {
            for (offset, ev) in events {
                sim.sleep_until(base + offset).await;
                sim.flight_record("faultplan", "apply", || format!("{ev:?}"));
                sim.inner.faults.apply(sim.now(), ev);
            }
        });
    }

    /// Open a virtual-time span: records one Chrome-trace event from now
    /// until the returned guard drops. When the tracer is disabled this
    /// costs one boolean read and returns a no-op guard.
    #[inline]
    pub fn span(&self, name: &'static str, cat: &'static str, pid: u32, tid: u64) -> Span {
        if !self.inner.telemetry.tracer.is_enabled() {
            return Span::disabled();
        }
        Span {
            inner: Some(SpanInner {
                sim: self.clone(),
                name,
                cat,
                pid,
                tid,
                start: self.now(),
            }),
        }
    }

    fn next_seq(&self) -> u64 {
        let s = self.inner.seq.get();
        self.inner.seq.set(s + 1);
        s
    }

    /// Spawn a task. The returned [`JoinHandle`] resolves to the task's
    /// output; dropping the handle detaches the task.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
        }));
        let task_state = Rc::clone(&state);
        let inner = Rc::clone(&self.inner);
        let wrapped = async move {
            let out = fut.await;
            let mut st = task_state.borrow_mut();
            st.result = Some(out);
            if let Some(w) = st.waker.take() {
                w.wake();
            }
            drop(st);
            inner.live_tasks.set(inner.live_tasks.get() - 1);
        };
        let id = self.inner.next_task_id.get();
        self.inner.next_task_id.set(id + 1);
        self.inner.live_tasks.set(self.inner.live_tasks.get() + 1);
        self.inner.tasks.borrow_mut().insert(id, Box::pin(wrapped));
        self.inner.ready.push(id);
        JoinHandle { state }
    }

    /// Suspend the calling task until `d` of virtual time has elapsed.
    pub fn sleep(&self, d: Duration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Suspend the calling task until the absolute instant `deadline`.
    pub fn sleep_until(&self, deadline: Time) -> Sleep {
        let state = Rc::new(TimerState {
            fired: Cell::new(false),
            cancelled: Cell::new(false),
            waker: RefCell::new(None),
        });
        if deadline <= self.now() {
            state.fired.set(true);
        } else {
            self.inner.timers.borrow_mut().push(Reverse(TimerEntry {
                deadline,
                seq: self.next_seq(),
                state: Rc::clone(&state),
            }));
        }
        Sleep { state }
    }

    /// Poll one runnable task; returns false if none are runnable.
    fn step_task(&self) -> bool {
        let Some(id) = self.inner.ready.pop() else {
            return false;
        };
        // A task can be enqueued more than once (multiple wakes) or have
        // completed since being enqueued; a missing entry is skipped.
        let Some(mut task) = self.inner.tasks.borrow_mut().remove(&id) else {
            return true;
        };
        self.inner.events.set(self.inner.events.get() + 1);
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.inner.ready),
        }));
        let mut cx = Context::from_waker(&waker);
        match task.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {}
            Poll::Pending => {
                self.inner.tasks.borrow_mut().insert(id, task);
            }
        }
        true
    }

    /// Pop the earliest timer and advance the clock to it. Returns false if
    /// no timers are pending.
    fn step_time(&self, horizon: Time) -> bool {
        loop {
            let entry = {
                let mut timers = self.inner.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if e.deadline <= horizon => {
                        let Reverse(e) = timers.pop().expect("peeked");
                        e
                    }
                    _ => return false,
                }
            };
            if entry.state.cancelled.get() {
                continue; // dead timer from a dropped Sleep
            }
            debug_assert!(
                entry.deadline >= self.inner.now.get(),
                "time went backwards"
            );
            self.inner.now.set(entry.deadline);
            entry.state.fired.set(true);
            if let Some(w) = entry.state.waker.borrow_mut().take() {
                w.wake();
            }
            return true;
        }
    }

    /// Run until no task is runnable and no timer is pending (quiescence).
    /// Returns the final virtual time.
    pub fn run(&self) -> Time {
        self.run_until(Time::MAX)
    }

    /// Run until quiescence or until the clock would pass `horizon`,
    /// whichever comes first. Timers beyond the horizon are left pending.
    pub fn run_until(&self, horizon: Time) -> Time {
        loop {
            while self.step_task() {}
            if !self.step_time(horizon) {
                break;
            }
        }
        self.now()
    }

    /// Spawn `fut`, run the simulation to quiescence, and return its output.
    ///
    /// Panics if the simulation quiesces before `fut` completes (a deadlock
    /// in the simulated system).
    pub fn block_on<F>(&self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(fut);
        self.run();
        handle
            .try_take()
            .expect("simulation quiesced before block_on future completed (deadlock)")
    }

    /// Cooperatively yield: reschedule the current task behind all currently
    /// runnable tasks without advancing time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Tear the simulation down: drop every pending task and timer.
    ///
    /// Long-lived server loops capture `Sim` clones inside futures that the
    /// executor's task map owns — an intentional reference cycle while the
    /// simulation runs, but a leak once it is abandoned. Call this when a
    /// finished simulation goes out of scope (the workload `Testbed` does it
    /// on drop). Must not be called from inside a running task.
    pub fn reset(&self) {
        // drain tasks in passes: dropping a future can spawn-on-drop in
        // principle, so repeat until stable
        loop {
            let tasks: Vec<LocalFuture> = {
                let mut map = self.inner.tasks.borrow_mut();
                if map.is_empty() {
                    break;
                }
                map.drain().map(|(_, t)| t).collect()
            };
            drop(tasks);
        }
        self.inner.timers.borrow_mut().clear();
        while self.inner.ready.pop().is_some() {}
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    state: Rc<TimerState>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.state.fired.get() {
            Poll::Ready(())
        } else {
            *self.state.waker.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        self.state.cancelled.set(true);
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Awaitable handle to a spawned task's output.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Take the result if the task has completed.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// Whether the task has completed (result may already be taken).
    pub fn is_finished(&self) -> bool {
        let st = self.state.borrow();
        st.result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        match st.result.take() {
            Some(v) => Poll::Ready(v),
            None => {
                st.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::dur;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), Time::ZERO);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            s.sleep(dur::ms(250)).await;
            s.now()
        });
        assert_eq!(out, Time::from_millis(250));
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(Duration::ZERO).await;
            assert_eq!(s.now(), Time::ZERO);
        });
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, delay_ms) in [(0u32, 30u64), (1, 10), (2, 20)] {
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(dur::ms(delay_ms)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![1, 2, 0]);
        assert_eq!(sim.now(), Time::from_millis(30));
    }

    #[test]
    fn simultaneous_timers_fire_in_registration_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10u32 {
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(dur::ms(5)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawn_from_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let result = sim.block_on(async move {
            let inner = s.clone();
            let h = s.spawn(async move {
                inner.sleep(dur::us(10)).await;
                42
            });
            h.await
        });
        assert_eq!(result, 42);
    }

    #[test]
    fn join_handle_resolves_to_output() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(dur::secs(1)).await;
            "done".to_owned()
        });
        sim.run();
        assert!(h.is_finished());
        assert_eq!(h.try_take().as_deref(), Some("done"));
    }

    #[test]
    fn detached_task_still_runs() {
        let sim = Sim::new();
        let flag = Rc::new(Cell::new(false));
        let f = Rc::clone(&flag);
        let s = sim.clone();
        drop(sim.spawn(async move {
            s.sleep(dur::ms(1)).await;
            f.set(true);
        }));
        sim.run();
        assert!(flag.get());
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let sim = Sim::new();
        let fired = Rc::new(Cell::new(false));
        let f = Rc::clone(&fired);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(dur::secs(10)).await;
            f.set(true);
        });
        sim.run_until(Time::from_secs(5));
        assert!(!fired.get());
        assert!(sim.now() <= Time::from_secs(5));
        // resuming runs the rest
        sim.run();
        assert!(fired.get());
        assert_eq!(sim.now(), Time::from_secs(10));
    }

    #[test]
    fn yield_now_reschedules_fairly() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for step in 0..3u32 {
                    log.borrow_mut().push((i, step));
                    s.yield_now().await;
                }
            });
        }
        sim.run();
        // perfect interleave: tasks alternate at each yield
        assert_eq!(
            *log.borrow(),
            vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        );
    }

    #[test]
    fn dropped_sleep_cancels_timer() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            let long = s.sleep(dur::secs(100));
            drop(long);
            s.sleep(dur::ms(1)).await;
        });
        let end = sim.run();
        // the cancelled 100s timer must not drag the clock forward
        assert_eq!(end, Time::from_millis(1));
    }

    #[test]
    fn live_task_accounting() {
        let sim = Sim::new();
        assert_eq!(sim.live_tasks(), 0);
        let s = sim.clone();
        sim.spawn(async move { s.sleep(dur::ms(1)).await });
        assert_eq!(sim.live_tasks(), 1);
        sim.run();
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn block_on_deadlock_panics() {
        let sim = Sim::new();
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    fn heavy_timer_load_is_ordered() {
        let sim = Sim::new();
        let last = Rc::new(Cell::new(0u64));
        // registration order intentionally scrambled
        for i in (0..1000u64).rev() {
            let s = sim.clone();
            let last = Rc::clone(&last);
            sim.spawn(async move {
                s.sleep(dur::us(i)).await;
                let prev = last.get();
                assert!(s.now().as_nanos() >= prev);
                last.set(s.now().as_nanos());
            });
        }
        sim.run();
        assert_eq!(sim.now(), Time::from_micros(999));
    }
}
