//! Request-scoped operation tracing: deterministic per-op contexts with
//! per-stage virtual-time stamp vectors, exact-percentile latency
//! decomposition, and critical-path attribution for fan-out ops.
//!
//! Every traced operation gets an [`OpId`] at [`OpTracer::begin`]; the
//! layers it crosses append `(stage label, virtual ns)` stamps via
//! [`OpTracer::stamp`]. A stage's duration is the difference between its
//! stamp and the previous one, so **per-op stage durations telescope to
//! the end-to-end latency exactly** — [`OpTracer::reconcile`] proves the
//! identity to the nanosecond over a whole run. [`OpTracer::finish`]
//! folds the op into named exact-sample series (`rkv.lat.*`, `bb.lat.*`)
//! from which [`OpTracer::decomposition_json`] emits deterministic JSON
//! and [`OpTracer::publish`] mirrors histograms into a metrics
//! [`Registry`] so SLO gates can read `p99_ns` from ordinary snapshots.
//!
//! The tracer is **off by default**: [`OpTracer::begin`] costs one boolean
//! read and returns `None`, and every other entry point no-ops on `None`.
//! Recording never sleeps and never perturbs virtual time, so a traced
//! and an untraced run of the same program reach the same final clock.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::telemetry::{json_escape, Registry};

/// Identifier of one in-flight traced operation. Deterministic: ids are
/// assigned in `begin` order, which on the single-threaded virtual-time
/// executor is a pure function of the program and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpId(u64);

impl OpId {
    /// The raw id (stable across same-seed runs).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Hard cap on exact samples kept per series — a runaway backstop far
/// above any experiment's op count; past it samples are counted as
/// dropped (the mirrored registry histograms still see every sample).
const MAX_SAMPLES_PER_SERIES: usize = 1 << 20;

/// One live operation's record.
struct LiveOp {
    family: &'static str,
    class: &'static str,
    tenant: u32,
    server: Option<u32>,
    shard: Option<u32>,
    /// Ordered `(stage label, virtual ns)` stamps; index 0 is `begin`.
    stamps: Vec<(&'static str, u64)>,
}

/// Exact-sample series: every recorded duration, in record order.
#[derive(Default)]
struct Series {
    samples: Vec<u64>,
    sum: u64,
    dropped: u64,
}

impl Series {
    fn record(&mut self, ns: u64) {
        self.sum += ns;
        if self.samples.len() >= MAX_SAMPLES_PER_SERIES {
            self.dropped += 1;
        } else {
            self.samples.push(ns);
        }
    }

    /// Exact nearest-rank percentile over the stored samples.
    fn percentile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }
}

/// A finished operation: its raw stamp vector plus the derived per-stage
/// durations. Returned by [`OpTracer::finish`] so callers can attribute
/// critical paths or assert invariants without re-reading the series.
#[derive(Debug, Clone)]
pub struct FinishedOp {
    /// The operation's id.
    pub id: OpId,
    /// Metric family (`rkv`, `bb`).
    pub family: &'static str,
    /// Op class (`get`, `set`, `multi_get`, `read_group`, …).
    pub class: &'static str,
    /// Tenant tag carried from `begin` (0 = untagged).
    pub tenant: u32,
    /// End-to-end latency: last stamp minus first.
    pub e2e_ns: u64,
    /// `(stage label, duration)` — consecutive stamp differences, so the
    /// durations sum to `e2e_ns` exactly.
    pub stages: Vec<(&'static str, u64)>,
    /// The raw `(label, virtual ns)` stamp vector (monotone).
    pub stamps: Vec<(&'static str, u64)>,
}

impl FinishedOp {
    /// The stage with the largest duration (ties broken by stage order —
    /// deterministic). `None` for an op with no intermediate stamps.
    pub fn dominant_stage(&self) -> Option<(&'static str, u64)> {
        self.stages.iter().copied().max_by_key(|&(_, d)| d)
    }
}

/// Exact stage-sum/end-to-end reconciliation over a whole run (see
/// [`OpTracer::reconcile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reconciliation {
    /// Ops finished under the class.
    pub ops: u64,
    /// Sum of every per-stage duration across those ops.
    pub stage_sum_ns: u64,
    /// Sum of their end-to-end latencies.
    pub e2e_sum_ns: u64,
}

impl Reconciliation {
    /// Whether the telescoping identity held to the nanosecond.
    pub fn exact(&self) -> bool {
        self.stage_sum_ns == self.e2e_sum_ns
    }
}

/// Per-[`Sim`](crate::Sim) request tracer. Off by default; all methods
/// are no-ops (one boolean read) until [`OpTracer::enable`].
#[derive(Default)]
pub struct OpTracer {
    enabled: Cell<bool>,
    next_id: Cell<u64>,
    live: RefCell<HashMap<u64, LiveOp>>,
    series: RefCell<BTreeMap<String, Series>>,
    /// Stage labels observed per `family.class` — drives reconciliation.
    class_stages: RefCell<BTreeMap<String, BTreeSet<&'static str>>>,
    /// Critical-path attribution counters (fan-out ops).
    crit: RefCell<BTreeMap<String, u64>>,
    aborted: Cell<u64>,
    finished: Cell<u64>,
}

impl OpTracer {
    /// Start tracing: subsequent [`OpTracer::begin`] calls mint contexts.
    pub fn enable(&self) {
        self.enabled.set(true);
    }

    /// Stop minting new contexts (already-live ops still finish).
    pub fn disable(&self) {
        self.enabled.set(false);
    }

    /// Whether op contexts are being minted.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Open an operation context at virtual time `now_ns`. Returns `None`
    /// when disabled — every other method accepts `Option<OpId>` via
    /// plain `Some`/`None` so call sites stay one line.
    pub fn begin(
        &self,
        now_ns: u64,
        family: &'static str,
        class: &'static str,
        tenant: u32,
    ) -> Option<OpId> {
        if !self.enabled.get() {
            return None;
        }
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        self.live.borrow_mut().insert(
            id,
            LiveOp {
                family,
                class,
                tenant,
                server: None,
                shard: None,
                stamps: vec![("begin", now_ns)],
            },
        );
        Some(OpId(id))
    }

    /// Append a stage stamp at virtual time `now_ns`. No-op on `None` or
    /// on an id that already finished/aborted (e.g. a server-side stamp
    /// racing a client timeout). Panics if `now_ns` precedes the previous
    /// stamp — virtual time is monotone, so that is always a bug.
    pub fn stamp(&self, op: Option<OpId>, stage: &'static str, now_ns: u64) {
        let Some(OpId(id)) = op else { return };
        if let Some(rec) = self.live.borrow_mut().get_mut(&id) {
            let last = rec.stamps.last().map(|&(_, t)| t).unwrap_or(0);
            assert!(
                now_ns >= last,
                "stage {stage:?} stamped at {now_ns} before previous stamp {last}"
            );
            rec.stamps.push((stage, now_ns));
        }
    }

    /// Record which server leg an op was served by (used for per-server
    /// latency series and fan-out attribution).
    pub fn annotate_server(&self, op: Option<OpId>, server: u32) {
        let Some(OpId(id)) = op else { return };
        if let Some(rec) = self.live.borrow_mut().get_mut(&id) {
            rec.server = Some(server);
        }
    }

    /// Record which shard (core) served the op.
    pub fn annotate_shard(&self, op: Option<OpId>, shard: u32) {
        let Some(OpId(id)) = op else { return };
        if let Some(rec) = self.live.borrow_mut().get_mut(&id) {
            rec.shard = Some(shard);
        }
    }

    /// Close the op: derive per-stage durations (consecutive stamp
    /// differences — they telescope to the end-to-end latency exactly),
    /// fold them into the per-class/per-server/per-shard series, and
    /// return the record. `None` in, `None` out.
    pub fn finish(&self, op: Option<OpId>) -> Option<FinishedOp> {
        let OpId(id) = op?;
        let rec = self.live.borrow_mut().remove(&id)?;
        let first = rec.stamps.first().map(|&(_, t)| t).unwrap_or(0);
        let last = rec.stamps.last().map(|&(_, t)| t).unwrap_or(first);
        let e2e = last - first;
        let stages: Vec<(&'static str, u64)> = rec
            .stamps
            .windows(2)
            .map(|w| (w[1].0, w[1].1 - w[0].1))
            .collect();
        let base = format!("{}.lat.{}", rec.family, rec.class);
        {
            let mut series = self.series.borrow_mut();
            series.entry(format!("{base}.e2e")).or_default().record(e2e);
            for &(label, d) in &stages {
                series
                    .entry(format!("{base}.{label}"))
                    .or_default()
                    .record(d);
            }
            if let Some(srv) = rec.server {
                series
                    .entry(format!("{base}.server{srv}.e2e"))
                    .or_default()
                    .record(e2e);
            }
            if let Some(sh) = rec.shard {
                for &(label, d) in &stages {
                    if label == "service" {
                        series
                            .entry(format!("{base}.shard{sh}.service"))
                            .or_default()
                            .record(d);
                    }
                }
            }
            if rec.tenant != 0 {
                series
                    .entry(format!("{base}.tenant{}.e2e", rec.tenant))
                    .or_default()
                    .record(e2e);
            }
        }
        self.class_stages
            .borrow_mut()
            .entry(base)
            .or_default()
            .extend(stages.iter().map(|&(l, _)| l));
        self.finished.set(self.finished.get() + 1);
        Some(FinishedOp {
            id: OpId(id),
            family: rec.family,
            class: rec.class,
            tenant: rec.tenant,
            e2e_ns: e2e,
            stages,
            stamps: rec.stamps,
        })
    }

    /// Drop a live op without recording it (timeout/error paths — a
    /// half-traced op would pollute the latency series).
    pub fn abort(&self, op: Option<OpId>) {
        let Some(OpId(id)) = op else { return };
        if self.live.borrow_mut().remove(&id).is_some() {
            self.aborted.set(self.aborted.get() + 1);
        }
    }

    /// Bump a critical-path attribution counter (e.g.
    /// `rkv.critpath.multi_get.server3` — which fan-out leg dominated).
    pub fn note_critical(&self, name: impl Into<String>) {
        if !self.enabled.get() {
            return;
        }
        *self.crit.borrow_mut().entry(name.into()).or_insert(0) += 1;
    }

    /// Ops finished so far.
    pub fn finished_ops(&self) -> u64 {
        self.finished.get()
    }

    /// Ops aborted so far.
    pub fn aborted_ops(&self) -> u64 {
        self.aborted.get()
    }

    /// Ops currently in flight.
    pub fn live_ops(&self) -> usize {
        self.live.borrow().len()
    }

    /// `(count, sum)` of a series, when it exists.
    pub fn series_stats(&self, name: &str) -> Option<(u64, u64)> {
        self.series
            .borrow()
            .get(name)
            .map(|s| (s.samples.len() as u64 + s.dropped, s.sum))
    }

    /// Exact nearest-rank percentile of a series (0 when absent/empty).
    pub fn series_percentile(&self, name: &str, q: f64) -> u64 {
        self.series
            .borrow()
            .get(name)
            .map(|s| s.percentile(q))
            .unwrap_or(0)
    }

    /// Prove the telescoping identity for `family`/`class` over the whole
    /// run: the sum of every stage series equals the sum of the `e2e`
    /// series, to the nanosecond. `None` when no op of the class finished.
    pub fn reconcile(&self, family: &str, class: &str) -> Option<Reconciliation> {
        let base = format!("{family}.lat.{class}");
        let labels = self.class_stages.borrow().get(&base)?.clone();
        let series = self.series.borrow();
        let e2e = series.get(&format!("{base}.e2e"))?;
        let mut stage_sum = 0u64;
        for label in labels {
            if let Some(s) = series.get(&format!("{base}.{label}")) {
                stage_sum += s.sum;
            }
        }
        Some(Reconciliation {
            ops: e2e.samples.len() as u64 + e2e.dropped,
            stage_sum_ns: stage_sum,
            e2e_sum_ns: e2e.sum,
        })
    }

    /// Deterministic JSON of the full decomposition: every series with
    /// exact count/sum/min/max and nearest-rank p50/p99/p999, plus the
    /// critical-path counters. Sorted keys; two same-seed runs emit
    /// byte-identical strings.
    pub fn decomposition_json(&self) -> String {
        let series = self.series.borrow();
        let mut out = String::from("{\n  \"schema\": \"rdma-bb.oplat.v1\",\n  \"series\": {\n");
        let n = series.len();
        for (i, (name, s)) in series.iter().enumerate() {
            let (min, max) = s
                .samples
                .iter()
                .fold((u64::MAX, 0u64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}{}\n",
                json_escape(name),
                s.samples.len() as u64 + s.dropped,
                s.sum,
                if s.samples.is_empty() { 0 } else { min },
                max,
                s.percentile(50.0),
                s.percentile(99.0),
                s.percentile(99.9),
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  },\n  \"critical_path\": {\n");
        let crit = self.crit.borrow();
        let n = crit.len();
        for (i, (name, count)) in crit.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {}{}\n",
                json_escape(name),
                count,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  }},\n  \"finished\": {},\n  \"aborted\": {}\n}}\n",
            self.finished.get(),
            self.aborted.get()
        ));
        out
    }

    /// Mirror every series into `registry` histograms (same names) and
    /// every critical-path counter into registry counters, so ordinary
    /// metrics snapshots carry `rkv.lat.*`/`bb.lat.*` percentiles for SLO
    /// gating. Call once per run, just before snapshotting.
    pub fn publish(&self, registry: &Registry) {
        for (name, s) in self.series.borrow().iter() {
            let h = registry.histogram(name.clone());
            for &v in &s.samples {
                h.record_ns(v);
            }
        }
        for (name, &count) in self.crit.borrow().iter() {
            registry.counter(name.clone()).add(count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = OpTracer::default();
        assert!(t.begin(0, "rkv", "get", 0).is_none());
        t.stamp(None, "net_in", 5);
        assert!(t.finish(None).is_none());
        t.note_critical("x");
        assert_eq!(t.finished_ops(), 0);
        assert!(t.decomposition_json().contains("\"series\": {\n  }"));
    }

    #[test]
    fn stage_sums_telescope_exactly() {
        let t = OpTracer::default();
        t.enable();
        let op = t.begin(100, "rkv", "get", 0);
        t.stamp(op, "client_queue", 150);
        t.stamp(op, "net_in", 400);
        t.stamp(op, "service", 1900);
        t.stamp(op, "net_back", 2300);
        let f = t.finish(op).unwrap();
        assert_eq!(f.e2e_ns, 2200);
        assert_eq!(f.stages.iter().map(|&(_, d)| d).sum::<u64>(), f.e2e_ns);
        assert_eq!(f.dominant_stage(), Some(("service", 1500)));
        let r = t.reconcile("rkv", "get").unwrap();
        assert!(r.exact());
        assert_eq!(r.ops, 1);
        assert_eq!(r.e2e_sum_ns, 2200);
    }

    #[test]
    #[should_panic(expected = "before previous stamp")]
    fn non_monotone_stamp_panics() {
        let t = OpTracer::default();
        t.enable();
        let op = t.begin(100, "rkv", "get", 0);
        t.stamp(op, "back_in_time", 99);
    }

    #[test]
    fn aborted_ops_leave_no_samples() {
        let t = OpTracer::default();
        t.enable();
        let op = t.begin(0, "rkv", "set", 0);
        t.stamp(op, "client_queue", 10);
        t.abort(op);
        assert_eq!(t.aborted_ops(), 1);
        assert_eq!(t.live_ops(), 0);
        assert!(t.series_stats("rkv.lat.set.e2e").is_none());
        // a stamp after abort is silently dropped, not a panic
        t.stamp(op, "late", 20);
    }

    #[test]
    fn annotations_and_tenant_series() {
        let t = OpTracer::default();
        t.enable();
        let op = t.begin(0, "rkv", "get", 7);
        t.annotate_server(op, 3);
        t.annotate_shard(op, 1);
        t.stamp(op, "service", 500);
        t.finish(op).unwrap();
        assert_eq!(t.series_stats("rkv.lat.get.server3.e2e"), Some((1, 500)));
        assert_eq!(t.series_stats("rkv.lat.get.shard1.service"), Some((1, 500)));
        assert_eq!(t.series_stats("rkv.lat.get.tenant7.e2e"), Some((1, 500)));
    }

    #[test]
    fn decomposition_json_is_deterministic_and_publishable() {
        let run = || {
            let t = OpTracer::default();
            t.enable();
            for i in 0..10u64 {
                let op = t.begin(i * 100, "bb", "read_group", 0);
                t.stamp(op, "kv_fetch", i * 100 + 40);
                t.stamp(op, "cpu", i * 100 + 90);
                t.finish(op);
            }
            t.note_critical("bb.critpath.read_group.kv_fetch");
            t
        };
        let a = run();
        let b = run();
        assert_eq!(a.decomposition_json(), b.decomposition_json());
        let r = Registry::default();
        a.publish(&r);
        let snap = r.snapshot();
        assert_eq!(snap.counter("bb.critpath.read_group.kv_fetch"), 1);
        match snap.get("bb.lat.read_group.e2e") {
            Some(crate::telemetry::MetricValue::Histogram(h)) => assert_eq!(h.count(), 10),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exact_percentiles_are_nearest_rank() {
        let t = OpTracer::default();
        t.enable();
        for i in 1..=100u64 {
            let op = t.begin(0, "rkv", "get", 0);
            t.stamp(op, "service", i);
            t.finish(op);
        }
        assert_eq!(t.series_percentile("rkv.lat.get.e2e", 50.0), 50);
        assert_eq!(t.series_percentile("rkv.lat.get.e2e", 99.0), 99);
        assert_eq!(t.series_percentile("rkv.lat.get.e2e", 99.9), 100);
    }
}
