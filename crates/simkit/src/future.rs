//! Small future combinators used by the simulation code: racing two
//! futures, timeouts against virtual time, and joining handles.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

use crate::executor::Sim;

/// Outcome of [`race`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Run two futures concurrently; resolve with whichever finishes first and
/// drop the loser. Ties go to the left future (polled first).
pub fn race<A, B>(a: A, b: B) -> Race<A, B>
where
    A: Future,
    B: Future,
{
    Race {
        a: Box::pin(a),
        b: Box::pin(b),
    }
}

/// Future returned by [`race`].
pub struct Race<A: Future, B: Future> {
    a: Pin<Box<A>>,
    b: Pin<Box<B>>,
}

impl<A: Future, B: Future> Future for Race<A, B> {
    type Output = Either<A::Output, B::Output>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = self.a.as_mut().poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = self.b.as_mut().poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

/// Run `fut` with a virtual-time deadline. Returns `None` on timeout (the
/// future is dropped, cancelling whatever it was doing).
pub async fn timeout<F: Future>(sim: &Sim, limit: Duration, fut: F) -> Option<F::Output> {
    match race(fut, sim.sleep(limit)).await {
        Either::Left(v) => Some(v),
        Either::Right(()) => None,
    }
}

/// Await every future in `futs`, returning outputs in input order.
///
/// Drives all futures concurrently (each is spawned on `sim`), so total
/// virtual time is the max, not the sum.
pub async fn join_all<F>(sim: &Sim, futs: Vec<F>) -> Vec<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let handles: Vec<_> = futs.into_iter().map(|f| sim.spawn(f)).collect();
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{dur, Time};

    #[test]
    fn race_picks_earlier_finisher() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let fast = async {
                s.sleep(dur::ms(1)).await;
                "fast"
            };
            let slow = async {
                s.sleep(dur::ms(100)).await;
                "slow"
            };
            race(slow, fast).await
        });
        assert_eq!(out, Either::Right("fast"));
        // loser's 100ms timer was cancelled: clock stops at 1ms
        assert_eq!(sim.now(), Time::from_millis(1));
    }

    #[test]
    fn race_tie_prefers_left() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let a = s.sleep(dur::ms(5));
            let b = s.sleep(dur::ms(5));
            race(a, b).await
        });
        assert_eq!(out, Either::Left(()));
    }

    #[test]
    fn timeout_expires() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            timeout(&s, dur::ms(10), async {
                s.sleep(dur::secs(5)).await;
                1u32
            })
            .await
        });
        assert_eq!(out, None);
        assert_eq!(sim.now(), Time::from_millis(10));
    }

    #[test]
    fn timeout_passes_through_fast_result() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            timeout(&s, dur::secs(10), async {
                s.sleep(dur::ms(1)).await;
                7u32
            })
            .await
        });
        assert_eq!(out, Some(7));
    }

    #[test]
    fn join_all_is_concurrent() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let futs: Vec<_> = (1..=4u64)
                .map(|i| {
                    let s = s.clone();
                    async move {
                        s.sleep(dur::ms(i * 10)).await;
                        i
                    }
                })
                .collect();
            let res = join_all(&s, futs).await;
            (res, s.now())
        });
        // outputs in input order, elapsed = max (40ms) not sum (100ms)
        assert_eq!(out.0, vec![1, 2, 3, 4]);
        assert_eq!(out.1, Time::from_millis(40));
    }

    #[test]
    fn join_all_empty() {
        let sim = Sim::new();
        let s = sim.clone();
        let out =
            sim.block_on(async move { join_all(&s, Vec::<crate::executor::Sleep>::new()).await });
        assert!(out.is_empty());
    }
}
