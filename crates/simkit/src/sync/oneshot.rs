//! Single-producer single-consumer one-value channel, the building block
//! for RPC reply paths.

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Shared<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_dropped: bool,
    receiver_dropped: bool,
}

/// Sending half; consumed by [`Sender::send`].
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Receiving half; a future resolving to `Ok(value)` or [`RecvError`] if the
/// sender was dropped without sending.
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// The sender was dropped before sending a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("oneshot sender dropped without sending")
    }
}
impl std::error::Error for RecvError {}

/// Create a connected oneshot pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        value: None,
        waker: None,
        sender_dropped: false,
        receiver_dropped: false,
    }));
    (
        Sender {
            shared: Rc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send `value` to the receiver. Returns `Err(value)` if the receiver
    /// was already dropped.
    pub fn send(self, value: T) -> Result<(), T> {
        let mut sh = self.shared.borrow_mut();
        if sh.receiver_dropped {
            return Err(value);
        }
        sh.value = Some(value);
        if let Some(w) = sh.waker.take() {
            w.wake();
        }
        Ok(())
    }

    /// Whether the receiving half is still alive.
    pub fn is_open(&self) -> bool {
        !self.shared.borrow().receiver_dropped
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut sh = self.shared.borrow_mut();
        sh.sender_dropped = true;
        if let Some(w) = sh.waker.take() {
            w.wake();
        }
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut sh = self.shared.borrow_mut();
        if let Some(v) = sh.value.take() {
            return Poll::Ready(Ok(v));
        }
        if sh.sender_dropped {
            return Poll::Ready(Err(RecvError));
        }
        sh.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.borrow_mut().receiver_dropped = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::dur;

    #[test]
    fn send_then_receive() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(dur::ms(5)).await;
            tx.send(7).unwrap();
        });
        let got = sim.block_on(rx);
        assert_eq!(got, Ok(7));
    }

    #[test]
    fn receive_before_send_suspends() {
        let sim = Sim::new();
        let (tx, rx) = channel::<&'static str>();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let v = rx.await.unwrap();
            (v, s.now())
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(dur::secs(2)).await;
            tx.send("late").unwrap();
        });
        sim.run();
        let (v, t) = h.try_take().unwrap();
        assert_eq!(v, "late");
        assert_eq!(t, crate::time::Time::from_secs(2));
    }

    #[test]
    fn dropped_sender_yields_error() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        drop(tx);
        assert_eq!(sim.block_on(rx), Err(RecvError));
    }

    #[test]
    fn dropped_receiver_rejects_send() {
        let (tx, rx) = channel::<u32>();
        assert!(tx.is_open());
        drop(rx);
        let (tx2, rx2) = channel::<u32>();
        drop(rx2);
        assert!(!tx2.is_open());
        assert_eq!(tx2.send(1), Err(1));
        let _ = tx;
    }
}
