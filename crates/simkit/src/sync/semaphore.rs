//! Async counting semaphore with FIFO fairness — the primitive behind
//! bounded thread pools, connection limits, and admission control in the
//! simulated servers.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Waiter {
    want: usize,
    waker: Option<Waker>,
    granted: bool,
    abandoned: bool,
}

struct Inner {
    permits: usize,
    waiters: VecDeque<Rc<RefCell<Waiter>>>,
}

impl Inner {
    /// Grant permits to waiters strictly in FIFO order; a large request at
    /// the head blocks smaller ones behind it (no starvation).
    fn drain(&mut self) {
        while let Some(front) = self.waiters.front() {
            let mut w = front.borrow_mut();
            if w.abandoned {
                drop(w);
                self.waiters.pop_front();
                continue;
            }
            if w.want > self.permits {
                break;
            }
            self.permits -= w.want;
            w.granted = true;
            if let Some(wk) = w.waker.take() {
                wk.wake();
            }
            drop(w);
            self.waiters.pop_front();
        }
    }
}

/// FIFO-fair async counting semaphore.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<Inner>>,
}

impl Semaphore {
    /// Create with `permits` initially available.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(Inner {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Acquire one permit.
    pub fn acquire(&self) -> Acquire {
        self.acquire_many(1)
    }

    /// Acquire `n` permits atomically (all-or-nothing, FIFO order).
    pub fn acquire_many(&self, n: usize) -> Acquire {
        Acquire {
            sem: self.clone(),
            want: n,
            waiter: None,
        }
    }

    /// Try to acquire one permit without waiting.
    pub fn try_acquire(&self) -> Option<Permit> {
        let mut inner = self.inner.borrow_mut();
        // respect FIFO: queued waiters go first
        if inner.waiters.is_empty() && inner.permits >= 1 {
            inner.permits -= 1;
            Some(Permit {
                sem: self.clone(),
                count: 1,
            })
        } else {
            None
        }
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.inner.borrow().permits
    }

    /// Number of queued waiters.
    pub fn queued(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    /// Add `n` permits (e.g. to model capacity growth).
    pub fn release_extra(&self, n: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.permits += n;
        inner.drain();
    }

    fn give_back(&self, n: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.permits += n;
        inner.drain();
    }
}

/// RAII guard: permits return to the semaphore on drop.
pub struct Permit {
    sem: Semaphore,
    count: usize,
}

impl Permit {
    /// Number of permits held by this guard.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Release without waiting for scope end.
    pub fn release(self) {}

    /// Forget the permits (they are permanently consumed), e.g. to model a
    /// failed node taking its capacity with it.
    pub fn forget(mut self) {
        self.count = 0;
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.count > 0 {
            self.sem.give_back(self.count);
        }
    }
}

/// Future returned by [`Semaphore::acquire`] / [`Semaphore::acquire_many`].
pub struct Acquire {
    sem: Semaphore,
    want: usize,
    waiter: Option<Rc<RefCell<Waiter>>>,
}

impl Future for Acquire {
    type Output = Permit;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        // fast path or already-granted path
        if let Some(w) = &self.waiter {
            let mut wb = w.borrow_mut();
            if wb.granted {
                wb.granted = false; // permit handed to the guard below
                drop(wb);
                self.waiter = None;
                return Poll::Ready(Permit {
                    sem: self.sem.clone(),
                    count: self.want,
                });
            }
            wb.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let mut inner = self.sem.inner.borrow_mut();
        if inner.waiters.is_empty() && inner.permits >= self.want {
            inner.permits -= self.want;
            drop(inner);
            return Poll::Ready(Permit {
                sem: self.sem.clone(),
                count: self.want,
            });
        }
        let waiter = Rc::new(RefCell::new(Waiter {
            want: self.want,
            waker: Some(cx.waker().clone()),
            granted: false,
            abandoned: false,
        }));
        inner.waiters.push_back(Rc::clone(&waiter));
        drop(inner);
        self.waiter = Some(waiter);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(w) = &self.waiter {
            let mut wb = w.borrow_mut();
            if wb.granted {
                // granted between last poll and drop: return the permits
                drop(wb);
                self.sem.give_back(self.want);
            } else {
                wb.abandoned = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::{dur, Time};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn uncontended_acquire_is_immediate() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let s = sim.clone();
        sim.block_on(async move {
            let p1 = sem.acquire().await;
            let p2 = sem.acquire().await;
            assert_eq!(s.now(), Time::ZERO);
            assert_eq!(sem.available(), 0);
            drop((p1, p2));
            assert_eq!(sem.available(), 2);
        });
    }

    #[test]
    fn contended_acquire_waits_for_release() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let sem = sem.clone();
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                let p = sem.acquire().await;
                order.borrow_mut().push((i, s.now()));
                s.sleep(dur::ms(10)).await;
                drop(p);
            });
        }
        sim.run();
        let o = order.borrow();
        assert_eq!(o[0], (0, Time::ZERO));
        assert_eq!(o[1], (1, Time::from_millis(10)));
        assert_eq!(o[2], (2, Time::from_millis(20)));
    }

    #[test]
    fn acquire_many_is_atomic_and_fifo() {
        let sim = Sim::new();
        let sem = Semaphore::new(4);
        let order = Rc::new(RefCell::new(Vec::new()));
        // big request first so it must not be starved by small ones
        let grabs = [(0u32, 4usize), (1, 3), (2, 1)];
        for (i, n) in grabs {
            let sem = sem.clone();
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                // stagger submission so the queue order is 0,1,2
                s.sleep(dur::us(i as u64)).await;
                let p = sem.acquire_many(n).await;
                order.borrow_mut().push(i);
                s.sleep(dur::ms(1)).await;
                drop(p);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let sem2 = sem.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let _p = sem2.acquire().await;
            s.sleep(dur::ms(5)).await;
        });
        let sem3 = sem.clone();
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(dur::ms(1)).await;
            // held by the first task
            assert!(sem3.try_acquire().is_none());
        });
        sim.run();
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn forget_consumes_capacity() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        sim.block_on({
            let sem = sem.clone();
            async move {
                let p = sem.acquire().await;
                p.forget();
            }
        });
        assert_eq!(sem.available(), 1);
        sem.release_extra(1);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn dropped_waiter_does_not_deadlock_queue() {
        let sim = Sim::new();
        let sem = Semaphore::new(0);
        // waiter that gives up: acquire future dropped before grant
        {
            let sem = sem.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let acq = sem.acquire();
                // poll once then drop via select-with-timeout pattern
                let timeout = s.sleep(dur::ms(1));
                crate::future::race(acq, timeout).await;
            });
        }
        let winner = Rc::new(RefCell::new(false));
        {
            let sem = sem.clone();
            let s = sim.clone();
            let w = Rc::clone(&winner);
            sim.spawn(async move {
                s.sleep(dur::ms(2)).await;
                sem.release_extra(1);
                let _p = sem.acquire().await;
                *w.borrow_mut() = true;
            });
        }
        sim.run();
        assert!(*winner.borrow(), "abandoned waiter blocked the queue");
    }
}
