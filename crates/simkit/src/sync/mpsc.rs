//! Multi-producer single-consumer channels: the mailbox primitive for
//! simulated servers (NameNode, DataNodes, KV servers, OSSes …).
//!
//! Both unbounded and bounded flavours are provided. The bounded flavour
//! applies backpressure: `send` suspends while the queue is full, which is
//! how admission control and flow control are modeled.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Shared<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    recv_waker: Option<Waker>,
    send_wakers: VecDeque<Waker>,
    senders: usize,
    receiver_alive: bool,
}

impl<T> Shared<T> {
    fn wake_receiver(&mut self) {
        if let Some(w) = self.recv_waker.take() {
            w.wake();
        }
    }
    fn wake_one_sender(&mut self) {
        if let Some(w) = self.send_wakers.pop_front() {
            w.wake();
        }
    }
}

/// Sending half. Clonable (multi-producer).
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Receiving half (single consumer).
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// All senders were dropped and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// The receiver was dropped; carries the undeliverable message back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}
impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("channel closed: all senders dropped")
    }
}
impl std::error::Error for RecvError {}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded channel with capacity `cap` (> 0). `send` suspends
/// while full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded channel capacity must be > 0");
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        queue: VecDeque::new(),
        capacity,
        recv_waker: None,
        send_wakers: VecDeque::new(),
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            shared: Rc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.borrow_mut().senders += 1;
        Sender {
            shared: Rc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut sh = self.shared.borrow_mut();
        sh.senders -= 1;
        if sh.senders == 0 {
            sh.wake_receiver();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut sh = self.shared.borrow_mut();
        sh.receiver_alive = false;
        // unblock every pending bounded send so they observe the closure
        while let Some(w) = sh.send_wakers.pop_front() {
            w.wake();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue without waiting. Fails if the receiver is gone; panics if the
    /// channel is bounded and full (use [`Sender::send`] for backpressure).
    pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
        let mut sh = self.shared.borrow_mut();
        if !sh.receiver_alive {
            return Err(SendError(value));
        }
        if let Some(cap) = sh.capacity {
            assert!(
                sh.queue.len() < cap,
                "try_send on a full bounded channel; use send().await"
            );
        }
        sh.queue.push_back(value);
        sh.wake_receiver();
        Ok(())
    }

    /// Enqueue, suspending while a bounded channel is full.
    pub fn send(&self, value: T) -> SendFuture<'_, T> {
        SendFuture {
            sender: self,
            value: Some(value),
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the receiving half is still alive.
    pub fn is_open(&self) -> bool {
        self.shared.borrow().receiver_alive
    }
}

/// Future returned by [`Sender::send`].
pub struct SendFuture<'a, T> {
    sender: &'a Sender<T>,
    value: Option<T>,
}

// No field is structurally pinned, so the future is freely movable.
impl<T> Unpin for SendFuture<'_, T> {}

impl<T> Future for SendFuture<'_, T> {
    type Output = Result<(), SendError<T>>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut sh = this.sender.shared.borrow_mut();
        if !sh.receiver_alive {
            let v = this.value.take().expect("polled after completion");
            return Poll::Ready(Err(SendError(v)));
        }
        if let Some(cap) = sh.capacity {
            if sh.queue.len() >= cap {
                sh.send_wakers.push_back(cx.waker().clone());
                return Poll::Pending;
            }
        }
        let v = this.value.take().expect("polled after completion");
        sh.queue.push_back(v);
        sh.wake_receiver();
        Poll::Ready(Ok(()))
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next message, suspending while empty. Resolves to
    /// `Err(RecvError)` once all senders are dropped and the queue drains.
    pub fn recv(&mut self) -> RecvFuture<'_, T> {
        RecvFuture { receiver: self }
    }

    /// Dequeue without waiting.
    pub fn try_recv(&mut self) -> Option<T> {
        let mut sh = self.shared.borrow_mut();
        let v = sh.queue.pop_front();
        if v.is_some() {
            sh.wake_one_sender();
        }
        v
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct RecvFuture<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut sh = self.receiver.shared.borrow_mut();
        if let Some(v) = sh.queue.pop_front() {
            sh.wake_one_sender();
            return Poll::Ready(Ok(v));
        }
        if sh.senders == 0 {
            return Poll::Ready(Err(RecvError));
        }
        sh.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::dur;
    use std::cell::RefCell;

    #[test]
    fn fifo_ordering() {
        let sim = Sim::new();
        let (tx, mut rx) = unbounded::<u32>();
        for i in 0..5 {
            tx.try_send(i).unwrap();
        }
        let got = sim.block_on(async move {
            let mut v = Vec::new();
            for _ in 0..5 {
                v.push(rx.recv().await.unwrap());
            }
            v
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_suspends_until_send() {
        let sim = Sim::new();
        let (tx, mut rx) = unbounded::<u64>();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(dur::ms(3)).await;
            tx.try_send(99).unwrap();
        });
        let s2 = sim.clone();
        let out = sim.block_on(async move {
            let v = rx.recv().await.unwrap();
            (v, s2.now())
        });
        assert_eq!(out, (99, crate::time::Time::from_millis(3)));
    }

    #[test]
    fn closed_when_all_senders_drop() {
        let sim = Sim::new();
        let (tx, mut rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.try_send(1).unwrap();
        drop(tx);
        drop(tx2);
        let out = sim.block_on(async move {
            let first = rx.recv().await;
            let second = rx.recv().await;
            (first, second)
        });
        assert_eq!(out, (Ok(1), Err(RecvError)));
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let sim = Sim::new();
        let (tx, mut rx) = bounded::<u32>(2);
        let sent_times = std::rc::Rc::new(RefCell::new(Vec::new()));
        let st = std::rc::Rc::clone(&sent_times);
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..4 {
                tx.send(i).await.unwrap();
                st.borrow_mut().push((i, s.now()));
            }
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(dur::ms(10)).await;
            for _ in 0..4 {
                let _ = rx.recv().await;
                s2.sleep(dur::ms(10)).await;
            }
        });
        sim.run();
        let times = sent_times.borrow();
        // first two fit in the buffer at t=0; the rest wait for drains
        assert_eq!(times[0].1, crate::time::Time::ZERO);
        assert_eq!(times[1].1, crate::time::Time::ZERO);
        assert!(times[2].1 >= crate::time::Time::from_millis(10));
        assert!(times[3].1 >= crate::time::Time::from_millis(20));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let sim = Sim::new();
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        let r = sim.block_on(async move { tx.send(5).await });
        assert_eq!(r, Err(SendError(5)));
    }

    #[test]
    fn pending_bounded_send_unblocked_by_receiver_drop() {
        let sim = Sim::new();
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(0).unwrap();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(dur::ms(1)).await;
            drop(rx);
        });
        let r = sim.block_on(async move { tx.send(1).await });
        assert_eq!(r, Err(SendError(1)));
    }

    #[test]
    fn try_recv_nonblocking() {
        let (tx, mut rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), None);
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Some(3));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn multi_producer_interleaving_is_arrival_ordered() {
        let sim = Sim::new();
        let (tx, mut rx) = unbounded::<(u32, u64)>();
        for prod in 0..3u32 {
            let tx = tx.clone();
            let s = sim.clone();
            sim.spawn(async move {
                for k in 0..3u64 {
                    s.sleep(dur::ms(k * 3 + prod as u64)).await;
                    tx.try_send((prod, k)).unwrap();
                }
            });
        }
        drop(tx);
        let got = sim.block_on(async move {
            let mut v = Vec::new();
            while let Ok(m) = rx.recv().await {
                v.push(m);
            }
            v
        });
        assert_eq!(got.len(), 9);
        // arrival order == timestamp order (cumulative delays: prod p item k at p + sum...)
        // just check the first arrival is producer 0's first message
        assert_eq!(got[0], (0, 0));
    }
}
