//! Deterministic fault injection: scripted, seeded failure scenarios.
//!
//! A [`FaultPlan`] is a virtual-time-scheduled script of fault events —
//! node crash/restart, link down/up/flap, per-edge RPC loss and delay,
//! per-node slowdown — built once and installed on a [`Sim`] with
//! [`Sim::install_faults`](crate::Sim::install_faults). The plan drives a
//! single spawned task that applies each event at its scheduled instant;
//! components observe faults through the [`FaultInjector`] the simulation
//! owns:
//!
//! - **Node events** (crash/restart/link transitions) are fanned out to
//!   hooks registered with [`FaultInjector::on_node_event`]. The network
//!   fabric maps them to port up/down; a KV server maps `Crash` to "wipe
//!   the in-memory store" (a restarted memcached comes back empty).
//! - **Edge rules** (loss probability, extra delay) and **node slowdown
//!   factors** are polled by the fabric on every transfer through
//!   [`FaultInjector::transfer_fault`].
//!
//! Determinism: the injector owns a [`SimRng`] seeded from the plan, so
//! probabilistic drops are a pure function of (plan, seed, traffic order).
//! Every applied event is recorded in a timeline
//! ([`FaultInjector::timeline`]) that tests compare across same-seed runs.
//!
//! Hooks registered by components must capture [`std::rc::Weak`] handles —
//! the injector lives as long as the simulation, and strong captures would
//! leak the component (same rule as sampled metrics closures).

use std::cell::RefCell;
use std::time::Duration;

use crate::rng::SimRng;
use crate::time::Time;

/// What happened to a node, as delivered to [`FaultInjector::on_node_event`]
/// hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEventKind {
    /// Process died: volatile state is lost and the node's ports go down.
    Crash,
    /// Process restarted (empty-state) and the node's ports come back up.
    Restart,
    /// Network link lost; the process keeps running (state survives).
    LinkDown,
    /// Network link restored.
    LinkUp,
}

/// A node-scoped fault delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeEvent {
    /// Index of the affected fabric node.
    pub node: u32,
    /// What happened.
    pub kind: NodeEventKind,
}

/// One scripted fault, scheduled at an offset from plan installation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Kill a node: hooks see [`NodeEventKind::Crash`].
    Crash {
        /// Target fabric node index.
        node: u32,
    },
    /// Bring a crashed node back: hooks see [`NodeEventKind::Restart`].
    Restart {
        /// Target fabric node index.
        node: u32,
    },
    /// Take a node's link down without killing the process.
    LinkDown {
        /// Target fabric node index.
        node: u32,
    },
    /// Restore a node's link.
    LinkUp {
        /// Target fabric node index.
        node: u32,
    },
    /// `count` down/up cycles: down for `down`, then up for the rest of
    /// `period`. Expanded into [`FaultEvent::LinkDown`]/[`FaultEvent::LinkUp`]
    /// pairs at install time.
    LinkFlap {
        /// Target fabric node index.
        node: u32,
        /// Number of down/up cycles.
        count: u32,
        /// How long the link stays down each cycle.
        down: Duration,
        /// Full cycle length (must be ≥ `down`).
        period: Duration,
    },
    /// Multiply a node's effective transfer bandwidth by `factor`
    /// (e.g. `0.1` = an OSS served at a tenth of its rate). `1.0` clears.
    Degrade {
        /// Target fabric node index.
        node: u32,
        /// Bandwidth multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Add fixed latency to transfers matching the edge filter.
    Delay {
        /// Source node filter (`None` = any source).
        src: Option<u32>,
        /// Destination node filter (`None` = any destination).
        dst: Option<u32>,
        /// Extra one-way latency per transfer.
        extra: Duration,
    },
    /// Drop transfers matching the edge filter with probability `p`.
    Loss {
        /// Source node filter (`None` = any source).
        src: Option<u32>,
        /// Destination node filter (`None` = any destination).
        dst: Option<u32>,
        /// Per-transfer drop probability in `[0, 1]`.
        p: f64,
    },
    /// Flip one byte in each value resident on `node` with probability
    /// `p` — a one-shot at-rest corruption sweep (bit rot, a DMA stray
    /// write) delivered to [`FaultInjector::on_corrupt_sweep`] hooks.
    /// Per-value selection and byte/bit choice draw from the plan's
    /// seeded RNG, so the damaged set is a pure function of (plan, seed,
    /// resident keys).
    CorruptValue {
        /// Target fabric node index.
        node: u32,
        /// Per-resident-value corruption probability in `[0, 1]`.
        p: f64,
    },
    /// From now on, flip one byte of payloads moved over matching edges
    /// with probability `p` per transfer (in-transit corruption; polled
    /// by the RDMA layer via [`FaultInjector::corrupt_transfer`]).
    CorruptTransfer {
        /// Source node filter (`None` = any source).
        src: Option<u32>,
        /// Destination node filter (`None` = any destination).
        dst: Option<u32>,
        /// Per-transfer corruption probability in `[0, 1]`.
        p: f64,
    },
    /// From now on, flip one byte of each object commit on storage node
    /// `node` with probability `p` — at-commit damage (a torn or stray
    /// DMA write as the server persists), polled by the storage layer via
    /// [`FaultInjector::corrupt_commit`]. Distinct from
    /// [`FaultEvent::CorruptTransfer`] (in-transit, RDMA layer) and
    /// [`FaultEvent::CorruptValue`] (at-rest, after a clean commit).
    CorruptCommit {
        /// Target fabric node index (the storage server).
        node: u32,
        /// Per-commit corruption probability in `[0, 1]`.
        p: f64,
    },
    /// Remove all edge rules (loss + delay + transfer corruption), commit
    /// corruption rules, and slowdown factors.
    ClearEdges,
    /// Admit a standby KV server on `node` to the membership ring
    /// (delivered to [`FaultInjector::on_membership`] hooks; the burst
    /// buffer maps it to an epoch bump plus background rebalancing).
    AddServer {
        /// Fabric node index of the joining server.
        node: u32,
    },
    /// Take the KV server on `node` off the membership ring. The process
    /// keeps running and keeps serving index-addressed reads while its
    /// chunks migrate away (delivered to [`FaultInjector::on_membership`]
    /// hooks).
    DrainServer {
        /// Fabric node index of the draining server.
        node: u32,
    },
}

/// How a [`MembershipEvent`] changes the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// The node's server joins the ring.
    Join,
    /// The node's server leaves the ring (but stays up for migration).
    Drain,
}

/// A membership-scoped fault delivery, fanned out to
/// [`FaultInjector::on_membership`] hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// Fabric node index of the affected server.
    pub node: u32,
    /// Whether the server joins or drains.
    pub change: MembershipChange,
}

impl FaultEvent {
    /// The node-hook delivery this event maps to, if any.
    fn node_event(&self) -> Option<NodeEvent> {
        let (node, kind) = match *self {
            FaultEvent::Crash { node } => (node, NodeEventKind::Crash),
            FaultEvent::Restart { node } => (node, NodeEventKind::Restart),
            FaultEvent::LinkDown { node } => (node, NodeEventKind::LinkDown),
            FaultEvent::LinkUp { node } => (node, NodeEventKind::LinkUp),
            _ => return None,
        };
        Some(NodeEvent { node, kind })
    }

    /// The membership-hook delivery this event maps to, if any.
    fn membership_event(&self) -> Option<MembershipEvent> {
        let (node, change) = match *self {
            FaultEvent::AddServer { node } => (node, MembershipChange::Join),
            FaultEvent::DrainServer { node } => (node, MembershipChange::Drain),
            _ => return None,
        };
        Some(MembershipEvent { node, change })
    }
}

/// A seeded, ordered script of [`FaultEvent`]s at virtual-time offsets.
///
/// Build with [`FaultPlan::new`] + [`FaultPlan::at`], then install via
/// [`Sim::install_faults`](crate::Sim::install_faults). Offsets are
/// relative to the installation instant. Events at equal offsets apply in
/// insertion order.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<(Duration, FaultEvent)>,
}

impl FaultPlan {
    /// Empty plan with the RNG seed probabilistic events will draw from.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Schedule `event` at `offset` after installation (builder-style).
    pub fn at(mut self, offset: Duration, event: FaultEvent) -> Self {
        self.events.push((offset, event));
        self
    }

    /// RNG seed for probabilistic events.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of scripted events (before flap expansion).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan scripts no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Expand flaps and stable-sort by offset (ties keep insertion order).
    pub(crate) fn expand(&self) -> Vec<(Duration, FaultEvent)> {
        let mut out = Vec::with_capacity(self.events.len());
        for &(offset, ev) in &self.events {
            if let FaultEvent::LinkFlap {
                node,
                count,
                down,
                period,
            } = ev
            {
                let period = period.max(down);
                for i in 0..count {
                    let base = offset + period * i;
                    out.push((base, FaultEvent::LinkDown { node }));
                    out.push((base + down, FaultEvent::LinkUp { node }));
                }
            } else {
                out.push((offset, ev));
            }
        }
        out.sort_by_key(|&(offset, _)| offset);
        out
    }
}

/// One applied event in the injector's timeline (for determinism checks
/// and recovery reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedEvent {
    /// Virtual instant the event was applied.
    pub at: Time,
    /// The (flap-expanded) event.
    pub event: FaultEvent,
}

/// An active per-edge rule: drop with probability `p`, delay by `extra`.
#[derive(Debug, Clone, Copy)]
struct EdgeRule {
    src: Option<u32>,
    dst: Option<u32>,
    p: f64,
    extra: Duration,
}

impl EdgeRule {
    fn matches(&self, src: u32, dst: u32) -> bool {
        self.src.is_none_or(|s| s == src) && self.dst.is_none_or(|d| d == dst)
    }
}

/// What the fabric must do to one transfer, combined over all active rules.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransferFault {
    /// Drop the transfer (after charging overhead + latency).
    pub drop: bool,
    /// Additional one-way latency.
    pub extra_delay: Duration,
    /// Bandwidth multiplier in `(0, 1]` (`1.0` = unimpaired).
    pub bandwidth_factor: f64,
}

/// An active edge-corruption rule installed by
/// [`FaultEvent::CorruptTransfer`].
#[derive(Debug, Clone, Copy)]
struct CorruptRule {
    src: Option<u32>,
    dst: Option<u32>,
    p: f64,
}

impl CorruptRule {
    fn matches(&self, src: u32, dst: u32) -> bool {
        self.src.is_none_or(|s| s == src) && self.dst.is_none_or(|d| d == dst)
    }
}

type NodeEventHook = Box<dyn Fn(NodeEvent)>;
type CorruptSweepHook = Box<dyn Fn(u32, f64, &SimRng)>;
type MembershipHook = Box<dyn Fn(MembershipEvent)>;

/// Per-simulation fault state: hooks, active rules, RNG, and the applied
/// timeline. Owned by the [`Sim`](crate::Sim); components reach it through
/// [`Sim::faults`](crate::Sim::faults).
#[derive(Default)]
pub struct FaultInjector {
    rng: RefCell<Option<SimRng>>,
    hooks: RefCell<Vec<NodeEventHook>>,
    corrupt_hooks: RefCell<Vec<CorruptSweepHook>>,
    membership_hooks: RefCell<Vec<MembershipHook>>,
    rules: RefCell<Vec<EdgeRule>>,
    corrupt_rules: RefCell<Vec<CorruptRule>>,
    /// Active [`FaultEvent::CorruptCommit`] rules: `(node, p)`.
    commit_rules: RefCell<Vec<(u32, f64)>>,
    slow: RefCell<Vec<(u32, f64)>>,
    timeline: RefCell<Vec<AppliedEvent>>,
}

impl FaultInjector {
    /// Register a node-event hook. Called synchronously for every
    /// crash/restart/link event, in registration order. The closure must
    /// capture only `Weak` handles (see module docs).
    pub fn on_node_event(&self, hook: impl Fn(NodeEvent) + 'static) {
        self.hooks.borrow_mut().push(Box::new(hook));
    }

    /// Register an at-rest corruption hook, called synchronously for every
    /// applied [`FaultEvent::CorruptValue`] with `(node, p, rng)`. The
    /// component owning state on `node` walks its resident values in a
    /// deterministic order, drawing selection and byte/bit choices from
    /// `rng` (a shared-stream clone of the plan RNG). The closure must
    /// capture only `Weak` handles (see module docs).
    pub fn on_corrupt_sweep(&self, hook: impl Fn(u32, f64, &SimRng) + 'static) {
        self.corrupt_hooks.borrow_mut().push(Box::new(hook));
    }

    /// Register a membership hook, called synchronously for every applied
    /// [`FaultEvent::AddServer`] / [`FaultEvent::DrainServer`], in
    /// registration order. The closure must capture only `Weak` handles
    /// (see module docs).
    pub fn on_membership(&self, hook: impl Fn(MembershipEvent) + 'static) {
        self.membership_hooks.borrow_mut().push(Box::new(hook));
    }

    /// Reseed the RNG and clear rules + timeline (called on plan install).
    pub(crate) fn arm(&self, seed: u64) {
        *self.rng.borrow_mut() = Some(SimRng::seed_from(seed));
        self.rules.borrow_mut().clear();
        self.corrupt_rules.borrow_mut().clear();
        self.commit_rules.borrow_mut().clear();
        self.slow.borrow_mut().clear();
        self.timeline.borrow_mut().clear();
    }

    /// Apply one event now: update rules/slowdowns and fan out node events.
    pub(crate) fn apply(&self, at: Time, event: FaultEvent) {
        self.timeline.borrow_mut().push(AppliedEvent { at, event });
        match event {
            FaultEvent::Degrade { node, factor } => {
                let mut slow = self.slow.borrow_mut();
                slow.retain(|&(n, _)| n != node);
                if factor < 1.0 {
                    slow.push((node, factor.max(1e-6)));
                }
            }
            FaultEvent::Delay { src, dst, extra } => {
                self.rules.borrow_mut().push(EdgeRule {
                    src,
                    dst,
                    p: 0.0,
                    extra,
                });
            }
            FaultEvent::Loss { src, dst, p } => {
                self.rules.borrow_mut().push(EdgeRule {
                    src,
                    dst,
                    p: p.clamp(0.0, 1.0),
                    extra: Duration::ZERO,
                });
            }
            FaultEvent::CorruptTransfer { src, dst, p } => {
                self.corrupt_rules.borrow_mut().push(CorruptRule {
                    src,
                    dst,
                    p: p.clamp(0.0, 1.0),
                });
            }
            FaultEvent::CorruptValue { node, p } => {
                let rng = self.rng.borrow().clone();
                if let Some(rng) = rng {
                    let p = p.clamp(0.0, 1.0);
                    // same borrow-across-delivery rule as node-event hooks
                    for hook in self.corrupt_hooks.borrow().iter() {
                        hook(node, p, &rng);
                    }
                }
            }
            FaultEvent::CorruptCommit { node, p } => {
                self.commit_rules
                    .borrow_mut()
                    .push((node, p.clamp(0.0, 1.0)));
            }
            FaultEvent::ClearEdges => {
                self.rules.borrow_mut().clear();
                self.corrupt_rules.borrow_mut().clear();
                self.commit_rules.borrow_mut().clear();
                self.slow.borrow_mut().clear();
            }
            FaultEvent::AddServer { .. } | FaultEvent::DrainServer { .. } => {
                if let Some(ev) = event.membership_event() {
                    // same borrow-across-delivery rule as node-event hooks
                    for hook in self.membership_hooks.borrow().iter() {
                        hook(ev);
                    }
                }
            }
            _ => {
                if let Some(ev) = event.node_event() {
                    // the borrow is held across delivery: hooks must not
                    // register hooks (RefCell turns that into a panic, not
                    // a silent miss)
                    for hook in self.hooks.borrow().iter() {
                        hook(ev);
                    }
                }
            }
        }
    }

    /// Combined fault decision for one `src → dst` transfer. Probabilistic
    /// drops draw from the plan's seeded RNG; without an installed plan
    /// this is a cheap no-fault constant.
    pub fn transfer_fault(&self, src: u32, dst: u32) -> TransferFault {
        let mut out = TransferFault {
            drop: false,
            extra_delay: Duration::ZERO,
            bandwidth_factor: 1.0,
        };
        let rules = self.rules.borrow();
        if !rules.is_empty() {
            for r in rules.iter() {
                if !r.matches(src, dst) {
                    continue;
                }
                out.extra_delay += r.extra;
                if r.p > 0.0 && !out.drop {
                    if let Some(rng) = self.rng.borrow().as_ref() {
                        out.drop = rng.chance(r.p);
                    }
                }
            }
        }
        for &(n, f) in self.slow.borrow().iter() {
            if n == src || n == dst {
                out.bandwidth_factor *= f;
            }
        }
        out
    }

    /// In-transit corruption decision for one `src → dst` payload of
    /// `len` bytes: `Some((offset, xor_mask))` when an active
    /// [`FaultEvent::CorruptTransfer`] rule fires, telling the transport
    /// which byte to damage and how (the mask is a single set bit, so the
    /// payload always really changes). Without corruption rules this is a
    /// cheap no-fault constant and draws nothing from the RNG, preserving
    /// the byte-identical determinism of plans that never corrupt.
    pub fn corrupt_transfer(&self, src: u32, dst: u32, len: u64) -> Option<(u64, u8)> {
        if len == 0 {
            return None;
        }
        let rules = self.corrupt_rules.borrow();
        if rules.is_empty() {
            return None;
        }
        let rng = self.rng.borrow();
        let rng = rng.as_ref()?;
        let mut hit = false;
        for r in rules.iter() {
            if r.matches(src, dst) && r.p > 0.0 && rng.chance(r.p) {
                hit = true;
            }
        }
        if !hit {
            return None;
        }
        let offset = rng.index(len as usize) as u64;
        let mask = 1u8 << rng.index(8);
        Some((offset, mask))
    }

    /// At-commit corruption decision for one object commit of `len` bytes
    /// on storage node `node`: `Some((offset, xor_mask))` when an active
    /// [`FaultEvent::CorruptCommit`] rule fires, telling the storage layer
    /// which byte to damage before persisting (the mask is a single set
    /// bit, so the committed bytes always really change). Without commit
    /// rules this is a cheap no-fault constant that draws nothing from the
    /// RNG, preserving the byte-identical determinism of plans that never
    /// corrupt.
    pub fn corrupt_commit(&self, node: u32, len: u64) -> Option<(u64, u8)> {
        if len == 0 {
            return None;
        }
        let rules = self.commit_rules.borrow();
        if rules.is_empty() {
            return None;
        }
        let rng = self.rng.borrow();
        let rng = rng.as_ref()?;
        let mut hit = false;
        for &(n, p) in rules.iter() {
            if n == node && p > 0.0 && rng.chance(p) {
                hit = true;
            }
        }
        if !hit {
            return None;
        }
        let offset = rng.index(len as usize) as u64;
        let mask = 1u8 << rng.index(8);
        Some((offset, mask))
    }

    /// Seeded RNG for jitter (retry backoff etc.); `None` before any plan
    /// is installed. Callers needing jitter without a plan fall back to
    /// their own forked stream.
    pub fn rng(&self) -> Option<SimRng> {
        self.rng.borrow().clone()
    }

    /// Copy of the applied-event timeline, in application order.
    pub fn timeline(&self) -> Vec<AppliedEvent> {
        self.timeline.borrow().clone()
    }

    /// Render the timeline as one line per event (`"12.000ms Crash node 3"`
    /// style) — the recovery-trace artifact format.
    pub fn timeline_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for ae in self.timeline.borrow().iter() {
            let _ = writeln!(s, "{} {:?}", crate::time::format_time(ae.at), ae.event);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::dur;
    use crate::Sim;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn plan_expansion_sorts_and_expands_flaps() {
        let plan = FaultPlan::new(7)
            .at(dur::ms(50), FaultEvent::Crash { node: 2 })
            .at(
                dur::ms(10),
                FaultEvent::LinkFlap {
                    node: 1,
                    count: 2,
                    down: dur::ms(5),
                    period: dur::ms(20),
                },
            );
        let ev = plan.expand();
        assert_eq!(ev.len(), 5);
        assert_eq!(ev[0], (dur::ms(10), FaultEvent::LinkDown { node: 1 }));
        assert_eq!(ev[1], (dur::ms(15), FaultEvent::LinkUp { node: 1 }));
        assert_eq!(ev[2], (dur::ms(30), FaultEvent::LinkDown { node: 1 }));
        assert_eq!(ev[3], (dur::ms(35), FaultEvent::LinkUp { node: 1 }));
        assert_eq!(ev[4], (dur::ms(50), FaultEvent::Crash { node: 2 }));
    }

    #[test]
    fn install_drives_events_at_scheduled_times() {
        let sim = Sim::new();
        let seen: Rc<RefCell<Vec<(u64, NodeEvent)>>> = Rc::default();
        let log = Rc::clone(&seen);
        let s = sim.clone();
        sim.faults().on_node_event(move |ev| {
            log.borrow_mut().push((s.now().as_nanos(), ev));
        });
        sim.install_faults(
            FaultPlan::new(1)
                .at(dur::ms(5), FaultEvent::Crash { node: 3 })
                .at(dur::ms(9), FaultEvent::Restart { node: 3 }),
        );
        sim.run();
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        assert_eq!(
            seen[0],
            (
                5_000_000,
                NodeEvent {
                    node: 3,
                    kind: NodeEventKind::Crash
                }
            )
        );
        assert_eq!(seen[1].1.kind, NodeEventKind::Restart);
        assert_eq!(sim.faults().timeline().len(), 2);
    }

    #[test]
    fn loss_rule_is_seed_deterministic() {
        let decide = |seed: u64| {
            let inj = FaultInjector::default();
            inj.arm(seed);
            inj.apply(
                Time::ZERO,
                FaultEvent::Loss {
                    src: None,
                    dst: Some(4),
                    p: 0.5,
                },
            );
            (0..64)
                .map(|_| inj.transfer_fault(0, 4).drop)
                .collect::<Vec<_>>()
        };
        assert_eq!(decide(42), decide(42));
        assert_ne!(decide(42), decide(43));
        // the rule only matches dst 4
        let inj = FaultInjector::default();
        inj.arm(9);
        inj.apply(
            Time::ZERO,
            FaultEvent::Loss {
                src: None,
                dst: Some(4),
                p: 1.0,
            },
        );
        assert!(!inj.transfer_fault(0, 5).drop);
        assert!(inj.transfer_fault(2, 4).drop);
    }

    #[test]
    fn degrade_delay_and_clear() {
        let inj = FaultInjector::default();
        inj.arm(0);
        inj.apply(
            Time::ZERO,
            FaultEvent::Degrade {
                node: 2,
                factor: 0.25,
            },
        );
        inj.apply(
            Time::ZERO,
            FaultEvent::Delay {
                src: Some(1),
                dst: None,
                extra: dur::us(30),
            },
        );
        let f = inj.transfer_fault(1, 2);
        assert_eq!(f.bandwidth_factor, 0.25);
        assert_eq!(f.extra_delay, dur::us(30));
        assert!(!f.drop);
        // replacing a degrade overrides, 1.0 clears
        inj.apply(
            Time::ZERO,
            FaultEvent::Degrade {
                node: 2,
                factor: 1.0,
            },
        );
        assert_eq!(inj.transfer_fault(1, 2).bandwidth_factor, 1.0);
        inj.apply(Time::ZERO, FaultEvent::ClearEdges);
        assert_eq!(inj.transfer_fault(1, 2).extra_delay, Duration::ZERO);
    }

    #[test]
    fn corrupt_transfer_is_seed_deterministic_and_edge_scoped() {
        let decide = |seed: u64| {
            let inj = FaultInjector::default();
            inj.arm(seed);
            inj.apply(
                Time::ZERO,
                FaultEvent::CorruptTransfer {
                    src: None,
                    dst: Some(4),
                    p: 0.5,
                },
            );
            (0..64)
                .map(|_| inj.corrupt_transfer(0, 4, 4096))
                .collect::<Vec<_>>()
        };
        let a = decide(42);
        assert_eq!(a, decide(42));
        assert_ne!(a, decide(43));
        assert!(a.iter().any(|d| d.is_some()));
        assert!(a.iter().any(|d| d.is_none()));
        for (off, mask) in a.iter().flatten() {
            assert!(*off < 4096);
            assert_eq!(mask.count_ones(), 1, "mask must flip exactly one bit");
        }
        // edge filter + empty payloads + ClearEdges
        let inj = FaultInjector::default();
        inj.arm(9);
        inj.apply(
            Time::ZERO,
            FaultEvent::CorruptTransfer {
                src: Some(1),
                dst: None,
                p: 1.0,
            },
        );
        assert!(inj.corrupt_transfer(2, 3, 100).is_none());
        assert!(inj.corrupt_transfer(1, 3, 0).is_none());
        assert!(inj.corrupt_transfer(1, 3, 100).is_some());
        inj.apply(Time::ZERO, FaultEvent::ClearEdges);
        assert!(inj.corrupt_transfer(1, 3, 100).is_none());
    }

    #[test]
    fn membership_events_fan_out_and_land_in_the_timeline() {
        let sim = Sim::new();
        let seen: Rc<RefCell<Vec<(u64, MembershipEvent)>>> = Rc::default();
        let log = Rc::clone(&seen);
        let s = sim.clone();
        sim.faults().on_membership(move |ev| {
            log.borrow_mut().push((s.now().as_nanos(), ev));
        });
        sim.install_faults(
            FaultPlan::new(1)
                .at(dur::ms(3), FaultEvent::AddServer { node: 7 })
                .at(dur::ms(8), FaultEvent::DrainServer { node: 2 }),
        );
        sim.run();
        let seen = seen.borrow();
        assert_eq!(
            *seen,
            vec![
                (
                    3_000_000,
                    MembershipEvent {
                        node: 7,
                        change: MembershipChange::Join
                    }
                ),
                (
                    8_000_000,
                    MembershipEvent {
                        node: 2,
                        change: MembershipChange::Drain
                    }
                ),
            ]
        );
        assert_eq!(sim.faults().timeline().len(), 2);
        assert!(sim.faults().timeline_text().contains("AddServer"));
    }

    #[test]
    fn corrupt_sweep_fans_out_with_shared_rng() {
        let inj = FaultInjector::default();
        inj.arm(7);
        let seen: Rc<RefCell<Vec<(u32, u64)>>> = Rc::default();
        let log = Rc::clone(&seen);
        inj.on_corrupt_sweep(move |node, p, rng| {
            assert_eq!(p, 0.25);
            // hooks draw from the plan stream deterministically
            log.borrow_mut().push((node, rng.range(0, 1 << 20)));
        });
        inj.apply(Time::ZERO, FaultEvent::CorruptValue { node: 3, p: 0.25 });
        inj.apply(Time::ZERO, FaultEvent::CorruptValue { node: 5, p: 0.25 });
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, 3);
        assert_eq!(seen[1].0, 5);
        // both sweeps landed in the applied timeline
        assert_eq!(inj.timeline().len(), 2);
        // replaying the same seed yields the same draws
        let inj2 = FaultInjector::default();
        inj2.arm(7);
        let seen2: Rc<RefCell<Vec<(u32, u64)>>> = Rc::default();
        let log2 = Rc::clone(&seen2);
        inj2.on_corrupt_sweep(move |node, _, rng| {
            log2.borrow_mut().push((node, rng.range(0, 1 << 20)));
        });
        inj2.apply(Time::ZERO, FaultEvent::CorruptValue { node: 3, p: 0.25 });
        inj2.apply(Time::ZERO, FaultEvent::CorruptValue { node: 5, p: 0.25 });
        assert_eq!(*seen, *seen2.borrow());
    }
}
