//! Queueing resources: the building blocks for device and link models.
//!
//! [`FifoServer`] is a single-server FIFO queue with a byte rate and a
//! per-operation overhead — it models a disk spindle, an OST, a NIC TX
//! engine, or a network link (store-and-forward). Contention emerges
//! naturally: concurrent users queue and time accumulates.

use std::cell::Cell;
use std::time::Duration;

use crate::executor::Sim;
use crate::sync::semaphore::Semaphore;
use crate::time::{dur, Time};

/// Utilization and throughput statistics for a [`FifoServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Operations completed.
    pub ops: u64,
    /// Payload bytes serviced.
    pub bytes: u64,
    /// Total busy time (service, excluding queueing).
    pub busy: Duration,
    /// Total time requests spent queued before service began.
    pub queued: Duration,
}

impl ServerStats {
    /// Busy fraction over `elapsed` (0..=1).
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            (self.busy.as_secs_f64() / elapsed.as_secs_f64()).min(1.0)
        }
    }

    /// Mean queueing delay per operation.
    pub fn mean_queue_delay(&self) -> Duration {
        if self.ops == 0 {
            Duration::ZERO
        } else {
            self.queued / self.ops as u32
        }
    }
}

/// Single-server FIFO queueing resource with a service rate.
pub struct FifoServer {
    sim: Sim,
    gate: Semaphore,
    rate_bytes_per_sec: Cell<f64>,
    per_op_overhead: Duration,
    ops: Cell<u64>,
    bytes: Cell<u64>,
    busy_ns: Cell<u64>,
    queued_ns: Cell<u64>,
}

impl FifoServer {
    /// A server that moves `rate_bytes_per_sec` and charges
    /// `per_op_overhead` of latency before each operation's transfer time.
    pub fn new(sim: Sim, rate_bytes_per_sec: f64, per_op_overhead: Duration) -> Self {
        assert!(rate_bytes_per_sec > 0.0, "rate must be positive");
        FifoServer {
            sim,
            gate: Semaphore::new(1),
            rate_bytes_per_sec: Cell::new(rate_bytes_per_sec),
            per_op_overhead,
            ops: Cell::new(0),
            bytes: Cell::new(0),
            busy_ns: Cell::new(0),
            queued_ns: Cell::new(0),
        }
    }

    /// Current service rate in bytes/second.
    pub fn rate(&self) -> f64 {
        self.rate_bytes_per_sec.get()
    }

    /// Change the service rate (e.g. model degraded hardware). Applies to
    /// operations that begin service after the call.
    pub fn set_rate(&self, rate_bytes_per_sec: f64) {
        assert!(rate_bytes_per_sec > 0.0, "rate must be positive");
        self.rate_bytes_per_sec.set(rate_bytes_per_sec);
    }

    /// Queue for the server and hold it for the time to move `bytes`
    /// (plus fixed overhead and `extra` latency, e.g. a disk seek).
    pub async fn serve_bytes_extra(&self, bytes: u64, extra: Duration) {
        let enq = self.sim.now();
        let _permit = self.gate.acquire().await;
        let start = self.sim.now();
        self.queued_ns
            .set(self.queued_ns.get() + (start - enq).as_nanos() as u64);
        let service = self.per_op_overhead + extra + dur::transfer(bytes, self.rate());
        self.sim.sleep(service).await;
        self.ops.set(self.ops.get() + 1);
        self.bytes.set(self.bytes.get() + bytes);
        self.busy_ns
            .set(self.busy_ns.get() + service.as_nanos() as u64);
    }

    /// Queue for the server and hold it for the time to move `bytes`.
    pub async fn serve_bytes(&self, bytes: u64) {
        self.serve_bytes_extra(bytes, Duration::ZERO).await;
    }

    /// Queue for the server and hold it for an explicit duration.
    pub async fn serve_for(&self, d: Duration) {
        let enq = self.sim.now();
        let _permit = self.gate.acquire().await;
        let start = self.sim.now();
        self.queued_ns
            .set(self.queued_ns.get() + (start - enq).as_nanos() as u64);
        let service = self.per_op_overhead + d;
        self.sim.sleep(service).await;
        self.ops.set(self.ops.get() + 1);
        self.busy_ns
            .set(self.busy_ns.get() + service.as_nanos() as u64);
    }

    /// Snapshot of accumulated statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            ops: self.ops.get(),
            bytes: self.bytes.get(),
            busy: Duration::from_nanos(self.busy_ns.get()),
            queued: Duration::from_nanos(self.queued_ns.get()),
        }
    }

    /// Requests currently waiting for service (excludes the one in service).
    pub fn queue_len(&self) -> usize {
        self.gate.queued()
    }

    /// The simulation this server belongs to.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }
}

/// A pool of identical parallel servers fed by one FIFO queue (M/G/c-style),
/// modeling multi-channel devices such as a striped RAID OST or a
/// multi-queue SSD.
pub struct ServerPool {
    sim: Sim,
    gate: Semaphore,
    width: usize,
    rate_bytes_per_sec: f64,
    per_op_overhead: Duration,
    ops: Cell<u64>,
    bytes: Cell<u64>,
    busy_ns: Cell<u64>,
}

impl ServerPool {
    /// `width` parallel channels, each moving `rate_bytes_per_sec`.
    pub fn new(sim: Sim, width: usize, rate_bytes_per_sec: f64, per_op_overhead: Duration) -> Self {
        assert!(width > 0, "pool width must be > 0");
        assert!(rate_bytes_per_sec > 0.0, "rate must be positive");
        ServerPool {
            sim,
            gate: Semaphore::new(width),
            width,
            rate_bytes_per_sec,
            per_op_overhead,
            ops: Cell::new(0),
            bytes: Cell::new(0),
            busy_ns: Cell::new(0),
        }
    }

    /// Number of channels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Serve `bytes` on the next free channel.
    pub async fn serve_bytes(&self, bytes: u64) {
        let _permit = self.gate.acquire().await;
        let service = self.per_op_overhead + dur::transfer(bytes, self.rate_bytes_per_sec);
        self.sim.sleep(service).await;
        self.ops.set(self.ops.get() + 1);
        self.bytes.set(self.bytes.get() + bytes);
        self.busy_ns
            .set(self.busy_ns.get() + service.as_nanos() as u64);
    }

    /// Snapshot of accumulated statistics (busy time sums across channels).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            ops: self.ops.get(),
            bytes: self.bytes.get(),
            busy: Duration::from_nanos(self.busy_ns.get()),
            queued: Duration::ZERO,
        }
    }
}

/// Convenience: elapsed virtual time of a simulation since an origin mark.
pub fn elapsed_since(sim: &Sim, origin: Time) -> Duration {
    sim.now() - origin
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::dur;

    fn mib(n: u64) -> u64 {
        n << 20
    }

    #[test]
    fn serial_requests_accumulate() {
        let sim = Sim::new();
        // 100 MiB/s, no overhead
        let srv = std::rc::Rc::new(FifoServer::new(
            sim.clone(),
            mib(100) as f64,
            Duration::ZERO,
        ));
        let s = sim.clone();
        let srv2 = std::rc::Rc::clone(&srv);
        let t = sim.block_on(async move {
            srv2.serve_bytes(mib(100)).await; // 1 s
            srv2.serve_bytes(mib(50)).await; // 0.5 s
            s.now()
        });
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-6);
        let st = srv.stats();
        assert_eq!(st.ops, 2);
        assert_eq!(st.bytes, mib(150));
    }

    #[test]
    fn concurrent_requests_queue_fifo() {
        let sim = Sim::new();
        let srv = std::rc::Rc::new(FifoServer::new(
            sim.clone(),
            mib(100) as f64,
            Duration::ZERO,
        ));
        let done = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let srv = std::rc::Rc::clone(&srv);
            let s = sim.clone();
            let done = std::rc::Rc::clone(&done);
            sim.spawn(async move {
                srv.serve_bytes(mib(100)).await;
                done.borrow_mut().push((i, s.now().as_secs_f64()));
            });
        }
        sim.run();
        let d = done.borrow();
        assert_eq!(d.len(), 3);
        for (i, t) in d.iter() {
            assert!(
                (t - (*i as f64 + 1.0)).abs() < 1e-6,
                "op {i} finished at {t}"
            );
        }
        // 2 of 3 ops queued behind the first: total queueing 1s + 2s
        let st = srv.stats();
        assert!((st.queued.as_secs_f64() - 3.0).abs() < 1e-6);
        assert!((st.utilization(Duration::from_secs(3)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn per_op_overhead_charged() {
        let sim = Sim::new();
        let srv = FifoServer::new(sim.clone(), 1e9, dur::ms(8)); // seek-like
        let s = sim.clone();
        let t = sim.block_on(async move {
            srv.serve_bytes(0).await;
            srv.serve_bytes(0).await;
            s.now()
        });
        assert_eq!(t, Time::from_millis(16));
    }

    #[test]
    fn rate_change_applies_to_new_ops() {
        let sim = Sim::new();
        let srv = FifoServer::new(sim.clone(), mib(100) as f64, Duration::ZERO);
        let s = sim.clone();
        let t = sim.block_on(async move {
            srv.serve_bytes(mib(100)).await; // 1s
            srv.set_rate(mib(200) as f64);
            srv.serve_bytes(mib(100)).await; // 0.5s
            s.now()
        });
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn pool_runs_width_in_parallel() {
        let sim = Sim::new();
        let pool = std::rc::Rc::new(ServerPool::new(
            sim.clone(),
            4,
            mib(100) as f64,
            Duration::ZERO,
        ));
        for _ in 0..8 {
            let p = std::rc::Rc::clone(&pool);
            sim.spawn(async move { p.serve_bytes(mib(100)).await });
        }
        let end = sim.run();
        // 8 × 1s jobs on 4 channels => 2s
        assert!((end.as_secs_f64() - 2.0).abs() < 1e-6);
        assert_eq!(pool.stats().ops, 8);
    }

    #[test]
    fn serve_for_explicit_duration() {
        let sim = Sim::new();
        let srv = FifoServer::new(sim.clone(), 1.0, Duration::ZERO);
        let s = sim.clone();
        let t = sim.block_on(async move {
            srv.serve_for(dur::ms(123)).await;
            s.now()
        });
        assert_eq!(t, Time::from_millis(123));
    }
}
