//! Bounded per-component flight recorder: a ring of recent structured
//! events per component, frozen into a deterministic JSON dump when a
//! fault-matrix assertion, consistency check, or unrepairable-scrub
//! event fires.
//!
//! Off by default: [`FlightRecorder::record`] is a single-branch no-op
//! until [`FlightRecorder::enable`], and the detail string is built
//! lazily (closure) so disabled recording allocates nothing. Recording
//! never advances or perturbs virtual time, so enabling the recorder
//! cannot change a run's outcome — only what gets remembered about it.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};

use crate::telemetry::json_escape;

/// Default per-component ring capacity.
pub const DEFAULT_RING_LEN: usize = 256;

/// One recorded event.
#[derive(Debug, Clone)]
struct FlightEvent {
    t_ns: u64,
    code: &'static str,
    detail: String,
}

/// Bounded per-component event rings plus the dumps triggered so far.
pub struct FlightRecorder {
    enabled: Cell<bool>,
    cap: Cell<usize>,
    rings: RefCell<BTreeMap<String, VecDeque<FlightEvent>>>,
    dumps: RefCell<Vec<(String, String)>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder {
            enabled: Cell::new(false),
            cap: Cell::new(DEFAULT_RING_LEN),
            rings: RefCell::new(BTreeMap::new()),
            dumps: RefCell::new(Vec::new()),
        }
    }
}

impl FlightRecorder {
    /// Start recording with per-component rings of `cap` events (oldest
    /// evicted first). `cap == 0` leaves the recorder disabled.
    pub fn enable(&self, cap: usize) {
        if cap == 0 {
            self.enabled.set(false);
            return;
        }
        self.cap.set(cap);
        self.enabled.set(true);
    }

    /// Stop recording (rings and dumps are kept).
    pub fn disable(&self) {
        self.enabled.set(false);
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Append an event to `component`'s ring at virtual time `t_ns`.
    /// `detail` is only invoked when the recorder is enabled, so a
    /// disabled record costs one branch and zero allocations.
    pub fn record(
        &self,
        t_ns: u64,
        component: &str,
        code: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled.get() {
            return;
        }
        let mut rings = self.rings.borrow_mut();
        let ring = rings.entry(component.to_string()).or_default();
        if ring.len() >= self.cap.get() {
            ring.pop_front();
        }
        ring.push_back(FlightEvent {
            t_ns,
            code,
            detail: detail(),
        });
    }

    /// Freeze the current rings into a deterministic JSON dump tagged
    /// with `reason`, store it, and return it. Returns `None` when the
    /// recorder is disabled. Components are emitted in sorted order and
    /// each ring oldest-first, so two same-seed runs that trigger at the
    /// same virtual time produce byte-identical dumps.
    pub fn trigger(&self, t_ns: u64, reason: &str) -> Option<String> {
        if !self.enabled.get() {
            return None;
        }
        let rings = self.rings.borrow();
        let mut out = String::from("{\n  \"schema\": \"rdma-bb.flight.v1\",\n");
        out.push_str(&format!(
            "  \"reason\": \"{}\",\n  \"t_ns\": {},\n  \"components\": {{\n",
            json_escape(reason),
            t_ns
        ));
        let n = rings.len();
        for (i, (component, ring)) in rings.iter().enumerate() {
            out.push_str(&format!("    \"{}\": [\n", json_escape(component)));
            let m = ring.len();
            for (j, ev) in ring.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"t_ns\": {}, \"code\": \"{}\", \"detail\": \"{}\"}}{}\n",
                    ev.t_ns,
                    json_escape(ev.code),
                    json_escape(&ev.detail),
                    if j + 1 < m { "," } else { "" }
                ));
            }
            out.push_str(&format!("    ]{}\n", if i + 1 < n { "," } else { "" }));
        }
        out.push_str("  }\n}\n");
        self.dumps
            .borrow_mut()
            .push((reason.to_string(), out.clone()));
        Some(out)
    }

    /// All `(reason, dump JSON)` pairs triggered so far, in order.
    pub fn dumps(&self) -> Vec<(String, String)> {
        self.dumps.borrow().clone()
    }

    /// Events currently held for `component`.
    pub fn ring_len(&self, component: &str) -> usize {
        self.rings.borrow().get(component).map_or(0, |r| r.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert_and_lazy() {
        let f = FlightRecorder::default();
        f.record(10, "rkv.server0", "crash", || panic!("detail must be lazy"));
        assert_eq!(f.ring_len("rkv.server0"), 0);
        assert!(f.trigger(20, "anything").is_none());
        assert!(f.dumps().is_empty());
    }

    #[test]
    fn ring_is_bounded_oldest_evicted() {
        let f = FlightRecorder::default();
        f.enable(4);
        for i in 0..10u64 {
            f.record(i, "mgr", "tick", || format!("n={i}"));
        }
        assert_eq!(f.ring_len("mgr"), 4);
        let dump = f.trigger(100, "test").unwrap();
        assert!(!dump.contains("n=5"));
        assert!(dump.contains("n=6"));
        assert!(dump.contains("n=9"));
    }

    #[test]
    fn dump_is_deterministic_and_sorted() {
        let run = || {
            let f = FlightRecorder::default();
            f.enable(8);
            f.record(5, "z.late", "ev", || "b".into());
            f.record(3, "a.early", "ev", || "a \"quoted\"".into());
            f.trigger(9, "scrub unrepairable").unwrap()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"schema\": \"rdma-bb.flight.v1\""));
        // sorted component order: a.early before z.late
        assert!(a.find("a.early").unwrap() < a.find("z.late").unwrap());
        assert!(a.contains("a \\\"quoted\\\""));
    }

    #[test]
    fn enable_zero_stays_disabled() {
        let f = FlightRecorder::default();
        f.enable(0);
        assert!(!f.is_enabled());
        f.record(1, "c", "x", || "d".into());
        assert_eq!(f.ring_len("c"), 0);
    }
}
