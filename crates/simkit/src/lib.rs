//! # simkit — deterministic virtual-time discrete-event simulation
//!
//! The substrate every simulated system in this workspace runs on: a
//! single-threaded async executor driven by a virtual clock
//! ([`executor::Sim`]), plus the primitives discrete-event models need —
//! timers, channels ([`sync`]), queueing resources ([`resource`]), seeded
//! randomness ([`rng`]), and metrics ([`stats`]).
//!
//! ## Why virtual time
//!
//! The reproduced paper measures a cluster: InfiniBand fabric, local disks,
//! Lustre servers. None of that hardware is available here, so devices and
//! links are *modeled* — an operation's cost is computed from calibrated
//! rates and charged to a virtual clock instead of being waited out in real
//! time. Simulations are therefore fast, deterministic (a run is a pure
//! function of the program and RNG seed), and independent of host load.
//!
//! ## Example
//!
//! ```
//! use simkit::{Sim, time::dur};
//!
//! let sim = Sim::new();
//! let s = sim.clone();
//! let total = sim.block_on(async move {
//!     s.sleep(dur::ms(10)).await;
//!     s.now()
//! });
//! assert_eq!(total.as_nanos(), 10_000_000);
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod faultplan;
pub mod flight;
pub mod future;
pub mod optrace;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;

/// Channel and synchronization primitives for simulated processes.
pub mod sync {
    pub mod mpsc;
    pub mod oneshot;
    pub mod semaphore;
}

pub use executor::{JoinHandle, Sim, Sleep};
pub use faultplan::{
    FaultEvent, FaultPlan, MembershipChange, MembershipEvent, NodeEvent, NodeEventKind,
};
pub use optrace::OpId;
pub use rng::{SimRng, Zipf};
pub use time::{dur, Time};
