//! Seeded deterministic randomness and the distributions the workload
//! generators need (uniform, exponential, Zipf, truncated normal).
//!
//! `rand_distr` is not in the approved dependency set, so the handful of
//! distributions used by the workloads are implemented here with standard
//! inverse-CDF / rejection methods.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Cheap-to-clone handle to a seeded PRNG. All clones share the stream, so
/// the whole simulation consumes one deterministic sequence.
#[derive(Clone)]
pub struct SimRng {
    inner: Rc<RefCell<SmallRng>>,
}

impl SimRng {
    /// Construct from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Rc::new(RefCell::new(SmallRng::seed_from_u64(seed))),
        }
    }

    /// Derive an independent child stream (stable function of this stream's
    /// state order) — used to give each workload its own stream.
    pub fn fork(&self) -> SimRng {
        let seed = self.inner.borrow_mut().next_u64();
        SimRng::seed_from(seed)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&self) -> f64 {
        self.inner.borrow_mut().gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.borrow_mut().gen_range(lo..hi)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&self, n: usize) -> usize {
        assert!(n > 0, "index over empty set");
        self.inner.borrow_mut().gen_range(0..n)
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential with the given mean (inverse-CDF method).
    pub fn exp(&self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Normal via Box–Muller, truncated to `>= 0` for use as a duration or
    /// size.
    pub fn normal_pos(&self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + std_dev * z).max(0.0)
    }

    /// Fill `buf` with pseudorandom bytes (workload payload generation).
    pub fn fill_bytes(&self, buf: &mut [u8]) {
        self.inner.borrow_mut().fill_bytes(buf);
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&self, slice: &mut [T]) {
        let mut rng = self.inner.borrow_mut();
        for i in (1..slice.len()).rev() {
            let j = rng.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

/// Memoized CDF table store: `(n, s.to_bits())` → shared CDF.
type ZipfCdfCache = std::collections::HashMap<(usize, u64), Rc<Vec<f64>>>;

thread_local! {
    /// Memoized Zipf CDF tables keyed by `(n, s.to_bits())`. The harmonic
    /// prefix sum is O(n) with a `powf` per term — prohibitive when traffic
    /// generators build 10^6-key distributions per cell — but it is a pure
    /// function of `(n, s)`, so every construction after the first is a
    /// cache hit that just bumps an `Rc`.
    static ZIPF_CDF_CACHE: RefCell<ZipfCdfCache> = RefCell::new(ZipfCdfCache::new());
}

/// Zipf-distributed ranks in `[0, n)` with skew `s`, via a precomputed CDF
/// and binary search. Matches the access skew of key-popularity workloads
/// (e.g. the hot-block behaviour a burst buffer exploits). CDF tables are
/// memoized per `(n, s)` so repeated construction is O(1) after the first.
pub struct Zipf {
    cdf: Rc<Vec<f64>>,
}

impl Zipf {
    /// Build the distribution for `n` items with exponent `s` (s = 0 is
    /// uniform; s ≈ 0.99 is the classic YCSB skew).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty set");
        let cdf = ZIPF_CDF_CACHE.with(|cache| {
            if let Some(cdf) = cache.borrow().get(&(n, s.to_bits())) {
                return Rc::clone(cdf);
            }
            let mut cdf = Vec::with_capacity(n);
            let mut acc = 0.0;
            for k in 1..=n {
                acc += 1.0 / (k as f64).powf(s);
                cdf.push(acc);
            }
            let total = acc;
            for v in &mut cdf {
                *v /= total;
            }
            let cdf = Rc::new(cdf);
            cache.borrow_mut().insert((n, s.to_bits()), Rc::clone(&cdf));
            cdf
        });
        Zipf { cdf }
    }

    /// Analytic probability mass of `rank` (rank 0 is the most popular):
    /// `(1/(rank+1)^s) / H(n, s)`, read off the normalized CDF.
    pub fn prob(&self, rank: usize) -> f64 {
        assert!(rank < self.cdf.len(), "rank out of range");
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draw a rank in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let a = SimRng::seed_from(42);
        let b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn clones_share_one_stream() {
        let a = SimRng::seed_from(7);
        let b = a.clone();
        let x = a.range(0, u64::MAX);
        let fresh = SimRng::seed_from(7);
        assert_eq!(x, fresh.range(0, u64::MAX));
        // b continues the same stream, not a restart
        assert_eq!(b.range(0, u64::MAX), fresh.range(0, u64::MAX));
    }

    #[test]
    fn fork_streams_differ() {
        let a = SimRng::seed_from(1);
        let c1 = a.fork();
        let c2 = a.fork();
        let xs: Vec<u64> = (0..10).map(|_| c1.range(0, u64::MAX)).collect();
        let ys: Vec<u64> = (0..10).map(|_| c2.range(0, u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn exp_mean_is_close() {
        let rng = SimRng::seed_from(99);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let emp = sum / n as f64;
        assert!((emp - mean).abs() < 0.2, "empirical mean {emp}");
    }

    #[test]
    fn normal_pos_is_nonnegative_and_centered() {
        let rng = SimRng::seed_from(3);
        let n = 20_000;
        let vals: Vec<f64> = (0..n).map(|_| rng.normal_pos(10.0, 2.0)).collect();
        assert!(vals.iter().all(|v| *v >= 0.0));
        let mean = vals.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let rng = SimRng::seed_from(17);
        let z = Zipf::new(100, 0.99);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // rank 0 of a 0.99-skew zipf over 100 items gets ~19% of mass
        let p0 = counts[0] as f64 / 50_000.0;
        assert!((p0 - 0.19).abs() < 0.03, "p0 = {p0}");
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let rng = SimRng::seed_from(5);
        let z = Zipf::new(10, 0.0);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&rng)] += 1;
        }
        for c in counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.02, "p = {p}");
        }
    }

    #[test]
    fn zipf_cdf_is_memoized_and_prob_sums_to_one() {
        let a = Zipf::new(4096, 0.99);
        let b = Zipf::new(4096, 0.99);
        // same (n, s) shares one table
        assert!(Rc::ptr_eq(&a.cdf, &b.cdf));
        let c = Zipf::new(4096, 1.2);
        assert!(!Rc::ptr_eq(&a.cdf, &c.cdf));
        let total: f64 = (0..a.len()).map(|r| a.prob(r)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total mass {total}");
        assert!(a.prob(0) > a.prob(1));
    }

    #[test]
    fn shuffle_is_permutation() {
        let rng = SimRng::seed_from(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }
}
