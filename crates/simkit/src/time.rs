//! Virtual time: instants and durations on a nanosecond-resolution clock.
//!
//! The simulation clock is a monotonically non-decreasing `u64` nanosecond
//! counter starting at zero. [`Time`] is an instant on that clock and
//! [`Duration`](std::time::Duration) (re-used from `std`) is a span.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the virtual simulation clock (nanoseconds since sim start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds since sim start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from microseconds since sim start.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Construct from milliseconds since sim start.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Construct from whole seconds since sim start.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Raw nanoseconds since sim start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Instant expressed as fractional seconds since sim start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add of a duration (clamps at [`Time::MAX`]).
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(
            self.0
                .saturating_add(d.as_nanos().min(u64::MAX as u128) as u64),
        )
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_time(*self))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_time(*self))
    }
}

/// Render an instant with an adaptive unit (ns/µs/ms/s).
pub fn format_time(t: Time) -> String {
    let ns = t.as_nanos();
    if ns == u64::MAX {
        "∞".to_owned()
    } else if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// Convenience constructors for [`Duration`] used pervasively in device and
/// network models.
pub mod dur {
    use std::time::Duration;

    /// Nanoseconds.
    #[inline]
    pub const fn ns(v: u64) -> Duration {
        Duration::from_nanos(v)
    }
    /// Microseconds.
    #[inline]
    pub const fn us(v: u64) -> Duration {
        Duration::from_micros(v)
    }
    /// Milliseconds.
    #[inline]
    pub const fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }
    /// Seconds.
    #[inline]
    pub const fn secs(v: u64) -> Duration {
        Duration::from_secs(v)
    }
    /// Fractional seconds.
    #[inline]
    pub fn secs_f64(v: f64) -> Duration {
        Duration::from_secs_f64(v)
    }

    /// Time to move `bytes` at `bytes_per_sec`, rounded up to 1 ns minimum
    /// for any non-empty transfer so causality is preserved.
    #[inline]
    pub fn transfer(bytes: u64, bytes_per_sec: f64) -> Duration {
        if bytes == 0 || bytes_per_sec <= 0.0 {
            return Duration::ZERO;
        }
        let secs = bytes as f64 / bytes_per_sec;
        let d = Duration::from_secs_f64(secs);
        if d.is_zero() {
            Duration::from_nanos(1)
        } else {
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrip() {
        assert_eq!(Time::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(Time::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(Time::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Time::from_nanos(11).as_nanos(), 11);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1);
        let t2 = t + Duration::from_millis(500);
        assert_eq!(t2.as_nanos(), 1_500_000_000);
        assert_eq!(t2 - t, Duration::from_millis(500));
        // saturating subtraction: earlier.since(later) == 0
        assert_eq!(t.since(t2), Duration::ZERO);
    }

    #[test]
    fn saturating_add_clamps() {
        let t = Time::MAX;
        assert_eq!(t + Duration::from_secs(1), Time::MAX);
    }

    #[test]
    fn transfer_duration() {
        // 1 GiB at 1 GiB/s == 1 s
        let d = dur::transfer(1 << 30, (1u64 << 30) as f64);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(dur::transfer(0, 1e9), Duration::ZERO);
        // tiny transfers still advance time
        assert!(dur::transfer(1, 1e18) >= Duration::from_nanos(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(format_time(Time::from_nanos(5)), "5ns");
        assert_eq!(format_time(Time::from_micros(50)), "50.00µs");
        assert_eq!(format_time(Time::from_millis(50)), "50.00ms");
        assert_eq!(format_time(Time::from_secs(50)), "50.000s");
    }

    #[test]
    fn ordering() {
        assert!(Time::from_secs(1) < Time::from_secs(2));
        assert_eq!(Time::ZERO, Time::from_nanos(0));
    }
}
