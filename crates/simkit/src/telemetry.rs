//! Unified virtual-time telemetry: a per-[`Sim`](crate::Sim) metrics
//! registry and a span tracer with Chrome-trace export.
//!
//! Every component registers its metrics at spawn time under a dotted,
//! instance-labelled name (`rkv.server17.get_ns`, `netsim.link3.tx_bytes`,
//! `bb.read.tier_buffer`, …) and keeps the returned handle; updates are a
//! `Cell` bump, never a map lookup. [`Registry::snapshot`] freezes every
//! metric into a [`Snapshot`] — plain `Send` data that merges across
//! simulations and serialises to *deterministic* JSON (sorted keys, integer
//! values, no wall-clock anywhere), so two same-seed runs emit byte-identical
//! files.
//!
//! The [`Tracer`] records `(name, cat, pid, tid, begin, end)` spans on the
//! virtual clock. It is disabled by default and costs one `Cell` read per
//! span when off; when on, [`Tracer::export_chrome`] emits the Chrome
//! trace-event JSON array (`chrome://tracing` / Perfetto-loadable) with
//! timestamps in virtual microseconds. Recording a span never sleeps and
//! never perturbs virtual time: a traced run and an untraced run of the same
//! program reach the same final clock.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use crate::stats::Histogram;
use crate::time::Time;

// ---------------------------------------------------------------------------
// JSON helpers (no serde in the offline build: the format is hand-rolled,
// which also pins byte-exact determinism)
// ---------------------------------------------------------------------------

/// Escape `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// Monotone counter handle. Cheap to clone; all clones share the cell.
#[derive(Clone)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Zero the counter (per-phase accounting in experiments).
    #[inline]
    pub fn reset(&self) {
        self.0.set(0);
    }
}

/// Signed gauge handle (e.g. a queue depth). Cheap to clone.
#[derive(Clone)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// Histogram handle over nanosecond samples (shares the log-bucket
/// [`Histogram`] used across the simulators). Cheap to clone.
#[derive(Clone)]
pub struct HistogramMetric(Rc<RefCell<Histogram>>);

impl HistogramMetric {
    /// Record a duration sample.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.0.borrow_mut().record(d);
    }

    /// Record a raw nanosecond sample.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.0.borrow_mut().record_ns(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.borrow().count()
    }
}

// ---------------------------------------------------------------------------
// Snapshot: frozen, Send, mergeable, deterministic JSON
// ---------------------------------------------------------------------------

/// One metric's frozen value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram state (boxed — it dwarfs the scalar variants —
    /// and kept whole so merges stay exact).
    Histogram(Box<Histogram>),
}

impl MetricValue {
    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            // kind mismatch across runs would be a naming bug; keep self
            _ => {}
        }
    }

    fn to_json(&self) -> String {
        match self {
            MetricValue::Counter(v) => format!("{{\"type\": \"counter\", \"value\": {v}}}"),
            MetricValue::Gauge(v) => format!("{{\"type\": \"gauge\", \"value\": {v}}}"),
            MetricValue::Histogram(h) => format!(
                "{{\"type\": \"histogram\", \"count\": {}, \"mean_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                h.count(),
                h.mean().as_nanos(),
                h.min().as_nanos(),
                h.max().as_nanos(),
                h.percentile(50.0).as_nanos(),
                h.percentile(99.0).as_nanos(),
                h.percentile(99.9).as_nanos(),
            ),
        }
    }
}

/// A frozen registry: plain data, `Send`, mergeable across simulations
/// (experiment sweeps run one `Sim` per cell on worker threads).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Value of a named metric.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Counter value of `name` (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value of `name` (0 when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Sum of every counter *and* gauge whose name starts with `prefix` and
    /// ends with `suffix` — the idiom for instance-labelled families, e.g.
    /// `sum_matching("rkv.server", ".gets")` over all KV servers.
    pub fn sum_matching(&self, prefix: &str, suffix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.starts_with(prefix) && k.ends_with(suffix))
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                MetricValue::Gauge(g) => (*g).max(0) as u64,
                MetricValue::Histogram(_) => 0,
            })
            .sum()
    }

    /// Iterate metric names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(String::as_str)
    }

    /// Fold `other` into this snapshot: counters/gauges add, histograms
    /// merge, new names are inserted.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.metrics {
            match self.metrics.get_mut(k) {
                Some(mine) => mine.merge(v),
                None => {
                    self.metrics.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// Deterministic JSON: sorted keys, integer values, stable layout.
    /// Two same-seed runs serialise byte-identically. Schema `v2` extends
    /// `v1` with full percentile fields (`p50/p99/p999/max`) on every
    /// histogram; consumers accept both.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"rdma-bb.metrics.v2\",\n  \"metrics\": {\n");
        let n = self.metrics.len();
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {}{}\n",
                json_escape(k),
                v.to_json(),
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

// Snapshot is plain owned data.
// (Histogram is Clone + contains only arrays/ints.)

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Slot {
    Counter(Rc<Cell<u64>>),
    Gauge(Rc<Cell<i64>>),
    Histogram(Rc<RefCell<Histogram>>),
    /// Evaluated lazily at snapshot time (components that already keep
    /// internal stats publish them without double bookkeeping). Closures
    /// must capture weak references to anything that owns a `Sim` clone,
    /// or the registry would cycle with the executor.
    Sampled(Box<dyn Fn() -> MetricValue>),
}

/// Named-metric registry owned by a [`Sim`](crate::Sim). Components
/// register at spawn (`counter` / `gauge` / `histogram` are get-or-create,
/// so re-deploys on one simulation share the instance) and bump the
/// returned handles on the hot path.
#[derive(Default)]
pub struct Registry {
    slots: RefCell<BTreeMap<String, Slot>>,
}

impl Registry {
    /// Get or register a counter.
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        let name = name.into();
        let mut slots = self.slots.borrow_mut();
        match slots
            .entry(name.clone())
            .or_insert_with(|| Slot::Counter(Rc::new(Cell::new(0))))
        {
            Slot::Counter(c) => Counter(Rc::clone(c)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: impl Into<String>) -> Gauge {
        let name = name.into();
        let mut slots = self.slots.borrow_mut();
        match slots
            .entry(name.clone())
            .or_insert_with(|| Slot::Gauge(Rc::new(Cell::new(0))))
        {
            Slot::Gauge(g) => Gauge(Rc::clone(g)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register a histogram.
    pub fn histogram(&self, name: impl Into<String>) -> HistogramMetric {
        let name = name.into();
        let mut slots = self.slots.borrow_mut();
        match slots
            .entry(name.clone())
            .or_insert_with(|| Slot::Histogram(Rc::new(RefCell::new(Histogram::new()))))
        {
            Slot::Histogram(h) => HistogramMetric(Rc::clone(h)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Register a sampled metric: `f` is evaluated at every snapshot.
    /// Replaces any previous registration under `name`. Capture only weak
    /// references to objects that hold `Sim`/fabric handles.
    pub fn sampled(&self, name: impl Into<String>, f: impl Fn() -> MetricValue + 'static) {
        self.slots
            .borrow_mut()
            .insert(name.into(), Slot::Sampled(Box::new(f)));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.slots.borrow().len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.borrow().is_empty()
    }

    /// Freeze every metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.borrow();
        let metrics = slots
            .iter()
            .map(|(k, s)| {
                let v = match s {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(Box::new(h.borrow().clone())),
                    Slot::Sampled(f) => f(),
                };
                (k.clone(), v)
            })
            .collect();
        Snapshot { metrics }
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// One completed span on the virtual clock.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (`kv.get`, `bb.read.group`, …).
    pub name: &'static str,
    /// Category (crate/layer: `rkv`, `lustre`, `bb`, …).
    pub cat: &'static str,
    /// Process lane in the trace viewer — the fabric node id.
    pub pid: u32,
    /// Thread lane within the process (0 unless the caller distinguishes
    /// flows, e.g. a chunk seq or QP id).
    pub tid: u64,
    /// Begin, virtual nanoseconds.
    pub ts_ns: u64,
    /// Duration, virtual nanoseconds.
    pub dur_ns: u64,
}

/// Upper bound on buffered events — a runaway-trace backstop far above any
/// quick-run trace; past it events are counted but dropped.
const MAX_EVENTS: usize = 1 << 22;

/// Virtual-time span recorder. Disabled by default; when disabled a span
/// costs one boolean read and records nothing. Recording never advances or
/// perturbs the virtual clock.
#[derive(Default)]
pub struct Tracer {
    enabled: Cell<bool>,
    events: RefCell<Vec<TraceEvent>>,
    dropped: Cell<u64>,
}

impl Tracer {
    /// Start recording spans.
    pub fn enable(&self) {
        self.enabled.set(true);
    }

    /// Stop recording spans (already-recorded events are kept).
    pub fn disable(&self) {
        self.enabled.set(false);
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Events recorded so far.
    pub fn event_count(&self) -> usize {
        self.events.borrow().len()
    }

    /// Events dropped at the [`MAX_EVENTS`] cap.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    pub(crate) fn record(&self, ev: TraceEvent) {
        let mut events = self.events.borrow_mut();
        if events.len() >= MAX_EVENTS {
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        events.push(ev);
    }

    /// Run `f` over every recorded event (analysis without export).
    pub fn for_each_event(&self, mut f: impl FnMut(&TraceEvent)) {
        for ev in self.events.borrow().iter() {
            f(ev);
        }
    }

    /// Export Chrome trace-event JSON (the `chrome://tracing` / Perfetto
    /// format): an object with a `traceEvents` array of complete (`"X"`)
    /// events, `ts`/`dur` in virtual microseconds, sorted by `ts` so the
    /// stream is monotone. Deterministic for same-seed runs.
    pub fn export_chrome(&self) -> String {
        let events = self.events.borrow();
        let mut order: Vec<usize> = (0..events.len()).collect();
        // stable sort: equal timestamps keep recording order
        order.sort_by_key(|&i| events[i].ts_ns);
        let us = |ns: u64| format!("{}.{:03}", ns / 1000, ns % 1000);
        let mut out = String::from("{\"traceEvents\":[\n");
        for (n, &i) in order.iter().enumerate() {
            let e = &events[i];
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}{}\n",
                json_escape(e.name),
                json_escape(e.cat),
                us(e.ts_ns),
                us(e.dur_ns),
                e.pid,
                e.tid,
                if n + 1 < order.len() { "," } else { "" }
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// RAII span: created by [`Sim::span`](crate::Sim::span); records one
/// [`TraceEvent`] from creation to drop. A `None` inner means the tracer
/// was disabled at creation — drop is a no-op.
pub struct Span {
    pub(crate) inner: Option<SpanInner>,
}

pub(crate) struct SpanInner {
    pub(crate) sim: crate::Sim,
    pub(crate) name: &'static str,
    pub(crate) cat: &'static str,
    pub(crate) pid: u32,
    pub(crate) tid: u64,
    pub(crate) start: Time,
}

impl Span {
    /// A span that records nothing (the disabled-tracer fast path).
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Whether this span will record an event on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            let end = i.sim.now();
            i.sim.tracer().record(TraceEvent {
                name: i.name,
                cat: i.cat,
                pid: i.pid,
                tid: i.tid,
                ts_ns: i.start.as_nanos(),
                dur_ns: end.as_nanos().saturating_sub(i.start.as_nanos()),
            });
        }
    }
}

/// The telemetry bundle each [`Sim`](crate::Sim) owns.
#[derive(Default)]
pub struct Telemetry {
    /// The metrics registry.
    pub registry: Registry,
    /// The span tracer.
    pub tracer: Tracer,
    /// The per-operation request tracer (latency decomposition).
    pub optrace: crate::optrace::OpTracer,
    /// The crash flight recorder.
    pub flight: crate::flight::FlightRecorder,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::dur;
    use crate::Sim;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let r = Registry::default();
        let c = r.counter("a.count");
        c.add(3);
        c.inc();
        let g = r.gauge("a.gauge");
        g.set(7);
        g.add(-2);
        let h = r.histogram("a.lat_ns");
        h.record_ns(100);
        h.record_ns(300);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.count"), 4);
        assert_eq!(snap.gauge("a.gauge"), 5);
        match snap.get("a.lat_ns") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn get_or_create_shares_the_instance() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counter("x"), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::default();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn sampled_metric_evaluated_at_snapshot() {
        let r = Registry::default();
        let v = Rc::new(Cell::new(0u64));
        let vv = Rc::clone(&v);
        r.sampled("s", move || MetricValue::Counter(vv.get()));
        v.set(41);
        assert_eq!(r.snapshot().counter("s"), 41);
        v.set(42);
        assert_eq!(r.snapshot().counter("s"), 42);
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let r = Registry::default();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        let j1 = r.snapshot().to_json();
        let j2 = r.snapshot().to_json();
        assert_eq!(j1, j2);
        let a = j1.find("a.first").unwrap();
        let z = j1.find("z.last").unwrap();
        assert!(a < z, "keys must serialise sorted");
        assert!(j1.starts_with('{') && j1.trim_end().ends_with('}'));
    }

    #[test]
    fn snapshot_merge_adds_counters_and_merges_histograms() {
        let r1 = Registry::default();
        r1.counter("c").add(2);
        r1.histogram("h").record_ns(10);
        let r2 = Registry::default();
        r2.counter("c").add(5);
        r2.counter("only2").add(1);
        r2.histogram("h").record_ns(1000);
        let mut s = r1.snapshot();
        s.merge(&r2.snapshot());
        assert_eq!(s.counter("c"), 7);
        assert_eq!(s.counter("only2"), 1);
        match s.get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.min(), Duration::from_nanos(10));
                assert_eq!(h.max(), Duration::from_nanos(1000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sum_matching_spans_instances() {
        let r = Registry::default();
        r.counter("rkv.server0.gets").add(3);
        r.counter("rkv.server1.gets").add(4);
        r.counter("rkv.server1.hits").add(9);
        let s = r.snapshot();
        assert_eq!(s.sum_matching("rkv.server", ".gets"), 7);
        assert_eq!(s.sum_matching("rkv.server", ".hits"), 9);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            let sp = s.span("op", "test", 0, 0);
            assert!(!sp.is_recording());
            s.sleep(dur::us(5)).await;
            drop(sp);
        });
        assert_eq!(sim.tracer().event_count(), 0);
    }

    #[test]
    fn span_records_virtual_time_bounds() {
        let sim = Sim::new();
        sim.tracer().enable();
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(dur::us(3)).await;
            let sp = s.span("op", "test", 7, 42);
            s.sleep(dur::us(10)).await;
            drop(sp);
        });
        assert_eq!(sim.tracer().event_count(), 1);
        sim.tracer().for_each_event(|e| {
            assert_eq!(e.name, "op");
            assert_eq!(e.pid, 7);
            assert_eq!(e.tid, 42);
            assert_eq!(e.ts_ns, 3_000);
            assert_eq!(e.dur_ns, 10_000);
        });
    }

    #[test]
    fn chrome_export_is_monotone_and_valid_shape() {
        let sim = Sim::new();
        sim.tracer().enable();
        // record out of order on purpose: a later-started span can drop first
        let s = sim.clone();
        sim.block_on(async move {
            let a = s.span("outer", "test", 0, 0);
            s.sleep(dur::us(2)).await;
            let b = s.span("inner", "test", 0, 1);
            s.sleep(dur::us(1)).await;
            drop(b);
            drop(a);
        });
        let j = sim.tracer().export_chrome();
        assert!(j.contains("\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"X\""));
        // inner was recorded first (dropped first) but must export after
        // outer (ts 2.0 vs 0.0)
        let outer = j.find("\"outer\"").unwrap();
        let inner = j.find("\"inner\"").unwrap();
        assert!(outer < inner, "events must be sorted by ts");
    }

    #[test]
    fn tracing_does_not_perturb_virtual_time() {
        let run = |traced: bool| {
            let sim = Sim::new();
            if traced {
                sim.tracer().enable();
            }
            let s = sim.clone();
            sim.block_on(async move {
                for i in 0..50u64 {
                    let _sp = s.span("step", "test", 0, i);
                    s.sleep(dur::us(i)).await;
                }
                s.now()
            })
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
