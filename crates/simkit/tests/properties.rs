//! Property tests of the simulation core: time monotonicity under
//! arbitrary task graphs, FIFO resource conservation, histogram
//! percentile ordering, and channel delivery completeness.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use simkit::resource::FifoServer;
use simkit::stats::Histogram;
use simkit::sync::mpsc;
use simkit::{dur, Sim};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever tasks and sleeps are spawned, observed time never goes
    /// backwards and the final clock equals the maximum deadline.
    #[test]
    fn virtual_time_is_monotone(delays in proptest::collection::vec(0u64..10_000, 1..80)) {
        let sim = Sim::new();
        let observed = Rc::new(RefCell::new(Vec::new()));
        for &d in &delays {
            let s = sim.clone();
            let obs = Rc::clone(&observed);
            sim.spawn(async move {
                s.sleep(dur::us(d)).await;
                obs.borrow_mut().push(s.now());
            });
        }
        let end = sim.run();
        let obs = observed.borrow();
        prop_assert_eq!(obs.len(), delays.len());
        for w in obs.windows(2) {
            prop_assert!(w[0] <= w[1], "time went backwards");
        }
        let max = delays.iter().copied().max().unwrap();
        prop_assert_eq!(end, simkit::Time::from_micros(max));
        sim.reset();
    }

    /// A FIFO server is work-conserving: total busy time equals the sum of
    /// service demands, and the makespan equals that sum (single channel).
    #[test]
    fn fifo_server_conserves_work(jobs in proptest::collection::vec(1u64..5_000, 1..60)) {
        let sim = Sim::new();
        let srv = Rc::new(FifoServer::new(sim.clone(), 1e9, Duration::ZERO));
        for &j in &jobs {
            let srv = Rc::clone(&srv);
            sim.spawn(async move { srv.serve_for(dur::us(j)).await });
        }
        let end = sim.run();
        let total: u64 = jobs.iter().sum();
        prop_assert_eq!(end, simkit::Time::from_micros(total));
        let st = srv.stats();
        prop_assert_eq!(st.ops, jobs.len() as u64);
        prop_assert_eq!(st.busy, Duration::from_micros(total));
        sim.reset();
    }

    /// Every message sent is received exactly once, in send order per
    /// producer.
    #[test]
    fn mpsc_delivers_everything_once(
        counts in proptest::collection::vec(1usize..40, 1..6)
    ) {
        let sim = Sim::new();
        let (tx, mut rx) = mpsc::unbounded::<(usize, usize)>();
        for (p, &n) in counts.iter().enumerate() {
            let tx = tx.clone();
            let s = sim.clone();
            sim.spawn(async move {
                for i in 0..n {
                    s.sleep(dur::ns((p as u64 + 1) * 7 + i as u64 * 13)).await;
                    tx.try_send((p, i)).unwrap();
                }
            });
        }
        drop(tx);
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            while let Ok(m) = rx.recv().await {
                got2.borrow_mut().push(m);
            }
        });
        sim.run();
        let got = got.borrow();
        let total: usize = counts.iter().sum();
        prop_assert_eq!(got.len(), total);
        // per-producer order preserved
        for (p, &n) in counts.iter().enumerate() {
            let seq: Vec<usize> = got.iter().filter(|(pp, _)| *pp == p).map(|(_, i)| *i).collect();
            prop_assert_eq!(seq, (0..n).collect::<Vec<_>>());
        }
        sim.reset();
    }

    /// Histogram percentiles are monotone in q and bracketed by min/max.
    #[test]
    fn histogram_percentiles_monotone(samples in proptest::collection::vec(1u64..10_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record_ns(s);
        }
        let qs = [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0];
        let mut prev = Duration::ZERO;
        for q in qs {
            let v = h.percentile(q);
            prop_assert!(v >= prev, "p{q} < previous percentile");
            prop_assert!(v >= h.min() && v <= h.max());
            prev = v;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Zipf samples stay in range and rank frequencies are non-increasing
    /// in aggregate (first rank at least as popular as the last).
    #[test]
    fn zipf_in_range(n in 2usize..50, s in 0.1f64..2.0) {
        let rng = simkit::SimRng::seed_from(42);
        let z = simkit::Zipf::new(n, s);
        let mut counts = vec![0usize; n];
        for _ in 0..2000 {
            let r = z.sample(&rng);
            prop_assert!(r < n);
            counts[r] += 1;
        }
        prop_assert!(counts[0] >= counts[n - 1]);
    }
}
