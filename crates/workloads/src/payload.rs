//! Zero-copy synthetic payloads.
//!
//! Workload generators hand out slices of one shared pseudorandom pattern
//! buffer. Every storage layer in the workspace stores [`Bytes`] handles
//! (`storesim` segment maps) or bounded copies (the KV slab), so a
//! multi-gigabyte logical dataset costs megabytes of host memory while
//! remaining real, checkable byte content.

use bytes::Bytes;
use simkit::SimRng;

/// A shared pattern buffer that deals out arbitrary-length payloads.
#[derive(Clone)]
pub struct PayloadPool {
    pattern: Bytes,
}

impl PayloadPool {
    /// Build a pool with a pattern buffer of `pattern_len` pseudorandom
    /// bytes (seeded — identical across runs).
    pub fn new(seed: u64, pattern_len: usize) -> PayloadPool {
        let rng = SimRng::seed_from(seed);
        let mut buf = vec![0u8; pattern_len];
        rng.fill_bytes(&mut buf);
        PayloadPool {
            pattern: Bytes::from(buf),
        }
    }

    /// Default pool: 4 MiB of pattern.
    pub fn standard() -> PayloadPool {
        PayloadPool::new(0x9e3779b97f4a7c15, 4 << 20)
    }

    /// A payload of exactly `len` bytes, starting at a position derived
    /// from `cursor` so consecutive payloads differ. Zero-copy when `len`
    /// fits inside the pattern at the chosen offset; payloads larger than
    /// the pattern are stitched from pattern-sized slices by the caller via
    /// [`PayloadPool::stream`].
    pub fn slice(&self, cursor: u64, len: usize) -> Bytes {
        let plen = self.pattern.len();
        assert!(
            len <= plen,
            "slice() limited to the pattern length; use stream()"
        );
        let start = (cursor as usize * 8191) % (plen - len + 1);
        self.pattern.slice(start..start + len)
    }

    /// Deal `total` bytes as a sequence of zero-copy pieces of at most
    /// `piece` bytes (callers append them one by one).
    pub fn stream(&self, mut cursor: u64, total: u64, piece: usize) -> Vec<Bytes> {
        assert!(piece > 0 && piece <= self.pattern.len());
        let mut out = Vec::with_capacity((total as usize).div_ceil(piece));
        let mut remaining = total;
        while remaining > 0 {
            let take = (piece as u64).min(remaining) as usize;
            out.push(self.slice(cursor, take));
            cursor += 1;
            remaining -= take as u64;
        }
        out
    }

    /// Pattern length.
    pub fn pattern_len(&self) -> usize {
        self.pattern.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a = PayloadPool::new(7, 1 << 20);
        let b = PayloadPool::new(7, 1 << 20);
        assert_eq!(a.slice(3, 1000), b.slice(3, 1000));
        let c = PayloadPool::new(8, 1 << 20);
        assert_ne!(a.slice(3, 1000), c.slice(3, 1000));
    }

    #[test]
    fn consecutive_payloads_differ() {
        let p = PayloadPool::standard();
        assert_ne!(p.slice(0, 4096), p.slice(1, 4096));
    }

    #[test]
    fn stream_covers_total_exactly() {
        let p = PayloadPool::standard();
        let pieces = p.stream(0, 10 * 1_000_000 + 37, 1 << 20);
        let total: usize = pieces.iter().map(|b| b.len()).sum();
        assert_eq!(total, 10_000_037);
        assert!(pieces.iter().rev().skip(1).all(|b| b.len() == 1 << 20));
    }

    #[test]
    fn slices_share_backing_storage() {
        let p = PayloadPool::standard();
        let s = p.slice(0, 1 << 20);
        // zero-copy: the slice points into the pool's pattern allocation
        assert_eq!(s.len(), 1 << 20);
        // (Bytes::slice guarantees shared ownership; this is a smoke check
        // that no accidental to_vec() crept in — equality with the source)
        let again = p.slice(0, 1 << 20);
        assert_eq!(s, again);
    }
}
