//! Workload correctness tests plus "shape" tests: do the five systems
//! order the way the paper reports, at reduced scale?

use bb_core::Scheme;
use simkit::Time;

use crate::payload::PayloadPool;
use crate::randomwriter::{self, RandomWriterConfig};
use crate::sortbench::{self, SortConfig};
use crate::swim::{self, SwimConfig};
use crate::testbed::{SystemKind, Testbed, TestbedConfig};
use crate::testdfsio::{self, DfsioConfig};

/// Shape tests run at the calibrated default scale (16 nodes): the
/// HDFS/Lustre/BB balance is scale-dependent (Lustre is fixed
/// infrastructure, HDFS grows with the cluster), and the paper's ratios
/// hold at its default cluster size.
fn small_config() -> TestbedConfig {
    TestbedConfig::default()
}

fn dfsio_small() -> DfsioConfig {
    DfsioConfig {
        files: 16,
        file_size: 64 << 20,
        ..DfsioConfig::default()
    }
}

/// Write-then-read with full content verification on every system.
#[test]
fn dfsio_roundtrip_verifies_on_all_five_systems() {
    for kind in SystemKind::all_five() {
        let tb = Testbed::build(kind, small_config());
        let pool = PayloadPool::standard();
        let cfg = DfsioConfig {
            files: 4,
            file_size: 8 << 20,
            ..DfsioConfig::default()
        };
        let sim = tb.sim.clone();
        sim.block_on(async move {
            let fs_for = tb.fs_for();
            let w = testdfsio::write(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg)
                .await
                .unwrap();
            assert_eq!(w.bytes, 32 << 20);
            let r = testdfsio::read(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg, true)
                .await
                .unwrap();
            assert_eq!(r.bytes, 32 << 20);
            testdfsio::clean(&tb.nodes, &fs_for, &cfg).await.unwrap();
            tb.shutdown();
        });
    }
}

fn run_dfsio(kind: SystemKind, cfg: &DfsioConfig) -> (f64, f64) {
    let tb = Testbed::build(kind, small_config());
    let pool = PayloadPool::standard();
    let cfg = cfg.clone();
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let w = testdfsio::write(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .unwrap();
        let r = testdfsio::read(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg, false)
            .await
            .unwrap();
        tb.shutdown();
        (w.aggregate.mb_per_sec(), r.aggregate.mb_per_sec())
    })
}

/// The paper's headline write ordering (E3): BB-Async > Lustre > HDFS,
/// with BB ≥ ~2× HDFS and ≥ ~1.3× Lustre at this reduced scale.
#[test]
fn e3_shape_write_ordering() {
    let cfg = dfsio_small();
    let (hdfs_w, _) = run_dfsio(SystemKind::Hdfs, &cfg);
    let (lustre_w, _) = run_dfsio(SystemKind::Lustre, &cfg);
    let (bb_w, _) = run_dfsio(SystemKind::Bb(Scheme::AsyncLustre), &cfg);
    println!("E3 write MB/s: HDFS {hdfs_w:.0}, Lustre {lustre_w:.0}, BB-Async {bb_w:.0}");
    assert!(
        lustre_w > hdfs_w * 1.2,
        "Lustre ({lustre_w:.0}) should beat HDFS ({hdfs_w:.0})"
    );
    assert!(
        bb_w > hdfs_w * 2.0,
        "BB ({bb_w:.0}) should be ≥2x HDFS ({hdfs_w:.0})"
    );
    assert!(
        bb_w > lustre_w * 1.3,
        "BB ({bb_w:.0}) should be ≥1.3x Lustre ({lustre_w:.0})"
    );
}

/// The paper's read gain (E4): buffered reads far above both baselines.
#[test]
fn e4_shape_read_gain() {
    let cfg = dfsio_small();
    let (_, hdfs_r) = run_dfsio(SystemKind::Hdfs, &cfg);
    let (_, lustre_r) = run_dfsio(SystemKind::Lustre, &cfg);
    let (_, bb_r) = run_dfsio(SystemKind::Bb(Scheme::AsyncLustre), &cfg);
    println!("E4 read MB/s: HDFS {hdfs_r:.0}, Lustre {lustre_r:.0}, BB-Async {bb_r:.0}");
    assert!(
        bb_r > hdfs_r * 3.0,
        "BB read ({bb_r:.0}) should be ≥3x HDFS ({hdfs_r:.0})"
    );
    assert!(
        bb_r > lustre_r * 3.0,
        "BB read ({bb_r:.0}) should be ≥3x Lustre ({lustre_r:.0})"
    );
}

/// Scheme ordering (E8): async ≥ hybrid > sync on writes; all ≥ Lustre.
#[test]
fn e8_shape_scheme_write_ordering() {
    let cfg = dfsio_small();
    let (a, _) = run_dfsio(SystemKind::Bb(Scheme::AsyncLustre), &cfg);
    let (s, _) = run_dfsio(SystemKind::Bb(Scheme::SyncLustre), &cfg);
    let (h, _) = run_dfsio(SystemKind::Bb(Scheme::HybridLocality), &cfg);
    println!("E8 write MB/s: async {a:.0}, sync {s:.0}, hybrid {h:.0}");
    assert!(a > s, "async ({a:.0}) should beat sync ({s:.0})");
    assert!(
        a >= h * 0.95,
        "async ({a:.0}) should not lose to hybrid ({h:.0})"
    );
}

/// Sort (E7): burst buffer reduces end-to-end sort time vs both baselines.
#[test]
fn e7_shape_sort_ordering() {
    fn run_sort(kind: SystemKind) -> f64 {
        let tb = Testbed::build(kind, small_config());
        let pool = PayloadPool::standard();
        let cfg = SortConfig {
            data_size: 512 << 20,
            input_files: 8,
            reducers: 8,
            ..SortConfig::default()
        };
        let sim = tb.sim.clone();
        sim.block_on(async move {
            let fs_for = tb.fs_for();
            let r = sortbench::generate_and_sort(&tb.engine, &tb.nodes, &fs_for, &pool, &cfg)
                .await
                .unwrap();
            tb.shutdown();
            r.sort_time.as_secs_f64()
        })
    }
    let hdfs_t = run_sort(SystemKind::Hdfs);
    let lustre_t = run_sort(SystemKind::Lustre);
    let bb_t = run_sort(SystemKind::Bb(Scheme::AsyncLustre));
    println!("E7 sort secs: HDFS {hdfs_t:.2}, Lustre {lustre_t:.2}, BB-Async {bb_t:.2}");
    assert!(
        bb_t < hdfs_t,
        "BB sort ({bb_t:.2}s) should beat HDFS ({hdfs_t:.2}s)"
    );
    assert!(
        bb_t < lustre_t,
        "BB sort ({bb_t:.2}s) should beat Lustre ({lustre_t:.2}s)"
    );
}

/// Local storage (E9): HDFS ≈ 3× data, hybrid ≈ 1× data, async/sync ≈ 0.
#[test]
fn e9_local_storage_by_system() {
    let data = 4u64 << 20;
    for (kind, expect) in [
        (SystemKind::Hdfs, 3 * data),
        (SystemKind::Lustre, 0),
        (SystemKind::Bb(Scheme::AsyncLustre), 0),
        (SystemKind::Bb(Scheme::SyncLustre), 0),
        (SystemKind::Bb(Scheme::HybridLocality), data),
    ] {
        let tb = Testbed::build(kind, small_config());
        let pool = PayloadPool::standard();
        let sim = tb.sim.clone();
        let used = sim.block_on(async move {
            let fs_for = tb.fs_for();
            let w = fs_for(tb.nodes[0]).create("/e9/file").await.unwrap();
            for piece in pool.stream(0, data, 1 << 20) {
                w.append(piece).await.unwrap();
            }
            w.close().await.unwrap();
            tb.drain_flush(&["/e9/file".into()]).await;
            let used = tb.local_storage_used();
            tb.shutdown();
            used
        });
        assert_eq!(used, expect, "kind {kind:?}");
    }
}

#[test]
fn randomwriter_runs_and_orders() {
    fn run(kind: SystemKind) -> f64 {
        let tb = Testbed::build(kind, small_config());
        let pool = PayloadPool::standard();
        let cfg = RandomWriterConfig {
            bytes_per_node: 64 << 20,
            ..RandomWriterConfig::default()
        };
        let sim = tb.sim.clone();
        sim.block_on(async move {
            let fs_for = tb.fs_for();
            let r = randomwriter::run(&tb.sim, &tb.nodes, &fs_for, &pool, &cfg)
                .await
                .unwrap();
            tb.shutdown();
            r.elapsed.as_secs_f64()
        })
    }
    let h = run(SystemKind::Hdfs);
    let b = run(SystemKind::Bb(Scheme::AsyncLustre));
    println!("E6 randomwriter secs: HDFS {h:.2}, BB {b:.2}");
    assert!(b < h, "BB ({b:.2}s) should beat HDFS ({h:.2}s)");
}

#[test]
fn swim_trace_completes_with_sane_stats() {
    let tb = Testbed::build(SystemKind::Bb(Scheme::AsyncLustre), small_config());
    let pool = PayloadPool::standard();
    let cfg = SwimConfig {
        jobs: 6,
        min_input: 16 << 20,
        max_input: 128 << 20,
        ..SwimConfig::default()
    };
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        let r = swim::run(&tb.engine, &tb.nodes, &fs_for, &pool, &cfg)
            .await
            .unwrap();
        assert_eq!(r.jobs.len(), 6);
        assert!(r.makespan > std::time::Duration::ZERO);
        assert!(r.mean_job_time <= r.p95_job_time);
        assert!(r.p95_job_time <= r.makespan);
        tb.shutdown();
    });
    assert!(sim.now() > Time::ZERO);
}

#[test]
fn real_record_sort_small_scale_via_bench_path() {
    let tb = Testbed::build(SystemKind::Bb(Scheme::AsyncLustre), small_config());
    let cfg = SortConfig {
        data_size: 8 << 20,
        input_files: 4,
        reducers: 4,
        real_sort: true,
        ..SortConfig::default()
    };
    let records_per_file = (cfg.data_size / cfg.input_files as u64 / 100) as usize;
    let expected_total = (records_per_file * cfg.input_files * 100) as u64;
    let sim = tb.sim.clone();
    sim.block_on(async move {
        let fs_for = tb.fs_for();
        // real record input so the real sort has structure to sort
        for i in 0..cfg.input_files {
            sortbench::teragen_real(
                &fs_for(tb.nodes[i % tb.nodes.len()]),
                &format!("{}/part-{i:05}", cfg.input_dir),
                records_per_file,
                i as u64 + 1,
            )
            .await
            .unwrap();
        }
        let r = sortbench::sort(&tb.engine, &fs_for, &cfg).await.unwrap();
        assert_eq!(r.bytes, expected_total);
        // outputs exist and carry all the bytes back
        let mut total = 0;
        for p in 0..cfg.reducers {
            let f = fs_for(tb.nodes[0])
                .open(&format!("{}/part-{p:05}", cfg.output_dir))
                .await
                .unwrap();
            total += f.size();
        }
        assert_eq!(total, expected_total);
        tb.shutdown();
    });
}

#[test]
fn e11_more_kv_servers_scale_write_throughput() {
    fn run(servers: usize) -> f64 {
        let mut cfg = small_config();
        cfg.bb.kv_servers = servers;
        // push the client bottleneck out of the way so the buffer layer is
        // what limits throughput in this sweep
        cfg.bb.client_write_rate = 3.0e9;
        let tb = Testbed::build(SystemKind::Bb(Scheme::AsyncLustre), cfg);
        let pool = PayloadPool::standard();
        let dfsio = DfsioConfig {
            files: 16,
            file_size: 128 << 20,
            ..DfsioConfig::default()
        };
        let sim = tb.sim.clone();
        sim.block_on(async move {
            let fs_for = tb.fs_for();
            let w = testdfsio::write(&tb.sim, &tb.nodes, &fs_for, &pool, &dfsio)
                .await
                .unwrap();
            tb.shutdown();
            w.aggregate.mb_per_sec()
        })
    }
    let one = run(1);
    let four = run(4);
    println!("E11 write MB/s: 1 server {one:.0}, 4 servers {four:.0}");
    assert!(
        four > one * 2.0,
        "4 servers ({four:.0}) should scale well past 1 ({one:.0})"
    );
}
