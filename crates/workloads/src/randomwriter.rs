//! RandomWriter — Hadoop's bulk-ingest benchmark (experiment E6): a
//! map-only job where every node generates random records and writes them
//! straight to the DFS. Generation CPU is charged; payload bytes are
//! zero-copy pattern slices.

use std::time::Duration;

use bb_core::fs::{AnyFs, FsError};
use netsim::NodeId;
use simkit::future::join_all;
use simkit::{dur, Sim};

use crate::payload::PayloadPool;

/// RandomWriter parameters.
#[derive(Debug, Clone)]
pub struct RandomWriterConfig {
    /// Bytes generated per node (`mapreduce.randomwriter.bytespermap`).
    pub bytes_per_node: u64,
    /// Generator CPU throughput (random record synthesis).
    pub gen_rate: f64,
    /// Append granularity.
    pub io_size: u64,
    /// Output directory.
    pub dir: String,
}

impl Default for RandomWriterConfig {
    fn default() -> Self {
        RandomWriterConfig {
            bytes_per_node: 1 << 30,
            gen_rate: 300e6,
            io_size: 1 << 20,
            dir: "/benchmarks/RandomWriter".into(),
        }
    }
}

/// Outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWriterResult {
    /// Makespan.
    pub elapsed: Duration,
    /// Bytes written.
    pub bytes: u64,
}

/// Run RandomWriter across `nodes`.
pub async fn run(
    sim: &Sim,
    nodes: &[NodeId],
    fs_for: &dyn Fn(NodeId) -> AnyFs,
    pool: &PayloadPool,
    cfg: &RandomWriterConfig,
) -> Result<RandomWriterResult, FsError> {
    let t0 = sim.now();
    let mut tasks = Vec::new();
    for (i, &node) in nodes.iter().enumerate() {
        let fs = fs_for(node);
        let pool = pool.clone();
        let path = format!("{}/part-{i:05}", cfg.dir);
        let total = cfg.bytes_per_node;
        let io = cfg.io_size as usize;
        let gen_rate = cfg.gen_rate;
        let sim = sim.clone();
        tasks.push(async move {
            let w = fs.create(&path).await?;
            for piece in pool.stream(i as u64 * 7_919, total, io) {
                // random record generation costs CPU before each write
                sim.sleep(dur::transfer(piece.len() as u64, gen_rate)).await;
                w.append(piece).await?;
            }
            w.close().await?;
            Ok::<(), FsError>(())
        });
    }
    for r in join_all(sim, tasks).await {
        r?;
    }
    Ok(RandomWriterResult {
        elapsed: sim.now() - t0,
        bytes: cfg.bytes_per_node * nodes.len() as u64,
    })
}
