//! TestDFSIO — the canonical HDFS I/O throughput benchmark (the paper's
//! E3/E4/E5/E11 workload): N concurrent tasks each write (or read) one
//! file of a given size; the tool reports aggregate and per-task MB/s.

use std::time::Duration;

use bb_core::fs::{AnyFs, FsError};
use netsim::NodeId;
use simkit::future::join_all;
use simkit::stats::Throughput;
use simkit::Sim;

use crate::payload::PayloadPool;

/// Benchmark parameters (`-nrFiles`, `-fileSize` in the real tool).
#[derive(Debug, Clone)]
pub struct DfsioConfig {
    /// Number of files (one task per file, round-robin across nodes).
    pub files: usize,
    /// Size of each file.
    pub file_size: u64,
    /// I/O request size per append/read call.
    pub io_size: u64,
    /// Directory for benchmark files.
    pub dir: String,
}

impl Default for DfsioConfig {
    fn default() -> Self {
        DfsioConfig {
            files: 16,
            file_size: 1 << 30,
            io_size: 1 << 20,
            dir: "/benchmarks/TestDFSIO".into(),
        }
    }
}

impl DfsioConfig {
    /// Path of file `i`.
    pub fn path(&self, i: usize) -> String {
        format!("{}/io_data/test_io_{i}", self.dir)
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.files as u64 * self.file_size
    }
}

/// Benchmark outcome, in the shape TestDFSIO prints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfsioResult {
    /// Wall-clock makespan of the whole run.
    pub elapsed: Duration,
    /// Aggregate throughput: total bytes / makespan.
    pub aggregate: Throughput,
    /// "Throughput mb/sec" as TestDFSIO defines it: total bytes / sum of
    /// per-task I/O times.
    pub throughput_mbps: f64,
    /// "Average IO rate mb/sec": mean of per-task rates.
    pub avg_io_rate_mbps: f64,
    /// Bytes moved.
    pub bytes: u64,
}

async fn run_tasks<F, Fut>(
    sim: &Sim,
    files: usize,
    nodes: &[NodeId],
    make: F,
) -> Result<(Vec<Duration>, Duration), FsError>
where
    F: Fn(usize, NodeId) -> Fut,
    Fut: std::future::Future<Output = Result<Duration, FsError>> + 'static,
{
    let t0 = sim.now();
    let mut tasks = Vec::with_capacity(files);
    for i in 0..files {
        let node = nodes[i % nodes.len()];
        tasks.push(make(i, node));
    }
    let mut times = Vec::with_capacity(files);
    for r in join_all(sim, tasks).await {
        times.push(r?);
    }
    Ok((times, sim.now() - t0))
}

fn summarize(times: &[Duration], elapsed: Duration, total: u64, per_file: u64) -> DfsioResult {
    let sum_secs: f64 = times.iter().map(|t| t.as_secs_f64()).sum();
    let rates: Vec<f64> = times
        .iter()
        .map(|t| per_file as f64 / 1e6 / t.as_secs_f64().max(1e-12))
        .collect();
    DfsioResult {
        elapsed,
        aggregate: Throughput {
            bytes: total,
            elapsed,
        },
        throughput_mbps: total as f64 / 1e6 / sum_secs.max(1e-12),
        avg_io_rate_mbps: rates.iter().sum::<f64>() / rates.len().max(1) as f64,
        bytes: total,
    }
}

/// The write phase: every task streams one file through the DFS.
pub async fn write(
    sim: &Sim,
    nodes: &[NodeId],
    fs_for: &dyn Fn(NodeId) -> AnyFs,
    pool: &PayloadPool,
    cfg: &DfsioConfig,
) -> Result<DfsioResult, FsError> {
    let (times, elapsed) = run_tasks(sim, cfg.files, nodes, |i, node| {
        let fs = fs_for(node);
        let path = cfg.path(i);
        let pool = pool.clone();
        let file_size = cfg.file_size;
        let io = cfg.io_size as usize;
        let sim = sim.clone();
        async move {
            let t0 = sim.now();
            let w = fs.create(&path).await?;
            for piece in pool.stream(i as u64 * 1_000_003, file_size, io) {
                w.append(piece).await?;
            }
            w.close().await?;
            Ok(sim.now() - t0)
        }
    })
    .await?;
    Ok(summarize(&times, elapsed, cfg.total_bytes(), cfg.file_size))
}

/// The read phase: every task streams one file back. `verify` additionally
/// checks content against the generator (costly on the host; benchmarks
/// pass `false`, correctness tests pass `true`).
pub async fn read(
    sim: &Sim,
    nodes: &[NodeId],
    fs_for: &dyn Fn(NodeId) -> AnyFs,
    pool: &PayloadPool,
    cfg: &DfsioConfig,
    verify: bool,
) -> Result<DfsioResult, FsError> {
    let (times, elapsed) = run_tasks(sim, cfg.files, nodes, |i, node| {
        let fs = fs_for(node);
        let path = cfg.path(i);
        let pool = pool.clone();
        let file_size = cfg.file_size;
        let io = cfg.io_size;
        let sim = sim.clone();
        async move {
            let t0 = sim.now();
            let r = fs.open(&path).await?;
            assert_eq!(r.size(), file_size, "file size mismatch at {path}");
            let mut off = 0u64;
            let expected = if verify {
                pool.stream(i as u64 * 1_000_003, file_size, io as usize)
            } else {
                Vec::new()
            };
            let mut piece_idx = 0;
            while off < file_size {
                let len = io.min(file_size - off);
                let data = r.read_at(off, len).await?;
                assert_eq!(data.len() as u64, len);
                if verify {
                    assert_eq!(
                        data, expected[piece_idx],
                        "content mismatch at {path} offset {off}"
                    );
                }
                off += len;
                piece_idx += 1;
            }
            Ok(sim.now() - t0)
        }
    })
    .await?;
    Ok(summarize(&times, elapsed, cfg.total_bytes(), cfg.file_size))
}

/// Remove benchmark files (between phases of a sweep).
pub async fn clean(
    nodes: &[NodeId],
    fs_for: &dyn Fn(NodeId) -> AnyFs,
    cfg: &DfsioConfig,
) -> Result<(), FsError> {
    let fs = fs_for(nodes[0]);
    for i in 0..cfg.files {
        let _ = fs.delete(&cfg.path(i)).await;
    }
    Ok(())
}
