//! One-call deployment of a complete system under test: fabric, compute
//! nodes, the storage backend, and a MapReduce engine — the common rig
//! behind every experiment binary, example, and integration test.

use std::rc::Rc;

use netsim::{Fabric, NetConfig, NodeId};
use simkit::Sim;

use bb_core::fs::AnyFs;
use bb_core::{BbConfig, BbDeployment, Scheme};
use hdfs::{HdfsCluster, HdfsConfig};
use lustre::{LustreCluster, LustreConfig};
use mapred::{MrConfig, MrEngine};

/// Which storage system a testbed deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Plain HDFS on node-local disks.
    Hdfs,
    /// Plain Lustre.
    Lustre,
    /// The burst buffer in a given scheme.
    Bb(Scheme),
}

impl SystemKind {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Hdfs => "HDFS",
            SystemKind::Lustre => "Lustre",
            SystemKind::Bb(s) => s.label(),
        }
    }

    /// The five systems the paper compares, in table order.
    pub fn all_five() -> [SystemKind; 5] {
        [
            SystemKind::Hdfs,
            SystemKind::Lustre,
            SystemKind::Bb(Scheme::AsyncLustre),
            SystemKind::Bb(Scheme::SyncLustre),
            SystemKind::Bb(Scheme::HybridLocality),
        ]
    }
}

/// Testbed knobs shared by all systems.
#[derive(Debug, Clone, Copy)]
pub struct TestbedConfig {
    /// Compute nodes (DFS clients; HDFS DataNodes live here too).
    pub compute_nodes: usize,
    /// Lustre deployment.
    pub lustre: LustreConfig,
    /// HDFS deployment (when `SystemKind::Hdfs`).
    pub hdfs: HdfsConfig,
    /// Burst-buffer deployment (when `SystemKind::Bb`); `scheme` is
    /// overridden by the `SystemKind`.
    pub bb: BbConfig,
    /// MapReduce engine settings.
    pub mr: MrConfig,
    /// Fabric settings.
    pub net: NetConfig,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            compute_nodes: 16,
            // a mid-size shared Lustre: 2 OSS × 1 OST at 300 MB/s ≈ 600 MB/s
            // aggregate — ~1.7× the effective write bandwidth of 16
            // triple-replicating HDFS spindles, the balance the paper's
            // testbed exhibits at its default scale
            lustre: LustreConfig {
                oss_count: 2,
                osts_per_oss: 1,
                ost_rate: 300e6,
                ..LustreConfig::default()
            },
            hdfs: HdfsConfig::default(),
            // buffer sized to absorb the benchmark burst (the paper's BB
            // nodes hold the full TestDFSIO dataset in aggregate DRAM)
            bb: BbConfig {
                kv_servers: 4,
                kv_mem_per_server: 4 << 30,
                ..BbConfig::default()
            },
            mr: MrConfig::default(),
            net: NetConfig::default(),
        }
    }
}

/// A deployed system under test.
pub struct Testbed {
    /// The simulation.
    pub sim: Sim,
    /// The interconnect.
    pub fabric: Rc<Fabric>,
    /// Compute nodes.
    pub nodes: Vec<NodeId>,
    /// Which system this testbed runs.
    pub kind: SystemKind,
    /// Lustre (always present: it is the BB backing store and a baseline).
    pub lustre: Rc<LustreCluster>,
    /// HDFS (only for `SystemKind::Hdfs`).
    pub hdfs: Option<Rc<HdfsCluster>>,
    /// Burst buffer (only for `SystemKind::Bb`).
    pub bb: Option<Rc<BbDeployment>>,
    /// The MapReduce engine bound to the compute nodes.
    pub engine: Rc<MrEngine>,
}

impl Testbed {
    /// Deploy `kind` per `config`.
    pub fn build(kind: SystemKind, config: TestbedConfig) -> Testbed {
        let sim = Sim::new();
        let fabric = Fabric::new(sim.clone(), config.compute_nodes, config.net);
        let nodes: Vec<NodeId> = (0..config.compute_nodes as u32).map(NodeId).collect();
        let lustre = LustreCluster::deploy(&fabric, config.lustre);
        let hdfs = match kind {
            SystemKind::Hdfs => Some(HdfsCluster::deploy(&fabric, &nodes, config.hdfs)),
            _ => None,
        };
        let bb = match kind {
            SystemKind::Bb(scheme) => Some(BbDeployment::deploy(
                &fabric,
                Rc::clone(&lustre),
                &nodes,
                BbConfig {
                    scheme,
                    ..config.bb
                },
            )),
            _ => None,
        };
        let engine = MrEngine::new(Rc::clone(&fabric), nodes.clone(), config.mr);
        Testbed {
            sim,
            fabric,
            nodes,
            kind,
            lustre,
            hdfs,
            bb,
            engine,
        }
    }

    /// A DFS client factory for the deployed system.
    pub fn fs_for(&self) -> impl Fn(NodeId) -> AnyFs + '_ {
        move |node| match self.kind {
            SystemKind::Hdfs => AnyFs::Hdfs(self.hdfs.as_ref().expect("hdfs testbed").client(node)),
            SystemKind::Lustre => AnyFs::Lustre(self.lustre.client(node)),
            SystemKind::Bb(_) => AnyFs::Bb(self.bb.as_ref().expect("bb testbed").client(node)),
        }
    }

    /// Node-local storage consumed by the system (the E9 metric).
    pub fn local_storage_used(&self) -> u64 {
        match self.kind {
            SystemKind::Hdfs => self
                .hdfs
                .as_ref()
                .map(|h| h.local_storage_used())
                .unwrap_or(0),
            SystemKind::Lustre => 0,
            SystemKind::Bb(_) => self
                .bb
                .as_ref()
                .map(|b| b.local_storage_used())
                .unwrap_or(0),
        }
    }

    /// For burst-buffer systems: block until every named file is durable.
    pub async fn drain_flush(&self, paths: &[String]) {
        if let Some(bb) = &self.bb {
            let client = bb.client(self.nodes[0]);
            for p in paths {
                let _ = client.wait_flushed(p).await;
            }
        }
    }

    /// Stop background loops so the simulation can quiesce.
    pub fn shutdown(&self) {
        if let Some(h) = &self.hdfs {
            h.shutdown();
        }
        if let Some(b) = &self.bb {
            b.shutdown();
        }
    }
}

impl Drop for Testbed {
    fn drop(&mut self) {
        // break the executor↔task reference cycles so an abandoned
        // simulation releases its memory (server loops never complete on
        // their own — their mailboxes outlive the run by design)
        self.sim.reset();
    }
}
