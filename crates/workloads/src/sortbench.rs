//! TeraGen + Sort (experiment E7/E8): generate a keyed dataset on the DFS,
//! then sort it with the MapReduce engine — the workload whose end-to-end
//! time the paper reports improving by up to 28% over Lustre and 19% over
//! HDFS.

use std::rc::Rc;
use std::time::Duration;

use bb_core::fs::{AnyFs, FsError};
use mapred::logic::{RecordSortLogic, SyntheticShuffleLogic};
use mapred::{JobSpec, MrEngine};
use netsim::NodeId;
use simkit::future::join_all;
use simkit::{dur, Sim};

use crate::payload::PayloadPool;

/// Sort benchmark parameters.
#[derive(Debug, Clone)]
pub struct SortConfig {
    /// Total dataset size.
    pub data_size: u64,
    /// Input files (generated round-robin across nodes).
    pub input_files: usize,
    /// Reduce tasks.
    pub reducers: usize,
    /// Input directory.
    pub input_dir: String,
    /// Output directory.
    pub output_dir: String,
    /// Use the real record-sorting logic (small runs / correctness) rather
    /// than the synthetic shuffle-shaped logic (large benchmarks).
    pub real_sort: bool,
    /// TeraGen generation CPU rate.
    pub gen_rate: f64,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            data_size: 4 << 30,
            input_files: 16,
            reducers: 16,
            input_dir: "/benchmarks/sort/in".into(),
            output_dir: "/benchmarks/sort/out".into(),
            real_sort: false,
            gen_rate: 350e6,
        }
    }
}

/// Sort benchmark outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortResult {
    /// TeraGen phase time.
    pub gen_time: Duration,
    /// Sort job time (the number the paper reports).
    pub sort_time: Duration,
    /// Map-phase share of the sort job.
    pub map_phase: Duration,
    /// Map tasks that ran node-local.
    pub local_maps: usize,
    /// Total map tasks.
    pub maps: usize,
    /// Dataset size.
    pub bytes: u64,
}

/// Generate the input dataset (TeraGen).
pub async fn teragen(
    sim: &Sim,
    nodes: &[NodeId],
    fs_for: &dyn Fn(NodeId) -> AnyFs,
    pool: &PayloadPool,
    cfg: &SortConfig,
) -> Result<Duration, FsError> {
    let t0 = sim.now();
    let per_file = cfg.data_size / cfg.input_files as u64;
    let mut tasks = Vec::new();
    for i in 0..cfg.input_files {
        let node = nodes[i % nodes.len()];
        let fs = fs_for(node);
        let pool = pool.clone();
        let path = format!("{}/part-{i:05}", cfg.input_dir);
        let gen_rate = cfg.gen_rate;
        let sim = sim.clone();
        tasks.push(async move {
            let w = fs.create(&path).await?;
            for piece in pool.stream(i as u64 * 104_729, per_file, 1 << 20) {
                sim.sleep(dur::transfer(piece.len() as u64, gen_rate)).await;
                w.append(piece).await?;
            }
            w.close().await?;
            Ok::<(), FsError>(())
        });
    }
    for r in join_all(sim, tasks).await {
        r?;
    }
    Ok(sim.now() - t0)
}

/// Run the sort job over previously generated input.
pub async fn sort(
    engine: &Rc<MrEngine>,
    fs_for: &dyn Fn(NodeId) -> AnyFs,
    cfg: &SortConfig,
) -> Result<SortResult, FsError> {
    let inputs: Vec<String> = (0..cfg.input_files)
        .map(|i| format!("{}/part-{i:05}", cfg.input_dir))
        .collect();
    let logic: Rc<dyn mapred::JobLogic> = if cfg.real_sort {
        Rc::new(RecordSortLogic)
    } else {
        Rc::new(SyntheticShuffleLogic::sort())
    };
    let report = engine
        .run(
            fs_for,
            JobSpec {
                name: "sort".into(),
                inputs,
                output_dir: cfg.output_dir.clone(),
                reducers: cfg.reducers,
                logic,
            },
        )
        .await?;
    Ok(SortResult {
        gen_time: Duration::ZERO,
        sort_time: report.elapsed,
        map_phase: report.map_phase,
        local_maps: report.local_maps,
        maps: report.maps,
        bytes: report.bytes_read,
    })
}

/// TeraGen then Sort, returning both phase times.
pub async fn generate_and_sort(
    engine: &Rc<MrEngine>,
    nodes: &[NodeId],
    fs_for: &dyn Fn(NodeId) -> AnyFs,
    pool: &PayloadPool,
    cfg: &SortConfig,
) -> Result<SortResult, FsError> {
    let sim = engine.sim_handle();
    let gen_time = teragen(&sim, nodes, fs_for, pool, cfg).await?;
    let mut result = sort(engine, fs_for, cfg).await?;
    result.gen_time = gen_time;
    Ok(result)
}

/// Helper: write a real TeraSort-style record dataset (for `real_sort`
/// correctness runs) — 100-byte records with pseudorandom 10-byte keys.
pub async fn teragen_real(
    fs: &AnyFs,
    path: &str,
    n_records: usize,
    seed: u64,
) -> Result<(), FsError> {
    use bytes::{BufMut, BytesMut};
    let mut buf = BytesMut::with_capacity(n_records * 100);
    let mut x = seed | 1;
    for _ in 0..n_records {
        let mut rec = [0u8; 100];
        for b in rec.iter_mut().take(10) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 33) as u8;
        }
        buf.put_slice(&rec);
    }
    let w = fs.create(path).await?;
    w.append(buf.freeze()).await?;
    w.close().await?;
    Ok(())
}
