//! A SWIM-style mixed workload (experiment E10): a stream of MapReduce
//! jobs with heavy-tailed input sizes and Poisson arrivals, as produced by
//! the Facebook-trace-derived SWIM generator the paper's "I/O-intensive
//! workloads" section uses.

use std::rc::Rc;
use std::time::Duration;

use bb_core::fs::{AnyFs, FsError};
use mapred::logic::SyntheticShuffleLogic;
use mapred::{JobSpec, MrEngine};
use netsim::NodeId;
use simkit::future::join_all;
use simkit::{dur, SimRng};

use crate::payload::PayloadPool;
use crate::sortbench;

/// Trace parameters.
#[derive(Debug, Clone)]
pub struct SwimConfig {
    /// Number of jobs in the trace.
    pub jobs: usize,
    /// Mean interarrival time (exponential).
    pub mean_interarrival: Duration,
    /// Smallest job input.
    pub min_input: u64,
    /// Heavy-tail scale: job input = `min_input × exp(sample)` capped here.
    pub max_input: u64,
    /// Fraction of shuffle-heavy (sort-shaped) jobs; the rest aggregate.
    pub shuffle_heavy_fraction: f64,
    /// Reducers per job.
    pub reducers: usize,
    /// Workspace directory.
    pub dir: String,
    /// Trace seed.
    pub seed: u64,
}

impl Default for SwimConfig {
    fn default() -> Self {
        SwimConfig {
            jobs: 20,
            mean_interarrival: Duration::from_secs(4),
            min_input: 64 << 20,
            max_input: 2 << 30,
            shuffle_heavy_fraction: 0.3,
            reducers: 8,
            dir: "/benchmarks/swim".into(),
            seed: 0x5157_494d,
        }
    }
}

/// Trace outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SwimResult {
    /// Time from first arrival to last completion.
    pub makespan: Duration,
    /// Mean job latency (arrival → completion).
    pub mean_job_time: Duration,
    /// 95th-percentile job latency.
    pub p95_job_time: Duration,
    /// Per-job (input bytes, latency).
    pub jobs: Vec<(u64, Duration)>,
}

/// Generate inputs and replay the trace.
pub async fn run(
    engine: &Rc<MrEngine>,
    nodes: &[NodeId],
    fs_for: &dyn Fn(NodeId) -> AnyFs,
    pool: &PayloadPool,
    cfg: &SwimConfig,
) -> Result<SwimResult, FsError> {
    let sim = engine.sim_handle();
    let rng = SimRng::seed_from(cfg.seed);
    // plan the trace deterministically
    struct Planned {
        input: String,
        output: String,
        size: u64,
        arrival: Duration,
        shuffle_heavy: bool,
    }
    let mut plan = Vec::with_capacity(cfg.jobs);
    let mut arrival = Duration::ZERO;
    for j in 0..cfg.jobs {
        arrival += dur::secs_f64(rng.exp(cfg.mean_interarrival.as_secs_f64()));
        let size = ((cfg.min_input as f64) * rng.exp(1.0).exp()).min(cfg.max_input as f64) as u64;
        plan.push(Planned {
            input: format!("{}/in/job{j}", cfg.dir),
            output: format!("{}/out/job{j}", cfg.dir),
            size: size.max(cfg.min_input),
            arrival,
            shuffle_heavy: rng.chance(cfg.shuffle_heavy_fraction),
        });
    }
    // stage all inputs first (not timed as part of the trace)
    let mut gens = Vec::new();
    for (j, p) in plan.iter().enumerate() {
        let node = nodes[j % nodes.len()];
        let fs = fs_for(node);
        let pool = pool.clone();
        let path = p.input.clone();
        let size = p.size;
        gens.push(async move {
            let w = fs.create(&path).await?;
            for piece in pool.stream(path.len() as u64, size, 1 << 20) {
                w.append(piece).await?;
            }
            w.close().await?;
            Ok::<(), FsError>(())
        });
    }
    for r in join_all(&sim, gens).await {
        r?;
    }
    // replay arrivals
    let t0 = sim.now();
    let mut running = Vec::new();
    for p in plan {
        let engine = Rc::clone(engine);
        let input = p.input.clone();
        let output = p.output.clone();
        let size = p.size;
        let reducers = cfg.reducers;
        let shuffle_heavy = p.shuffle_heavy;
        let sim2 = sim.clone();
        let arrival = p.arrival;
        // fs_for is borrowed; materialize per-node clients up front
        let fses: Vec<AnyFs> = nodes.iter().map(|&n| fs_for(n)).collect();
        let nodes_v = nodes.to_vec();
        running.push(sim.spawn(async move {
            sim2.sleep(arrival).await;
            let started = sim2.now();
            let fs_local = move |n: NodeId| {
                let idx = nodes_v.iter().position(|x| *x == n).expect("engine node");
                fses[idx].clone()
            };
            let logic: Rc<dyn mapred::JobLogic> = if shuffle_heavy {
                Rc::new(SyntheticShuffleLogic::sort())
            } else {
                Rc::new(SyntheticShuffleLogic::aggregation(0.1))
            };
            engine
                .run(
                    &fs_local,
                    JobSpec {
                        name: output.clone(),
                        inputs: vec![input],
                        output_dir: output,
                        reducers,
                        logic,
                    },
                )
                .await?;
            Ok::<(u64, Duration), FsError>((size, sim2.now() - started))
        }));
    }
    let mut jobs = Vec::new();
    for r in join_all(&sim, running).await {
        jobs.push(r?);
    }
    let makespan = sim.now() - t0;
    let mut lat: Vec<Duration> = jobs.iter().map(|(_, d)| *d).collect();
    lat.sort_unstable();
    let mean = lat.iter().sum::<Duration>() / lat.len().max(1) as u32;
    let p95 = lat[((lat.len() as f64 * 0.95) as usize).min(lat.len() - 1)];
    Ok(SwimResult {
        makespan,
        mean_job_time: mean,
        p95_job_time: p95,
        jobs,
    })
}

/// Convenience: PUMA-style single-job drivers (WordCount / Grep) over a
/// staged text dataset — the other half of E10.
pub async fn stage_text(fs: &AnyFs, path: &str, approx_size: u64) -> Result<(), FsError> {
    use bytes::Bytes;
    // realistic-ish text: repeated vocabulary with line structure
    let line = "the quick brown fox jumps over the lazy dog while reading logs\n";
    let mut block = String::with_capacity(1 << 20);
    while block.len() < (1 << 20) - line.len() {
        block.push_str(line);
    }
    let block = Bytes::from(block);
    let w = fs.create(path).await?;
    let mut written = 0u64;
    while written < approx_size {
        w.append(block.clone()).await?;
        written += block.len() as u64;
    }
    w.close().await?;
    Ok(())
}

/// Re-export of the sort benchmark for E10 composition.
pub use sortbench::SortConfig;
