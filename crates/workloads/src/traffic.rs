//! Open-loop traffic engine: models 10^5–10^6 concurrent logical clients
//! cheaply in virtual time by generating the *aggregate arrival process*
//! of the population instead of simulating one task per client.
//!
//! A population of N independent Poisson clients each issuing at rate r
//! is statistically identical to a single Poisson stream at rate N·r, so
//! the engine draws per-tenant arrival events (Poisson or bursty MMPP),
//! attaches a Zipf-sampled key rank and an op class to each, and merges
//! the tenant streams into one time-ordered event sequence. The driver
//! dispatches events onto a small pool of simulated connections — the
//! logical-client count only shows up as the offered rate, which is what
//! an open-loop tail-latency experiment needs.
//!
//! Everything is a pure function of the spec and the seed: same seed,
//! byte-identical event stream.

use simkit::{SimRng, Zipf};

/// Arrival process of one tenant's aggregate request stream.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` ops/sec (exponential inter-arrivals) —
    /// the aggregate of a large population of independent steady clients.
    Poisson {
        /// Aggregate offered load, ops per second.
        rate: f64,
    },
    /// Two-state Markov-modulated Poisson process: the stream alternates
    /// between a burst state and an idle state, with exponentially
    /// distributed state holding times. Models synchronized client
    /// bursts (checkpoint waves, thundering herds).
    Mmpp {
        /// Ops per second while in the burst state.
        burst_rate: f64,
        /// Ops per second while in the idle state.
        idle_rate: f64,
        /// Mean holding time of the burst state, seconds.
        mean_burst_s: f64,
        /// Mean holding time of the idle state, seconds.
        mean_idle_s: f64,
    },
}

impl ArrivalProcess {
    /// Long-run average rate in ops/sec (Poisson rate, or the
    /// duty-cycle-weighted MMPP mean).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Mmpp {
                burst_rate,
                idle_rate,
                mean_burst_s,
                mean_idle_s,
            } => {
                let cycle = mean_burst_s + mean_idle_s;
                (burst_rate * mean_burst_s + idle_rate * mean_idle_s) / cycle
            }
        }
    }
}

/// One tenant's slice of the traffic mix.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    /// Tenant id carried on every event (0 is reserved for "untenanted").
    pub tenant: u32,
    /// Aggregate arrival process of this tenant's client population.
    pub arrivals: ArrivalProcess,
    /// Number of logical clients the stream stands for (documentation /
    /// reporting only — the aggregate rate already encodes it).
    pub logical_clients: u64,
    /// Keyspace size (ranks `0..keys`).
    pub keys: usize,
    /// Zipf skew over the keyspace (0.0 = uniform, 0.99 = YCSB-hot).
    pub skew: f64,
    /// Fraction of ops that are gets (the rest are sets).
    pub get_ratio: f64,
    /// Value size in bytes for set ops.
    pub value_size: usize,
}

/// A full traffic mix: one or more tenants sharing the tier.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// The tenant mix.
    pub tenants: Vec<TenantSpec>,
    /// Virtual-time horizon of the run, nanoseconds: events are generated
    /// for arrivals strictly before this time.
    pub horizon_ns: u64,
}

/// Operation class of one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// A read of the sampled key.
    Get,
    /// A write of `value_size` bytes to the sampled key.
    Set,
}

/// One arrival event of the merged open-loop stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpEvent {
    /// Virtual arrival time, nanoseconds.
    pub at_ns: u64,
    /// Tenant id of the issuing population.
    pub tenant: u32,
    /// Get or set.
    pub class: OpClass,
    /// Zipf rank of the key (0 = hottest).
    pub rank: usize,
    /// Value size for sets (0 for gets).
    pub value_size: usize,
}

impl OpEvent {
    /// Canonical key for this event's rank, namespaced per tenant.
    pub fn key(&self) -> String {
        format!("t{}-k{}", self.tenant, self.rank)
    }
}

/// Per-tenant generator state: the arrival-process phase plus the key and
/// class samplers, all on a forked rng stream so tenants are independent
/// and the merge order cannot perturb their draws.
struct TenantStream {
    spec: TenantSpec,
    zipf: Zipf,
    rng: SimRng,
    /// MMPP phase: currently bursting, and when the phase ends.
    in_burst: bool,
    phase_end_ns: u64,
    /// Next arrival of this stream, or `None` once past the horizon.
    next_at_ns: Option<u64>,
}

impl TenantStream {
    fn rate(&self) -> f64 {
        match self.spec.arrivals {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Mmpp {
                burst_rate,
                idle_rate,
                ..
            } => {
                if self.in_burst {
                    burst_rate
                } else {
                    idle_rate
                }
            }
        }
    }

    /// Advance `from_ns` by one exponential inter-arrival gap, crossing
    /// MMPP phase boundaries (the remaining gap restarts at the new rate —
    /// memorylessness makes the restart exact, not an approximation).
    fn draw_next(&mut self, from_ns: u64) -> u64 {
        let mut at = from_ns;
        loop {
            let rate = self.rate();
            if rate <= 0.0 {
                // silent phase: jump to the phase boundary
                at = self.phase_boundary(at);
                continue;
            }
            let gap_ns = self.rng.exp(1e9 / rate);
            let candidate = at + gap_ns as u64 + 1;
            if let ArrivalProcess::Mmpp { .. } = self.spec.arrivals {
                if candidate >= self.phase_end_ns {
                    // phase flips before the arrival lands: re-draw from
                    // the boundary at the new phase's rate
                    at = self.phase_boundary(at);
                    continue;
                }
            }
            return candidate;
        }
    }

    /// Flip the MMPP phase at `phase_end_ns` and draw the next holding
    /// time; returns the boundary time the arrival clock resumes from.
    fn phase_boundary(&mut self, _at: u64) -> u64 {
        let boundary = self.phase_end_ns;
        if let ArrivalProcess::Mmpp {
            mean_burst_s,
            mean_idle_s,
            ..
        } = self.spec.arrivals
        {
            self.in_burst = !self.in_burst;
            let mean = if self.in_burst {
                mean_burst_s
            } else {
                mean_idle_s
            };
            self.phase_end_ns = boundary + (self.rng.exp(mean * 1e9) as u64).max(1);
        }
        boundary
    }

    /// Sample the key rank and op class for an arrival.
    fn sample_op(&self) -> (usize, OpClass) {
        let rank = self.zipf.sample(&self.rng);
        let class = if self.rng.chance(self.spec.get_ratio) {
            OpClass::Get
        } else {
            OpClass::Set
        };
        (rank, class)
    }
}

/// Deterministic open-loop event generator: merges the per-tenant arrival
/// streams into one time-ordered sequence of [`OpEvent`]s.
pub struct TrafficEngine {
    streams: Vec<TenantStream>,
    horizon_ns: u64,
}

impl TrafficEngine {
    /// Build the engine from a spec and a parent rng. Each tenant gets a
    /// forked child stream (in tenant order), so the merged interleaving
    /// never perturbs any tenant's own draws.
    pub fn new(spec: &TrafficSpec, rng: &SimRng) -> Self {
        for t in &spec.tenants {
            match t.arrivals {
                ArrivalProcess::Poisson { rate } => {
                    assert!(rate > 0.0, "poisson tenant {} needs rate > 0", t.tenant)
                }
                ArrivalProcess::Mmpp {
                    burst_rate,
                    mean_burst_s,
                    mean_idle_s,
                    ..
                } => {
                    assert!(
                        burst_rate > 0.0 && mean_burst_s > 0.0 && mean_idle_s > 0.0,
                        "mmpp tenant {} needs burst_rate and both means > 0",
                        t.tenant
                    )
                }
            }
        }
        let streams = spec
            .tenants
            .iter()
            .map(|t| {
                let child = rng.fork();
                let mut stream = TenantStream {
                    spec: *t,
                    zipf: Zipf::new(t.keys.max(1), t.skew),
                    rng: child,
                    in_burst: false,
                    phase_end_ns: u64::MAX,
                    next_at_ns: None,
                };
                if let ArrivalProcess::Mmpp { mean_idle_s, .. } = t.arrivals {
                    // start idle; first boundary drawn from the idle mean
                    stream.phase_end_ns = (stream.rng.exp(mean_idle_s * 1e9) as u64).max(1);
                }
                let first = stream.draw_next(0);
                stream.next_at_ns = (first < spec.horizon_ns).then_some(first);
                stream
            })
            .collect();
        TrafficEngine {
            streams,
            horizon_ns: spec.horizon_ns,
        }
    }

    /// Next event of the merged stream, or `None` when every tenant is
    /// past the horizon. Ties break by tenant position (deterministic).
    pub fn next_event(&mut self) -> Option<OpEvent> {
        let (idx, at) = self
            .streams
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.next_at_ns.map(|t| (i, t)))
            .min_by_key(|&(i, t)| (t, i))?;
        let horizon = self.horizon_ns;
        let stream = &mut self.streams[idx];
        let (rank, class) = stream.sample_op();
        let ev = OpEvent {
            at_ns: at,
            tenant: stream.spec.tenant,
            class,
            rank,
            value_size: if class == OpClass::Set {
                stream.spec.value_size
            } else {
                0
            },
        };
        let next = stream.draw_next(at);
        stream.next_at_ns = (next < horizon).then_some(next);
        Some(ev)
    }

    /// All events with `at_ns < until_ns`, in order — the batching entry
    /// point: a driver wakes once per batch window instead of once per
    /// logical client.
    pub fn next_batch(&mut self, until_ns: u64) -> Vec<OpEvent> {
        let mut out = Vec::new();
        while let Some(at) = self.peek_at() {
            if at >= until_ns {
                break;
            }
            out.push(self.next_event().expect("peeked event exists"));
        }
        out
    }

    /// Arrival time of the next merged event, if any.
    pub fn peek_at(&self) -> Option<u64> {
        self.streams.iter().filter_map(|s| s.next_at_ns).min()
    }

    /// Drain the whole horizon into one vector (tests, offline analysis).
    pub fn collect_all(&mut self) -> Vec<OpEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event() {
            out.push(ev);
        }
        out
    }
}
