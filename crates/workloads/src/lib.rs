//! # workloads — the paper's benchmarks
//!
//! Implementations of every workload the evaluation uses, all driving the
//! unified [`bb_core::fs::AnyFs`] layer so the same code measures HDFS,
//! Lustre, and the three burst-buffer schemes:
//!
//! * [`testdfsio`] — the TestDFSIO write/read throughput benchmark (E3–E5,
//!   E11);
//! * [`randomwriter`] — RandomWriter bulk ingest (E6);
//! * [`sortbench`] — TeraGen + Sort (E7, E8);
//! * [`swim`] — a SWIM-style mixed job trace for the I/O-intensive
//!   workload experiment (E10);
//! * [`traffic`] — open-loop arrival-event engine (Poisson/MMPP, Zipf
//!   key popularity, tenant mixes) modeling 10^5–10^6 logical clients
//!   in virtual time (AB11);
//! * [`testbed`] — one-call deployment of a complete system under test;
//! * [`payload`] — zero-copy synthetic payload generation (slices of one
//!   shared pattern buffer, so multi-GiB logical datasets cost megabytes
//!   of host memory).

#![warn(missing_docs)]

pub mod payload;
pub mod randomwriter;
pub mod sortbench;
pub mod swim;
pub mod testbed;
pub mod testdfsio;
pub mod traffic;

pub use payload::PayloadPool;
pub use testbed::{SystemKind, Testbed, TestbedConfig};
pub use testdfsio::{DfsioConfig, DfsioResult};

#[cfg(test)]
mod tests;
