//! The NameNode: namespace, block map, rack-aware replica placement,
//! liveness tracking, and re-replication of under-replicated blocks.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;

use netsim::{NodeId, RackId, ReplyHandle, Switchboard};
use simkit::{SimRng, Time};

use crate::HdfsConfig;

/// Globally unique block identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

/// NameNode-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists.
    Exists(String),
    /// The file is not open for writing.
    NotUnderConstruction(String),
    /// Not enough live DataNodes to place replicas.
    NoDataNodes,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::NotFound(p) => write!(f, "no such file: {p}"),
            NnError::Exists(p) => write!(f, "file exists: {p}"),
            NnError::NotUnderConstruction(p) => write!(f, "file not open for write: {p}"),
            NnError::NoDataNodes => f.write_str("no live DataNodes"),
        }
    }
}
impl std::error::Error for NnError {}

/// One block's locations as reported to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLocation {
    /// Block id.
    pub id: BlockId,
    /// Committed length.
    pub len: u64,
    /// Nodes holding confirmed replicas.
    pub replicas: Vec<NodeId>,
}

/// Metadata returned by `Open`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInfo {
    /// Blocks in file order.
    pub blocks: Vec<BlockLocation>,
    /// Total file size.
    pub size: u64,
    /// Block size the file was written with.
    pub block_size: u64,
}

/// Commands the NameNode piggybacks on heartbeat replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnCommand {
    /// Copy `block` to `target` (the receiving DataNode holds a replica).
    Replicate {
        /// Block to copy.
        block: BlockId,
        /// Destination DataNode.
        target: NodeId,
    },
    /// Drop the local replica of `block`.
    Invalidate {
        /// Block to drop.
        block: BlockId,
    },
}

/// NameNode RPCs.
pub enum NnMsg {
    /// DataNode registration at startup.
    Register {
        /// The DataNode's node id.
        dn: NodeId,
        /// Reply channel.
        reply: ReplyHandle<()>,
    },
    /// Periodic liveness beacon; replies with pending commands.
    Heartbeat {
        /// The DataNode's node id.
        dn: NodeId,
        /// Reply channel.
        reply: ReplyHandle<Vec<NnCommand>>,
    },
    /// Create a file (under construction).
    Create {
        /// Absolute path.
        path: String,
        /// Replication factor override (0 = cluster default).
        replication: usize,
        /// Reply channel.
        reply: ReplyHandle<Result<(), NnError>>,
    },
    /// Allocate the next block and its pipeline.
    AddBlock {
        /// File being written.
        path: String,
        /// Writer's node (for local placement).
        writer: NodeId,
        /// Nodes to avoid (failed pipeline members).
        exclude: Vec<NodeId>,
        /// A failed block to drop from the file, if any.
        abandon: Option<BlockId>,
        /// Reply channel.
        reply: ReplyHandle<Result<(BlockId, Vec<NodeId>), NnError>>,
    },
    /// A DataNode confirms it stored a finalized block replica.
    BlockReceived {
        /// Reporting DataNode.
        dn: NodeId,
        /// The block.
        block: BlockId,
        /// Finalized length.
        len: u64,
    },
    /// Seal a file.
    Complete {
        /// File path.
        path: String,
        /// Final size.
        size: u64,
        /// Reply channel.
        reply: ReplyHandle<Result<(), NnError>>,
    },
    /// Fetch file metadata + block locations.
    Open {
        /// File path.
        path: String,
        /// Reply channel.
        reply: ReplyHandle<Result<FileInfo, NnError>>,
    },
    /// Remove a file (replicas invalidated lazily via heartbeats).
    Delete {
        /// File path.
        path: String,
        /// Reply channel.
        reply: ReplyHandle<Result<(), NnError>>,
    },
    /// List paths under a prefix.
    List {
        /// Path prefix.
        prefix: String,
        /// Reply channel.
        reply: ReplyHandle<Vec<String>>,
    },
}

struct FileEntry {
    blocks: Vec<BlockId>,
    replication: usize,
    size: u64,
    complete: bool,
}

struct BlockEntry {
    len: u64,
    replicas: Vec<NodeId>,
    /// Target replication (from the owning file).
    want: usize,
}

struct DnState {
    last_seen: Time,
    alive: bool,
}

/// NameNode counters for diagnostics and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NnStats {
    /// Files in the namespace.
    pub files: u64,
    /// Blocks tracked.
    pub blocks: u64,
    /// Blocks below their target replication.
    pub under_replicated: u64,
    /// DataNodes currently declared dead.
    pub dead_dns: u64,
    /// Re-replication commands issued.
    pub replications_issued: u64,
}

/// Mailbox service name.
pub const NN_SERVICE: &str = "hdfs-nn";

/// The NameNode process.
pub struct NameNode {
    node: NodeId,
    net: Rc<Switchboard<NnMsg>>,
    config: HdfsConfig,
    files: RefCell<HashMap<String, FileEntry>>,
    blocks: RefCell<HashMap<BlockId, BlockEntry>>,
    dns: RefCell<HashMap<NodeId, DnState>>,
    under_replicated: RefCell<BTreeSet<BlockId>>,
    invalidations: RefCell<HashMap<NodeId, Vec<BlockId>>>,
    next_block: RefCell<u64>,
    rng: SimRng,
    replications_issued: RefCell<u64>,
}

impl NameNode {
    /// Spawn the NameNode process on `node`.
    pub fn spawn(net: Rc<Switchboard<NnMsg>>, node: NodeId, config: HdfsConfig) -> Rc<NameNode> {
        let nn = Rc::new(NameNode {
            node,
            net: Rc::clone(&net),
            config,
            files: RefCell::new(HashMap::new()),
            blocks: RefCell::new(HashMap::new()),
            dns: RefCell::new(HashMap::new()),
            under_replicated: RefCell::new(BTreeSet::new()),
            invalidations: RefCell::new(HashMap::new()),
            next_block: RefCell::new(1),
            rng: SimRng::seed_from(0x4e4e ^ node.0 as u64),
            replications_issued: RefCell::new(0),
        });
        let mut rx = net.register(node, NN_SERVICE);
        let sim = net.fabric().sim().clone();
        let ops = sim.metrics().counter("hdfs.nn.ops");
        // namespace gauges piggyback on NnStats via sampled metrics
        for (name, pick) in [
            ("hdfs.nn.files", 0usize),
            ("hdfs.nn.blocks", 1),
            ("hdfs.nn.under_replicated", 2),
            ("hdfs.nn.replications_issued", 3),
        ] {
            let weak = Rc::downgrade(&nn);
            sim.metrics().sampled(name, move || {
                let s = weak.upgrade().map(|n| n.stats()).unwrap_or_default();
                simkit::telemetry::MetricValue::Counter(match pick {
                    0 => s.files,
                    1 => s.blocks,
                    2 => s.under_replicated,
                    _ => s.replications_issued,
                })
            });
        }
        let this = Rc::clone(&nn);
        sim.clone().spawn(async move {
            while let Ok(env) = rx.recv().await {
                let _sp = sim.span("nn.op", "hdfs", this.node.0, 0);
                ops.inc();
                sim.sleep(this.config.nn_service).await;
                this.handle(env.msg);
            }
        });
        nn
    }

    /// Fabric node of the NameNode.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Snapshot of counters.
    pub fn stats(&self) -> NnStats {
        NnStats {
            files: self.files.borrow().len() as u64,
            blocks: self.blocks.borrow().len() as u64,
            under_replicated: self.under_replicated.borrow().len() as u64,
            dead_dns: self.dns.borrow().values().filter(|d| !d.alive).count() as u64,
            replications_issued: *self.replications_issued.borrow(),
        }
    }

    /// Confirmed replica locations of `block` (diagnostic).
    pub fn replicas_of(&self, block: BlockId) -> Vec<NodeId> {
        self.blocks
            .borrow()
            .get(&block)
            .map(|b| b.replicas.clone())
            .unwrap_or_default()
    }

    fn now(&self) -> Time {
        self.net.fabric().sim().now()
    }

    fn rack(&self, node: NodeId) -> RackId {
        self.net.fabric().rack_of(node)
    }

    fn live_dns(&self) -> Vec<NodeId> {
        let dns = self.dns.borrow();
        let mut v: Vec<NodeId> = dns
            .iter()
            .filter(|(_, s)| s.alive)
            .map(|(n, _)| *n)
            .collect();
        v.sort();
        v
    }

    /// Rack-aware placement: writer-local first, then a different rack,
    /// then the second target's rack, then random.
    fn place(
        &self,
        writer: NodeId,
        count: usize,
        exclude: &[NodeId],
    ) -> Result<Vec<NodeId>, NnError> {
        let live = self.live_dns();
        let mut pool: Vec<NodeId> = live.into_iter().filter(|n| !exclude.contains(n)).collect();
        if pool.is_empty() {
            return Err(NnError::NoDataNodes);
        }
        let mut targets = Vec::with_capacity(count);
        // 1st: writer-local when the writer hosts a live DataNode
        if let Some(pos) = pool.iter().position(|n| *n == writer) {
            targets.push(pool.swap_remove(pos));
        } else if !pool.is_empty() {
            let i = self.rng.index(pool.len());
            targets.push(pool.swap_remove(i));
        }
        // 2nd: a different rack than the first, when possible
        if targets.len() < count && !pool.is_empty() {
            let first_rack = self.rack(targets[0]);
            let candidates: Vec<usize> = pool
                .iter()
                .enumerate()
                .filter(|(_, n)| self.rack(**n) != first_rack)
                .map(|(i, _)| i)
                .collect();
            let pick = if candidates.is_empty() {
                self.rng.index(pool.len())
            } else {
                candidates[self.rng.index(candidates.len())]
            };
            targets.push(pool.swap_remove(pick));
        }
        // 3rd: same rack as the second, when possible
        if targets.len() < count && !pool.is_empty() {
            let second_rack = self.rack(targets[1]);
            let candidates: Vec<usize> = pool
                .iter()
                .enumerate()
                .filter(|(_, n)| self.rack(**n) == second_rack)
                .map(|(i, _)| i)
                .collect();
            let pick = if candidates.is_empty() {
                self.rng.index(pool.len())
            } else {
                candidates[self.rng.index(candidates.len())]
            };
            targets.push(pool.swap_remove(pick));
        }
        // rest: random
        while targets.len() < count && !pool.is_empty() {
            let i = self.rng.index(pool.len());
            targets.push(pool.swap_remove(i));
        }
        if targets.is_empty() {
            Err(NnError::NoDataNodes)
        } else {
            Ok(targets)
        }
    }

    /// Mark silent DataNodes dead and queue their blocks for re-replication.
    fn check_liveness(&self) {
        let now = self.now();
        let mut newly_dead = Vec::new();
        {
            let mut dns = self.dns.borrow_mut();
            for (node, st) in dns.iter_mut() {
                if st.alive && now.since(st.last_seen) > self.config.dead_after {
                    st.alive = false;
                    newly_dead.push(*node);
                }
            }
        }
        if newly_dead.is_empty() {
            return;
        }
        let mut blocks = self.blocks.borrow_mut();
        let mut under = self.under_replicated.borrow_mut();
        for (id, entry) in blocks.iter_mut() {
            let before = entry.replicas.len();
            entry.replicas.retain(|n| !newly_dead.contains(n));
            if entry.replicas.len() < before && !entry.replicas.is_empty() {
                under.insert(*id);
            }
        }
    }

    /// Build commands for a heartbeating DataNode: invalidations plus up to
    /// a few re-replication orders for blocks it holds.
    fn commands_for(&self, dn: NodeId) -> Vec<NnCommand> {
        let mut out = Vec::new();
        if let Some(inv) = self.invalidations.borrow_mut().remove(&dn) {
            out.extend(inv.into_iter().map(|block| NnCommand::Invalidate { block }));
        }
        const MAX_REPLICATIONS_PER_BEAT: usize = 4;
        let mut issued = Vec::new();
        {
            let under = self.under_replicated.borrow();
            let blocks = self.blocks.borrow();
            for &block in under.iter() {
                if issued.len() >= MAX_REPLICATIONS_PER_BEAT {
                    break;
                }
                let Some(entry) = blocks.get(&block) else {
                    continue;
                };
                if !entry.replicas.contains(&dn) {
                    continue;
                }
                if entry.replicas.len() >= entry.want {
                    continue;
                }
                if let Ok(targets) = self.place(dn, 1, &entry.replicas) {
                    issued.push((block, targets[0]));
                }
            }
        }
        for (block, target) in issued {
            *self.replications_issued.borrow_mut() += 1;
            out.push(NnCommand::Replicate { block, target });
        }
        out
    }

    fn handle(&self, msg: NnMsg) {
        match msg {
            NnMsg::Register { dn, reply } => {
                self.dns.borrow_mut().insert(
                    dn,
                    DnState {
                        last_seen: self.now(),
                        alive: true,
                    },
                );
                reply.send((), 64);
            }
            NnMsg::Heartbeat { dn, reply } => {
                {
                    let mut dns = self.dns.borrow_mut();
                    if let Some(st) = dns.get_mut(&dn) {
                        st.last_seen = self.now();
                        // a heartbeat from a dead node revives it (restart)
                        st.alive = true;
                    }
                }
                self.check_liveness();
                let cmds = self.commands_for(dn);
                let bytes = 64 + cmds.len() as u64 * 24;
                reply.send(cmds, bytes);
            }
            NnMsg::Create {
                path,
                replication,
                reply,
            } => {
                let mut files = self.files.borrow_mut();
                let r = match files.entry(path) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        Err(NnError::Exists(e.key().clone()))
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let repl = if replication == 0 {
                            self.config.replication
                        } else {
                            replication
                        };
                        e.insert(FileEntry {
                            blocks: Vec::new(),
                            replication: repl,
                            size: 0,
                            complete: false,
                        });
                        Ok(())
                    }
                };
                reply.send(r, 64);
            }
            NnMsg::AddBlock {
                path,
                writer,
                exclude,
                abandon,
                reply,
            } => {
                let r = self.add_block(&path, writer, &exclude, abandon);
                reply.send(r, 256);
            }
            NnMsg::BlockReceived { dn, block, len } => {
                let mut blocks = self.blocks.borrow_mut();
                if let Some(entry) = blocks.get_mut(&block) {
                    entry.len = len;
                    if !entry.replicas.contains(&dn) {
                        entry.replicas.push(dn);
                    }
                    if entry.replicas.len() >= entry.want {
                        self.under_replicated.borrow_mut().remove(&block);
                    }
                }
            }
            NnMsg::Complete { path, size, reply } => {
                let mut files = self.files.borrow_mut();
                let r = match files.get_mut(&path) {
                    None => Err(NnError::NotFound(path)),
                    Some(f) if f.complete => Err(NnError::NotUnderConstruction(path)),
                    Some(f) => {
                        f.complete = true;
                        f.size = size;
                        Ok(())
                    }
                };
                reply.send(r, 64);
            }
            NnMsg::Open { path, reply } => {
                let files = self.files.borrow();
                let blocks = self.blocks.borrow();
                let r = match files.get(&path) {
                    None => Err(NnError::NotFound(path)),
                    Some(f) => Ok(FileInfo {
                        blocks: f
                            .blocks
                            .iter()
                            .map(|id| {
                                let e = blocks.get(id).expect("file block missing from map");
                                BlockLocation {
                                    id: *id,
                                    len: e.len,
                                    replicas: e.replicas.clone(),
                                }
                            })
                            .collect(),
                        size: f.size,
                        block_size: self.config.block_size,
                    }),
                };
                let bytes = 128 + r.as_ref().map(|i| i.blocks.len() as u64 * 48).unwrap_or(0);
                reply.send(r, bytes);
            }
            NnMsg::Delete { path, reply } => {
                let removed = self.files.borrow_mut().remove(&path);
                let r = match removed {
                    None => Err(NnError::NotFound(path)),
                    Some(f) => {
                        let mut blocks = self.blocks.borrow_mut();
                        let mut inv = self.invalidations.borrow_mut();
                        for id in f.blocks {
                            if let Some(e) = blocks.remove(&id) {
                                for dn in e.replicas {
                                    inv.entry(dn).or_default().push(id);
                                }
                            }
                            self.under_replicated.borrow_mut().remove(&id);
                        }
                        Ok(())
                    }
                };
                reply.send(r, 64);
            }
            NnMsg::List { prefix, reply } => {
                let mut v: Vec<String> = self
                    .files
                    .borrow()
                    .keys()
                    .filter(|p| p.starts_with(&prefix))
                    .cloned()
                    .collect();
                v.sort();
                let bytes = v.iter().map(|p| p.len() as u64 + 8).sum::<u64>().max(64);
                reply.send(v, bytes);
            }
        }
    }

    fn add_block(
        &self,
        path: &str,
        writer: NodeId,
        exclude: &[NodeId],
        abandon: Option<BlockId>,
    ) -> Result<(BlockId, Vec<NodeId>), NnError> {
        let mut files = self.files.borrow_mut();
        let f = files
            .get_mut(path)
            .ok_or_else(|| NnError::NotFound(path.to_owned()))?;
        if f.complete {
            return Err(NnError::NotUnderConstruction(path.to_owned()));
        }
        if let Some(bad) = abandon {
            f.blocks.retain(|b| *b != bad);
            self.blocks.borrow_mut().remove(&bad);
        }
        let targets = self.place(writer, f.replication, exclude)?;
        let id = {
            let mut nb = self.next_block.borrow_mut();
            let v = BlockId(*nb);
            *nb += 1;
            v
        };
        f.blocks.push(id);
        self.blocks.borrow_mut().insert(
            id,
            BlockEntry {
                len: 0,
                replicas: Vec::new(),
                want: f.replication,
            },
        );
        Ok((id, targets))
    }
}
