//! Crate-level behavioural tests: write/read paths, replication,
//! locality, failure handling, and re-replication.

use std::rc::Rc;

use bytes::Bytes;
use netsim::{Fabric, NetConfig, NodeId};
use simkit::{dur, Sim};

use crate::{HdfsCluster, HdfsConfig};

fn cluster(nodes: usize, config: HdfsConfig) -> (Sim, Rc<Fabric>, Rc<HdfsCluster>) {
    let sim = Sim::new();
    let fabric = Fabric::new(sim.clone(), nodes, NetConfig::default());
    let dns: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
    let hdfs = HdfsCluster::deploy(&fabric, &dns, config);
    (sim, fabric, hdfs)
}

fn small_block_config() -> HdfsConfig {
    HdfsConfig {
        block_size: 4 << 20,
        packet_size: 256 << 10,
        ..HdfsConfig::default()
    }
}

fn pattern(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i * 31 % 253) as u8).collect::<Vec<u8>>())
}

#[test]
fn write_read_roundtrip_multi_block() {
    let (sim, _f, hdfs) = cluster(4, small_block_config());
    let client = hdfs.client(NodeId(0));
    let data = pattern(10 << 20); // 2.5 blocks
    let expect = data.clone();
    let h = Rc::clone(&hdfs);
    sim.block_on(async move {
        let w = client.create("/data/f1").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        let r = client.open("/data/f1").await.unwrap();
        assert_eq!(r.size(), 10 << 20);
        assert_eq!(r.info().blocks.len(), 3); // 4+4+2 MiB
        let back = r.read_all().await.unwrap();
        assert_eq!(back, expect);
        h.shutdown();
    });
}

#[test]
fn blocks_are_triple_replicated() {
    let (sim, _f, hdfs) = cluster(5, small_block_config());
    let client = hdfs.client(NodeId(1));
    let h = Rc::clone(&hdfs);
    sim.block_on(async move {
        let w = client.create("/r3").await.unwrap();
        w.append(pattern(4 << 20)).await.unwrap();
        w.close().await.unwrap();
        let r = client.open("/r3").await.unwrap();
        for b in &r.info().blocks {
            assert_eq!(b.replicas.len(), 3, "block {:?}", b.id);
        }
        // the writer-local node holds a replica (pipeline stage 1); note
        // replica order reflects commit-ack order (tail first), not
        // pipeline order
        assert!(r.info().blocks[0].replicas.contains(&NodeId(1)));
        h.shutdown();
    });
    // local storage: 3 replicas of 4 MiB
    assert_eq!(hdfs.local_storage_used(), 3 * (4 << 20));
}

#[test]
fn replication_one_uses_single_replica() {
    let (sim, _f, hdfs) = cluster(4, small_block_config());
    let client = hdfs.client(NodeId(0));
    let h = Rc::clone(&hdfs);
    sim.block_on(async move {
        let w = client.create_with_replication("/r1", 1).await.unwrap();
        w.append(pattern(4 << 20)).await.unwrap();
        w.close().await.unwrap();
        let r = client.open("/r1").await.unwrap();
        assert_eq!(r.info().blocks[0].replicas.len(), 1);
        h.shutdown();
    });
    assert_eq!(hdfs.local_storage_used(), 4 << 20);
}

#[test]
fn partial_tail_block_roundtrips() {
    let (sim, _f, hdfs) = cluster(3, small_block_config());
    let client = hdfs.client(NodeId(2));
    let n = (4 << 20) + 12345;
    let data = pattern(n);
    let expect = data.clone();
    let h = Rc::clone(&hdfs);
    sim.block_on(async move {
        let w = client.create("/tail").await.unwrap();
        // dribble in odd-sized appends
        let mut rest = data;
        while !rest.is_empty() {
            let take = rest.len().min(700_001);
            w.append(rest.split_to(take)).await.unwrap();
        }
        w.close().await.unwrap();
        let r = client.open("/tail").await.unwrap();
        assert_eq!(r.size(), n as u64);
        assert_eq!(r.read_all().await.unwrap(), expect);
        h.shutdown();
    });
}

#[test]
fn read_at_random_offsets() {
    let (sim, _f, hdfs) = cluster(3, small_block_config());
    let client = hdfs.client(NodeId(0));
    let data = pattern(9 << 20);
    let expect = data.clone();
    let h = Rc::clone(&hdfs);
    sim.block_on(async move {
        let w = client.create("/ra").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        let r = client.open("/ra").await.unwrap();
        // crossing a block boundary
        let off = (4 << 20) - 1000;
        let got = r.read_at(off, 2000).await.unwrap();
        assert_eq!(&got[..], &expect[off as usize..off as usize + 2000]);
        h.shutdown();
    });
}

#[test]
fn local_read_beats_remote_read() {
    let (sim, _f, hdfs) = cluster(6, small_block_config());
    let writer_client = hdfs.client(NodeId(0));
    let h = Rc::clone(&hdfs);
    let s = sim.clone();
    sim.block_on(async move {
        let w = writer_client.create("/loc").await.unwrap();
        w.append(pattern(4 << 20)).await.unwrap();
        w.close().await.unwrap();
        // local reader (writer-local replica on node 0)
        let t0 = s.now();
        let r = writer_client.open("/loc").await.unwrap();
        r.read_all().await.unwrap();
        let local = s.now() - t0;
        // remote reader on a node with no replica
        let replicas = r.info().blocks[0].replicas.clone();
        let far = (0..6u32)
            .map(NodeId)
            .find(|n| !replicas.contains(n))
            .expect("some node has no replica");
        let remote_client = h.client(far);
        let t1 = s.now();
        let r2 = remote_client.open("/loc").await.unwrap();
        r2.read_all().await.unwrap();
        let remote = s.now() - t1;
        assert!(
            local < remote,
            "local read {local:?} should beat remote {remote:?}"
        );
        h.shutdown();
    });
}

#[test]
fn delete_invalidates_replicas_via_heartbeat() {
    let (sim, _f, hdfs) = cluster(3, small_block_config());
    let client = hdfs.client(NodeId(0));
    let h = Rc::clone(&hdfs);
    let s = sim.clone();
    sim.block_on(async move {
        let w = client.create("/gone").await.unwrap();
        w.append(pattern(4 << 20)).await.unwrap();
        w.close().await.unwrap();
        assert_eq!(h.local_storage_used(), 3 * (4 << 20));
        client.delete("/gone").await.unwrap();
        assert!(!client.exists("/gone").await.unwrap());
        // wait a couple of heartbeats for invalidation commands
        s.sleep(dur::secs(8)).await;
        assert_eq!(h.local_storage_used(), 0);
        h.shutdown();
    });
}

#[test]
fn writer_survives_pipeline_node_death() {
    let (sim, _f, hdfs) = cluster(6, small_block_config());
    let client = hdfs.client(NodeId(0));
    let h = Rc::clone(&hdfs);
    let data = pattern(8 << 20);
    let expect = data.clone();
    sim.block_on(async move {
        // kill a non-writer node before writing: the NameNode still lists
        // it (no missed heartbeat yet), so early pipelines may include it
        // and the writer must recover by re-placing the block.
        h.dn_on(NodeId(3)).unwrap().kill();
        let w = client.create("/survive").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        let r = client.open("/survive").await.unwrap();
        assert_eq!(r.read_all().await.unwrap(), expect);
        for b in &r.info().blocks {
            assert!(!b.replicas.contains(&NodeId(3)), "dead node in pipeline");
            assert_eq!(b.replicas.len(), 3);
        }
        h.shutdown();
    });
}

#[test]
fn dead_datanode_triggers_rereplication() {
    let (sim, _f, hdfs) = cluster(6, small_block_config());
    let client = hdfs.client(NodeId(0));
    let h = Rc::clone(&hdfs);
    let s = sim.clone();
    sim.block_on(async move {
        let w = client.create("/rerep").await.unwrap();
        w.append(pattern(4 << 20)).await.unwrap();
        w.close().await.unwrap();
        let r = client.open("/rerep").await.unwrap();
        let victim = r.info().blocks[0].replicas[0];
        h.dn_on(victim).unwrap().kill();
        // wait past dead_after (10s) plus heartbeat rounds for recovery
        s.sleep(dur::secs(30)).await;
        let r2 = client.open("/rerep").await.unwrap();
        let replicas = &r2.info().blocks[0].replicas;
        let live: Vec<_> = replicas.iter().filter(|n| **n != victim).collect();
        assert!(
            live.len() >= 3,
            "block not re-replicated: live replicas {live:?}"
        );
        assert_eq!(h.nn.stats().dead_dns, 1);
        assert!(h.nn.stats().replications_issued >= 1);
        // data still fully readable
        assert_eq!(r2.read_all().await.unwrap().len(), 4 << 20);
        h.shutdown();
    });
}

#[test]
fn replicas_span_racks_when_possible() {
    // 8 nodes in racks of 4: the default policy puts the 2nd replica off
    // the writer's rack and the 3rd on the 2nd's rack
    let sim = Sim::new();
    let fabric = Fabric::new(
        sim.clone(),
        8,
        netsim::NetConfig {
            nodes_per_rack: 4,
            ..netsim::NetConfig::default()
        },
    );
    let dns: Vec<NodeId> = (0..8u32).map(NodeId).collect();
    let hdfs = HdfsCluster::deploy(&fabric, &dns, small_block_config());
    let client = hdfs.client(NodeId(0));
    let h = Rc::clone(&hdfs);
    let f = Rc::clone(&fabric);
    sim.block_on(async move {
        for i in 0..6 {
            let w = client.create(&format!("/racks/f{i}")).await.unwrap();
            w.append(pattern(4 << 20)).await.unwrap();
            w.close().await.unwrap();
            let r = client.open(&format!("/racks/f{i}")).await.unwrap();
            for b in &r.info().blocks {
                let racks: std::collections::HashSet<_> =
                    b.replicas.iter().map(|n| f.rack_of(*n)).collect();
                assert!(
                    racks.len() >= 2,
                    "replicas of {:?} all on one rack: {:?}",
                    b.id,
                    b.replicas
                );
            }
        }
        h.shutdown();
    });
}

#[test]
fn concurrent_writers_to_distinct_files_all_complete() {
    let (sim, _f, hdfs) = cluster(6, small_block_config());
    let h = Rc::clone(&hdfs);
    let s = sim.clone();
    sim.block_on(async move {
        let mut handles = Vec::new();
        for n in 0..6u32 {
            let client = h.client(NodeId(n));
            handles.push(s.spawn(async move {
                let w = client.create(&format!("/par/f{n}")).await.unwrap();
                w.append(pattern(6 << 20)).await.unwrap();
                w.close().await.unwrap();
                let r = client.open(&format!("/par/f{n}")).await.unwrap();
                r.read_all().await.unwrap().len()
            }));
        }
        for hh in handles {
            assert_eq!(hh.await, 6 << 20);
        }
        assert_eq!(h.nn.stats().files, 6);
        // stop heartbeats so the simulation can quiesce
        h.shutdown();
    });
}

#[test]
fn list_and_exists() {
    let (sim, _f, hdfs) = cluster(3, small_block_config());
    let client = hdfs.client(NodeId(0));
    let h = Rc::clone(&hdfs);
    sim.block_on(async move {
        for p in ["/a/x", "/a/y", "/b/z"] {
            let w = client.create(p).await.unwrap();
            w.close().await.unwrap();
        }
        assert_eq!(client.list("/a/").await.unwrap().len(), 2);
        assert!(client.exists("/b/z").await.unwrap());
        assert!(!client.exists("/b/none").await.unwrap());
        h.shutdown();
    });
}

#[test]
fn triple_replication_slows_concurrent_writers() {
    // A single pipelined write hides replication cost; with every node
    // writing at once, 3× disk traffic per node dominates — the effect
    // that makes cluster-wide HDFS writes slow (TestDFSIO write, E3).
    fn run(replication: usize) -> f64 {
        let (sim, _f, hdfs) = cluster(6, small_block_config());
        let s = sim.clone();
        let h = Rc::clone(&hdfs);
        sim.block_on(async move {
            let mut handles = Vec::new();
            for n in 0..6u32 {
                let client = h.client(NodeId(n));
                handles.push(s.spawn(async move {
                    let w = client
                        .create_with_replication(&format!("/speed{n}"), replication)
                        .await
                        .unwrap();
                    w.append(pattern(16 << 20)).await.unwrap();
                    w.close().await.unwrap();
                }));
            }
            let t0 = s.now();
            for hh in handles {
                hh.await;
            }
            let dt = (s.now() - t0).as_secs_f64();
            h.shutdown();
            dt
        })
    }
    let one = run(1);
    let three = run(3);
    assert!(
        three > one * 1.8,
        "replication cost invisible under load: r1 {one:.3}s vs r3 {three:.3}s"
    );
}
