//! The DFS client: block-at-a-time pipelined writes with recovery, and
//! locality-aware reads.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use netsim::{NodeId, RpcError};
use simkit::future::join_all;
use simkit::sync::semaphore::Semaphore;

use crate::dn::{DnError, DnMsg, DN_SERVICE};
use crate::nn::{BlockId, FileInfo, NnError, NnMsg, NN_SERVICE};
use crate::HdfsCluster;

/// Client-visible failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdfsError {
    /// NameNode error.
    Nn(NnError),
    /// DataNode error.
    Dn(DnError),
    /// RPC failure.
    Rpc(RpcError),
    /// A block write failed on every pipeline attempt.
    WriteFailed(String),
    /// Every replica of a needed block was unreachable.
    AllReplicasFailed(BlockId),
}

impl fmt::Display for HdfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdfsError::Nn(e) => write!(f, "hdfs namenode: {e}"),
            HdfsError::Dn(e) => write!(f, "hdfs datanode: {e}"),
            HdfsError::Rpc(e) => write!(f, "hdfs rpc: {e}"),
            HdfsError::WriteFailed(p) => write!(f, "block write failed after retries: {p}"),
            HdfsError::AllReplicasFailed(b) => write!(f, "all replicas unreachable for {b}"),
        }
    }
}
impl std::error::Error for HdfsError {}

impl From<NnError> for HdfsError {
    fn from(e: NnError) -> Self {
        HdfsError::Nn(e)
    }
}
impl From<DnError> for HdfsError {
    fn from(e: DnError) -> Self {
        HdfsError::Dn(e)
    }
}
impl From<RpcError> for HdfsError {
    fn from(e: RpcError) -> Self {
        HdfsError::Rpc(e)
    }
}

/// A DFS client bound to one compute node.
#[derive(Clone)]
pub struct HdfsClient {
    cluster: Rc<HdfsCluster>,
    node: NodeId,
}

impl HdfsClient {
    /// Make a client on `node`.
    pub fn new(cluster: Rc<HdfsCluster>, node: NodeId) -> HdfsClient {
        HdfsClient { cluster, node }
    }

    /// The client's compute node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The cluster handle.
    pub fn cluster(&self) -> &Rc<HdfsCluster> {
        &self.cluster
    }

    async fn nn_call<R: 'static>(
        &self,
        bytes: u64,
        make: impl FnOnce(netsim::ReplyHandle<R>) -> NnMsg,
    ) -> Result<R, HdfsError> {
        Ok(self
            .cluster
            .nn_net
            .call(self.node, self.cluster.nn.node(), NN_SERVICE, bytes, make)
            .await?)
    }

    /// Create a file with the cluster's default replication.
    pub async fn create(&self, path: &str) -> Result<HdfsWriter, HdfsError> {
        self.create_with_replication(path, 0).await
    }

    /// Create a file with an explicit replication factor (0 = default).
    pub async fn create_with_replication(
        &self,
        path: &str,
        replication: usize,
    ) -> Result<HdfsWriter, HdfsError> {
        let p = path.to_owned();
        self.nn_call(128 + path.len() as u64, |reply| NnMsg::Create {
            path: p,
            replication,
            reply,
        })
        .await??;
        Ok(HdfsWriter::new(self.clone(), path.to_owned()))
    }

    /// Open a file for reading.
    pub async fn open(&self, path: &str) -> Result<HdfsReader, HdfsError> {
        let p = path.to_owned();
        let info = self
            .nn_call(128 + path.len() as u64, |reply| NnMsg::Open {
                path: p,
                reply,
            })
            .await??;
        Ok(HdfsReader {
            client: self.clone(),
            path: path.to_owned(),
            info,
        })
    }

    /// Whether `path` exists.
    pub async fn exists(&self, path: &str) -> Result<bool, HdfsError> {
        match self.open(path).await {
            Ok(_) => Ok(true),
            Err(HdfsError::Nn(NnError::NotFound(_))) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Delete a file (replicas reaped via heartbeat invalidation).
    pub async fn delete(&self, path: &str) -> Result<(), HdfsError> {
        let p = path.to_owned();
        self.nn_call(128 + path.len() as u64, |reply| NnMsg::Delete {
            path: p,
            reply,
        })
        .await??;
        Ok(())
    }

    /// List paths under `prefix`.
    pub async fn list(&self, prefix: &str) -> Result<Vec<String>, HdfsError> {
        let p = prefix.to_owned();
        self.nn_call(128 + prefix.len() as u64, |reply| NnMsg::List {
            prefix: p,
            reply,
        })
        .await
    }
}

/// Streaming writer: buffers a block's packets (zero-copy slices), then
/// pushes the block through its pipeline; recovers by re-placing the block
/// when a pipeline node fails.
pub struct HdfsWriter {
    client: HdfsClient,
    path: String,
    staged: RefCell<Vec<Bytes>>,
    staged_len: RefCell<u64>,
    total_len: RefCell<u64>,
    blocks_flushed: RefCell<u64>,
    closed: RefCell<bool>,
}

impl HdfsWriter {
    fn new(client: HdfsClient, path: String) -> HdfsWriter {
        HdfsWriter {
            client,
            path,
            staged: RefCell::new(Vec::new()),
            staged_len: RefCell::new(0),
            total_len: RefCell::new(0),
            blocks_flushed: RefCell::new(0),
            closed: RefCell::new(false),
        }
    }

    /// The file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Bytes accepted so far.
    pub fn len(&self) -> u64 {
        *self.total_len.borrow()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `data`; flushes a block whenever one fills.
    pub async fn append(&self, mut data: Bytes) -> Result<(), HdfsError> {
        assert!(!*self.closed.borrow(), "append after close");
        // client-side checksum/copy cost (serial per writer)
        let sim = self.client.cluster.dn_net.fabric().sim().clone();
        sim.sleep(simkit::dur::transfer(
            data.len() as u64,
            self.client.cluster.config.client_cpu_rate,
        ))
        .await;
        let block_size = self.client.cluster.config.block_size;
        *self.total_len.borrow_mut() += data.len() as u64;
        loop {
            let staged = *self.staged_len.borrow();
            let room = block_size - staged;
            if (data.len() as u64) < room {
                if !data.is_empty() {
                    self.staged.borrow_mut().push(data);
                    *self.staged_len.borrow_mut() += {
                        let v = self.staged.borrow();
                        v.last().map(|b| b.len() as u64).unwrap_or(0)
                    };
                }
                return Ok(());
            }
            let head = data.split_to(room as usize);
            self.staged.borrow_mut().push(head);
            *self.staged_len.borrow_mut() = block_size;
            self.flush_block().await?;
        }
    }

    /// Flush the staged (possibly partial) block through a pipeline.
    async fn flush_block(&self) -> Result<(), HdfsError> {
        let len = *self.staged_len.borrow();
        if len == 0 {
            return Ok(());
        }
        let packets = self.packetize();
        let mut exclude: Vec<NodeId> = Vec::new();
        let mut abandon: Option<BlockId> = None;
        const ATTEMPTS: usize = 3;
        for _ in 0..ATTEMPTS {
            let path = self.path.clone();
            let ex = exclude.clone();
            let ab = abandon.take();
            let writer = self.client.node;
            let (block, pipeline) = self
                .client
                .nn_call(256, |reply| NnMsg::AddBlock {
                    path,
                    writer,
                    exclude: ex,
                    abandon: ab,
                    reply,
                })
                .await??;
            match self.stream_block(block, &pipeline, &packets, len).await {
                Ok(()) => {
                    self.staged.borrow_mut().clear();
                    *self.staged_len.borrow_mut() = 0;
                    *self.blocks_flushed.borrow_mut() += 1;
                    return Ok(());
                }
                Err(_) => {
                    // blame the whole pipeline beyond us; the NameNode
                    // re-places from live nodes
                    for n in &pipeline {
                        if !exclude.contains(n) {
                            exclude.push(*n);
                        }
                    }
                    abandon = Some(block);
                }
            }
        }
        Err(HdfsError::WriteFailed(self.path.clone()))
    }

    /// Slice the staged data into packet-sized chunks (zero-copy).
    fn packetize(&self) -> Vec<Bytes> {
        let packet = self.client.cluster.config.packet_size as usize;
        let mut out = Vec::new();
        let mut cur = BytesMut::new();
        for b in self.staged.borrow().iter() {
            let mut b = b.clone();
            while !b.is_empty() {
                if cur.is_empty() && b.len() >= packet {
                    out.push(b.split_to(packet));
                } else {
                    let take = (packet - cur.len()).min(b.len());
                    cur.extend_from_slice(&b.split_to(take));
                    if cur.len() == packet {
                        out.push(std::mem::take(&mut cur).freeze());
                    }
                }
            }
        }
        if !cur.is_empty() {
            out.push(cur.freeze());
        }
        out
    }

    async fn stream_block(
        &self,
        block: BlockId,
        pipeline: &[NodeId],
        packets: &[Bytes],
        len: u64,
    ) -> Result<(), HdfsError> {
        let first = pipeline[0];
        let rest: Vec<NodeId> = pipeline[1..].to_vec();
        let window = Rc::new(Semaphore::new(
            self.client.cluster.config.write_window.max(1),
        ));
        let sim = self.client.cluster.dn_net.fabric().sim().clone();
        let mut futs = Vec::new();
        let mut offset = 0u64;
        for p in packets {
            let data = p.clone();
            let net = Rc::clone(&self.client.cluster.dn_net);
            let window = Rc::clone(&window);
            let src = self.client.node;
            let rest = rest.clone();
            let off = offset;
            offset += data.len() as u64;
            futs.push(async move {
                let _slot = window.acquire().await;
                let wire = data.len() as u64 + 64;
                let r: Result<(), DnError> = net
                    .call(src, first, DN_SERVICE, wire, |reply| DnMsg::WritePacket {
                        block,
                        offset: off,
                        data,
                        downstream: rest,
                        reply,
                    })
                    .await
                    .map_err(HdfsError::from)?;
                r.map_err(HdfsError::from)
            });
        }
        for r in join_all(&sim, futs).await {
            r?;
        }
        // finalize along the pipeline
        let r: Result<(), DnError> = self
            .client
            .cluster
            .dn_net
            .call(self.client.node, first, DN_SERVICE, 64, |reply| {
                DnMsg::CommitBlock {
                    block,
                    len,
                    downstream: rest,
                    reply,
                }
            })
            .await
            .map_err(HdfsError::from)?;
        r.map_err(HdfsError::from)
    }

    /// Flush the tail block and seal the file at the NameNode.
    pub async fn close(&self) -> Result<(), HdfsError> {
        assert!(!*self.closed.borrow(), "double close");
        self.flush_block().await?;
        *self.closed.borrow_mut() = true;
        let path = self.path.clone();
        let size = *self.total_len.borrow();
        self.client
            .nn_call(64, |reply| NnMsg::Complete { path, size, reply })
            .await??;
        Ok(())
    }
}

/// Reader with locality-aware replica selection.
pub struct HdfsReader {
    client: HdfsClient,
    path: String,
    info: FileInfo,
}

impl HdfsReader {
    /// The file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// File size.
    pub fn size(&self) -> u64 {
        self.info.size
    }

    /// Block metadata (for locality-aware scheduling).
    pub fn info(&self) -> &FileInfo {
        &self.info
    }

    /// Order replicas: local node, then local rack, then the rest.
    fn rank_replicas(&self, replicas: &[NodeId]) -> Vec<NodeId> {
        let fabric = self.client.cluster.dn_net.fabric();
        let me = self.client.node;
        let my_rack = fabric.rack_of(me);
        let mut ranked: Vec<NodeId> = replicas.to_vec();
        ranked.sort_by_key(|n| {
            if *n == me {
                0u8
            } else if fabric.rack_of(*n) == my_rack {
                1
            } else {
                2
            }
        });
        ranked
    }

    /// Read `len` bytes at `offset`, fetching each covered block portion
    /// from its best reachable replica.
    pub async fn read_at(&self, offset: u64, len: u64) -> Result<Bytes, HdfsError> {
        let block_size = self.info.block_size;
        let mut out = BytesMut::with_capacity(len as usize);
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let bi = (pos / block_size) as usize;
            let Some(loc) = self.info.blocks.get(bi) else {
                return Err(HdfsError::Dn(DnError::Store(
                    storesim::StoreError::OutOfRange,
                )));
            };
            let within = pos % block_size;
            let chunk = (block_size - within).min(end - pos).min(loc.len - within);
            let mut got = None;
            for replica in self.rank_replicas(&loc.replicas) {
                let r: Result<Result<Bytes, DnError>, RpcError> = self
                    .client
                    .cluster
                    .dn_net
                    .call(self.client.node, replica, DN_SERVICE, 64, |reply| {
                        DnMsg::ReadBlock {
                            block: loc.id,
                            offset: within,
                            len: chunk,
                            reply,
                        }
                    })
                    .await;
                if let Ok(Ok(data)) = r {
                    got = Some(data);
                    break;
                }
            }
            match got {
                Some(data) => {
                    // client-side checksum verification on read
                    let sim = self.client.cluster.dn_net.fabric().sim().clone();
                    sim.sleep(simkit::dur::transfer(
                        data.len() as u64,
                        self.client.cluster.config.client_cpu_rate,
                    ))
                    .await;
                    out.extend_from_slice(&data)
                }
                None => return Err(HdfsError::AllReplicasFailed(loc.id)),
            }
            pos += chunk;
        }
        Ok(out.freeze())
    }

    /// Read the entire file.
    pub async fn read_all(&self) -> Result<Bytes, HdfsError> {
        if self.info.size == 0 {
            return Ok(Bytes::new());
        }
        self.read_at(0, self.info.size).await
    }
}
