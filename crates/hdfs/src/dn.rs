//! DataNodes: local block storage, the replication pipeline, block serving,
//! heartbeats, and NameNode-commanded re-replication/invalidation.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;
use netsim::{NodeId, ReplyHandle, RpcError, Switchboard};
use storesim::{Disk, DiskParams, ObjectStore, StoreError};

use crate::nn::{BlockId, NnCommand, NnMsg, NN_SERVICE};
use crate::HdfsConfig;

/// DataNode-level failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnError {
    /// Local storage failure.
    Store(StoreError),
    /// Downstream pipeline failure.
    Pipeline,
    /// Block length mismatch at commit.
    Incomplete,
}

impl fmt::Display for DnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnError::Store(e) => write!(f, "datanode storage: {e}"),
            DnError::Pipeline => f.write_str("downstream pipeline failed"),
            DnError::Incomplete => f.write_str("block incomplete at commit"),
        }
    }
}
impl std::error::Error for DnError {}

impl From<StoreError> for DnError {
    fn from(e: StoreError) -> Self {
        DnError::Store(e)
    }
}
impl From<RpcError> for DnError {
    fn from(_: RpcError) -> Self {
        DnError::Pipeline
    }
}

/// DataNode data-transfer messages.
pub enum DnMsg {
    /// One packet of a block write; forwarded down `downstream`.
    WritePacket {
        /// Block being written.
        block: BlockId,
        /// Packet offset within the block.
        offset: u64,
        /// Packet payload.
        data: Bytes,
        /// Remaining pipeline after this node.
        downstream: Vec<NodeId>,
        /// Acked when local write + downstream ack complete.
        reply: ReplyHandle<Result<(), DnError>>,
    },
    /// Finalize a block along the pipeline.
    CommitBlock {
        /// Block to finalize.
        block: BlockId,
        /// Expected length.
        len: u64,
        /// Remaining pipeline after this node.
        downstream: Vec<NodeId>,
        /// Acked when the whole remaining pipeline committed.
        reply: ReplyHandle<Result<(), DnError>>,
    },
    /// Serve part of a block.
    ReadBlock {
        /// Block to read.
        block: BlockId,
        /// Offset within the block.
        offset: u64,
        /// Bytes to read.
        len: u64,
        /// Reply carries the data.
        reply: ReplyHandle<Result<Bytes, DnError>>,
    },
}

/// Mailbox service name for DataNode traffic.
pub const DN_SERVICE: &str = "hdfs-dn";

/// A DataNode process co-located with a compute node.
pub struct DataNode {
    node: NodeId,
    nn_node: NodeId,
    store: Rc<ObjectStore>,
    dn_net: Rc<Switchboard<DnMsg>>,
    nn_net: Rc<Switchboard<NnMsg>>,
    config: HdfsConfig,
    hb_running: Rc<Cell<bool>>,
    blocks_received: Cell<u64>,
    replications_done: Cell<u64>,
    read_bytes: simkit::telemetry::Counter,
    write_bytes: simkit::telemetry::Counter,
}

impl DataNode {
    /// Start a DataNode on `node`: registers with the NameNode, begins
    /// heartbeating, and serves data traffic.
    pub fn spawn(
        dn_net: Rc<Switchboard<DnMsg>>,
        nn_net: Rc<Switchboard<NnMsg>>,
        node: NodeId,
        nn_node: NodeId,
        config: HdfsConfig,
    ) -> Rc<DataNode> {
        let sim = dn_net.fabric().sim().clone();
        let disk = Disk::new(
            sim.clone(),
            DiskParams::of(config.dn_disk, config.dn_capacity),
        );
        let dn = Rc::new(DataNode {
            node,
            nn_node,
            store: ObjectStore::new(disk),
            dn_net: Rc::clone(&dn_net),
            nn_net,
            config,
            hb_running: Rc::new(Cell::new(true)),
            blocks_received: Cell::new(0),
            replications_done: Cell::new(0),
            read_bytes: sim
                .metrics()
                .counter(format!("hdfs.dn{}.read_bytes", node.0)),
            write_bytes: sim
                .metrics()
                .counter(format!("hdfs.dn{}.write_bytes", node.0)),
        });
        // data-traffic loop: handle each message concurrently (the disk
        // device serializes at the channel)
        let mut rx = dn_net.register(node, DN_SERVICE);
        let this = Rc::clone(&dn);
        sim.clone().spawn(async move {
            while let Ok(env) = rx.recv().await {
                let this = Rc::clone(&this);
                this.dn_net.fabric().sim().clone().spawn(async move {
                    this.handle(env.msg).await;
                });
            }
        });
        // registration + heartbeat loop
        let this = Rc::clone(&dn);
        sim.clone().spawn(async move {
            let _ = this
                .nn_net
                .call(this.node, this.nn_node, NN_SERVICE, 64, |reply| {
                    NnMsg::Register {
                        dn: this.node,
                        reply,
                    }
                })
                .await;
            this.heartbeat_loop().await;
        });
        dn
    }

    /// Fabric node this DataNode runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Local block store.
    pub fn store(&self) -> &Rc<ObjectStore> {
        &self.store
    }

    /// Finalized replicas received (writes + re-replications).
    pub fn blocks_received(&self) -> u64 {
        self.blocks_received.get()
    }

    /// Re-replication commands executed.
    pub fn replications_done(&self) -> u64 {
        self.replications_done.get()
    }

    /// Stop the heartbeat loop (cluster shutdown, or node crash).
    pub fn stop_heartbeat(&self) {
        self.hb_running.set(false);
    }

    /// Crash the node: heartbeats stop, the fabric endpoint goes down, and
    /// the local disk rejects I/O. Data remains for a later restart.
    pub fn kill(&self) {
        self.stop_heartbeat();
        self.dn_net.fabric().set_up(self.node, false);
        self.store.disk().set_online(false);
    }

    /// Restart after [`DataNode::kill`]: the fabric endpoint and disk come
    /// back and heartbeats resume (the NameNode revives it on first beat).
    pub fn restart(self: &Rc<Self>) {
        self.dn_net.fabric().set_up(self.node, true);
        self.store.disk().set_online(true);
        if !self.hb_running.get() {
            self.hb_running.set(true);
            let this = Rc::clone(self);
            self.dn_net
                .fabric()
                .sim()
                .clone()
                .spawn(async move { this.heartbeat_loop().await });
        }
    }

    async fn heartbeat_loop(self: &Rc<Self>) {
        let sim = self.dn_net.fabric().sim().clone();
        while self.hb_running.get() {
            sim.sleep(self.config.heartbeat).await;
            if !self.hb_running.get() {
                break;
            }
            let r = self
                .nn_net
                .call(self.node, self.nn_node, NN_SERVICE, 64, |reply| {
                    NnMsg::Heartbeat {
                        dn: self.node,
                        reply,
                    }
                })
                .await;
            if let Ok(commands) = r {
                for cmd in commands {
                    self.execute(cmd).await;
                }
            }
        }
    }

    async fn execute(self: &Rc<Self>, cmd: NnCommand) {
        match cmd {
            NnCommand::Invalidate { block } => {
                let _ = self.store.delete(block.0);
            }
            NnCommand::Replicate { block, target } => {
                let this = Rc::clone(self);
                let sim = self.dn_net.fabric().sim().clone();
                sim.spawn(async move {
                    if this.replicate(block, target).await.is_ok() {
                        this.replications_done.set(this.replications_done.get() + 1);
                    }
                });
            }
        }
    }

    /// Stream a local block to `target` (re-replication data path).
    async fn replicate(&self, block: BlockId, target: NodeId) -> Result<(), DnError> {
        let len = self.store.object_len(block.0)?;
        let mut off = 0u64;
        while off < len {
            let chunk = (self.config.packet_size).min(len - off);
            let data = self
                .store
                .read_at_opts(block.0, off, chunk, off == 0)
                .await?;
            let wire = data.len() as u64 + 64;
            self.dn_net
                .call(self.node, target, DN_SERVICE, wire, |reply| {
                    DnMsg::WritePacket {
                        block,
                        offset: off,
                        data,
                        downstream: Vec::new(),
                        reply,
                    }
                })
                .await??;
            off += chunk;
        }
        self.dn_net
            .call(self.node, target, DN_SERVICE, 64, |reply| {
                DnMsg::CommitBlock {
                    block,
                    len,
                    downstream: Vec::new(),
                    reply,
                }
            })
            .await??;
        Ok(())
    }

    async fn handle(self: &Rc<Self>, msg: DnMsg) {
        match msg {
            DnMsg::WritePacket {
                block,
                offset,
                data,
                downstream,
                reply,
            } => {
                self.write_bytes.add(data.len() as u64);
                let r = self.write_packet(block, offset, data, downstream).await;
                reply.send(r, 16);
            }
            DnMsg::CommitBlock {
                block,
                len,
                downstream,
                reply,
            } => {
                let r = self.commit_block(block, len, downstream).await;
                reply.send(r, 16);
            }
            DnMsg::ReadBlock {
                block,
                offset,
                len,
                reply,
            } => {
                self.read_bytes.add(len);
                let r = self
                    .store
                    .read_at_opts(block.0, offset, len, offset == 0)
                    .await
                    .map_err(DnError::from);
                let wire = match &r {
                    Ok(b) => b.len() as u64 + 64,
                    Err(_) => 64,
                };
                reply.send(r, wire);
            }
        }
    }

    async fn write_packet(
        self: &Rc<Self>,
        block: BlockId,
        offset: u64,
        data: Bytes,
        downstream: Vec<NodeId>,
    ) -> Result<(), DnError> {
        let sim = self.dn_net.fabric().sim().clone();
        // forward downstream concurrently with the local disk write
        let forward = if downstream.is_empty() {
            None
        } else {
            let next = downstream[0];
            let rest: Vec<NodeId> = downstream[1..].to_vec();
            let net = Rc::clone(&self.dn_net);
            let src = self.node;
            let fwd_data = data.clone();
            let wire = data.len() as u64 + 64;
            Some(sim.spawn(async move {
                net.call(src, next, DN_SERVICE, wire, |reply| DnMsg::WritePacket {
                    block,
                    offset,
                    data: fwd_data,
                    downstream: rest,
                    reply,
                })
                .await?
            }))
        };
        let local = self
            .store
            .write_at_opts(block.0, offset, data, offset == 0)
            .await
            .map_err(DnError::from);
        let down = match forward {
            None => Ok(()),
            Some(h) => h.await,
        };
        local?;
        down
    }

    async fn commit_block(
        self: &Rc<Self>,
        block: BlockId,
        len: u64,
        downstream: Vec<NodeId>,
    ) -> Result<(), DnError> {
        let have = self.store.object_len(block.0)?;
        if have != len {
            return Err(DnError::Incomplete);
        }
        if !downstream.is_empty() {
            let next = downstream[0];
            let rest: Vec<NodeId> = downstream[1..].to_vec();
            self.dn_net
                .call(self.node, next, DN_SERVICE, 64, |reply| {
                    DnMsg::CommitBlock {
                        block,
                        len,
                        downstream: rest,
                        reply,
                    }
                })
                .await??;
        }
        self.blocks_received.set(self.blocks_received.get() + 1);
        // incremental block report (fire-and-forget, like a real IBR)
        self.nn_net.post(
            self.node,
            self.nn_node,
            NN_SERVICE,
            48,
            NnMsg::BlockReceived {
                dn: self.node,
                block,
                len,
            },
        );
        Ok(())
    }
}
