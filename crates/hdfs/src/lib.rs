//! # hdfs — an HDFS simulator
//!
//! The distributed-filesystem baseline the paper compares against (and the
//! framework its burst buffer plugs into): a NameNode owning the namespace
//! and block map ([`nn`]), DataNodes co-located with compute nodes writing
//! replicated blocks to local disks through a pipeline ([`dn`]), and a
//! client with locality-aware reads and pipeline-recovering writes
//! ([`client`]).
//!
//! Fidelity notes:
//! * blocks are written through an `r`-stage pipeline with a bounded packet
//!   window, so write cost ≈ `r ×` disk traffic plus one network stream per
//!   stage — the behaviour that makes triple-replicated HDFS writes slow;
//! * reads prefer node-local, then rack-local replicas;
//! * DataNodes heartbeat; the NameNode declares silent nodes dead and
//!   re-replicates their blocks (exercised by the fault-tolerance
//!   experiment E12);
//! * Hadoop RPC and data transfer default to the IPoIB profile, which is
//!   how stock HDFS runs on an InfiniBand cluster.

#![warn(missing_docs)]

pub mod client;
pub mod dn;
pub mod nn;

use std::rc::Rc;
use std::time::Duration;

use netsim::{Fabric, NodeId, Switchboard, TransportProfile};
use simkit::dur;
use storesim::DiskKind;

pub use client::{HdfsClient, HdfsError, HdfsReader, HdfsWriter};
pub use dn::{DataNode, DnMsg};
pub use nn::{BlockId, FileInfo, NameNode, NnError, NnMsg};

/// Cluster-wide HDFS configuration.
#[derive(Debug, Clone, Copy)]
pub struct HdfsConfig {
    /// Block size (default 128 MiB).
    pub block_size: u64,
    /// Replication factor (default 3).
    pub replication: usize,
    /// Data-transfer packet size (64 KiB in Hadoop; 1 MiB here to keep the
    /// event count tractable — throughput is rate-bound either way).
    pub packet_size: u64,
    /// Packets a writer keeps in flight per pipeline stage.
    pub write_window: usize,
    /// DataNode local-disk technology.
    pub dn_disk: DiskKind,
    /// DataNode local-disk capacity.
    pub dn_capacity: u64,
    /// NameNode service time per RPC.
    pub nn_service: Duration,
    /// Heartbeat interval.
    pub heartbeat: Duration,
    /// Declare a DataNode dead after this much heartbeat silence.
    pub dead_after: Duration,
    /// Transport for RPC and data transfer (IPoIB on HPC clusters).
    pub transport: TransportProfile,
    /// Client-side per-byte CPU rate (checksumming + copies in the Java
    /// DFSClient). Rarely the bottleneck — local disks are slower.
    pub client_cpu_rate: f64,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            block_size: 128 << 20,
            replication: 3,
            packet_size: 1 << 20,
            write_window: 8,
            dn_disk: DiskKind::Hdd,
            dn_capacity: 2 << 40,
            nn_service: dur::us(50),
            heartbeat: dur::secs(3),
            dead_after: dur::secs(10),
            transport: TransportProfile::ipoib_qdr(),
            client_cpu_rate: 400e6,
        }
    }
}

/// A deployed HDFS instance: one NameNode plus DataNodes co-located with
/// the given compute nodes.
pub struct HdfsCluster {
    /// Cluster configuration.
    pub config: HdfsConfig,
    /// The NameNode.
    pub nn: Rc<NameNode>,
    /// DataNodes in deployment order.
    pub dns: Vec<Rc<DataNode>>,
    /// NameNode RPC switchboard.
    pub nn_net: Rc<Switchboard<NnMsg>>,
    /// DataNode data-transfer switchboard.
    pub dn_net: Rc<Switchboard<DnMsg>>,
}

impl HdfsCluster {
    /// Deploy on `fabric`: the NameNode gets a fresh node; a DataNode is
    /// started on every node in `datanodes`.
    pub fn deploy(
        fabric: &Rc<Fabric>,
        datanodes: &[NodeId],
        config: HdfsConfig,
    ) -> Rc<HdfsCluster> {
        assert!(!datanodes.is_empty(), "need at least one DataNode");
        assert!(config.replication >= 1);
        assert!(config.packet_size > 0 && config.block_size >= config.packet_size);
        let nn_node = fabric.add_node();
        let nn_net = Switchboard::new(Rc::clone(fabric), config.transport);
        let dn_net = Switchboard::new(Rc::clone(fabric), config.transport);
        let nn = NameNode::spawn(Rc::clone(&nn_net), nn_node, config);
        let dns: Vec<Rc<DataNode>> = datanodes
            .iter()
            .map(|&node| {
                DataNode::spawn(
                    Rc::clone(&dn_net),
                    Rc::clone(&nn_net),
                    node,
                    nn_node,
                    config,
                )
            })
            .collect();
        Rc::new(HdfsCluster {
            config,
            nn,
            dns,
            nn_net,
            dn_net,
        })
    }

    /// Make a client on `node`.
    pub fn client(self: &Rc<Self>, node: NodeId) -> HdfsClient {
        HdfsClient::new(Rc::clone(self), node)
    }

    /// Stop every background loop (heartbeats) so the simulation can
    /// quiesce. In-flight operations still complete.
    pub fn shutdown(&self) {
        for dn in &self.dns {
            dn.stop_heartbeat();
        }
    }

    /// Total bytes on DataNode local disks — the "local storage
    /// requirement" metric of experiment E9.
    pub fn local_storage_used(&self) -> u64 {
        self.dns.iter().map(|d| d.store().disk().used()).sum()
    }

    /// The DataNode running on `node`, if any.
    pub fn dn_on(&self, node: NodeId) -> Option<&Rc<DataNode>> {
        self.dns.iter().find(|d| d.node() == node)
    }
}

#[cfg(test)]
mod tests;
