//! The fabric: a set of nodes with full-duplex NICs connected by a
//! non-blocking core (the common shape of an HPC InfiniBand install).
//!
//! A transfer charges: per-message software overhead and serialization on
//! the sender's TX queue, propagation latency, and serialization on the
//! receiver's RX queue — with TX and RX windows overlapping (cut-through),
//! so an uncontended transfer takes `overhead + latency + bytes/bw` while
//! incast still queues on the receiver.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use simkit::resource::FifoServer;
use simkit::telemetry::{Counter, MetricValue};
use simkit::{dur, Sim};

use crate::params::{NetConfig, TransportProfile};

/// Logical node identifier within one fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Rack identifier (derived from node id and `nodes_per_rack`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RackId(pub u32);

/// Zone identifier (a pod of `racks_per_zone` racks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ZoneId(pub u32);

/// Geo-site identifier (`zones_per_geo` zones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GeoId(pub u32);

/// The smallest topology domain enclosing a pair of nodes. Ordered
/// `Local < Rack < Zone < Geo < Remote`, so placement policies can rank
/// candidates with plain comparisons — a smaller tier is a nearer peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TopoTier {
    /// Same node (loopback).
    Local,
    /// Same rack, different node.
    Rack,
    /// Same zone, different rack.
    Zone,
    /// Same geo site, different zone.
    Geo,
    /// Different geo sites (WAN).
    Remote,
}

/// Errors surfaced by the network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The source node is marked down.
    SrcDown(NodeId),
    /// The destination node is marked down.
    DstDown(NodeId),
    /// The node id does not exist in this fabric.
    UnknownNode(NodeId),
    /// The transfer was dropped by an injected fault (lossy edge). The
    /// time for the attempt was still charged, so retrying is safe and
    /// costs what a real retransmit would.
    Dropped,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::SrcDown(n) => write!(f, "source node {n} is down"),
            NetError::DstDown(n) => write!(f, "destination node {n} is down"),
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::Dropped => write!(f, "transfer dropped by injected fault"),
        }
    }
}
impl std::error::Error for NetError {}

struct NodeState {
    up: bool,
    tx: Rc<FifoServer>,
    rx: Rc<FifoServer>,
    tx_bytes: Counter,
    rx_bytes: Counter,
}

/// Per-fabric transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Completed transfers.
    pub transfers: u64,
    /// Payload bytes moved (excluding loopback).
    pub bytes: u64,
    /// Loopback (same-node) bytes.
    pub loopback_bytes: u64,
    /// Transfers rejected because an endpoint was down.
    pub failed: u64,
    /// Transfers dropped by an injected loss fault.
    pub dropped: u64,
}

/// A simulated cluster interconnect. Construct via [`Fabric::new`], then
/// address nodes by the [`NodeId`]s handed out at construction.
pub struct Fabric {
    sim: Sim,
    config: NetConfig,
    nodes: RefCell<Vec<NodeState>>,
    stats: RefCell<FabricStats>,
}

impl Fabric {
    /// Build a fabric of `n` nodes. Node ids are `0..n`.
    pub fn new(sim: Sim, n: usize, config: NetConfig) -> Rc<Fabric> {
        let fabric = Rc::new(Fabric {
            sim: sim.clone(),
            config,
            nodes: RefCell::new(Vec::new()),
            stats: RefCell::new(FabricStats::default()),
        });
        for _ in 0..n {
            fabric.add_node();
        }
        // fabric-level totals piggyback on FabricStats via sampled metrics
        // (weak capture: the registry lives inside the Sim this fabric holds)
        let weak = Rc::downgrade(&fabric);
        for (name, pick) in [
            ("netsim.fabric.transfers", 0usize),
            ("netsim.fabric.bytes", 1),
            ("netsim.fabric.loopback_bytes", 2),
            ("netsim.fabric.failed", 3),
            ("netsim.fabric.dropped", 4),
        ] {
            let w = weak.clone();
            sim.metrics().sampled(name, move || {
                let v = w.upgrade().map(|f| f.stats()).unwrap_or_default();
                MetricValue::Counter(match pick {
                    0 => v.transfers,
                    1 => v.bytes,
                    2 => v.loopback_bytes,
                    3 => v.failed,
                    _ => v.dropped,
                })
            });
        }
        // fault-plan node events map onto port state: a crash or link loss
        // takes the node's ports down, restart/link-up brings them back
        // (weak capture — the injector outlives any one fabric)
        let w = weak.clone();
        sim.faults().on_node_event(move |ev| {
            let Some(fabric) = w.upgrade() else { return };
            let idx = ev.node as usize;
            if idx >= fabric.len() {
                return; // plan targets a node this fabric never had
            }
            use simkit::faultplan::NodeEventKind as K;
            let up = matches!(ev.kind, K::Restart | K::LinkUp);
            fabric.set_up(NodeId(ev.node), up);
        });
        fabric
    }

    /// The simulation driving this fabric.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Fabric configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Add a node (e.g. grow the cluster mid-experiment); returns its id.
    pub fn add_node(&self) -> NodeId {
        let mut nodes = self.nodes.borrow_mut();
        let id = NodeId(nodes.len() as u32);
        nodes.push(NodeState {
            up: true,
            tx: Rc::new(FifoServer::new(
                self.sim.clone(),
                self.config.nic_bandwidth,
                std::time::Duration::ZERO,
            )),
            rx: Rc::new(FifoServer::new(
                self.sim.clone(),
                self.config.nic_bandwidth,
                std::time::Duration::ZERO,
            )),
            tx_bytes: self
                .sim
                .metrics()
                .counter(format!("netsim.link{}.tx_bytes", id.0)),
            rx_bytes: self
                .sim
                .metrics()
                .counter(format!("netsim.link{}.rx_bytes", id.0)),
        });
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the fabric has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.len() as u32).map(NodeId).collect()
    }

    /// Rack containing `node`.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        RackId(node.0 / self.config.nodes_per_rack as u32)
    }

    /// Zone containing `node` (`racks_per_zone` consecutive racks).
    pub fn zone_of(&self, node: NodeId) -> ZoneId {
        ZoneId(self.rack_of(node).0 / self.config.racks_per_zone as u32)
    }

    /// Geo site containing `node` (`zones_per_geo` consecutive zones).
    pub fn geo_of(&self, node: NodeId) -> GeoId {
        GeoId(self.zone_of(node).0 / self.config.zones_per_geo as u32)
    }

    /// The smallest topology domain enclosing both nodes.
    pub fn tier_between(&self, a: NodeId, b: NodeId) -> TopoTier {
        if a == b {
            TopoTier::Local
        } else if self.rack_of(a) == self.rack_of(b) {
            TopoTier::Rack
        } else if self.zone_of(a) == self.zone_of(b) {
            TopoTier::Zone
        } else if self.geo_of(a) == self.geo_of(b) {
            TopoTier::Geo
        } else {
            TopoTier::Remote
        }
    }

    /// Extra one-way latency the topology charges between two nodes: each
    /// boundary crossed adds its tier's hop cost (cross-rack adds
    /// `rack_latency`, cross-zone additionally `zone_latency`, cross-geo
    /// additionally `geo_latency`). Zero on the default flat fabric. This
    /// is the queryable cost model placement policies rank candidates by.
    pub fn topo_latency(&self, a: NodeId, b: NodeId) -> std::time::Duration {
        let mut extra = std::time::Duration::ZERO;
        if a == b || self.rack_of(a) == self.rack_of(b) {
            return extra;
        }
        extra += self.config.rack_latency;
        if self.zone_of(a) != self.zone_of(b) {
            extra += self.config.zone_latency;
            if self.geo_of(a) != self.geo_of(b) {
                extra += self.config.geo_latency;
            }
        }
        extra
    }

    /// Mark a node up/down. Transfers touching a down node fail.
    pub fn set_up(&self, node: NodeId, up: bool) {
        let mut nodes = self.nodes.borrow_mut();
        let idx = node.0 as usize;
        assert!(idx < nodes.len(), "unknown node {node}");
        nodes[idx].up = up;
    }

    /// Whether `node` is up.
    pub fn is_up(&self, node: NodeId) -> bool {
        let nodes = self.nodes.borrow();
        nodes.get(node.0 as usize).map(|n| n.up).unwrap_or(false)
    }

    fn endpoints(
        &self,
        src: NodeId,
        dst: NodeId,
    ) -> Result<(Rc<FifoServer>, Rc<FifoServer>), NetError> {
        let nodes = self.nodes.borrow();
        let s = nodes
            .get(src.0 as usize)
            .ok_or(NetError::UnknownNode(src))?;
        let d = nodes
            .get(dst.0 as usize)
            .ok_or(NetError::UnknownNode(dst))?;
        if !s.up {
            return Err(NetError::SrcDown(src));
        }
        if !d.up {
            return Err(NetError::DstDown(dst));
        }
        Ok((Rc::clone(&s.tx), Rc::clone(&d.rx)))
    }

    /// Move `bytes` from `src` to `dst` using `profile`, waiting out the
    /// modeled transfer time (including any queueing on either NIC).
    pub async fn transfer(
        self: &Rc<Self>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        profile: &TransportProfile,
    ) -> Result<(), NetError> {
        if src == dst {
            // loopback: kernel memcpy, no NIC involvement
            let p = TransportProfile::loopback();
            if !self.is_up(src) {
                self.stats.borrow_mut().failed += 1;
                return Err(NetError::SrcDown(src));
            }
            self.sim.sleep(p.uncontended_time(bytes)).await;
            let mut st = self.stats.borrow_mut();
            st.transfers += 1;
            st.loopback_bytes += bytes;
            return Ok(());
        }
        let (tx, rx) = match self.endpoints(src, dst) {
            Ok(v) => v,
            Err(e) => {
                self.stats.borrow_mut().failed += 1;
                return Err(e);
            }
        };
        let fault = self.sim.faults().transfer_fault(src.0, dst.0);
        // effective serialization rate: the slower of the transport's
        // payload bandwidth and the physical NIC, derated by any injected
        // slowdown on either endpoint
        let rate = profile.bandwidth.min(self.config.nic_bandwidth) * fault.bandwidth_factor;
        let ser = dur::transfer(bytes, rate);
        let overhead = profile.per_msg_overhead;
        let latency = profile.latency + fault.extra_delay + self.topo_latency(src, dst);
        if fault.drop {
            // lossy edge: the attempt still takes wire time before the
            // sender learns nothing arrived (NACK-style, never a silent
            // hang), but no payload moves and no NIC occupancy is charged
            self.sim.sleep(overhead + latency).await;
            self.stats.borrow_mut().dropped += 1;
            return Err(NetError::Dropped);
        }
        // TX and RX occupancy overlap (cut-through): run both concurrently.
        let sim = self.sim.clone();
        let rx_task = {
            let sim = sim.clone();
            self.sim.spawn(async move {
                sim.sleep(latency).await;
                rx.serve_for(ser).await;
            })
        };
        tx.serve_for(overhead + ser).await;
        rx_task.await;
        // endpoint may have died mid-transfer
        if !self.is_up(dst) {
            self.stats.borrow_mut().failed += 1;
            return Err(NetError::DstDown(dst));
        }
        if !self.is_up(src) {
            self.stats.borrow_mut().failed += 1;
            return Err(NetError::SrcDown(src));
        }
        let mut st = self.stats.borrow_mut();
        st.transfers += 1;
        st.bytes += bytes;
        drop(st);
        let nodes = self.nodes.borrow();
        nodes[src.0 as usize].tx_bytes.add(bytes);
        nodes[dst.0 as usize].rx_bytes.add(bytes);
        Ok(())
    }

    /// Snapshot of transfer statistics.
    pub fn stats(&self) -> FabricStats {
        *self.stats.borrow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Time;

    fn setup(n: usize) -> (Sim, Rc<Fabric>) {
        let sim = Sim::new();
        let fabric = Fabric::new(sim.clone(), n, NetConfig::default());
        (sim, fabric)
    }

    #[test]
    fn uncontended_transfer_time_matches_model() {
        let (sim, fabric) = setup(2);
        let p = TransportProfile::verbs_qdr();
        let s = sim.clone();
        let f = Rc::clone(&fabric);
        let t = sim.block_on(async move {
            f.transfer(NodeId(0), NodeId(1), 1 << 20, &p).await.unwrap();
            s.now()
        });
        let expect = p.uncontended_time(1 << 20);
        let got = t - Time::ZERO;
        let diff = (got.as_secs_f64() - expect.as_secs_f64()).abs();
        assert!(diff < 1e-6, "got {got:?}, expected {expect:?}");
    }

    #[test]
    fn two_senders_share_receiver_rx() {
        let (sim, fabric) = setup(3);
        let p = TransportProfile::verbs_qdr();
        let bytes = 100 << 20; // ~29 ms serialization each
        for src in [0u32, 1] {
            let f = Rc::clone(&fabric);
            sim.spawn(async move {
                f.transfer(NodeId(src), NodeId(2), bytes, &p).await.unwrap();
            });
        }
        let end = sim.run();
        let one = dur::transfer(bytes, p.bandwidth).as_secs_f64();
        // incast: receiver RX serializes the two flows → ~2× one transfer
        let got = end.as_secs_f64();
        assert!(got > 1.9 * one && got < 2.2 * one, "got {got}, one {one}");
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let (sim, fabric) = setup(4);
        let p = TransportProfile::verbs_qdr();
        let bytes = 100 << 20;
        for (s, d) in [(0u32, 1u32), (2, 3)] {
            let f = Rc::clone(&fabric);
            sim.spawn(async move {
                f.transfer(NodeId(s), NodeId(d), bytes, &p).await.unwrap();
            });
        }
        let end = sim.run();
        let one = p.uncontended_time(bytes).as_secs_f64();
        assert!((end.as_secs_f64() - one).abs() / one < 0.05);
    }

    #[test]
    fn down_node_rejects_transfers() {
        let (sim, fabric) = setup(2);
        fabric.set_up(NodeId(1), false);
        let p = TransportProfile::verbs_qdr();
        let f = Rc::clone(&fabric);
        let r = sim.block_on(async move { f.transfer(NodeId(0), NodeId(1), 100, &p).await });
        assert_eq!(r, Err(NetError::DstDown(NodeId(1))));
        assert_eq!(fabric.stats().failed, 1);
        assert_eq!(fabric.stats().transfers, 0);
    }

    #[test]
    fn node_recovers_after_set_up() {
        let (sim, fabric) = setup(2);
        fabric.set_up(NodeId(0), false);
        assert!(!fabric.is_up(NodeId(0)));
        fabric.set_up(NodeId(0), true);
        let p = TransportProfile::verbs_qdr();
        let f = Rc::clone(&fabric);
        let r = sim.block_on(async move { f.transfer(NodeId(0), NodeId(1), 100, &p).await });
        assert!(r.is_ok());
    }

    #[test]
    fn loopback_is_cheap_and_skips_nic() {
        let (sim, fabric) = setup(1);
        let p = TransportProfile::verbs_qdr();
        let f = Rc::clone(&fabric);
        sim.block_on(async move {
            f.transfer(NodeId(0), NodeId(0), 1 << 20, &p).await.unwrap();
        });
        let st = fabric.stats();
        assert_eq!(st.loopback_bytes, 1 << 20);
        assert_eq!(st.bytes, 0);
    }

    #[test]
    fn rack_assignment() {
        let sim = Sim::new();
        let fabric = Fabric::new(
            sim,
            40,
            NetConfig {
                nodes_per_rack: 16,
                ..NetConfig::default()
            },
        );
        assert_eq!(fabric.rack_of(NodeId(0)), RackId(0));
        assert_eq!(fabric.rack_of(NodeId(15)), RackId(0));
        assert_eq!(fabric.rack_of(NodeId(16)), RackId(1));
        assert_eq!(fabric.rack_of(NodeId(39)), RackId(2));
    }

    #[test]
    fn zone_and_geo_assignment() {
        let sim = Sim::new();
        // 2 nodes/rack, 2 racks/zone, 2 zones/geo → 4 nodes/zone, 8/geo
        let fabric = Fabric::new(
            sim,
            17,
            NetConfig {
                nodes_per_rack: 2,
                racks_per_zone: 2,
                zones_per_geo: 2,
                ..NetConfig::default()
            },
        );
        assert_eq!(fabric.zone_of(NodeId(0)), ZoneId(0));
        assert_eq!(fabric.zone_of(NodeId(3)), ZoneId(0));
        assert_eq!(fabric.zone_of(NodeId(4)), ZoneId(1));
        assert_eq!(fabric.geo_of(NodeId(7)), GeoId(0));
        assert_eq!(fabric.geo_of(NodeId(8)), GeoId(1));
        assert_eq!(fabric.geo_of(NodeId(16)), GeoId(2));
        // boundary tiers: neighbours across each domain edge
        assert_eq!(fabric.tier_between(NodeId(0), NodeId(0)), TopoTier::Local);
        assert_eq!(fabric.tier_between(NodeId(0), NodeId(1)), TopoTier::Rack);
        assert_eq!(fabric.tier_between(NodeId(1), NodeId(2)), TopoTier::Zone);
        assert_eq!(fabric.tier_between(NodeId(3), NodeId(4)), TopoTier::Geo);
        assert_eq!(fabric.tier_between(NodeId(7), NodeId(8)), TopoTier::Remote);
        // tiers rank: nearer peers compare smaller
        assert!(TopoTier::Local < TopoTier::Rack);
        assert!(TopoTier::Rack < TopoTier::Zone);
        assert!(TopoTier::Zone < TopoTier::Geo);
        assert!(TopoTier::Geo < TopoTier::Remote);
    }

    #[test]
    fn topo_latency_accumulates_per_boundary() {
        let sim = Sim::new();
        let fabric = Fabric::new(
            sim,
            16,
            NetConfig {
                nodes_per_rack: 2,
                racks_per_zone: 2,
                zones_per_geo: 2,
                rack_latency: dur::us(5),
                zone_latency: dur::us(50),
                geo_latency: dur::ms(10),
                ..NetConfig::default()
            },
        );
        let us = |n: u64| std::time::Duration::from_micros(n);
        assert_eq!(fabric.topo_latency(NodeId(0), NodeId(0)), us(0));
        assert_eq!(fabric.topo_latency(NodeId(0), NodeId(1)), us(0));
        assert_eq!(fabric.topo_latency(NodeId(0), NodeId(2)), us(5));
        assert_eq!(fabric.topo_latency(NodeId(0), NodeId(4)), us(55));
        assert_eq!(fabric.topo_latency(NodeId(0), NodeId(8)), us(10_055));
        // symmetric
        assert_eq!(
            fabric.topo_latency(NodeId(8), NodeId(0)),
            fabric.topo_latency(NodeId(0), NodeId(8))
        );
    }

    #[test]
    fn geo_stretch_charges_transfer_latency() {
        let sim = Sim::new();
        let fabric = Fabric::new(
            sim.clone(),
            4,
            NetConfig {
                nodes_per_rack: 1,
                racks_per_zone: 1,
                zones_per_geo: 2,
                geo_latency: dur::ms(2),
                ..NetConfig::default()
            },
        );
        let p = TransportProfile::verbs_qdr();
        let f = Rc::clone(&fabric);
        let s = sim.clone();
        let (near, far) = sim.block_on(async move {
            let t0 = s.now();
            f.transfer(NodeId(0), NodeId(1), 1 << 20, &p).await.unwrap();
            let near = s.now() - t0;
            let t1 = s.now();
            f.transfer(NodeId(0), NodeId(2), 1 << 20, &p).await.unwrap();
            (near, s.now() - t1)
        });
        let stretch = far.as_secs_f64() - near.as_secs_f64();
        // cross-geo pays exactly the configured extra one-way latency
        assert!((stretch - 0.002).abs() < 1e-6, "near {near:?}, far {far:?}");
    }

    #[test]
    fn flat_default_topology_charges_nothing() {
        // regression: the default NetConfig must keep the fabric flat —
        // cross-rack transfers pay exactly the transport model, as every
        // seeded experiment snapshot assumes
        let sim = Sim::new();
        let fabric = Fabric::new(
            sim.clone(),
            40,
            NetConfig {
                nodes_per_rack: 16,
                ..NetConfig::default()
            },
        );
        assert_ne!(fabric.rack_of(NodeId(0)), fabric.rack_of(NodeId(39)));
        assert_eq!(
            fabric.topo_latency(NodeId(0), NodeId(39)),
            std::time::Duration::ZERO
        );
        let p = TransportProfile::verbs_qdr();
        let f = Rc::clone(&fabric);
        let s = sim.clone();
        let t = sim.block_on(async move {
            f.transfer(NodeId(0), NodeId(39), 1 << 20, &p)
                .await
                .unwrap();
            s.now()
        });
        let expect = p.uncontended_time(1 << 20);
        let got = t - Time::ZERO;
        assert!((got.as_secs_f64() - expect.as_secs_f64()).abs() < 1e-6);
    }

    #[test]
    fn ipoib_slower_than_verbs_on_same_fabric() {
        let (sim, fabric) = setup(2);
        let bytes = 8 << 20;
        let f1 = Rc::clone(&fabric);
        let t_verbs = {
            let s = sim.clone();
            sim.block_on(async move {
                let t0 = s.now();
                f1.transfer(NodeId(0), NodeId(1), bytes, &TransportProfile::verbs_qdr())
                    .await
                    .unwrap();
                s.now() - t0
            })
        };
        let f2 = Rc::clone(&fabric);
        let t_ipoib = {
            let s = sim.clone();
            sim.block_on(async move {
                let t0 = s.now();
                f2.transfer(NodeId(0), NodeId(1), bytes, &TransportProfile::ipoib_qdr())
                    .await
                    .unwrap();
                s.now() - t0
            })
        };
        assert!(t_ipoib.as_secs_f64() / t_verbs.as_secs_f64() > 2.0);
    }

    #[test]
    fn faultplan_crash_takes_ports_down_and_restart_restores() {
        use simkit::faultplan::{FaultEvent, FaultPlan};
        let (sim, fabric) = setup(2);
        sim.install_faults(
            FaultPlan::new(5)
                .at(dur::ms(1), FaultEvent::Crash { node: 1 })
                .at(dur::ms(3), FaultEvent::Restart { node: 1 }),
        );
        let p = TransportProfile::verbs_qdr();
        let f = Rc::clone(&fabric);
        let s = sim.clone();
        let (mid, late) = sim.block_on(async move {
            s.sleep(dur::ms(2)).await;
            let mid = f.transfer(NodeId(0), NodeId(1), 64, &p).await;
            s.sleep(dur::ms(2)).await;
            let late = f.transfer(NodeId(0), NodeId(1), 64, &p).await;
            (mid, late)
        });
        assert_eq!(mid, Err(NetError::DstDown(NodeId(1))));
        assert!(late.is_ok());
    }

    #[test]
    fn lossy_edge_drops_deterministically_and_charges_time() {
        use simkit::faultplan::{FaultEvent, FaultPlan};
        let run = |seed: u64| {
            let (sim, fabric) = setup(2);
            sim.install_faults(FaultPlan::new(seed).at(
                std::time::Duration::ZERO,
                FaultEvent::Loss {
                    src: None,
                    dst: Some(1),
                    p: 0.5,
                },
            ));
            let f = Rc::clone(&fabric);
            let outcomes = sim.block_on(async move {
                let p = TransportProfile::verbs_qdr();
                let mut v = Vec::new();
                for _ in 0..32 {
                    v.push(f.transfer(NodeId(0), NodeId(1), 64, &p).await.is_ok());
                }
                v
            });
            (outcomes, fabric.stats().dropped, sim.now())
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed must reproduce drop pattern and clock");
        assert!(a.1 > 0, "p=0.5 over 32 transfers should drop some");
        assert!(a.0.iter().any(|ok| *ok), "and let some through");
    }

    #[test]
    fn degrade_slows_transfers() {
        use simkit::faultplan::{FaultEvent, FaultPlan};
        let time_with = |factor: f64| {
            let (sim, fabric) = setup(2);
            sim.install_faults(FaultPlan::new(0).at(
                std::time::Duration::ZERO,
                FaultEvent::Degrade { node: 1, factor },
            ));
            let f = Rc::clone(&fabric);
            let s = sim.clone();
            sim.block_on(async move {
                let p = TransportProfile::verbs_qdr();
                f.transfer(NodeId(0), NodeId(1), 8 << 20, &p).await.unwrap();
                s.now().as_secs_f64()
            })
        };
        let slow = time_with(0.25);
        let fast = time_with(1.0);
        assert!(slow / fast > 3.0, "slow {slow}, fast {fast}");
    }

    #[test]
    fn unknown_node_is_an_error() {
        let (sim, fabric) = setup(1);
        let p = TransportProfile::verbs_qdr();
        let f = Rc::clone(&fabric);
        let r = sim.block_on(async move { f.transfer(NodeId(0), NodeId(9), 1, &p).await });
        assert_eq!(r, Err(NetError::UnknownNode(NodeId(9))));
    }
}
