//! Message delivery and RPC on top of the fabric.
//!
//! A [`Switchboard`] is a registry of typed mailboxes keyed by
//! `(node, service)`. Posting a message models the wire transfer on the
//! fabric and then delivers the typed value into the destination mailbox —
//! data moves through Rust channels, time moves through the fabric model.
//!
//! Request/response is built from a oneshot carried inside the request;
//! [`ReplyHandle`] models the response's wire time on the way back.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use simkit::sync::{mpsc, oneshot};
use simkit::telemetry::Counter;
use simkit::OpId;

use crate::fabric::{Fabric, NetError, NodeId};
use crate::params::TransportProfile;

/// A delivered message with its origin.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// The message payload.
    pub msg: M,
}

/// RPC failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// The wire transfer failed (node down / unknown).
    Net(NetError),
    /// No mailbox is registered at the destination.
    ServiceUnavailable,
    /// The server dropped the reply handle without responding.
    NoReply,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Net(e) => write!(f, "rpc transport error: {e}"),
            RpcError::ServiceUnavailable => f.write_str("rpc service unavailable"),
            RpcError::NoReply => f.write_str("rpc server dropped the request"),
        }
    }
}
impl std::error::Error for RpcError {}

impl From<NetError> for RpcError {
    fn from(e: NetError) -> Self {
        RpcError::Net(e)
    }
}

type BoxKey = (NodeId, &'static str);

/// Typed mailbox registry + delivery over one transport profile.
pub struct Switchboard<M> {
    fabric: Rc<Fabric>,
    profile: TransportProfile,
    boxes: RefCell<HashMap<BoxKey, mpsc::Sender<Envelope<M>>>>,
    msgs: Counter,
    calls: Counter,
    undeliverable: Counter,
    dropped: Counter,
}

impl<M: 'static> Switchboard<M> {
    /// Create a switchboard carrying messages of type `M` over `profile`.
    /// All switchboards on one simulation share the `netsim.rpc.*` counters.
    pub fn new(fabric: Rc<Fabric>, profile: TransportProfile) -> Rc<Self> {
        let m = fabric.sim().metrics();
        let msgs = m.counter("netsim.rpc.msgs");
        let calls = m.counter("netsim.rpc.calls");
        let undeliverable = m.counter("netsim.rpc.undeliverable");
        let dropped = m.counter("netsim.rpc.dropped");
        Rc::new(Switchboard {
            fabric,
            profile,
            boxes: RefCell::new(HashMap::new()),
            msgs,
            calls,
            undeliverable,
            dropped,
        })
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Rc<Fabric> {
        &self.fabric
    }

    /// The transport profile used for every message on this switchboard.
    pub fn profile(&self) -> &TransportProfile {
        &self.profile
    }

    /// Register a mailbox for `service` on `node`, replacing any previous
    /// registration. Returns the receiving end.
    pub fn register(&self, node: NodeId, service: &'static str) -> mpsc::Receiver<Envelope<M>> {
        let (tx, rx) = mpsc::unbounded();
        self.boxes.borrow_mut().insert((node, service), tx);
        rx
    }

    /// Remove the mailbox for `service` on `node` (e.g. on process death).
    pub fn deregister(&self, node: NodeId, service: &'static str) {
        self.boxes.borrow_mut().remove(&(node, service));
    }

    /// Whether a mailbox exists.
    pub fn is_registered(&self, node: NodeId, service: &'static str) -> bool {
        self.boxes.borrow().contains_key(&(node, service))
    }

    /// Model the wire transfer of `wire_bytes` and deliver `msg` to the
    /// destination mailbox, waiting until delivery completes.
    pub async fn send(
        self: &Rc<Self>,
        src: NodeId,
        dst: NodeId,
        service: &'static str,
        wire_bytes: u64,
        msg: M,
    ) -> Result<(), RpcError> {
        if let Err(e) = self
            .fabric
            .transfer(src, dst, wire_bytes, &self.profile)
            .await
        {
            if e == NetError::Dropped {
                self.dropped.inc();
            }
            return Err(e.into());
        }
        let tx = {
            let boxes = self.boxes.borrow();
            boxes.get(&(dst, service)).cloned()
        };
        let Some(tx) = tx else {
            self.undeliverable.inc();
            return Err(RpcError::ServiceUnavailable);
        };
        self.msgs.inc();
        tx.try_send(Envelope { from: src, msg }).map_err(|_| {
            self.undeliverable.inc();
            RpcError::ServiceUnavailable
        })
    }

    /// Fire-and-forget [`Switchboard::send`]: spawns the delivery and
    /// returns immediately. Failures are silently dropped, like a datagram.
    pub fn post(
        self: &Rc<Self>,
        src: NodeId,
        dst: NodeId,
        service: &'static str,
        wire_bytes: u64,
        msg: M,
    ) {
        let sb = Rc::clone(self);
        self.fabric.sim().spawn(async move {
            let _ = sb.send(src, dst, service, wire_bytes, msg).await;
        });
    }

    /// Request/response: sends the request built by `make` (which receives
    /// the reply handle to embed in the message) and awaits the response.
    pub async fn call<R: 'static>(
        self: &Rc<Self>,
        src: NodeId,
        dst: NodeId,
        service: &'static str,
        req_bytes: u64,
        make: impl FnOnce(ReplyHandle<R>) -> M,
    ) -> Result<R, RpcError> {
        self.call_traced(src, dst, service, req_bytes, None, make)
            .await
    }

    /// [`Switchboard::call`] propagating a traced-op context: stamps
    /// `rpc.req_wire` once the request is delivered, `rpc.served` when the
    /// server answers through the embedded [`ReplyHandle`], and
    /// `rpc.reply` when the response lands back at the caller. With
    /// `op == None` this is exactly `call`.
    pub async fn call_traced<R: 'static>(
        self: &Rc<Self>,
        src: NodeId,
        dst: NodeId,
        service: &'static str,
        req_bytes: u64,
        op: Option<OpId>,
        make: impl FnOnce(ReplyHandle<R>) -> M,
    ) -> Result<R, RpcError> {
        self.calls.inc();
        let (tx, rx) = oneshot::channel();
        let handle = ReplyHandle {
            fabric: Rc::clone(&self.fabric),
            profile: self.profile,
            server: dst,
            client: src,
            op,
            tx,
        };
        self.send(src, dst, service, req_bytes, make(handle))
            .await?;
        self.fabric.sim().op_stamp(op, "rpc.req_wire");
        let out = rx.await.map_err(|_| RpcError::NoReply);
        if out.is_ok() {
            self.fabric.sim().op_stamp(op, "rpc.reply");
        }
        out
    }
}

/// Server-side handle used to answer one [`Switchboard::call`]. Models the
/// response's wire time back to the caller. Dropping it without replying
/// surfaces [`RpcError::NoReply`] at the caller.
pub struct ReplyHandle<R> {
    fabric: Rc<Fabric>,
    profile: TransportProfile,
    server: NodeId,
    client: NodeId,
    op: Option<OpId>,
    tx: oneshot::Sender<R>,
}

impl<R: 'static> ReplyHandle<R> {
    /// Node that issued the request.
    pub fn client(&self) -> NodeId {
        self.client
    }

    /// The traced-op context carried from [`Switchboard::call_traced`]
    /// (`None` for plain calls) — servers use it to stamp their own
    /// internal stages onto the caller's op.
    pub fn op(&self) -> Option<OpId> {
        self.op
    }

    /// Send `resp` of `wire_bytes` back to the caller. The transfer is
    /// spawned so the server loop is not blocked by the response wire time.
    pub fn send(self, resp: R, wire_bytes: u64) {
        let ReplyHandle {
            fabric,
            profile,
            server,
            client,
            op,
            tx,
        } = self;
        fabric.sim().op_stamp(op, "rpc.served");
        let sim = fabric.sim().clone();
        sim.spawn(async move {
            if fabric
                .transfer(server, client, wire_bytes, &profile)
                .await
                .is_ok()
            {
                let _ = tx.send(resp);
            }
            // on failure the oneshot drops → caller sees NoReply
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NetConfig;
    use simkit::{dur, Sim};

    enum Msg {
        Ping(ReplyHandle<u64>),
        Datagram(u32),
    }

    fn setup(n: usize) -> (Sim, Rc<Fabric>, Rc<Switchboard<Msg>>) {
        let sim = Sim::new();
        let fabric = Fabric::new(sim.clone(), n, NetConfig::default());
        let sb = Switchboard::new(Rc::clone(&fabric), TransportProfile::verbs_qdr());
        (sim, fabric, sb)
    }

    #[test]
    fn datagram_delivery() {
        let (sim, _fabric, sb) = setup(2);
        let mut rx = sb.register(NodeId(1), "svc");
        let sb2 = Rc::clone(&sb);
        sim.spawn(async move {
            sb2.send(NodeId(0), NodeId(1), "svc", 128, Msg::Datagram(7))
                .await
                .unwrap();
        });
        let env = sim.block_on(async move { rx.recv().await.unwrap() });
        assert_eq!(env.from, NodeId(0));
        assert!(matches!(env.msg, Msg::Datagram(7)));
    }

    #[test]
    fn call_round_trip_with_server_processing() {
        let (sim, _fabric, sb) = setup(2);
        let mut rx = sb.register(NodeId(1), "svc");
        // server loop
        let s = sim.clone();
        sim.spawn(async move {
            while let Ok(env) = rx.recv().await {
                if let Msg::Ping(reply) = env.msg {
                    s.sleep(dur::us(5)).await; // processing time
                    reply.send(s.now().as_nanos(), 64);
                }
            }
        });
        let sb2 = Rc::clone(&sb);
        let s2 = sim.clone();
        let (resp, elapsed) = sim.block_on(async move {
            let t0 = s2.now();
            let r = sb2
                .call(NodeId(0), NodeId(1), "svc", 128, Msg::Ping)
                .await
                .unwrap();
            (r, s2.now() - t0)
        });
        assert!(resp > 0);
        // round trip > 2 one-way latencies + processing
        let min = 2 * TransportProfile::verbs_qdr().latency + dur::us(5);
        assert!(elapsed >= min, "elapsed {elapsed:?} < {min:?}");
        assert!(elapsed < dur::us(50));
    }

    #[test]
    fn unregistered_service_errors() {
        let (sim, _fabric, sb) = setup(2);
        let sb2 = Rc::clone(&sb);
        let r = sim.block_on(async move {
            sb2.send(NodeId(0), NodeId(1), "nope", 8, Msg::Datagram(0))
                .await
        });
        assert_eq!(r.unwrap_err(), RpcError::ServiceUnavailable);
    }

    #[test]
    fn dropped_reply_surfaces_no_reply() {
        let (sim, _fabric, sb) = setup(2);
        let mut rx = sb.register(NodeId(1), "svc");
        sim.spawn(async move {
            let env = rx.recv().await.unwrap();
            drop(env); // server discards the request
        });
        let sb2 = Rc::clone(&sb);
        let r =
            sim.block_on(async move { sb2.call(NodeId(0), NodeId(1), "svc", 8, Msg::Ping).await });
        assert_eq!(r.unwrap_err(), RpcError::NoReply);
    }

    #[test]
    fn send_to_down_node_is_net_error() {
        let (sim, fabric, sb) = setup(2);
        sb.register(NodeId(1), "svc");
        fabric.set_up(NodeId(1), false);
        let sb2 = Rc::clone(&sb);
        let r = sim.block_on(async move {
            sb2.send(NodeId(0), NodeId(1), "svc", 8, Msg::Datagram(1))
                .await
        });
        assert_eq!(r.unwrap_err(), RpcError::Net(NetError::DstDown(NodeId(1))));
    }

    #[test]
    fn deregister_stops_delivery() {
        let (sim, _fabric, sb) = setup(2);
        let _rx = sb.register(NodeId(1), "svc");
        assert!(sb.is_registered(NodeId(1), "svc"));
        sb.deregister(NodeId(1), "svc");
        assert!(!sb.is_registered(NodeId(1), "svc"));
        let sb2 = Rc::clone(&sb);
        let r = sim.block_on(async move {
            sb2.send(NodeId(0), NodeId(1), "svc", 8, Msg::Datagram(1))
                .await
        });
        assert_eq!(r.unwrap_err(), RpcError::ServiceUnavailable);
    }

    #[test]
    fn many_concurrent_calls_all_answered() {
        let (sim, _fabric, sb) = setup(3);
        let mut rx = sb.register(NodeId(2), "svc");
        sim.spawn(async move {
            while let Ok(env) = rx.recv().await {
                if let Msg::Ping(reply) = env.msg {
                    reply.send(1, 16);
                }
            }
        });
        let mut handles = Vec::new();
        for i in 0..20u32 {
            let sb = Rc::clone(&sb);
            handles.push(sim.spawn(async move {
                sb.call(NodeId(i % 2), NodeId(2), "svc", 64, Msg::Ping)
                    .await
            }));
        }
        sim.run();
        for h in handles {
            assert_eq!(h.try_take().unwrap().unwrap(), 1);
        }
    }
}
