//! # netsim — flow-level cluster interconnect model
//!
//! Models the HPC fabric the paper's systems run on: a set of nodes with
//! full-duplex NICs behind a non-blocking core, carrying several transports
//! with distinct cost profiles (native RDMA verbs, IPoIB, Ethernet tiers).
//!
//! Three layers:
//! * [`params`] — calibrated [`params::TransportProfile`]s (DESIGN.md §5);
//! * [`fabric`] — [`fabric::Fabric`]: timed byte movement with NIC
//!   queueing, incast contention, and node up/down state;
//! * [`rpc`] — [`rpc::Switchboard`]: typed mailboxes and request/response
//!   on top of the fabric, used by every simulated server in the workspace.

#![warn(missing_docs)]

pub mod fabric;
pub mod params;
pub mod rpc;

pub use fabric::{Fabric, FabricStats, GeoId, NetError, NodeId, RackId, TopoTier, ZoneId};
pub use params::{NetConfig, TransportProfile};
pub use rpc::{Envelope, ReplyHandle, RpcError, Switchboard};
