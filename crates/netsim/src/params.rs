//! Calibrated transport profiles.
//!
//! One physical fabric carries several *transports* with very different
//! software costs: native RDMA verbs, IPoIB (TCP/IP emulated over the IB
//! link), and plain Ethernet tiers. A profile bundles the three knobs that
//! matter at flow level: propagation+NIC latency, per-message software
//! overhead, and effective payload bandwidth.
//!
//! Values follow DESIGN.md §5 and are representative of the paper's
//! IB-QDR-era testbeds (OSU RI / SDSC Gordon / TACC Stampede).

use std::time::Duration;

use simkit::dur;

/// Flow-level cost model for one transport running over the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportProfile {
    /// Human-readable name, used in experiment tables.
    pub name: &'static str,
    /// One-way propagation + NIC hardware latency.
    pub latency: Duration,
    /// Per-message software overhead charged on the sending NIC (kernel /
    /// protocol stack time). This is what separates verbs from IPoIB.
    pub per_msg_overhead: Duration,
    /// Effective payload bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl TransportProfile {
    /// Native RDMA verbs on IB QDR (4×): ~1.6 µs one-way, negligible
    /// software overhead, ~3.4 GB/s effective payload bandwidth.
    pub const fn verbs_qdr() -> Self {
        TransportProfile {
            name: "verbs-qdr",
            latency: dur::ns(1_600),
            per_msg_overhead: dur::ns(300),
            bandwidth: 3.4e9,
        }
    }

    /// IPoIB on the same QDR link: TCP stack traversal adds ~18 µs per
    /// message and caps effective bandwidth near 12 Gb/s.
    pub const fn ipoib_qdr() -> Self {
        TransportProfile {
            name: "ipoib-qdr",
            latency: dur::ns(8_000),
            per_msg_overhead: dur::ns(18_000),
            bandwidth: 1.5e9,
        }
    }

    /// 10 GigE with a standard kernel TCP stack.
    pub const fn ten_gige() -> Self {
        TransportProfile {
            name: "10gige",
            latency: dur::ns(25_000),
            per_msg_overhead: dur::ns(10_000),
            bandwidth: 1.15e9,
        }
    }

    /// 1 GigE (the classic commodity-Hadoop fabric).
    pub const fn one_gige() -> Self {
        TransportProfile {
            name: "1gige",
            latency: dur::ns(50_000),
            per_msg_overhead: dur::ns(15_000),
            bandwidth: 1.17e8,
        }
    }

    /// Same-node loopback (memory copy through the kernel).
    pub const fn loopback() -> Self {
        TransportProfile {
            name: "loopback",
            latency: dur::ns(500),
            per_msg_overhead: dur::ns(200),
            bandwidth: 6.0e9,
        }
    }

    /// Wire time for `bytes` excluding queueing: overhead + latency +
    /// serialization.
    pub fn uncontended_time(&self, bytes: u64) -> Duration {
        self.per_msg_overhead + self.latency + dur::transfer(bytes, self.bandwidth)
    }
}

/// Fabric-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Physical per-NIC full-duplex rate in bytes/second; every transport's
    /// traffic on a node shares this (each direction independently).
    pub nic_bandwidth: f64,
    /// Nodes per rack, for rack-aware placement policies. HPC IB fabrics
    /// are close to non-blocking, so racks matter for placement, not for
    /// bandwidth, in this model.
    pub nodes_per_rack: usize,
    /// Racks per zone (a pod / leaf-spine domain). Zones are derived the
    /// same way racks are: contiguous node-id ranges.
    pub racks_per_zone: usize,
    /// Zones per geo site. Everything beyond one geo is "remote".
    pub zones_per_geo: usize,
    /// Extra one-way latency charged on a transfer that crosses racks
    /// within one zone. Zero (the default) keeps the fabric flat: the
    /// seed-identical behaviour every existing experiment replays.
    pub rack_latency: Duration,
    /// Extra one-way latency for crossing zones within one geo.
    pub zone_latency: Duration,
    /// Extra one-way latency for crossing geo sites (WAN stretch).
    pub geo_latency: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        // QDR 4×: 32 Gb/s signalling ≈ 3.6 GB/s payload ceiling per NIC.
        // The topology tiers default to zero extra latency, so the default
        // fabric stays flat (rack/zone/geo are pure labels) and every
        // seeded run replays byte-identically.
        NetConfig {
            nic_bandwidth: 3.6e9,
            nodes_per_rack: 16,
            racks_per_zone: 4,
            zones_per_geo: 4,
            rack_latency: Duration::ZERO,
            zone_latency: Duration::ZERO,
            geo_latency: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_beats_ipoib_beats_ethernet_for_small_messages() {
        let small = 64;
        let v = TransportProfile::verbs_qdr().uncontended_time(small);
        let i = TransportProfile::ipoib_qdr().uncontended_time(small);
        let e = TransportProfile::ten_gige().uncontended_time(small);
        assert!(v < i && i < e, "{v:?} {i:?} {e:?}");
        // verbs small-message RTT-half is single-digit microseconds
        assert!(v < Duration::from_micros(5));
        assert!(i > Duration::from_micros(20));
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let big = 4 << 20;
        let v = TransportProfile::verbs_qdr().uncontended_time(big);
        let i = TransportProfile::ipoib_qdr().uncontended_time(big);
        // 4 MiB at 3.4 GB/s ≈ 1.23 ms; at 1.5 GB/s ≈ 2.8 ms
        assert!(v.as_secs_f64() > 0.001 && v.as_secs_f64() < 0.0015);
        assert!(i.as_secs_f64() / v.as_secs_f64() > 2.0);
    }

    #[test]
    fn default_config_sane() {
        let c = NetConfig::default();
        assert!(c.nic_bandwidth > 1e9);
        assert!(c.nodes_per_rack > 0);
        assert!(c.racks_per_zone > 0 && c.zones_per_geo > 0);
        // flat by default: the topology tiers must charge nothing, or
        // every seeded experiment snapshot would shift
        assert_eq!(c.rack_latency, Duration::ZERO);
        assert_eq!(c.zone_latency, Duration::ZERO);
        assert_eq!(c.geo_latency, Duration::ZERO);
    }
}
