//! Property-based tests of the storage engine and protocol: the store is
//! checked against a reference model under arbitrary operation sequences,
//! the slab against allocation invariants, and the codec against
//! roundtripping.

use bytes::Bytes;
use proptest::prelude::*;
use std::collections::HashMap;

use rkv::proto::{Carrier, Request, Response, WireBuf};
use rkv::slab::{SlabAllocator, SlabConfig};
use rkv::store::{KvStats, KvStore};

#[derive(Debug, Clone)]
enum Op {
    Set { key: u8, len: usize },
    Get { key: u8 },
    Delete { key: u8 },
    Add { key: u8, len: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1usize..4096).prop_map(|(key, len)| Op::Set { key, len }),
        any::<u8>().prop_map(|key| Op::Get { key }),
        any::<u8>().prop_map(|key| Op::Delete { key }),
        (any::<u8>(), 1usize..2048).prop_map(|(key, len)| Op::Add { key, len }),
    ]
}

fn value_for(key: u8, len: usize, version: u64) -> Bytes {
    let mut v = vec![key; len];
    // stamp the version so stale reads are detectable
    let stamp = version.to_le_bytes();
    let n = stamp.len().min(len);
    v[..n].copy_from_slice(&stamp[..n]);
    Bytes::from(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store agrees with a HashMap model on every live-key read, and
    /// its byte/item accounting matches the model exactly when no eviction
    /// has occurred (the store is sized so eviction cannot happen here).
    #[test]
    fn store_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut store = KvStore::new(SlabConfig {
            mem_limit: 64 << 20, // far larger than the max working set
            ..SlabConfig::default()
        });
        let mut model: HashMap<u8, Bytes> = HashMap::new();
        let mut version = 0u64;
        for op in &ops {
            match *op {
                Op::Set { key, len } => {
                    version += 1;
                    let v = value_for(key, len, version);
                    store.set(&[key], v.clone(), 0, 0, 0).unwrap();
                    model.insert(key, v);
                }
                Op::Add { key, len } => {
                    version += 1;
                    let v = value_for(key, len, version);
                    let r = store.add(&[key], v.clone(), 0, 0, 0);
                    match model.entry(key) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            prop_assert!(r.is_err());
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            prop_assert!(r.is_ok());
                            e.insert(v);
                        }
                    }
                }
                Op::Get { key } => {
                    let got = store.get(&[key], 0);
                    match model.get(&key) {
                        Some(v) => {
                            let got = got.expect("model says live");
                            prop_assert_eq!(&got.data, v);
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                Op::Delete { key } => {
                    let existed = store.delete(&[key]);
                    prop_assert_eq!(existed, model.remove(&key).is_some());
                }
            }
        }
        let st: KvStats = store.stats();
        prop_assert_eq!(st.evictions, 0, "store was sized to avoid eviction");
        prop_assert_eq!(st.items as usize, model.len());
        let model_bytes: u64 = model.values().map(|v| 1 + v.len() as u64).sum();
        prop_assert_eq!(st.bytes, model_bytes);
    }

    /// Under heavy memory pressure the store never corrupts: every hit
    /// returns the exact last-written value, and live items+bytes stay
    /// within the configured budget.
    #[test]
    fn store_under_pressure_never_corrupts(
        ops in proptest::collection::vec((any::<u8>(), 1usize..32_768), 1..150)
    ) {
        let mut store = KvStore::new(SlabConfig {
            mem_limit: 1 << 20,
            ..SlabConfig::default()
        });
        let mut last: HashMap<u8, Bytes> = HashMap::new();
        let mut version = 0;
        for (key, len) in ops {
            version += 1;
            let v = value_for(key, len, version);
            match store.set(&[key], v.clone(), 0, 0, 0) {
                Ok(_) => {
                    last.insert(key, v);
                }
                Err(rkv::KvError::OutOfMemory) => {
                    // slab calcification can strand capacity in other
                    // classes (faithful memcached behaviour); the failed
                    // set also dropped any previous version of the key
                    last.remove(&key);
                }
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
            // a hit must be the latest value, never a stale or foreign one
            if let Some(got) = store.get(&[key], 0) {
                prop_assert_eq!(&got.data, &last[&key]);
            }
        }
        prop_assert!(store.memory_used() <= 1 << 20);
    }

    /// Slab allocation: no chunk is handed out twice, frees return
    /// capacity, and accounting matches the live set.
    #[test]
    fn slab_never_double_allocates(
        sizes in proptest::collection::vec(8usize..100_000, 1..300),
        free_mask in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut slab = SlabAllocator::new(SlabConfig {
            mem_limit: 32 << 20,
            ..SlabConfig::default()
        });
        let mut live = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            if let Ok(chunk) = slab.alloc(size) {
                prop_assert!(
                    !live.contains(&chunk),
                    "chunk handed out twice: {chunk:?}"
                );
                live.push(chunk);
            }
            if *free_mask.get(i).unwrap_or(&false) {
                if let Some(c) = live.pop() {
                    slab.free(c);
                }
            }
        }
        let allocated: usize = (0..slab.class_count())
            .map(|c| slab.allocated_in(c as u8))
            .sum();
        prop_assert_eq!(allocated, live.len());
    }

    /// Wire protocol: arbitrary requests roundtrip exactly.
    #[test]
    fn proto_request_roundtrip(
        key in proptest::collection::vec(any::<u8>(), 0..64),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        flags in any::<u32>(),
        expire in any::<u64>(),
        variant in 0u8..6,
        node in any::<u32>(),
        rkey in any::<u32>(),
    ) {
        let key = Bytes::from(key);
        let val = Carrier::Inline(Bytes::from(payload));
        let req = match variant {
            0 => Request::Get { key, dst: Some(WireBuf { node, rkey, len: 1 << 20 }) },
            1 => Request::Set { key, flags, expire_at: expire, value: val },
            2 => Request::Add { key, flags, expire_at: expire, value: val },
            3 => Request::Replace { key, flags, expire_at: expire, value: val },
            4 => Request::Delete { key },
            _ => Request::Touch { key, expire_at: expire },
        };
        let decoded = Request::decode(req.encode()).unwrap();
        prop_assert_eq!(decoded, req);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn proto_decode_garbage_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(Bytes::from(bytes.clone()));
        let _ = Response::decode(Bytes::from(bytes));
        // reaching here without panic is the property
    }

    /// Replication invariants on a live cluster: for arbitrary key sets
    /// and r ∈ {1,2,3}, `KvClient::replicas` places each key on `r`
    /// distinct servers, its first element is `route`'s primary, and a
    /// replicated SET really stores `r` copies.
    #[test]
    fn replica_placement_invariants(
        r in 1usize..=3,
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..24), 1..24),
    ) {
        use std::rc::Rc;
        let sim = simkit::Sim::new();
        let fabric = netsim::Fabric::new(sim.clone(), 5, netsim::NetConfig::default());
        let stack = rdmasim::RdmaStack::new(fabric);
        let servers: Vec<_> = (0..4)
            .map(|i| rkv::KvServer::new(Rc::clone(&stack), netsim::NodeId(i), rkv::KvServerConfig::default()))
            .collect();
        let cl = rkv::KvClient::new(
            Rc::clone(&stack),
            netsim::NodeId(4),
            servers.clone(),
            rkv::KvClientConfig { replication: r, ..rkv::KvClientConfig::default() },
        );
        let mut uniq = keys.clone();
        uniq.sort();
        uniq.dedup();
        for k in &uniq {
            let reps = cl.replicas(k).unwrap();
            prop_assert_eq!(reps.len(), r);
            prop_assert_eq!(reps[0], cl.route(k).unwrap());
            let mut d = reps.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), r, "replicas must be distinct servers");
        }
        let cl2 = Rc::clone(&cl);
        let store_keys = uniq.clone();
        sim.block_on(async move {
            for k in &store_keys {
                cl2.set(k, Bytes::copy_from_slice(k), 0, 0).await.unwrap();
            }
        });
        let copies: u64 = servers.iter().map(|s| s.store().stats().items).sum();
        prop_assert_eq!(copies as usize, uniq.len() * r);
        sim.reset();
    }

    /// Read-after-crash: with r ≥ 2, crashing (wiping + downing) any single
    /// server still leaves every value readable through failover.
    #[test]
    fn read_after_single_crash_returns_everything(
        r in 2usize..=3,
        victim in 0u32..4,
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..24), 1..16),
    ) {
        use std::rc::Rc;
        let sim = simkit::Sim::new();
        let fabric = netsim::Fabric::new(sim.clone(), 5, netsim::NetConfig::default());
        let stack = rdmasim::RdmaStack::new(fabric);
        let fabric = Rc::clone(stack.fabric());
        let servers: Vec<_> = (0..4)
            .map(|i| rkv::KvServer::new(Rc::clone(&stack), netsim::NodeId(i), rkv::KvServerConfig::default()))
            .collect();
        let cl = rkv::KvClient::new(
            Rc::clone(&stack),
            netsim::NodeId(4),
            servers.clone(),
            rkv::KvClientConfig { replication: r, ..rkv::KvClientConfig::default() },
        );
        let mut uniq = keys.clone();
        uniq.sort();
        uniq.dedup();
        let store_keys = uniq.clone();
        let victim_store = Rc::clone(servers[victim as usize].store());
        let ok = sim.block_on(async move {
            for k in &store_keys {
                cl.set(k, Bytes::copy_from_slice(k), 0, 0).await.unwrap();
            }
            // crash the victim: volatile contents lost, ports down
            victim_store.clear();
            fabric.set_up(netsim::NodeId(victim), false);
            for k in &store_keys {
                let v = cl.get(k).await.unwrap();
                match v {
                    Some(v) if v.data[..] == k[..] => {}
                    other => return Err(format!("key {k:?} lost after crash: {other:?}")),
                }
            }
            Ok(())
        });
        prop_assert!(ok.is_ok(), "{}", ok.unwrap_err());
        sim.reset();
    }

    /// End-to-end checksum binding: a CRC32C computed over (key, bytes) at
    /// store time survives the store, the wire codec, and an evict/reload
    /// cycle — every hit's `flags` still matches a fresh CRC of its bytes,
    /// so corruption anywhere in that path is detectable.
    #[test]
    fn checksums_survive_store_codec_and_evict_reload(
        entries in proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 1..16),
                proptest::collection::vec(any::<u8>(), 1..8192),
            ),
            1..80,
        ),
    ) {
        // a small store so LRU churn actually evicts
        let mut store = KvStore::new(SlabConfig {
            mem_limit: 4 << 20,
            ..SlabConfig::default()
        });
        let mut source: HashMap<Vec<u8>, Bytes> = HashMap::new();
        for (k, v) in &entries {
            let v = Bytes::from(v.clone());
            let crc = rkv::crc32c_pair(k, &v);
            // codec leg: the (key, crc, bytes) binding roundtrips the wire
            let req = Request::Set {
                key: Bytes::copy_from_slice(k),
                flags: crc,
                expire_at: 0,
                value: Carrier::Inline(v.clone()),
            };
            let decoded = Request::decode(req.encode()).unwrap();
            let (key, flags, bytes) = match decoded {
                Request::Set { key, flags, value: Carrier::Inline(bytes), .. } => (key, flags, bytes),
                other => panic!("Set decoded to a different variant: {other:?}"),
            };
            prop_assert_eq!(flags, rkv::crc32c_pair(&key, &bytes));
            match store.set(k, v.clone(), crc, 0, 0) {
                Ok(_) => { source.insert(k.clone(), v); }
                Err(rkv::KvError::OutOfMemory) => { source.remove(k); }
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
            if let Some(got) = store.get(k, 0) {
                prop_assert_eq!(
                    got.flags,
                    rkv::crc32c_pair(k, &got.data),
                    "stored crc no longer matches stored bytes"
                );
            }
        }
        // evict/reload leg: refill evicted keys from the durable source
        // (as the read-through path does) and re-verify every binding
        for (k, v) in &source {
            if store.get(k, 0).is_none() {
                let _ = store.set(k, v.clone(), rkv::crc32c_pair(k, v), 0, 0);
            }
            if let Some(got) = store.get(k, 0) {
                prop_assert_eq!(got.flags, rkv::crc32c_pair(k, &got.data));
                prop_assert_eq!(&got.data, v);
            }
        }
    }

    /// Pinned items are immune to LRU pressure: however hard an eviction
    /// storm churns the slab, every pinned key keeps its exact bytes until
    /// explicitly unpinned or deleted.
    #[test]
    fn pinned_items_are_never_evicted(
        churn in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..16),
            16..120,
        ),
    ) {
        let mut store = KvStore::new(SlabConfig {
            mem_limit: 1 << 20, // a single slab page: ~31 32-KiB chunks
            ..SlabConfig::default()
        });
        // pin a handful of fixed-size values, then flood same-class churn
        let pinned: Vec<(Vec<u8>, Bytes)> = (0..4u8)
            .map(|i| (vec![0xB0u8.wrapping_add(i), i], Bytes::from(vec![i; 32 << 10])))
            .collect();
        for (k, v) in &pinned {
            store.set(k, v.clone(), 0, 0, 0).unwrap();
            store.pin(k, 0).unwrap();
        }
        for k in &churn {
            // same value class as the pinned items so they compete directly
            let _ = store.set(k, Bytes::from(vec![0xEE; 32 << 10]), 0, 0, 0);
        }
        prop_assert!(store.stats().evictions > 0 || churn.len() < 48,
            "churn never pressured the slab");
        for (k, v) in &pinned {
            let got = store.get(k, 0);
            let got = got.expect("pinned item was evicted");
            prop_assert_eq!(&got.data, v);
        }
        prop_assert_eq!(store.stats().pinned_items, 4);
    }

    /// Pin accounting balances: across arbitrary interleavings of
    /// write+pin ("dirty chunk enters the buffer") and unpin ("flush
    /// acknowledged"), unpinning everything that was pinned drives the
    /// pinned counters to exactly zero and the items become evictable.
    #[test]
    fn pin_accounting_returns_to_zero_after_flush(
        script in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..120),
    ) {
        let mut store = KvStore::new(SlabConfig {
            mem_limit: 64 << 20, // roomy: this test is about accounting
            ..SlabConfig::default()
        });
        let mut dirty: std::collections::BTreeSet<u8> = Default::default();
        for &(key, flush) in &script {
            if flush {
                // flusher acks some outstanding chunk (if any)
                if let Some(&k) = dirty.iter().next() {
                    store.unpin(&[k]).unwrap();
                    dirty.remove(&k);
                }
            } else {
                // writer seals a chunk: store (overwrite keeps pins — the
                // store carries the pin across reinsert) then pin
                store.set(&[key], Bytes::from(vec![key; 128]), 0, 0, 0).unwrap();
                store.pin(&[key], 0).unwrap();
                dirty.insert(key);
            }
        }
        // drain the remaining flush queue
        for k in std::mem::take(&mut dirty) {
            store.unpin(&[k]).unwrap();
        }
        let st = store.stats();
        prop_assert_eq!(st.pinned_items, 0, "pins leaked after all flushes acked");
        prop_assert_eq!(st.pinned_bytes, 0);
        // double-unpin of a live key must be a no-op, not an underflow
        if let Some(&(k, _)) = script.first() {
            if store.contains(&[k], 0) {
                store.unpin(&[k]).unwrap();
                prop_assert_eq!(store.stats().pinned_items, 0);
            }
        }
    }

    /// Shard ownership: `shard_index` is the single routing function —
    /// every key maps to exactly one in-range shard, a write lands on
    /// precisely that shard, and per-shard stats sum to the whole-store
    /// totals (items, bytes, gets, sets).
    #[test]
    fn shard_ownership_is_exclusive_and_total(
        shards in 1usize..8,
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..24), 1..60),
    ) {
        let store = rkv::ShardedKv::new(shards, SlabConfig {
            mem_limit: 64 << 20,
            ..SlabConfig::default()
        });
        let mut uniq = keys;
        uniq.sort();
        uniq.dedup();
        for k in &uniq {
            let owner = store.shard_index(k);
            prop_assert!(owner < store.shard_count());
            prop_assert_eq!(owner, store.shard_index(k), "routing must be stable");
            let before: Vec<u64> = (0..store.shard_count())
                .map(|s| store.shard_stats(s).items)
                .collect();
            store.set(k, Bytes::copy_from_slice(k), 0, 0, 0).unwrap();
            for (s, &was) in before.iter().enumerate() {
                let expect = was + u64::from(s == owner);
                prop_assert_eq!(store.shard_stats(s).items, expect,
                    "exactly the owning shard gains the item");
            }
            // the read is served by the same shard (a hit counted there)
            let gets_before = store.shard_stats(owner).gets;
            prop_assert!(store.get(k, 0).is_some());
            prop_assert_eq!(store.shard_stats(owner).gets, gets_before + 1);
        }
        let total = store.stats();
        let sum = |f: fn(&KvStats) -> u64| -> u64 {
            (0..store.shard_count()).map(|s| f(&store.shard_stats(s))).sum()
        };
        prop_assert_eq!(sum(|s| s.items), total.items);
        prop_assert_eq!(sum(|s| s.bytes), total.bytes);
        prop_assert_eq!(sum(|s| s.gets), total.gets);
        prop_assert_eq!(sum(|s| s.sets), total.sets);
        prop_assert_eq!(total.items as usize, uniq.len());
    }

    /// The maintenance sweep (`reclaim_idle_pages`) retires only
    /// fully-free pages: across arbitrary write/delete interleavings every
    /// key readable immediately before a sweep is readable with identical
    /// bytes immediately after it, and the whole run is deterministic
    /// (same ops → identical final stats and reclaim count).
    #[test]
    fn reclaim_sweep_never_drops_live_items(
        ops in proptest::collection::vec((any::<u8>(), 1usize..16_384, any::<bool>()), 1..100),
    ) {
        let run = |ops: &[(u8, usize, bool)]| -> (KvStats, u64) {
            let mut store = KvStore::new(SlabConfig {
                mem_limit: 4 << 20,
                ..SlabConfig::default()
            });
            store.set_reclaim_idle(1_000);
            let mut now = 0u64;
            let mut reclaimed = 0u64;
            for &(key, len, del) in ops {
                now += 10_000; // every op is past the idle window
                if del {
                    store.delete(&[key]);
                } else {
                    let _ = store.set(&[key], Bytes::from(vec![key; len]), 0, 0, now);
                }
                let live: Vec<(u8, Bytes)> = (0..=255u8)
                    .filter_map(|k| store.get(&[k], now).map(|v| (k, v.data)))
                    .collect();
                reclaimed += store.reclaim_idle_pages(now);
                for (k, v) in live {
                    let got = store.get(&[k], now);
                    let got = got.expect("sweep dropped a live item");
                    assert_eq!(got.data, v, "sweep corrupted a live item");
                }
            }
            (store.stats(), reclaimed)
        };
        let a = run(&ops);
        let b = run(&ops);
        prop_assert_eq!(a, b, "reclamation must be deterministic");
    }

    /// The shard-per-core engine is observably equivalent to the
    /// single-context model: an identical client script gets identical
    /// answers at every (cores, cq_batch), including split `multi_get`s.
    #[test]
    fn engine_answers_match_single_context(
        cores in 1usize..5,
        cq_batch in 1usize..9,
        script in proptest::collection::vec((any::<u8>(), 1usize..512, any::<bool>()), 1..40),
    ) {
        use std::rc::Rc;
        let run = |cfg: rkv::KvServerConfig| -> Vec<Option<Bytes>> {
            let sim = simkit::Sim::new();
            let fabric = netsim::Fabric::new(sim.clone(), 2, netsim::NetConfig::default());
            let stack = rdmasim::RdmaStack::new(fabric);
            let servers = vec![rkv::KvServer::new(
                Rc::clone(&stack),
                netsim::NodeId(0),
                cfg,
            )];
            let cl = rkv::KvClient::new(
                Rc::clone(&stack),
                netsim::NodeId(1),
                servers,
                rkv::KvClientConfig::default(),
            );
            let script = script.clone();
            let out = sim.block_on(async move {
                let mut out = Vec::new();
                for (key, len, is_get) in script {
                    if is_get {
                        out.push(cl.get(&[key]).await.unwrap().map(|v| v.data));
                    } else {
                        cl.set(&[key], Bytes::from(vec![key; len]), 0, 0).await.unwrap();
                    }
                }
                // a wide multi_get exercises the per-shard split/join path
                let keys: Vec<Vec<u8>> = (0..16u8).map(|k| vec![k * 16]).collect();
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                for v in cl.multi_get(&refs).await.unwrap() {
                    out.push(v.map(|v| v.data));
                }
                out
            });
            sim.reset();
            out
        };
        let base = run(rkv::KvServerConfig::default());
        let engine = run(rkv::KvServerConfig {
            cores,
            cq_batch,
            ..rkv::KvServerConfig::default()
        });
        prop_assert_eq!(base, engine);
    }

    /// Ketama: routing is a pure function of the label set — rebuilding
    /// the ring gives identical placement, and every key routes somewhere
    /// valid.
    #[test]
    fn hashring_routing_is_stable(
        n in 1usize..12,
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..40), 1..100),
    ) {
        let build = || {
            let members: Vec<usize> = (0..n).collect();
            let labels: Vec<String> = (0..n).map(|i| format!("srv{i}")).collect();
            rkv::HashRing::new(members, &labels, 100)
        };
        let a = build();
        let b = build();
        for k in &keys {
            let ra = *a.route(k);
            prop_assert_eq!(ra, *b.route(k));
            prop_assert!(ra < n);
            let replicas = a.route_n(k, 3.min(n));
            let mut seen: Vec<usize> = replicas.iter().map(|r| **r).collect();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), 3.min(n), "route_n returned duplicates");
        }
    }
}
