//! Epoch-versioned membership for the KV tier.
//!
//! A [`Membership`] is the single shared source of truth for which KV
//! servers are on the consistent-hash ring. Clients route through it on
//! every operation, so a server joining or draining takes effect
//! immediately — no client rebuild, no restart. Each change bumps a
//! monotonically increasing *epoch*; callers that resolved a replica set
//! under an older epoch can detect the bump and re-resolve against the
//! new ring instead of erroring.
//!
//! Two index spaces matter:
//!
//! * the **roster** is append-only: every server ever admitted keeps its
//!   index for the lifetime of the view, so connections, direct reads
//!   ([`crate::KvClient::get_from`]) and repair writes addressed by index
//!   stay valid while a drained server still holds data awaiting
//!   migration;
//! * the **active set** is the subset of roster indices currently on the
//!   ring — only these receive routed traffic.
//!
//! Ring identity comes from the label `kv-server-{node}` (as in
//! [`crate::KvClient::new`]), so a view over the same servers produces
//! byte-identical placement to a frozen client, and re-admitting a
//! drained server restores its old ring points exactly.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use netsim::NodeId;

use crate::hash::HashRing;
use crate::server::KvServer;

/// Shared, epoch-versioned view of the KV server ring.
pub struct Membership {
    vnodes: u32,
    epoch: Cell<u64>,
    roster: RefCell<Vec<Rc<KvServer>>>,
    active: RefCell<Vec<usize>>,
    ring: RefCell<HashRing<usize>>,
    // Per-key placement overrides (primary first), installed by a
    // placement policy. BTreeMap: deterministic iteration for replay.
    overrides: RefCell<BTreeMap<Vec<u8>, Vec<usize>>>,
}

impl Membership {
    /// Build a view with every server active, at epoch 0. Placement is
    /// identical to a frozen [`crate::KvClient`] over the same servers.
    pub fn new(servers: Vec<Rc<KvServer>>, vnodes: u32) -> Rc<Membership> {
        assert!(!servers.is_empty(), "membership needs at least one server");
        let active: Vec<usize> = (0..servers.len()).collect();
        let ring = Self::build_ring(&servers, &active, vnodes.max(1));
        Rc::new(Membership {
            vnodes: vnodes.max(1),
            epoch: Cell::new(0),
            roster: RefCell::new(servers),
            active: RefCell::new(active),
            ring: RefCell::new(ring),
            overrides: RefCell::new(BTreeMap::new()),
        })
    }

    fn build_ring(roster: &[Rc<KvServer>], active: &[usize], vnodes: u32) -> HashRing<usize> {
        let labels: Vec<String> = active
            .iter()
            .map(|&i| format!("kv-server-{}", roster[i].node().0))
            .collect();
        HashRing::new(active.to_vec(), &labels, vnodes)
    }

    fn rebuild(&self) {
        let roster = self.roster.borrow();
        let active = self.active.borrow();
        *self.ring.borrow_mut() = Self::build_ring(&roster, &active, self.vnodes);
        drop(active);
        drop(roster);
        self.epoch.set(self.epoch.get() + 1);
    }

    /// Current epoch; bumped by every successful join or drain.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Virtual points per server on the ring.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Every server ever admitted (drained ones included), by stable index.
    pub fn roster_len(&self) -> usize {
        self.roster.borrow().len()
    }

    /// Servers currently on the ring.
    pub fn active_len(&self) -> usize {
        self.active.borrow().len()
    }

    /// The server at roster index `idx`.
    pub fn server(&self, idx: usize) -> Rc<KvServer> {
        Rc::clone(&self.roster.borrow()[idx])
    }

    /// Snapshot of the active roster indices, ascending.
    pub fn active_indices(&self) -> Vec<usize> {
        self.active.borrow().clone()
    }

    /// Whether roster index `idx` is on the ring.
    pub fn is_active(&self, idx: usize) -> bool {
        self.active.borrow().contains(&idx)
    }

    /// Roster index of the server on fabric node `node`, if admitted.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.roster.borrow().iter().position(|s| s.node() == node)
    }

    /// Admit `server` to the ring. A re-admitted drained server regains
    /// its old roster index (and, via its label, its old ring points).
    /// Returns the roster index; bumps the epoch unless the server was
    /// already active.
    pub fn add_server(&self, server: Rc<KvServer>) -> usize {
        let idx = match self.index_of(server.node()) {
            Some(i) => i,
            None => {
                let mut roster = self.roster.borrow_mut();
                roster.push(server);
                roster.len() - 1
            }
        };
        {
            let mut active = self.active.borrow_mut();
            if active.contains(&idx) {
                return idx;
            }
            active.push(idx);
            active.sort_unstable();
        }
        self.rebuild();
        idx
    }

    /// Take the server on `node` off the ring. It stays in the roster —
    /// index-addressed reads keep working while its chunks migrate.
    /// Returns `false` (view unchanged) if the node is not active or is
    /// the last active server.
    pub fn drain_server(&self, node: NodeId) -> bool {
        let Some(idx) = self.index_of(node) else {
            return false;
        };
        {
            let mut active = self.active.borrow_mut();
            if active.len() <= 1 {
                return false;
            }
            let Some(pos) = active.iter().position(|&i| i == idx) else {
                return false;
            };
            active.remove(pos);
        }
        self.rebuild();
        true
    }

    /// Roster index of the active server owning `key`, or `None` on an
    /// empty ring. A live placement override wins over the hash ring.
    pub fn route(&self, key: &[u8]) -> Option<usize> {
        if let Some(primary) = self.override_live(key).and_then(|v| v.first().copied()) {
            return Some(primary);
        }
        let ring = self.ring.borrow();
        if ring.is_empty() {
            return None;
        }
        Some(*ring.route(key))
    }

    /// The first `n` distinct active servers clockwise from `key`'s ring
    /// position (capped at the active count). A live placement override
    /// wins over the hash ring (capped at `n`).
    pub fn route_n(&self, key: &[u8], n: usize) -> Vec<usize> {
        if let Some(mut ovr) = self.override_live(key) {
            ovr.truncate(n);
            if !ovr.is_empty() {
                return ovr;
            }
        }
        let ring = self.ring.borrow();
        if ring.is_empty() {
            return Vec::new();
        }
        ring.route_n(key, n).into_iter().copied().collect()
    }

    /// Install a placement override: `key` routes to `targets` (primary
    /// first) instead of its hash owners until cleared. Targets must be
    /// roster indices; an override only takes routing effect while every
    /// target is active, so a drain can never strand traffic on a dead
    /// ring position.
    pub fn set_override(&self, key: &[u8], targets: Vec<usize>) {
        assert!(!targets.is_empty(), "placement override needs a target");
        let roster_len = self.roster.borrow().len();
        assert!(
            targets.iter().all(|&i| i < roster_len),
            "override target outside roster"
        );
        self.overrides.borrow_mut().insert(key.to_vec(), targets);
    }

    /// Remove `key`'s placement override (no-op when absent).
    pub fn clear_override(&self, key: &[u8]) {
        self.overrides.borrow_mut().remove(key);
    }

    /// The installed override for `key`, live or not.
    pub fn override_of(&self, key: &[u8]) -> Option<Vec<usize>> {
        self.overrides.borrow().get(key).cloned()
    }

    /// Installed overrides (live or not).
    pub fn overrides_len(&self) -> usize {
        self.overrides.borrow().len()
    }

    /// The override for `key` if every target is currently active.
    fn override_live(&self, key: &[u8]) -> Option<Vec<usize>> {
        let overrides = self.overrides.borrow();
        let targets = overrides.get(key)?;
        let active = self.active.borrow();
        targets
            .iter()
            .all(|i| active.contains(i))
            .then(|| targets.clone())
    }

    /// Clone of the current ring (roster indices as members) — the
    /// rebalancer diffs this against the ring it last processed to find
    /// the keys whose owners changed.
    pub fn ring_snapshot(&self) -> HashRing<usize> {
        self.ring.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::KvServerConfig;
    use netsim::{Fabric, NetConfig};
    use rdmasim::RdmaStack;
    use simkit::Sim;

    fn servers(n: usize) -> Vec<Rc<KvServer>> {
        let sim = Sim::new();
        let fabric = Fabric::new(sim, n, NetConfig::default());
        let stack = RdmaStack::new(fabric);
        (0..n)
            .map(|i| {
                KvServer::new(
                    Rc::clone(&stack),
                    NodeId(i as u32),
                    KvServerConfig::default(),
                )
            })
            .collect()
    }

    #[test]
    fn matches_frozen_placement_at_epoch_zero() {
        let srv = servers(4);
        let view = Membership::new(srv.clone(), 160);
        let labels: Vec<String> = srv
            .iter()
            .map(|s| format!("kv-server-{}", s.node().0))
            .collect();
        let frozen = HashRing::new((0..srv.len()).collect(), &labels, 160);
        for i in 0..500u32 {
            let k = format!("f1:{i}");
            assert_eq!(view.route(k.as_bytes()), Some(*frozen.route(k.as_bytes())));
        }
        assert_eq!(view.epoch(), 0);
    }

    #[test]
    fn join_bumps_epoch_and_remaps_about_one_nth() {
        let mut srv = servers(9);
        let extra = srv.pop().unwrap();
        let view = Membership::new(srv, 160);
        let before: Vec<usize> = (0..4000u32)
            .map(|i| view.route(format!("k{i}").as_bytes()).unwrap())
            .collect();
        let idx = view.add_server(extra);
        assert_eq!(idx, 8);
        assert_eq!(view.epoch(), 1);
        assert_eq!(view.active_len(), 9);
        let moved = (0..4000u32)
            .filter(|&i| view.route(format!("k{i}").as_bytes()).unwrap() != before[i as usize])
            .count();
        let frac = moved as f64 / 4000.0;
        assert!(frac < 0.2, "remap fraction {frac}");
        assert!(frac > 0.03, "suspiciously little movement: {frac}");
    }

    #[test]
    fn drain_keeps_roster_index_and_rejoin_restores_placement() {
        let srv = servers(4);
        let view = Membership::new(srv, 160);
        let before: Vec<usize> = (0..1000u32)
            .map(|i| view.route(format!("k{i}").as_bytes()).unwrap())
            .collect();
        assert!(view.drain_server(NodeId(2)));
        assert_eq!(view.epoch(), 1);
        assert_eq!(view.active_len(), 3);
        assert_eq!(view.roster_len(), 4, "drained server stays addressable");
        assert!(!view.is_active(2));
        for i in 0..1000u32 {
            assert_ne!(view.route(format!("k{i}").as_bytes()), Some(2));
        }
        // re-admit: same roster index, placement identical to the start
        let s2 = view.server(2);
        assert_eq!(view.add_server(s2), 2);
        assert_eq!(view.epoch(), 2);
        for i in 0..1000u32 {
            assert_eq!(
                view.route(format!("k{i}").as_bytes()),
                Some(before[i as usize])
            );
        }
    }

    #[test]
    fn drain_refuses_last_server_and_unknown_nodes() {
        let srv = servers(2);
        let view = Membership::new(srv, 64);
        assert!(!view.drain_server(NodeId(9)), "unknown node");
        assert!(view.drain_server(NodeId(0)));
        assert!(!view.drain_server(NodeId(1)), "last active server");
        assert_eq!(view.active_len(), 1);
        assert!(!view.drain_server(NodeId(0)), "already drained");
    }

    #[test]
    fn overrides_win_over_the_ring_only_while_live() {
        let srv = servers(4);
        let view = Membership::new(srv, 64);
        let hash_owners = view.route_n(b"k", 2);
        let desired: Vec<usize> = (0..4).filter(|i| !hash_owners.contains(i)).collect();
        view.set_override(b"k", desired.clone());
        assert_eq!(view.route_n(b"k", 2), desired);
        assert_eq!(view.route(b"k"), Some(desired[0]));
        assert_eq!(view.route_n(b"k", 1), vec![desired[0]], "capped at n");
        // other keys are untouched
        assert_eq!(view.route_n(b"other", 2).len(), 2);
        assert_eq!(view.overrides_len(), 1);
        // drain a target: the override goes dormant, hash placement rules
        let node = view.server(desired[0]).node();
        assert!(view.drain_server(node));
        assert_ne!(view.route(b"k"), Some(desired[0]));
        assert_eq!(view.override_of(b"k"), Some(desired), "still installed");
        // re-admit: the override resumes
        let s = view.server(view.index_of(node).unwrap());
        view.add_server(s);
        assert_eq!(view.route(b"k"), view.override_of(b"k").map(|v| v[0]));
        view.clear_override(b"k");
        assert_eq!(view.route_n(b"k", 2), hash_owners);
        assert_eq!(view.overrides_len(), 0);
    }

    #[test]
    fn route_n_follows_the_live_active_count() {
        let mut srv = servers(4);
        let extra = srv.pop().unwrap();
        let view = Membership::new(srv, 64);
        assert_eq!(view.route_n(b"k", 4).len(), 3, "capped at active count");
        view.add_server(extra);
        assert_eq!(view.route_n(b"k", 4).len(), 4, "cap grows with a join");
        let reps = view.route_n(b"k", 2);
        assert_eq!(reps[0], view.route(b"k").unwrap());
    }
}
