//! The KV server process: accepts queue-pair connections and serves the
//! binary protocol against a sharded store, using one-sided RDMA for large
//! payloads (READ for SET, WRITE for GET).

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use simkit::dur;
use simkit::telemetry::{HistogramMetric, MetricValue};

use netsim::NodeId;
use rdmasim::{Qp, QpConfig, RdmaError, RdmaStack};

use crate::proto::{Carrier, ProtoError, Request, Response};
use crate::sharded::ShardedKv;
use crate::slab::SlabConfig;
use crate::store::KvError;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct KvServerConfig {
    /// Lock stripes in the store.
    pub shards: usize,
    /// Slab/memory configuration (`mem_limit` is the `-m` budget).
    pub slab: SlabConfig,
    /// CPU time charged per request (parse + hash + store op).
    pub proc_time: Duration,
    /// Queue-pair parameters for accepted connections.
    pub qp: QpConfig,
    /// Verify that store-family payloads match the CRC32C digest the
    /// client declared in `flags` (`crc32c(key || data)`), rejecting
    /// mismatches with [`Response::BadDigest`]. The burst buffer enables
    /// this so a transfer-corrupted chunk can never be stored as "good";
    /// off by default because generic KV users put arbitrary flags there.
    pub verify_set_crc: bool,
}

impl Default for KvServerConfig {
    fn default() -> Self {
        KvServerConfig {
            shards: 4,
            slab: SlabConfig::default(),
            proc_time: dur::ns(1_500),
            qp: QpConfig::default(),
            verify_set_crc: false,
        }
    }
}

/// Per-server service-time histograms (`rkv.server{node}.*_ns`).
struct ServiceHists {
    get_ns: HistogramMetric,
    set_ns: HistogramMetric,
    multi_get_ns: HistogramMetric,
    other_ns: HistogramMetric,
}

/// One KV server instance bound to a fabric node.
pub struct KvServer {
    node: NodeId,
    stack: Rc<RdmaStack>,
    store: Rc<ShardedKv>,
    config: KvServerConfig,
    connections: Cell<u64>,
    requests: Cell<u64>,
    proto_errors: Cell<u64>,
    hists: ServiceHists,
}

impl KvServer {
    /// Create a server on `node` (no listener thread needed — connections
    /// are established through [`KvServer::accept`]). Registers
    /// `rkv.server{node}.*` metrics: service-time histograms plus sampled
    /// store stats (hits/gets/sets/evictions/items/bytes).
    pub fn new(stack: Rc<RdmaStack>, node: NodeId, config: KvServerConfig) -> Rc<KvServer> {
        let store = Rc::new(ShardedKv::new(config.shards, config.slab));
        let m = stack.sim().metrics();
        let prefix = format!("rkv.server{}", node.0);
        let hists = ServiceHists {
            get_ns: m.histogram(format!("{prefix}.get_ns")),
            set_ns: m.histogram(format!("{prefix}.set_ns")),
            multi_get_ns: m.histogram(format!("{prefix}.multi_get_ns")),
            other_ns: m.histogram(format!("{prefix}.other_ns")),
        };
        // store stats as sampled metrics: the store keeps them anyway, so
        // snapshots read them instead of double counting (weak capture —
        // the registry must not keep the store alive)
        for (suffix, pick) in [
            ("gets", 0usize),
            ("hits", 1),
            ("sets", 2),
            ("evictions", 3),
            ("items", 4),
            ("bytes", 5),
            ("pinned_items", 6),
            ("pinned_bytes", 7),
        ] {
            let weak = Rc::downgrade(&store);
            m.sampled(format!("{prefix}.{suffix}"), move || {
                let s = weak.upgrade().map(|s| s.stats()).unwrap_or_default();
                MetricValue::Counter(match pick {
                    0 => s.gets,
                    1 => s.hits,
                    2 => s.sets,
                    3 => s.evictions,
                    4 => s.items,
                    5 => s.bytes,
                    6 => s.pinned_items,
                    _ => s.pinned_bytes,
                })
            });
        }
        // fault-plan crash on this node wipes the in-memory store (a
        // restarted memcached comes back empty); link events leave state
        // intact. Weak capture: the injector must not keep the store alive.
        let crashes = m.counter(format!("{prefix}.crashes"));
        let weak_store = Rc::downgrade(&store);
        let node_idx = node.0;
        stack.sim().faults().on_node_event(move |ev| {
            if ev.node == node_idx && ev.kind == simkit::faultplan::NodeEventKind::Crash {
                if let Some(store) = weak_store.upgrade() {
                    store.clear();
                    crashes.inc();
                }
            }
        });
        // `CorruptValue` sweep: flip one byte in each resident value the
        // seeded RNG selects with probability `p`, silently — detection is
        // the checksum layer's job. Weak capture, as above.
        let corrupted = m.counter(format!("{prefix}.corrupted"));
        let weak_store = Rc::downgrade(&store);
        stack.sim().faults().on_corrupt_sweep(move |node, p, rng| {
            if node != node_idx {
                return;
            }
            if let Some(store) = weak_store.upgrade() {
                let n = store.corrupt_resident(|len| {
                    rng.chance(p).then(|| (rng.index(len), 1u8 << rng.index(8)))
                });
                corrupted.add(n);
            }
        });
        Rc::new(KvServer {
            node,
            stack,
            store,
            config,
            connections: Cell::new(0),
            requests: Cell::new(0),
            proto_errors: Cell::new(0),
            hists,
        })
    }

    /// Fabric node this server runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Direct handle to the storage engine (used by tests and stats).
    pub fn store(&self) -> &Rc<ShardedKv> {
        &self.store
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.get()
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Malformed frames rejected so far.
    pub fn proto_errors(&self) -> u64 {
        self.proto_errors.get()
    }

    /// Establish a connection from `client_node`; the server side of the
    /// queue pair is handled by a spawned task, the client side is
    /// returned.
    pub async fn accept(self: &Rc<Self>, client_node: NodeId) -> Result<Qp, RdmaError> {
        let (client_qp, server_qp) = self
            .stack
            .connect(client_node, self.node, self.config.qp)
            .await?;
        self.connections.set(self.connections.get() + 1);
        let this = Rc::clone(self);
        self.stack.sim().spawn(async move {
            this.serve_connection(server_qp).await;
        });
        Ok(client_qp)
    }

    async fn serve_connection(self: Rc<Self>, qp: Qp) {
        loop {
            let frame = match qp.recv().await {
                Ok(f) => f,
                Err(_) => break, // peer gone
            };
            let resp = match Request::decode(frame) {
                Ok(req) => {
                    self.requests.set(self.requests.get() + 1);
                    let (span_name, hist) = match &req {
                        Request::Get { .. } => ("kv.get", &self.hists.get_ns),
                        Request::Set { .. } => ("kv.set", &self.hists.set_ns),
                        Request::MultiGet { .. } => ("kv.multi_get", &self.hists.multi_get_ns),
                        _ => ("kv.other", &self.hists.other_ns),
                    };
                    let sim = self.stack.sim();
                    let _sp = sim.span(span_name, "rkv", self.node.0, 0);
                    let t0 = sim.now();
                    sim.sleep(self.config.proc_time).await;
                    let resp = self.handle(&qp, req).await;
                    hist.record_ns(
                        self.stack
                            .sim()
                            .now()
                            .as_nanos()
                            .saturating_sub(t0.as_nanos()),
                    );
                    resp
                }
                Err(ProtoError(_)) => {
                    self.proto_errors.set(self.proto_errors.get() + 1);
                    Response::TransferFailed
                }
            };
            if qp.send(resp.encode()).await.is_err() {
                break;
            }
        }
    }

    fn now(&self) -> u64 {
        self.stack.sim().now().as_nanos()
    }

    /// Resolve a carrier to payload bytes, RDMA-READing remote payloads.
    async fn fetch_payload(&self, qp: &Qp, value: Carrier) -> Result<Bytes, RdmaError> {
        match value {
            Carrier::Inline(b) => Ok(b),
            Carrier::Remote { src, len } => qp.read(&src.into(), 0, len as u64).await,
        }
    }

    /// Under [`KvServerConfig::verify_set_crc`], check that the payload
    /// matches the digest the client declared in `flags`.
    fn digest_ok(&self, key: &[u8], flags: u32, data: &[u8]) -> bool {
        !self.config.verify_set_crc || crate::checksum::crc32c_pair(key, data) == flags
    }

    fn map_store_result(r: Result<u64, KvError>) -> Response {
        match r {
            Ok(cas) => Response::Stored { cas },
            Err(KvError::TooLarge) => Response::TooLarge,
            Err(KvError::OutOfMemory) => Response::OutOfMemory,
            Err(KvError::NotFound) => Response::NotFound,
            Err(KvError::Exists) => Response::Exists,
            Err(KvError::CasMismatch) => Response::CasMismatch,
            Err(KvError::NonNumeric) => Response::NonNumeric,
        }
    }

    async fn handle(&self, qp: &Qp, req: Request) -> Response {
        let now = self.now();
        match req {
            Request::Get { key, dst } => match self.store.get(&key, now) {
                None => Response::NotFound,
                Some(v) => {
                    if let Some(dst) = dst {
                        if v.data.len() as u64 <= dst.len {
                            // one-sided path: land the payload in the
                            // client's registered buffer
                            return match qp.write(&dst.into(), 0, v.data.clone()).await {
                                Ok(()) => Response::ValueWritten {
                                    len: v.data.len() as u32,
                                    flags: v.flags,
                                    cas: v.cas,
                                },
                                Err(_) => Response::TransferFailed,
                            };
                        }
                    }
                    Response::Value {
                        data: v.data,
                        flags: v.flags,
                        cas: v.cas,
                    }
                }
            },
            Request::Set {
                key,
                flags,
                expire_at,
                value,
            } => match self.fetch_payload(qp, value).await {
                Ok(data) if !self.digest_ok(&key, flags, &data) => Response::BadDigest,
                Ok(data) => {
                    Self::map_store_result(self.store.set(&key, data, flags, expire_at, now))
                }
                Err(_) => Response::TransferFailed,
            },
            Request::Add {
                key,
                flags,
                expire_at,
                value,
            } => match self.fetch_payload(qp, value).await {
                Ok(data) if !self.digest_ok(&key, flags, &data) => Response::BadDigest,
                Ok(data) => {
                    Self::map_store_result(self.store.add(&key, data, flags, expire_at, now))
                }
                Err(_) => Response::TransferFailed,
            },
            Request::Replace {
                key,
                flags,
                expire_at,
                value,
            } => match self.fetch_payload(qp, value).await {
                Ok(data) if !self.digest_ok(&key, flags, &data) => Response::BadDigest,
                Ok(data) => {
                    Self::map_store_result(self.store.replace(&key, data, flags, expire_at, now))
                }
                Err(_) => Response::TransferFailed,
            },
            Request::Cas {
                key,
                flags,
                expire_at,
                cas,
                value,
            } => match self.fetch_payload(qp, value).await {
                Ok(data) if !self.digest_ok(&key, flags, &data) => Response::BadDigest,
                Ok(data) => {
                    Self::map_store_result(self.store.cas(&key, data, flags, expire_at, cas, now))
                }
                Err(_) => Response::TransferFailed,
            },
            Request::Delete { key } => {
                if self.store.delete(&key) {
                    Response::Ok
                } else {
                    Response::NotFound
                }
            }
            Request::Touch { key, expire_at } => match self.store.touch(&key, expire_at, now) {
                Ok(()) => Response::Ok,
                Err(_) => Response::NotFound,
            },
            Request::Stats => Response::Stats(self.store.stats()),
            Request::Incr { key, delta } => match self.store.incr(&key, delta, now) {
                Ok(value) => Response::Counter { value },
                Err(KvError::NotFound) => Response::NotFound,
                Err(KvError::NonNumeric) => Response::NonNumeric,
                Err(e) => Self::map_store_result(Err(e)),
            },
            Request::Decr { key, delta } => match self.store.decr(&key, delta, now) {
                Ok(value) => Response::Counter { value },
                Err(KvError::NotFound) => Response::NotFound,
                Err(KvError::NonNumeric) => Response::NonNumeric,
                Err(e) => Self::map_store_result(Err(e)),
            },
            Request::Append { key, data } => {
                Self::map_store_result(self.store.append(&key, &data, now))
            }
            Request::Prepend { key, data } => {
                Self::map_store_result(self.store.prepend(&key, &data, now))
            }
            Request::MultiGet { keys } => {
                let values = keys
                    .iter()
                    .map(|k| self.store.get(k, now).map(|v| (v.data, v.flags, v.cas)))
                    .collect();
                Response::MultiValues { values }
            }
            Request::Pin { key } => match self.store.pin(&key, now) {
                Ok(()) => Response::Ok,
                Err(_) => Response::NotFound,
            },
            Request::Unpin { key } => match self.store.unpin(&key) {
                Ok(()) => Response::Ok,
                Err(_) => Response::NotFound,
            },
        }
    }
}
