//! The KV server process: accepts queue-pair connections and serves the
//! binary protocol against a sharded store, using one-sided RDMA for large
//! payloads (READ for SET, WRITE for GET).
//!
//! Two execution models share the wire protocol:
//!
//! * **Single-context** (default, `cores = 1` and `cq_batch = 1`): each
//!   connection's requests are processed inline in its own task —
//!   `recv → charge proc_time → store op → send` — exactly the seed
//!   behaviour.
//! * **Shard-per-core engine** (`cores > 1` or `cq_batch > 1`,
//!   Dragonfly/Garnet style): arriving frames from every connection land
//!   in one server-wide completion ring ([`rdmasim::Cq`]); a poller
//!   drains up to `cq_batch` completions per wakeup (io_uring idiom) and
//!   routes each request to the core that owns its key
//!   (`ShardedKv::shard_index` — the same hash the store stripes by, so
//!   every key is served by exactly one shard with no cross-shard locks
//!   on the hot path). Each modeled core charges its own `proc_time`
//!   serially, so per-server throughput scales near-linearly with
//!   `cores`. A `multi_get` is split into per-shard parts that pipeline
//!   within the batch window and are joined before replying. Responses
//!   are posted per connection in request order (memcached semantics).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use simkit::dur;
use simkit::sync::mpsc;
use simkit::telemetry::{Counter, Gauge, HistogramMetric, MetricValue};
use simkit::{OpId, Sim};

use netsim::NodeId;
use rdmasim::{Cq, Qp, QpConfig, RdmaError, RdmaStack};

use crate::hotness::FreqSketch;
use crate::proto::{Carrier, ProtoError, Request, Response};
use crate::sharded::ShardedKv;
use crate::slab::SlabConfig;
use crate::store::KvError;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct KvServerConfig {
    /// Lock stripes in the store (single-context model only; the per-core
    /// engine always runs one stripe per core).
    pub shards: usize,
    /// Modeled cores. 1 (default) keeps the single-context model; ≥ 2
    /// activates the shard-per-core engine.
    pub cores: usize,
    /// Max completions drained per poll of the server's completion ring.
    /// 1 (default) keeps the single-context model; ≥ 2 activates the
    /// engine even at `cores = 1` (batched draining, serialized core).
    pub cq_batch: usize,
    /// Idle window for slab page reclamation: a slab class with no
    /// allocation for this long may have pages retired to the global
    /// budget under allocation pressure. Zero (default) disables
    /// reclamation — classic memcached calcification.
    pub reclaim_idle: Duration,
    /// Slab/memory configuration (`mem_limit` is the `-m` budget).
    pub slab: SlabConfig,
    /// CPU time charged per request (parse + hash + store op).
    pub proc_time: Duration,
    /// Queue-pair parameters for accepted connections.
    pub qp: QpConfig,
    /// Verify that store-family payloads match the CRC32C digest the
    /// client declared in `flags` (`crc32c(key || data)`), rejecting
    /// mismatches with [`Response::BadDigest`]. The burst buffer enables
    /// this so a transfer-corrupted chunk can never be stored as "good";
    /// off by default because generic KV users put arbitrary flags there.
    pub verify_set_crc: bool,
    /// Hot-key replica fan-out (engine model only): keys the per-shard
    /// frequency sketch flags hot get a server-side cached copy, and
    /// their reads are spread round-robin across `hot_replicas` extra
    /// cores beyond the home core. Any write to a hot key invalidates
    /// the copy at dispatch (the serial poller is the linearization
    /// point), so replica reads are never stale. 0 (default) disables
    /// detection and fan-out entirely.
    pub hot_replicas: usize,
    /// Ops per hot-key sketch window; counters halve at every roll and
    /// cooled-off hot entries are pruned.
    pub hot_window: usize,
    /// Windowed sketch estimate at which a key is promoted to hot.
    pub hot_min_count: u32,
    /// Per-tenant resident-byte floor as a fraction of each shard's
    /// memory budget: eviction pressure from *other* tenants cannot push
    /// a tenant's resident bytes below its floor. 0.0 (default) disables
    /// tenant budgeting.
    pub tenant_floor_frac: f64,
    /// Token-bucket admission: token refill per tenant in ops/sec.
    /// Requests arriving with an empty bucket are answered
    /// [`Response::Throttled`] without touching a core. 0.0 (default)
    /// disables admission control; tenant 0 (untenanted) is always
    /// exempt.
    pub tenant_rate: f64,
    /// Token-bucket depth per tenant (burst allowance, ops).
    pub tenant_burst: f64,
}

impl Default for KvServerConfig {
    fn default() -> Self {
        KvServerConfig {
            shards: 4,
            cores: 1,
            cq_batch: 1,
            reclaim_idle: Duration::ZERO,
            slab: SlabConfig::default(),
            proc_time: dur::ns(1_500),
            qp: QpConfig::default(),
            verify_set_crc: false,
            hot_replicas: 0,
            hot_window: 4096,
            hot_min_count: 64,
            tenant_floor_frac: 0.0,
            tenant_rate: 0.0,
            tenant_burst: 64.0,
        }
    }
}

impl KvServerConfig {
    /// Whether this configuration runs the shard-per-core engine rather
    /// than the single-context model.
    pub fn engine_enabled(&self) -> bool {
        self.cores > 1 || self.cq_batch > 1
    }
}

/// One reply queued to a connection's replier: `(seq, frame, traced op)`.
type ReplyItem = (u64, Bytes, Option<OpId>);

/// One completion-ring entry: a received frame plus everything needed to
/// route and answer it.
struct Submission {
    seq: u64,
    frame: Bytes,
    qp: Rc<Qp>,
    op: Option<OpId>,
    reply: mpsc::Sender<ReplyItem>,
    /// The connection's declared tenant (0 = untenanted). Shared with the
    /// pump so a `set_tenant` handshake applies to every later frame.
    tenant: Rc<Cell<u32>>,
}

/// Join state for a `multi_get` split across shards.
struct MultiAgg {
    values: Vec<Option<(Bytes, u32, u64)>>,
    remaining: usize,
    seq: u64,
    /// The client's traced op for the whole `multi_get`.
    op: Option<OpId>,
    /// `(shard, dequeue ns, done ns)` per completed leg — the leg with
    /// the latest finish is the server-side critical path.
    legs: Vec<(usize, u64, u64)>,
    reply: mpsc::Sender<ReplyItem>,
}

/// Work routed to one core.
enum CoreOp {
    Single {
        req: Request,
        qp: Rc<Qp>,
        seq: u64,
        op: Option<OpId>,
        reply: mpsc::Sender<ReplyItem>,
        /// Tenant the request runs as (0 = untenanted).
        tenant: u32,
        /// When the request is a get of a tracked hot key whose cached
        /// copy is absent, `(key, seq ticket)`: after the store read the
        /// core publishes the value into the hot entry iff the ticket
        /// still matches (no write dispatched since).
        publish: Option<(Bytes, u64)>,
    },
    /// A read of a hot key served from the server-side cached copy on a
    /// fan-out core: full `proc_time` is charged, the value was captured
    /// at dispatch (the linearization point — the serial poller
    /// invalidates the copy before queueing any write).
    HotGet {
        /// The original request (always `Request::Get` — carried whole
        /// for the one-sided `dst` landing buffer).
        req: Request,
        value: (Bytes, u32, u64),
        qp: Rc<Qp>,
        seq: u64,
        op: Option<OpId>,
        reply: mpsc::Sender<ReplyItem>,
    },
    MultiPart {
        /// (position in the client's key list, key) — all owned by this
        /// core's shard.
        keys: Vec<(usize, Bytes)>,
        agg: Rc<RefCell<MultiAgg>>,
    },
}

/// Per-core dispatch handle.
struct CoreHandle {
    tx: mpsc::Sender<CoreOp>,
    qdepth: Gauge,
}

/// Shard-per-core engine state.
struct Engine {
    cq: Rc<Cq<Submission>>,
    cores: Vec<CoreHandle>,
}

/// One tracked hot key.
struct HotEntry {
    /// Core that owns the key's shard (authoritative copy).
    home: usize,
    /// Version ticket drawn from [`HotState::seqgen`]: bumped by every
    /// write-family dispatch to the key. A publish carrying a stale
    /// ticket is refused, so the cached copy can never go backwards.
    seq: u64,
    /// Round-robin cursor over the fan-out core set.
    rr: u32,
    /// Cached `(data, flags, cas)`, absent until published and after
    /// every invalidation.
    value: Option<(Bytes, u32, u64)>,
}

/// Hot-key detection and replica fan-out state (engine model only;
/// present iff `hot_replicas > 0`). All mutation happens in the serial
/// poller's dispatch, which makes dispatch order the linearization
/// order: a write invalidates the cached copy *before* it is queued, so
/// any read dispatched after the write either misses the cache (routed
/// to the home core behind the write) or sees the post-write republish.
struct HotState {
    /// One sketch per shard, recording keyed reads.
    sketches: RefCell<Vec<FreqSketch>>,
    entries: RefCell<HashMap<Vec<u8>, HotEntry>>,
    /// Monotone ticket source shared by all entries; never reused, so a
    /// pruned-and-redetected key cannot accept a publish from before its
    /// retirement (no ABA).
    seqgen: Cell<u64>,
    /// Cores a hot key's reads spread across (home + replicas, capped at
    /// the core count).
    fanout: usize,
    min_count: u32,
    detected: Counter,
    replica_hits: Counter,
    invalidations: Counter,
    publishes: Counter,
    tracked: Gauge,
}

impl HotState {
    fn next_seq(&self) -> u64 {
        let s = self.seqgen.get() + 1;
        self.seqgen.set(s);
        s
    }
}

/// Per-tenant token-bucket admission state (present iff
/// `tenant_rate > 0`). Buckets refill lazily at check time from the
/// elapsed virtual time, so idle tenants cost nothing.
struct TenantGov {
    rate: f64,
    burst: f64,
    /// tenant → (tokens, last refill ns).
    buckets: RefCell<HashMap<u32, (f64, u64)>>,
    admitted: Counter,
    throttled: Counter,
    /// Lazily registered `rkv.tenant.server{N}.t{T}.throttled` counters.
    per_tenant: RefCell<HashMap<u32, Counter>>,
}

/// Per-server service-time histograms (`rkv.server{node}.*_ns`), plus
/// per-shard service time (`rkv.server{node}.shard{S}.svc_ns`) so
/// core-scaling results can report tail behaviour per shard.
struct ServiceHists {
    get_ns: HistogramMetric,
    set_ns: HistogramMetric,
    multi_get_ns: HistogramMetric,
    other_ns: HistogramMetric,
    shard_svc: Vec<HistogramMetric>,
}

/// One KV server instance bound to a fabric node.
pub struct KvServer {
    node: NodeId,
    stack: Rc<RdmaStack>,
    store: Rc<ShardedKv>,
    config: KvServerConfig,
    connections: Cell<u64>,
    requests: Cell<u64>,
    proto_errors: Cell<u64>,
    hists: ServiceHists,
    engine: Option<Engine>,
    hot: Option<HotState>,
    gov: Option<TenantGov>,
}

impl KvServer {
    /// Create a server on `node` (no listener thread needed — connections
    /// are established through [`KvServer::accept`]). Registers
    /// `rkv.server{node}.*` metrics: service-time histograms plus sampled
    /// store stats (hits/gets/sets/evictions/items/bytes).
    pub fn new(stack: Rc<RdmaStack>, node: NodeId, config: KvServerConfig) -> Rc<KvServer> {
        assert!(config.cores >= 1, "cores must be at least 1");
        let engine_on = config.engine_enabled();
        // the engine runs one store stripe per modeled core so a shard is
        // only ever touched from its owning core (no cross-shard locks);
        // the single-context model keeps the configured stripe count
        let stripes = if engine_on {
            config.cores
        } else {
            config.shards
        };
        let store = Rc::new(ShardedKv::with_reclaim_idle(
            stripes,
            config.slab,
            config.reclaim_idle.as_nanos() as u64,
        ));
        let m = stack.sim().metrics();
        let prefix = format!("rkv.server{}", node.0);
        // shard-per-core visibility: shard count, per-shard op totals and
        // live queue depth, and slab reclamation totals — all present in
        // every snapshot regardless of execution model so the required
        // metric families never depend on configuration
        m.gauge("rkv.shard.contexts")
            .add(store.shard_count() as i64);
        for shard in 0..store.shard_count() {
            let weak = Rc::downgrade(&store);
            m.sampled(format!("{prefix}.shard{shard}.ops"), move || {
                let s = weak
                    .upgrade()
                    .map(|s| s.shard_stats(shard))
                    .unwrap_or_default();
                MetricValue::Counter(s.gets + s.sets)
            });
        }
        for (suffix, pick) in [("pages", 0usize), ("evictions", 1)] {
            let weak = Rc::downgrade(&store);
            m.sampled(
                format!("rkv.slab.reclaim.server{}.{suffix}", node.0),
                move || {
                    let s = weak.upgrade().map(|s| s.stats()).unwrap_or_default();
                    MetricValue::Counter(match pick {
                        0 => s.reclaimed_pages,
                        _ => s.reclaim_evictions,
                    })
                },
            );
        }
        let hists = ServiceHists {
            get_ns: m.histogram(format!("{prefix}.get_ns")),
            set_ns: m.histogram(format!("{prefix}.set_ns")),
            multi_get_ns: m.histogram(format!("{prefix}.multi_get_ns")),
            other_ns: m.histogram(format!("{prefix}.other_ns")),
            shard_svc: (0..store.shard_count())
                .map(|shard| m.histogram(format!("{prefix}.shard{shard}.svc_ns")))
                .collect(),
        };
        // store stats as sampled metrics: the store keeps them anyway, so
        // snapshots read them instead of double counting (weak capture —
        // the registry must not keep the store alive)
        for (suffix, pick) in [
            ("gets", 0usize),
            ("hits", 1),
            ("sets", 2),
            ("evictions", 3),
            ("items", 4),
            ("bytes", 5),
            ("pinned_items", 6),
            ("pinned_bytes", 7),
        ] {
            let weak = Rc::downgrade(&store);
            m.sampled(format!("{prefix}.{suffix}"), move || {
                let s = weak.upgrade().map(|s| s.stats()).unwrap_or_default();
                MetricValue::Counter(match pick {
                    0 => s.gets,
                    1 => s.hits,
                    2 => s.sets,
                    3 => s.evictions,
                    4 => s.items,
                    5 => s.bytes,
                    6 => s.pinned_items,
                    _ => s.pinned_bytes,
                })
            });
        }
        // fault-plan crash on this node wipes the in-memory store (a
        // restarted memcached comes back empty); link events leave state
        // intact. Weak capture: the injector must not keep the store alive.
        let crashes = m.counter(format!("{prefix}.crashes"));
        let weak_store = Rc::downgrade(&store);
        let node_idx = node.0;
        stack.sim().faults().on_node_event(move |ev| {
            if ev.node == node_idx && ev.kind == simkit::faultplan::NodeEventKind::Crash {
                if let Some(store) = weak_store.upgrade() {
                    store.clear();
                    crashes.inc();
                }
            }
        });
        // `CorruptValue` sweep: flip one byte in each resident value the
        // seeded RNG selects with probability `p`, silently — detection is
        // the checksum layer's job. Weak capture, as above.
        let corrupted = m.counter(format!("{prefix}.corrupted"));
        let weak_store = Rc::downgrade(&store);
        stack.sim().faults().on_corrupt_sweep(move |node, p, rng| {
            if node != node_idx {
                return;
            }
            if let Some(store) = weak_store.upgrade() {
                let n = store.corrupt_resident(|len| {
                    rng.chance(p).then(|| (rng.index(len), 1u8 << rng.index(8)))
                });
                corrupted.add(n);
            }
        });
        // engine plumbing: one completion ring for the whole server, one
        // work queue per core; receivers are handed to the core tasks
        // spawned below
        // tenant budgeting and admission, both fully gated so default
        // configurations register no rkv.tenant.* metrics and snapshots
        // stay byte-identical to the seed
        if config.tenant_floor_frac > 0.0 {
            store.set_tenant_floor_frac(config.tenant_floor_frac);
            let weak = Rc::downgrade(&store);
            m.sampled(
                format!("rkv.tenant.server{}.floor_denied", node.0),
                move || MetricValue::Counter(weak.upgrade().map(|s| s.floor_denied()).unwrap_or(0)),
            );
        }
        let gov = (config.tenant_rate > 0.0).then(|| TenantGov {
            rate: config.tenant_rate,
            burst: config.tenant_burst.max(1.0),
            buckets: RefCell::new(HashMap::new()),
            admitted: m.counter(format!("rkv.tenant.server{}.admitted", node.0)),
            throttled: m.counter(format!("rkv.tenant.server{}.throttled", node.0)),
            per_tenant: RefCell::new(HashMap::new()),
        });
        // hot-key fan-out needs per-core routing, so it only exists under
        // the engine; gated the same way (no rkv.hot.* metrics by default)
        let hot = (engine_on && config.hot_replicas > 0).then(|| HotState {
            sketches: RefCell::new(
                (0..store.shard_count())
                    .map(|_| FreqSketch::new(config.hot_window))
                    .collect(),
            ),
            entries: RefCell::new(HashMap::new()),
            seqgen: Cell::new(0),
            fanout: (config.hot_replicas + 1).min(store.shard_count()),
            min_count: config.hot_min_count.max(1),
            detected: m.counter(format!("rkv.hot.server{}.detected", node.0)),
            replica_hits: m.counter(format!("rkv.hot.server{}.replica_hits", node.0)),
            invalidations: m.counter(format!("rkv.hot.server{}.invalidations", node.0)),
            publishes: m.counter(format!("rkv.hot.server{}.publishes", node.0)),
            tracked: m.gauge(format!("rkv.hot.server{}.tracked", node.0)),
        });
        let mut core_rxs = Vec::new();
        let engine = engine_on.then(|| {
            let cores = (0..store.shard_count())
                .map(|shard| {
                    let (tx, rx) = mpsc::unbounded();
                    core_rxs.push(rx);
                    CoreHandle {
                        tx,
                        qdepth: m.gauge(format!("{prefix}.shard{shard}.qdepth")),
                    }
                })
                .collect();
            Engine {
                cq: Cq::new(stack.sim()),
                cores,
            }
        });
        let server = Rc::new(KvServer {
            node,
            stack,
            store,
            config,
            connections: Cell::new(0),
            requests: Cell::new(0),
            proto_errors: Cell::new(0),
            hists,
            engine,
            hot,
            gov,
        });
        if server.engine.is_some() {
            let sim = server.stack.sim().clone();
            sim.spawn({
                let this = Rc::clone(&server);
                async move { this.run_poller().await }
            });
            for (core, rx) in core_rxs.into_iter().enumerate() {
                sim.spawn({
                    let this = Rc::clone(&server);
                    async move { this.run_core(core, rx).await }
                });
            }
        }
        server
    }

    /// Fabric node this server runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Direct handle to the storage engine (used by tests and stats).
    pub fn store(&self) -> &Rc<ShardedKv> {
        &self.store
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.get()
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Malformed frames rejected so far.
    pub fn proto_errors(&self) -> u64 {
        self.proto_errors.get()
    }

    /// Establish a connection from `client_node`; the server side of the
    /// queue pair is handled by a spawned task, the client side is
    /// returned.
    pub async fn accept(self: &Rc<Self>, client_node: NodeId) -> Result<Qp, RdmaError> {
        let (client_qp, server_qp) = self
            .stack
            .connect(client_node, self.node, self.config.qp)
            .await?;
        self.connections.set(self.connections.get() + 1);
        let this = Rc::clone(self);
        if self.engine.is_some() {
            self.stack.sim().spawn(async move {
                this.serve_connection_engine(server_qp).await;
            });
        } else {
            self.stack.sim().spawn(async move {
                this.serve_connection(server_qp).await;
            });
        }
        Ok(client_qp)
    }

    async fn serve_connection(self: Rc<Self>, qp: Qp) {
        let tenant = Cell::new(0u32);
        loop {
            let (frame, op) = match qp.recv_tagged().await {
                Ok(f) => f,
                Err(_) => break, // peer gone
            };
            self.stack.sim().op_stamp(op, "net_in");
            let resp = match Request::decode(frame) {
                // connection-scoped control verb: tag every later request
                // with the declared tenant (no proc_time — pure handshake)
                Ok(Request::SetTenant { tenant: t }) => {
                    self.requests.set(self.requests.get() + 1);
                    tenant.set(t);
                    self.stack.sim().op_stamp(op, "service");
                    Response::Ok
                }
                Ok(_) if !self.admit(tenant.get()) => {
                    self.requests.set(self.requests.get() + 1);
                    self.stack.sim().op_stamp(op, "service");
                    Response::Throttled
                }
                Ok(req) => {
                    self.requests.set(self.requests.get() + 1);
                    let (span_name, hist) = match &req {
                        Request::Get { .. } => ("kv.get", &self.hists.get_ns),
                        Request::Set { .. } => ("kv.set", &self.hists.set_ns),
                        Request::MultiGet { .. } => ("kv.multi_get", &self.hists.multi_get_ns),
                        _ => ("kv.other", &self.hists.other_ns),
                    };
                    let shard = request_key(&req).map(|key| self.store.shard_index(key));
                    let sim = self.stack.sim();
                    let _sp = sim.span(span_name, "rkv", self.node.0, 0);
                    let t0 = sim.now();
                    sim.sleep(self.config.proc_time).await;
                    let resp = self.handle(&qp, req, tenant.get()).await;
                    let svc = self
                        .stack
                        .sim()
                        .now()
                        .as_nanos()
                        .saturating_sub(t0.as_nanos());
                    hist.record_ns(svc);
                    if let Some(shard) = shard {
                        self.hists.shard_svc[shard].record_ns(svc);
                        self.stack.sim().optrace().annotate_shard(op, shard as u32);
                    }
                    self.stack.sim().op_stamp(op, "service");
                    resp
                }
                Err(ProtoError(_)) => {
                    self.proto_errors.set(self.proto_errors.get() + 1);
                    Response::TransferFailed
                }
            };
            if qp.send(resp.encode()).await.is_err() {
                break;
            }
        }
    }

    /// Engine-mode connection pump: every received frame is posted to the
    /// server's completion ring tagged with a per-connection sequence
    /// number; a companion replier task sends responses back in that
    /// order (memcached answers a connection's requests in order even
    /// when the work fans out across cores).
    async fn serve_connection_engine(self: Rc<Self>, qp: Qp) {
        let engine = self.engine.as_ref().expect("engine connection pump");
        let qp = Rc::new(qp);
        let (reply_tx, reply_rx) = mpsc::unbounded();
        self.stack.sim().spawn({
            let qp = Rc::clone(&qp);
            let sim = self.stack.sim().clone();
            async move { Self::run_replier(sim, qp, reply_rx).await }
        });
        let tenant = Rc::new(Cell::new(0u32));
        let mut seq = 0u64;
        loop {
            let (frame, op) = match qp.recv_tagged().await {
                Ok(f) => f,
                Err(_) => break, // peer gone; dropping reply_tx stops the replier
            };
            self.stack.sim().op_stamp(op, "net_in");
            engine.cq.post(Submission {
                seq,
                frame,
                qp: Rc::clone(&qp),
                op,
                reply: reply_tx.clone(),
                tenant: Rc::clone(&tenant),
            });
            seq += 1;
        }
    }

    /// Reorder buffer: cores complete out of order, the wire stays in
    /// per-connection request order.
    async fn run_replier(sim: Sim, qp: Rc<Qp>, mut rx: mpsc::Receiver<ReplyItem>) {
        let mut next = 0u64;
        let mut held: BTreeMap<u64, (Bytes, Option<OpId>)> = BTreeMap::new();
        while let Ok((seq, frame, op)) = rx.recv().await {
            held.insert(seq, (frame, op));
            while let Some((frame, op)) = held.remove(&next) {
                sim.op_stamp(op, "reply_reorder");
                if qp.send(frame).await.is_err() {
                    return;
                }
                next += 1;
            }
        }
    }

    /// Drain the completion ring in batches of up to `cq_batch`, decode,
    /// and route each request to the core owning its key. Routing is
    /// cheap bookkeeping (no proc_time) — the modeled CPU cost is charged
    /// on the owning core.
    async fn run_poller(self: Rc<Self>) {
        let engine = self.engine.as_ref().expect("engine poller");
        loop {
            let batch = engine.cq.drain(self.config.cq_batch).await;
            if batch.is_empty() {
                break; // ring closed
            }
            for sub in batch {
                self.stack.sim().op_stamp(sub.op, "cq_wait");
                match Request::decode(sub.frame.clone()) {
                    // tenant handshake and admission both resolve at the
                    // ring, before any core is involved: a throttled
                    // request costs routing bookkeeping only
                    Ok(Request::SetTenant { tenant }) => {
                        self.requests.set(self.requests.get() + 1);
                        sub.tenant.set(tenant);
                        let _ = sub.reply.try_send((sub.seq, Response::Ok.encode(), sub.op));
                    }
                    Ok(_) if !self.admit(sub.tenant.get()) => {
                        self.requests.set(self.requests.get() + 1);
                        let _ = sub
                            .reply
                            .try_send((sub.seq, Response::Throttled.encode(), sub.op));
                    }
                    Ok(req) => {
                        self.requests.set(self.requests.get() + 1);
                        self.dispatch(req, sub);
                    }
                    Err(ProtoError(_)) => {
                        self.proto_errors.set(self.proto_errors.get() + 1);
                        let _ = sub.reply.try_send((
                            sub.seq,
                            Response::TransferFailed.encode(),
                            sub.op,
                        ));
                    }
                }
            }
        }
    }

    /// Hand one decoded request to its owning core. Key-bearing verbs go
    /// to `shard_index(key)`; a `multi_get` is split into per-shard parts
    /// joined by an aggregation cell; keyless control verbs (`stats`) run
    /// on core 0.
    fn dispatch(&self, req: Request, sub: Submission) {
        let engine = self.engine.as_ref().expect("engine dispatch");
        if let Request::MultiGet { keys } = req {
            if keys.is_empty() {
                let resp = Response::MultiValues { values: Vec::new() };
                let _ = sub.reply.try_send((sub.seq, resp.encode(), sub.op));
                return;
            }
            let mut parts: Vec<Vec<(usize, Bytes)>> = vec![Vec::new(); engine.cores.len()];
            for (pos, key) in keys.into_iter().enumerate() {
                parts[self.store.shard_index(&key)].push((pos, key));
            }
            let total = keys_total(&parts);
            let agg = Rc::new(RefCell::new(MultiAgg {
                values: vec![None; total],
                remaining: parts.iter().filter(|p| !p.is_empty()).count(),
                seq: sub.seq,
                op: sub.op,
                legs: Vec::new(),
                reply: sub.reply,
            }));
            for (shard, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                engine.cores[shard].qdepth.add(1);
                let _ = engine.cores[shard].tx.try_send(CoreOp::MultiPart {
                    keys: part,
                    agg: Rc::clone(&agg),
                });
            }
            return;
        }
        let shard = match request_key(&req) {
            Some(key) => self.store.shard_index(key),
            None => 0,
        };
        // hot-key tracking: reads feed the shard's sketch and may be
        // served from (or scheduled to publish into) the cached copy;
        // writes invalidate it and retire the current publish ticket.
        // All of this happens here, in the serial poller, which makes
        // dispatch order the linearization order for the cached copy.
        let mut publish: Option<(Bytes, u64)> = None;
        if let Some(hot) = &self.hot {
            match &req {
                Request::Get { key, .. } => {
                    let (est, rolled) = hot.sketches.borrow_mut()[shard].record(key);
                    let mut entries = hot.entries.borrow_mut();
                    if rolled {
                        // window roll: retire entries homed here that
                        // have cooled below half the promotion threshold
                        let sketches = hot.sketches.borrow();
                        let before = entries.len();
                        entries.retain(|k, e| {
                            e.home != shard || sketches[shard].estimate(k) >= hot.min_count / 2
                        });
                        hot.tracked.add(entries.len() as i64 - before as i64);
                    }
                    if let Some(e) = entries.get_mut(key.as_ref() as &[u8]) {
                        if let Some(v) = e.value.clone() {
                            // replica hit: rotate over the fan-out set
                            let t = (e.home + e.rr as usize % hot.fanout) % engine.cores.len();
                            e.rr = e.rr.wrapping_add(1);
                            hot.replica_hits.inc();
                            engine.cores[t].qdepth.add(1);
                            let _ = engine.cores[t].tx.try_send(CoreOp::HotGet {
                                req,
                                value: v,
                                qp: sub.qp,
                                seq: sub.seq,
                                op: sub.op,
                                reply: sub.reply,
                            });
                            return;
                        }
                        publish = Some((key.clone(), e.seq));
                    } else if est >= hot.min_count {
                        let seq = hot.next_seq();
                        entries.insert(
                            key.to_vec(),
                            HotEntry {
                                home: shard,
                                seq,
                                rr: 0,
                                value: None,
                            },
                        );
                        hot.detected.inc();
                        hot.tracked.add(1);
                        publish = Some((key.clone(), seq));
                    }
                }
                _ => {
                    // write-family (and any other keyed verb): clear the
                    // cached copy and bump the ticket so in-flight
                    // publishes of the pre-write value are refused. The
                    // write itself carries the new ticket: when it
                    // completes on the home core it republishes the fresh
                    // value, so the cache is cold only while the write is
                    // queued (a lazy get-driven republish would leave the
                    // home core eating the full hot-key read rate for as
                    // long as its own backlog delays the carrier get).
                    if let Some(key) = request_key(&req) {
                        if let Some(e) = hot.entries.borrow_mut().get_mut(key) {
                            e.seq = hot.next_seq();
                            if e.value.take().is_some() {
                                hot.invalidations.inc();
                            }
                            publish = Some((Bytes::copy_from_slice(key), e.seq));
                        }
                    }
                }
            }
        }
        engine.cores[shard].qdepth.add(1);
        let _ = engine.cores[shard].tx.try_send(CoreOp::Single {
            req,
            qp: sub.qp,
            seq: sub.seq,
            op: sub.op,
            reply: sub.reply,
            tenant: sub.tenant.get(),
            publish,
        });
    }

    /// One modeled core: executes its queue serially, charging
    /// `proc_time` per unit of work. Spans carry the core index as the
    /// trace tid so per-core occupancy is visible in the timeline.
    async fn run_core(self: Rc<Self>, core: usize, mut rx: mpsc::Receiver<CoreOp>) {
        let engine = self.engine.as_ref().expect("engine core");
        let sim = self.stack.sim().clone();
        while let Ok(work) = rx.recv().await {
            engine.cores[core].qdepth.add(-1);
            match work {
                CoreOp::Single {
                    req,
                    qp,
                    seq,
                    op,
                    reply,
                    tenant,
                    publish,
                } => {
                    sim.op_stamp(op, "shard_queue");
                    sim.optrace().annotate_shard(op, core as u32);
                    let (span_name, hist) = match &req {
                        Request::Get { .. } => ("kv.get", &self.hists.get_ns),
                        Request::Set { .. } => ("kv.set", &self.hists.set_ns),
                        _ => ("kv.other", &self.hists.other_ns),
                    };
                    let _sp = sim.span(span_name, "rkv", self.node.0, core as u64 + 1);
                    let t0 = sim.now();
                    sim.sleep(self.config.proc_time).await;
                    let resp = self.handle(&qp, req, tenant).await;
                    if let Some((key, ticket)) = publish {
                        self.publish_hot(&key, ticket);
                    }
                    let svc = sim.now().as_nanos().saturating_sub(t0.as_nanos());
                    hist.record_ns(svc);
                    self.hists.shard_svc[core].record_ns(svc);
                    sim.op_stamp(op, "service");
                    let _ = reply.try_send((seq, resp.encode(), op));
                }
                CoreOp::HotGet {
                    req,
                    value,
                    qp,
                    seq,
                    op,
                    reply,
                } => {
                    sim.op_stamp(op, "shard_queue");
                    sim.optrace().annotate_shard(op, core as u32);
                    let _sp = sim.span("kv.get", "rkv", self.node.0, core as u64 + 1);
                    let t0 = sim.now();
                    sim.sleep(self.config.proc_time).await;
                    let (data, flags, cas) = value;
                    let resp = match req {
                        Request::Get { dst: Some(dst), .. } if data.len() as u64 <= dst.len => {
                            match qp.write(&dst.into(), 0, data.clone()).await {
                                Ok(()) => Response::ValueWritten {
                                    len: data.len() as u32,
                                    flags,
                                    cas,
                                },
                                Err(_) => Response::TransferFailed,
                            }
                        }
                        _ => Response::Value { data, flags, cas },
                    };
                    let svc = sim.now().as_nanos().saturating_sub(t0.as_nanos());
                    self.hists.get_ns.record_ns(svc);
                    self.hists.shard_svc[core].record_ns(svc);
                    sim.op_stamp(op, "service");
                    let _ = reply.try_send((seq, resp.encode(), op));
                }
                CoreOp::MultiPart { keys, agg } => {
                    let _sp = sim.span("kv.multi_get", "rkv", self.node.0, core as u64 + 1);
                    let t0 = sim.now();
                    sim.sleep(self.config.proc_time).await;
                    let now = self.now();
                    let mut a = agg.borrow_mut();
                    for (pos, key) in keys {
                        a.values[pos] = self.store.get(&key, now).map(|v| (v.data, v.flags, v.cas));
                    }
                    let svc = sim.now().as_nanos().saturating_sub(t0.as_nanos());
                    self.hists.multi_get_ns.record_ns(svc);
                    self.hists.shard_svc[core].record_ns(svc);
                    if a.op.is_some() {
                        a.legs.push((core, t0.as_nanos(), now));
                    }
                    a.remaining -= 1;
                    if a.remaining == 0 {
                        // server-side critical path: the leg that finished
                        // last bounded the join (ties → lower shard). Its
                        // dequeue/done times become the op's shard_queue
                        // and service stamps, so the decomposition shows
                        // the dominant leg's timeline, not an average.
                        if a.op.is_some() {
                            let tracer = sim.optrace();
                            if let Some(&(shard, start, end)) =
                                a.legs.iter().max_by_key(|&&(s, _, e)| (e, usize::MAX - s))
                            {
                                tracer.stamp(a.op, "shard_queue", start);
                                tracer.annotate_shard(a.op, shard as u32);
                                tracer.stamp(a.op, "service", end);
                                tracer.note_critical(format!(
                                    "rkv.critpath.multi_get.server{}.shard{shard}",
                                    self.node.0
                                ));
                            }
                        }
                        let resp = Response::MultiValues {
                            values: std::mem::take(&mut a.values),
                        };
                        let _ = a.reply.try_send((a.seq, resp.encode(), a.op));
                    }
                }
            }
        }
    }

    fn now(&self) -> u64 {
        self.stack.sim().now().as_nanos()
    }

    /// Token-bucket admission for `tenant`. Always true when admission is
    /// off or the connection is untenanted (tenant 0).
    fn admit(&self, tenant: u32) -> bool {
        let Some(gov) = &self.gov else { return true };
        if tenant == 0 {
            return true;
        }
        let now = self.now();
        let mut buckets = gov.buckets.borrow_mut();
        let b = buckets.entry(tenant).or_insert((gov.burst, now));
        let dt = now.saturating_sub(b.1) as f64 / 1e9;
        b.0 = (b.0 + dt * gov.rate).min(gov.burst);
        b.1 = now;
        if b.0 >= 1.0 {
            b.0 -= 1.0;
            gov.admitted.inc();
            true
        } else {
            gov.throttled.inc();
            gov.per_tenant
                .borrow_mut()
                .entry(tenant)
                .or_insert_with(|| {
                    self.stack.sim().metrics().counter(format!(
                        "rkv.tenant.server{}.t{tenant}.throttled",
                        self.node.0
                    ))
                })
                .inc();
            false
        }
    }

    /// Install the store's current value for `key` into its hot entry,
    /// iff `ticket` still matches the entry's version (no write was
    /// dispatched since the read that carried the ticket) and nothing is
    /// cached yet. Expiring items are never published — the cached copy
    /// has no expiry check of its own.
    fn publish_hot(&self, key: &[u8], ticket: u64) {
        let Some(hot) = &self.hot else { return };
        let mut entries = hot.entries.borrow_mut();
        let Some(e) = entries.get_mut(key) else {
            return;
        };
        if e.seq != ticket || e.value.is_some() {
            return;
        }
        if let Some((v, expire_at)) = self.store.peek(key, self.now()) {
            if expire_at == 0 {
                e.value = Some((v.data, v.flags, v.cas));
                hot.publishes.inc();
            }
        }
    }

    /// Resolve a carrier to payload bytes, RDMA-READing remote payloads.
    async fn fetch_payload(&self, qp: &Qp, value: Carrier) -> Result<Bytes, RdmaError> {
        match value {
            Carrier::Inline(b) => Ok(b),
            Carrier::Remote { src, len } => qp.read(&src.into(), 0, len as u64).await,
        }
    }

    /// Under [`KvServerConfig::verify_set_crc`], check that the payload
    /// matches the digest the client declared in `flags`.
    fn digest_ok(&self, key: &[u8], flags: u32, data: &[u8]) -> bool {
        !self.config.verify_set_crc || crate::checksum::crc32c_pair(key, data) == flags
    }

    fn map_store_result(r: Result<u64, KvError>) -> Response {
        match r {
            Ok(cas) => Response::Stored { cas },
            Err(KvError::TooLarge) => Response::TooLarge,
            Err(KvError::OutOfMemory) => Response::OutOfMemory,
            Err(KvError::NotFound) => Response::NotFound,
            Err(KvError::Exists) => Response::Exists,
            Err(KvError::CasMismatch) => Response::CasMismatch,
            Err(KvError::NonNumeric) => Response::NonNumeric,
        }
    }

    async fn handle(&self, qp: &Qp, req: Request, tenant: u32) -> Response {
        let now = self.now();
        match req {
            Request::Get { key, dst } => match self.store.get(&key, now) {
                None => Response::NotFound,
                Some(v) => {
                    if let Some(dst) = dst {
                        if v.data.len() as u64 <= dst.len {
                            // one-sided path: land the payload in the
                            // client's registered buffer
                            return match qp.write(&dst.into(), 0, v.data.clone()).await {
                                Ok(()) => Response::ValueWritten {
                                    len: v.data.len() as u32,
                                    flags: v.flags,
                                    cas: v.cas,
                                },
                                Err(_) => Response::TransferFailed,
                            };
                        }
                    }
                    Response::Value {
                        data: v.data,
                        flags: v.flags,
                        cas: v.cas,
                    }
                }
            },
            Request::Set {
                key,
                flags,
                expire_at,
                value,
            } => match self.fetch_payload(qp, value).await {
                Ok(data) if !self.digest_ok(&key, flags, &data) => Response::BadDigest,
                Ok(data) => Self::map_store_result(
                    self.store.set_as(tenant, &key, data, flags, expire_at, now),
                ),
                Err(_) => Response::TransferFailed,
            },
            Request::Add {
                key,
                flags,
                expire_at,
                value,
            } => match self.fetch_payload(qp, value).await {
                Ok(data) if !self.digest_ok(&key, flags, &data) => Response::BadDigest,
                Ok(data) => {
                    Self::map_store_result(self.store.add(&key, data, flags, expire_at, now))
                }
                Err(_) => Response::TransferFailed,
            },
            Request::Replace {
                key,
                flags,
                expire_at,
                value,
            } => match self.fetch_payload(qp, value).await {
                Ok(data) if !self.digest_ok(&key, flags, &data) => Response::BadDigest,
                Ok(data) => {
                    Self::map_store_result(self.store.replace(&key, data, flags, expire_at, now))
                }
                Err(_) => Response::TransferFailed,
            },
            Request::Cas {
                key,
                flags,
                expire_at,
                cas,
                value,
            } => match self.fetch_payload(qp, value).await {
                Ok(data) if !self.digest_ok(&key, flags, &data) => Response::BadDigest,
                Ok(data) => {
                    Self::map_store_result(self.store.cas(&key, data, flags, expire_at, cas, now))
                }
                Err(_) => Response::TransferFailed,
            },
            Request::Delete { key } => {
                if self.store.delete(&key) {
                    Response::Ok
                } else {
                    Response::NotFound
                }
            }
            Request::Touch { key, expire_at } => match self.store.touch(&key, expire_at, now) {
                Ok(()) => Response::Ok,
                Err(_) => Response::NotFound,
            },
            Request::Stats => Response::Stats(self.store.stats()),
            Request::Incr { key, delta } => match self.store.incr(&key, delta, now) {
                Ok(value) => Response::Counter { value },
                Err(KvError::NotFound) => Response::NotFound,
                Err(KvError::NonNumeric) => Response::NonNumeric,
                Err(e) => Self::map_store_result(Err(e)),
            },
            Request::Decr { key, delta } => match self.store.decr(&key, delta, now) {
                Ok(value) => Response::Counter { value },
                Err(KvError::NotFound) => Response::NotFound,
                Err(KvError::NonNumeric) => Response::NonNumeric,
                Err(e) => Self::map_store_result(Err(e)),
            },
            Request::Append { key, data } => {
                Self::map_store_result(self.store.append(&key, &data, now))
            }
            Request::Prepend { key, data } => {
                Self::map_store_result(self.store.prepend(&key, &data, now))
            }
            Request::MultiGet { keys } => {
                let values = keys
                    .iter()
                    .map(|k| self.store.get(k, now).map(|v| (v.data, v.flags, v.cas)))
                    .collect();
                Response::MultiValues { values }
            }
            Request::Pin { key } => match self.store.pin(&key, now) {
                Ok(()) => Response::Ok,
                Err(_) => Response::NotFound,
            },
            Request::Unpin { key } => match self.store.unpin(&key) {
                Ok(()) => Response::Ok,
                Err(_) => Response::NotFound,
            },
            // normally intercepted at the connection pump / completion
            // ring; answering Ok keeps the verb harmless if it ever
            // reaches a core
            Request::SetTenant { .. } => Response::Ok,
        }
    }
}

/// Total key count across the per-shard parts of a split `multi_get`.
fn keys_total(parts: &[Vec<(usize, Bytes)>]) -> usize {
    parts.iter().map(Vec::len).sum()
}

/// The routing key of a request, if it carries one. `multi_get` is
/// handled separately (split per shard); keyless control verbs return
/// `None` and run on core 0.
fn request_key(req: &Request) -> Option<&[u8]> {
    match req {
        Request::Get { key, .. }
        | Request::Set { key, .. }
        | Request::Add { key, .. }
        | Request::Replace { key, .. }
        | Request::Cas { key, .. }
        | Request::Delete { key }
        | Request::Touch { key, .. }
        | Request::Incr { key, .. }
        | Request::Decr { key, .. }
        | Request::Append { key, .. }
        | Request::Prepend { key, .. }
        | Request::Pin { key }
        | Request::Unpin { key } => Some(key),
        Request::Stats | Request::MultiGet { .. } | Request::SetTenant { .. } => None,
    }
}
